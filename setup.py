"""Setuptools shim.

This environment has no network access and no `wheel` package, so PEP-517
editable installs (which build a wheel) fail.  Keeping a classic setup.py
lets `pip install -e .` fall back to the legacy `setup.py develop` path.
Package metadata lives in pyproject.toml; this file only mirrors what the
legacy path needs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "K23 reproduction: system call interposition pitfalls and solutions "
        "on a simulated x86-64/Linux substrate"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
