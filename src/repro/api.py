"""The stable public API surface.

Downstream code (notebooks, external harnesses, the CLI tools) should
import from here rather than from internal modules — internal layouts may
shift between releases, this module does not.  Four facets:

**Running** — the one builder every harness constructs runs through:
:func:`run` executes a frozen :class:`RunConfig` (mechanism, workload,
seed, optional fault schedule, attached sinks/analyzers) and returns a
:class:`RunResult` (exit status, counters, analyzer verdicts, trace
path).  :func:`prepare` is the two-phase variant for lockstep harnesses
such as the shadow mirror (:mod:`repro.shadow`).  :class:`FaultSchedule`
(built with :func:`build_schedule` from a seed and a
:class:`FaultConfig`) is the deterministic fault plan a run can carry;
:class:`AnalyzerSuite` fans one bus attachment out to streaming
analyzers whose findings surface as :class:`PitfallVerdict` records.

**Observability** — the typed instrumentation bus
(:class:`~repro.observability.bus.Bus`), its sinks (counters, ring-buffer
flight recorder, streaming JSONL, Perfetto export, shadow-divergence
collector), and the trace-event schema validator.  Attach sinks to
``kernel.bus``; a bus with no sinks costs one predicate per emit site.

**Interposition** — the mechanism registry
(:data:`~repro.interposers.registry.REGISTRY`), the base
:class:`~repro.interposers.base.Interposer`, and the hook protocol: every
interposition function has the signature
``hook(thread, nr, args, forward) -> result`` where ``forward()`` invokes
the next hook (or the real syscall) and the return value is the
(negative-errno) result the application sees.  :func:`chain` composes
hooks; :data:`EMPTY_HOOK` is the identity.

**Traffic** — the :class:`~repro.workloads.clients.TrafficSource`
protocol every load driver implements: :class:`KeepAliveSource` is the
closed-loop keep-alive driver (the old ``LoadGenerator``),
:class:`MirroredSource` the dark-launch mirroring wrapper (the old
``MirroredLoadGenerator``; both old names remain as warn-once shims).
:class:`TrafficConfig` describes an open-loop load test that
``RunConfig(traffic=...)`` or :func:`repro.traffic.engine.run_loadtest`
executes into an :class:`SLOReport` (``METRICS_slo.json``);
:class:`QueueDepthSample` / :class:`TrafficStageStats` are the bus
events the full-serve fleet emits.

**Simulation** — the :class:`~repro.kernel.kernel.Kernel` itself.

The historical ``repro.evaluation.runner.MECHANISMS`` /
``make_interposer`` entry points are deprecated shims over
:data:`REGISTRY` and warn (once per process) on first access.
"""

from __future__ import annotations

from repro.faultinject.schedule import (FaultConfig, FaultSchedule,
                                        build_schedule)
from repro.interposers.base import EMPTY_HOOK, Interposer
from repro.interposers.hooks import (CountingHook, LatencyHook, RedirectHook,
                                     SandboxHook, TracingHook, chain)
from repro.interposers.registry import (REGISTRY, MechanismRegistry,
                                        MechanismSpec, UnknownMechanismError)
from repro.kernel import Kernel
from repro.observability import (Bus, BusEvent, CounterSink, DivergenceSink,
                                 ExemplarReservoir, NullSink, RequestSpan,
                                 RingBufferSink, ShadowDivergence, Sink,
                                 SpanFlightRecorder, StreamingJSONLSink,
                                 TraceContext, TraceSink,
                                 validate_chrome_trace, write_chrome_trace)
from repro.observability.analyzers import (AnalyzerSuite, LatencyAnalyzer,
                                           PitfallVerdict)
from repro.replay import (Recorder, ReplayDivergenceError, ReplayResult,
                          replay_bundle)
from repro.observability.events import QueueDepthSample, TrafficStageStats
from repro.runapi import (WORKLOADS, PreparedRun, RunConfig, RunResult,
                          WorkloadSpec, prepare, run)
from repro.traffic.config import TrafficConfig
from repro.traffic.slo import SLOReport
from repro.workloads.clients import (KeepAliveSource, MirroredSource,
                                     TrafficSource)

__all__ = [
    # running
    "run",
    "prepare",
    "RunConfig",
    "RunResult",
    "PreparedRun",
    "WorkloadSpec",
    "WORKLOADS",
    "FaultConfig",
    "FaultSchedule",
    "build_schedule",
    "AnalyzerSuite",
    "LatencyAnalyzer",
    "PitfallVerdict",
    # record/replay
    "Recorder",
    "ReplayResult",
    "ReplayDivergenceError",
    "replay_bundle",
    # observability
    "Bus",
    "BusEvent",
    "ShadowDivergence",
    "Sink",
    "NullSink",
    "CounterSink",
    "DivergenceSink",
    "RingBufferSink",
    "StreamingJSONLSink",
    "TraceSink",
    "RequestSpan",
    "TraceContext",
    "ExemplarReservoir",
    "SpanFlightRecorder",
    "write_chrome_trace",
    "validate_chrome_trace",
    # interposition
    "Interposer",
    "EMPTY_HOOK",
    "chain",
    "TracingHook",
    "CountingHook",
    "SandboxHook",
    "RedirectHook",
    "LatencyHook",
    "REGISTRY",
    "MechanismRegistry",
    "MechanismSpec",
    "UnknownMechanismError",
    # traffic
    "TrafficSource",
    "KeepAliveSource",
    "MirroredSource",
    "TrafficConfig",
    "SLOReport",
    "QueueDepthSample",
    "TrafficStageStats",
    # simulation
    "Kernel",
]
