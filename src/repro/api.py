"""The stable public API surface.

Downstream code (notebooks, external harnesses, the CLI tools) should
import from here rather than from internal modules — internal layouts may
shift between releases, this module does not.  Three facets:

**Observability** — the typed instrumentation bus
(:class:`~repro.observability.bus.Bus`), its sinks (counters, ring-buffer
flight recorder, streaming JSONL, Perfetto export), and the trace-event
schema validator.  Attach sinks to ``kernel.bus``; a bus with no sinks
costs one predicate per emit site.

**Interposition** — the mechanism registry
(:data:`~repro.interposers.registry.REGISTRY`), the base
:class:`~repro.interposers.base.Interposer`, and the hook protocol: every
interposition function has the signature
``hook(thread, nr, args, forward) -> result`` where ``forward()`` invokes
the next hook (or the real syscall) and the return value is the
(negative-errno) result the application sees.  :func:`chain` composes
hooks; :data:`EMPTY_HOOK` is the identity.

**Simulation** — the :class:`~repro.kernel.kernel.Kernel` itself.

The historical ``repro.evaluation.runner.MECHANISMS`` /
``make_interposer`` entry points are deprecated shims over
:data:`REGISTRY` and warn on import.
"""

from __future__ import annotations

from repro.interposers.base import EMPTY_HOOK, Interposer
from repro.interposers.hooks import (CountingHook, LatencyHook, RedirectHook,
                                     SandboxHook, TracingHook, chain)
from repro.interposers.registry import (REGISTRY, MechanismRegistry,
                                        MechanismSpec, UnknownMechanismError)
from repro.kernel import Kernel
from repro.observability import (Bus, BusEvent, CounterSink, NullSink,
                                 RingBufferSink, Sink, StreamingJSONLSink,
                                 TraceSink, validate_chrome_trace,
                                 write_chrome_trace)

__all__ = [
    # observability
    "Bus",
    "BusEvent",
    "Sink",
    "NullSink",
    "CounterSink",
    "RingBufferSink",
    "StreamingJSONLSink",
    "TraceSink",
    "write_chrome_trace",
    "validate_chrome_trace",
    # interposition
    "Interposer",
    "EMPTY_HOOK",
    "chain",
    "TracingHook",
    "CountingHook",
    "SandboxHook",
    "RedirectHook",
    "LatencyHook",
    "REGISTRY",
    "MechanismRegistry",
    "MechanismSpec",
    "UnknownMechanismError",
    # simulation
    "Kernel",
]
