"""Robin-hood open-addressing hash set (K23's `tsl::robin_set` stand-in).

K23-ultra replaces zpoline's address-space bitmap with a hash set containing
only the syscall-site addresses validated during the offline phase (a handful
to a few dozen entries, Table 2).  Lookups cost a few probes instead of two
bit operations — measurably slower than the bitmap (compare zpoline-ultra's
delta to K23-ultra's in Table 5) — but the memory footprint is bounded by the
log contents instead of the address-space size (P4b fixed).

The implementation is a faithful robin-hood scheme: linear probing where an
inserting element displaces any resident whose probe distance is shorter,
keeping worst-case probe lengths tight and making lookup cost predictable.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

_EMPTY = None

#: Bytes per bucket in the footprint model: 8-byte key + 1 distance byte,
#: padded — matches tsl::robin_set's per-slot overhead for uint64 keys.
BUCKET_BYTES = 9


def _hash64(value: int) -> int:
    """A 64-bit mix (splitmix64 finalizer) — addresses are too regular for
    identity hashing."""
    value &= (1 << 64) - 1
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & (1 << 64) - 1
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & (1 << 64) - 1
    return value ^ (value >> 31)


class RobinHoodSet:
    """Open-addressing set of 64-bit integers with robin-hood displacement."""

    def __init__(self, initial_capacity: int = 16, max_load: float = 0.5):
        if initial_capacity < 1:
            raise ValueError("capacity must be positive")
        capacity = 1
        while capacity < initial_capacity:
            capacity *= 2
        self._slots: List[Optional[int]] = [_EMPTY] * capacity
        self._dist: List[int] = [0] * capacity
        self._size = 0
        self._max_load = max_load
        #: Cumulative probe counters so benchmarks can report average probe
        #: length (the runtime cost K23 trades for bounded memory).
        self.probe_count = 0
        self.lookup_count = 0

    # -- core operations ------------------------------------------------------

    def add(self, value: int) -> bool:
        """Insert *value*; returns True if it was not already present."""
        if self._size + 1 > len(self._slots) * self._max_load:
            self._grow()
        return self._insert(value)

    def _insert(self, value: int) -> bool:
        mask = len(self._slots) - 1
        idx = _hash64(value) & mask
        dist = 0
        carried = value
        while True:
            resident = self._slots[idx]
            if resident is _EMPTY:
                self._slots[idx] = carried
                self._dist[idx] = dist
                self._size += 1
                return True
            if resident == carried:
                return False
            if self._dist[idx] < dist:
                # Robin hood: take from the rich (short probe distance).
                self._slots[idx], carried = carried, resident
                self._dist[idx], dist = dist, self._dist[idx]
            idx = (idx + 1) & mask
            dist += 1

    def __contains__(self, value: int) -> bool:
        """Membership probe (the K23-ultra entry check)."""
        self.lookup_count += 1
        mask = len(self._slots) - 1
        idx = _hash64(value) & mask
        dist = 0
        while True:
            self.probe_count += 1
            resident = self._slots[idx]
            if resident is _EMPTY or self._dist[idx] < dist:
                return False
            if resident == value:
                return True
            idx = (idx + 1) & mask
            dist += 1

    def discard(self, value: int) -> bool:
        """Remove *value* if present (backward-shift deletion)."""
        mask = len(self._slots) - 1
        idx = _hash64(value) & mask
        dist = 0
        while True:
            resident = self._slots[idx]
            if resident is _EMPTY or self._dist[idx] < dist:
                return False
            if resident == value:
                break
            idx = (idx + 1) & mask
            dist += 1
        # Backward-shift: pull successors left until a natural boundary.
        nxt = (idx + 1) & mask
        while self._slots[nxt] is not _EMPTY and self._dist[nxt] > 0:
            self._slots[idx] = self._slots[nxt]
            self._dist[idx] = self._dist[nxt] - 1
            idx = nxt
            nxt = (nxt + 1) & mask
        self._slots[idx] = _EMPTY
        self._dist[idx] = 0
        self._size -= 1
        return True

    def _grow(self) -> None:
        old = [slot for slot in self._slots if slot is not _EMPTY]
        self._slots = [_EMPTY] * (len(self._slots) * 2)
        self._dist = [0] * len(self._slots)
        self._size = 0
        for value in old:
            self._insert(value)

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[int]:
        return (slot for slot in self._slots if slot is not _EMPTY)

    @property
    def capacity(self) -> int:
        return len(self._slots)

    @property
    def memory_bytes(self) -> int:
        """Modelled footprint (the P4b comparison number)."""
        return self.capacity * BUCKET_BYTES

    @property
    def average_probe_length(self) -> float:
        """Mean probes per lookup since construction."""
        if not self.lookup_count:
            return 0.0
        return self.probe_count / self.lookup_count

    @property
    def max_probe_distance(self) -> int:
        """Worst displacement currently in the table (robin hood keeps this
        small — the property that makes the entry check predictable)."""
        return max((d for s, d in zip(self._slots, self._dist)
                    if s is not _EMPTY), default=0)
