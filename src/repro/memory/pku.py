"""Protection Keys for Userspace (PKU / MPK).

Real PKU associates one of 16 protection keys with each page and consults the
per-thread PKRU register on every *data* access: two bits per key, AD
(access-disable: blocks reads and writes) and WD (write-disable: blocks
writes).  **Instruction fetches are never blocked by PKU** — which is exactly
how zpoline/lazypoline/K23 build eXecute-Only Memory (XOM) trampolines at
virtual address 0: reads and writes fault (preserving NULL-dereference
crashes) while execution proceeds.  That asymmetry is also what makes P4a
possible: a NULL *code* pointer silently executes the trampoline.
"""

from __future__ import annotations

#: The default protection key assigned by ``mmap`` (key 0: always accessible
#: in the default PKRU configuration).
PKEY_DEFAULT = 0

#: Number of keys supported by the hardware.
PKEY_COUNT = 16

#: PKRU bit layout: key *k* owns bits ``2k`` (AD) and ``2k+1`` (WD).
_AD_BIT = 0
_WD_BIT = 1


class Pkru:
    """A thread's PKRU register.

    The value is a 32-bit integer; helpers manipulate the two bits belonging
    to each key.  ``Pkru`` instances are tiny mutable value objects owned by
    each simulated thread.
    """

    def __init__(self, value: int = 0):
        self.value = value & 0xFFFF_FFFF

    def __repr__(self) -> str:
        return f"Pkru({self.value:#010x})"

    def copy(self) -> "Pkru":
        return Pkru(self.value)

    # -- bit accessors -------------------------------------------------------

    def access_disabled(self, pkey: int) -> bool:
        """True when reads AND writes through *pkey* pages are blocked."""
        return bool(self.value >> (2 * pkey + _AD_BIT) & 1)

    def write_disabled(self, pkey: int) -> bool:
        """True when writes through *pkey* pages are blocked."""
        return bool(self.value >> (2 * pkey + _WD_BIT) & 1)

    def set_access_disabled(self, pkey: int, disabled: bool) -> None:
        bit = 1 << (2 * pkey + _AD_BIT)
        self.value = (self.value | bit) if disabled else (self.value & ~bit)

    def set_write_disabled(self, pkey: int, disabled: bool) -> None:
        bit = 1 << (2 * pkey + _WD_BIT)
        self.value = (self.value | bit) if disabled else (self.value & ~bit)

    # -- access checks ----------------------------------------------------------

    def permits(self, pkey: int, access: str) -> bool:
        """Whether this PKRU allows *access* (``"read"``/``"write"``) via *pkey*.

        ``"exec"`` is always permitted: PKU does not gate instruction fetch.
        """
        if access == "exec":
            return True
        if self.access_disabled(pkey):
            return False
        if access == "write" and self.write_disabled(pkey):
            return False
        return True


def xom_pkru_for(pkey: int) -> Pkru:
    """A PKRU that turns *pkey* pages into eXecute-Only Memory.

    Data reads and writes fault; instruction fetch proceeds.  This is the
    configuration the interposers apply to the trampoline page at address 0.
    """
    pkru = Pkru(0)
    pkru.set_access_disabled(pkey, True)
    pkru.set_write_disabled(pkey, True)
    return pkru
