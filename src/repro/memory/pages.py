"""Page-granularity constants and protection flags."""

from __future__ import annotations

import enum

#: Page size in bytes (x86-64 base pages).
PAGE_SIZE = 4096

#: Size of the modelled user virtual address space (47 bits, as on Linux
#: x86-64 with 4-level paging).  Used by the zpoline bitmap to compute its
#: reserved virtual footprint (P4b).
USER_VA_BITS = 47
USER_VA_SIZE = 1 << USER_VA_BITS


class Prot(enum.IntFlag):
    """``mmap``/``mprotect`` protection flags (values match Linux)."""

    NONE = 0
    READ = 1
    WRITE = 2
    EXEC = 4

    @property
    def text(self) -> str:
        """Render like a ``/proc/$PID/maps`` permission column (``rwxp``)."""
        return (
            ("r" if self & Prot.READ else "-")
            + ("w" if self & Prot.WRITE else "-")
            + ("x" if self & Prot.EXEC else "-")
            + "p"
        )


def page_index(address: int) -> int:
    """Index of the page containing *address*."""
    return address // PAGE_SIZE


def page_base(address: int) -> int:
    """Base address of the page containing *address*."""
    return address & ~(PAGE_SIZE - 1)


def page_span(address: int, length: int):
    """Yield the page indices covering ``[address, address+length)``."""
    if length <= 0:
        return
    first = page_index(address)
    last = page_index(address + length - 1)
    yield from range(first, last + 1)


def round_up_pages(length: int) -> int:
    """Round *length* up to a whole number of pages (in bytes)."""
    return (length + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
