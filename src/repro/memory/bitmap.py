"""zpoline's whole-address-space validity bitmap (pitfall P4b).

zpoline-ultra validates, at the trampoline entry point, that the return
address on the stack points just past a *known, rewritten* syscall site.  The
upstream implementation reserves one bit per byte of user virtual address
space (2^47 bytes → 16 TiB of *reserved* virtual memory per process) and lets
demand paging allocate physical chunks only where bits are actually set.
Checks are a couple of bit operations — very fast — but the reservation is
real: every process carries it, which the paper flags as a problem for
low-end devices and many-process deployments (P4b).

We model both sides of the trade-off: ``reserved_virtual_bytes`` is the
full-span reservation; ``resident_bytes`` counts only the demand-allocated
chunks (one chunk per :data:`CHUNK_SPAN` of address space).
"""

from __future__ import annotations

from typing import Dict

from repro.memory.pages import USER_VA_SIZE

#: Address-space span covered by one physically-allocated chunk.  Linux
#: demand-pages at 4 KiB granularity; one 4 KiB chunk of bitmap covers
#: 4096*8 = 32768 bytes of address space.
CHUNK_SPAN = 4096 * 8
CHUNK_BYTES = 4096


class AddressBitmap:
    """One validity bit per virtual-address byte, demand-allocated."""

    def __init__(self, span: int = USER_VA_SIZE):
        self.span = span
        self._chunks: Dict[int, bytearray] = {}
        self._count = 0

    # -- marking ----------------------------------------------------------------

    def set(self, address: int) -> None:
        """Mark *address* as a valid (rewritten) site."""
        if not 0 <= address < self.span:
            raise ValueError(f"address {address:#x} outside bitmap span")
        chunk_idx, byte_idx, bit = self._locate(address)
        chunk = self._chunks.get(chunk_idx)
        if chunk is None:
            chunk = self._chunks[chunk_idx] = bytearray(CHUNK_BYTES)
        if not chunk[byte_idx] >> bit & 1:
            chunk[byte_idx] |= 1 << bit
            self._count += 1

    def clear(self, address: int) -> None:
        chunk_idx, byte_idx, bit = self._locate(address)
        chunk = self._chunks.get(chunk_idx)
        if chunk is not None and chunk[byte_idx] >> bit & 1:
            chunk[byte_idx] &= ~(1 << bit) & 0xFF
            self._count -= 1

    def test(self, address: int) -> bool:
        """The fast validity check performed at the trampoline entry."""
        if not 0 <= address < self.span:
            return False
        chunk_idx, byte_idx, bit = self._locate(address)
        chunk = self._chunks.get(chunk_idx)
        return bool(chunk and chunk[byte_idx] >> bit & 1)

    __contains__ = test

    def __len__(self) -> int:
        return self._count

    @staticmethod
    def _locate(address: int):
        chunk_idx, within = divmod(address, CHUNK_SPAN)
        byte_idx, bit = divmod(within, 8)
        return chunk_idx, byte_idx, bit

    # -- footprint accounting (the P4b numbers) -----------------------------------

    @property
    def reserved_virtual_bytes(self) -> int:
        """Virtual memory reserved for the bitmap: one bit per address byte."""
        return self.span // 8

    @property
    def resident_bytes(self) -> int:
        """Physical memory actually allocated by demand paging."""
        return len(self._chunks) * CHUNK_BYTES
