"""A paged 64-bit virtual address space with named regions.

This is the process-memory substrate under every simulated program: the
loader maps code/data here, rewriters flip bytes here, the kernel consults it
for ``/proc/$PID/maps``, and the CPU's fetch/load/store paths go through the
permission checks (including PKU) that produce segmentation faults.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import MapError, ProtectionKeyFault, SegmentationFault
from repro.memory.pages import (
    PAGE_SIZE,
    Prot,
    page_base,
    page_index,
    page_span,
    round_up_pages,
)
from repro.memory.pku import PKEY_DEFAULT, PKEY_COUNT, Pkru

#: Integer protection masks for the fast paths below.  ``Prot`` is an
#: ``IntFlag`` whose ``&`` goes through the (slow) enum machinery; the
#: memoized per-page entries store the raw int so the per-access check is
#: plain integer arithmetic.
_PROT_READ = int(Prot.READ)
_PROT_WRITE = int(Prot.WRITE)
_PROT_EXEC = int(Prot.EXEC)

#: Where anonymous/library mappings start when the caller lets the kernel
#: pick an address (grows upward like Linux's mmap_base, simplified).
MMAP_BASE = 0x7F00_0000_0000

#: Stack top for the main thread.
STACK_TOP = 0x7FFF_FFFF_F000


@dataclass
class AddressSpaceSnapshot:
    """Copy-on-write image of an :class:`AddressSpace` at one instant.

    ``pages`` maps page index → the page's backing ``bytearray`` *shared*
    with the live space: :meth:`AddressSpace.snapshot` freezes the live
    pages instead of copying them, and every mutation path unshares
    (copies) a frozen page before writing.  The snapshot therefore costs
    O(number of pages) dict entries, not O(bytes), and stays intact no
    matter what the live space does afterwards.  Plain data throughout —
    picklable for on-disk checkpoints.
    """

    pages: Dict[int, bytearray]
    prot: Dict[int, "Prot"]
    pkey: Dict[int, int]
    regions: List[Tuple[int, int, str, int]]
    mmap_cursor: int


@dataclass
class Region:
    """A named mapping, as one line of ``/proc/$PID/maps``.

    Attributes:
        start: inclusive base address.
        end: exclusive end address.
        name: pathname column (e.g. ``/usr/lib/x86_64-linux-gnu/libc.so.6``
            or ``[stack]``).
        file_offset: offset of ``start`` within the backing file, for
            file-backed mappings.
    """

    start: int
    end: int
    name: str
    file_offset: int = 0

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    @property
    def size(self) -> int:
        return self.end - self.start


class AddressSpace:
    """Sparse paged memory with per-page protection and protection keys."""

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}
        self._prot: Dict[int, Prot] = {}
        self._pkey: Dict[int, int] = {}
        self.regions: List[Region] = []
        self._mmap_cursor = MMAP_BASE
        # Single-page access fast path: memoized (generation, page, prot,
        # pkey) per page index.  Generations are **per page**: a mapping or
        # protection change bumps only the touched pages' generations, so an
        # unrelated region's mmap does not evict every memoized translation
        # (the interpreter keeps its hot-page entries across cold mmap
        # traffic).  The page bytearray is shared (not copied), so in-place
        # writes through the slow path remain visible to fast-path readers;
        # ``prot`` is stored as a raw int (see _PROT_*).
        self._fast: Dict[int, Tuple[int, bytearray, int, int]] = {}
        self._page_gen: Dict[int, int] = {}
        self._gen_counter = 0
        # Pages whose bytearray is shared with a snapshot (or a forked
        # sibling).  A frozen page must be unshared — copied and removed
        # from this set — before any in-place mutation; see _freeze_all.
        self._frozen: set = set()
        # region_at bisect index: region start addresses, kept in sync with
        # the (sorted, non-overlapping) regions list.
        self._region_starts: List[int] = []

    # ------------------------------------------------------------------ mapping

    def mmap(
        self,
        addr: Optional[int],
        length: int,
        prot: Prot,
        name: str = "[anon]",
        fixed: bool = False,
        pkey: int = PKEY_DEFAULT,
        file_offset: int = 0,
    ) -> int:
        """Map ``length`` bytes (rounded up to pages) and return the base.

        With ``addr=None`` the kernel chooses a free range.  With ``fixed``
        the mapping is placed exactly at ``addr`` (page-aligned), replacing
        any existing pages — MAP_FIXED semantics, which is how the trampoline
        claims virtual address 0.
        """
        if length <= 0:
            raise MapError("mmap length must be positive")
        length = round_up_pages(length)
        if addr is None:
            addr = self._find_free(length)
        else:
            if addr % PAGE_SIZE:
                raise MapError(f"mmap address {addr:#x} is not page-aligned")
            if not fixed and self._overlaps(addr, length):
                raise MapError(
                    f"mapping {addr:#x}+{length:#x} overlaps an existing one"
                )
        self._gen_counter += 1
        gen = self._gen_counter
        for idx in page_span(addr, length):
            self._pages[idx] = bytearray(PAGE_SIZE)
            self._prot[idx] = prot
            self._pkey[idx] = pkey
            self._page_gen[idx] = gen
            self._frozen.discard(idx)
        self._drop_region_overlap(addr, addr + length)
        self.regions.append(Region(addr, addr + length, name, file_offset))
        self.regions.sort(key=lambda r: r.start)
        self._reindex_regions()
        return addr

    def munmap(self, addr: int, length: int) -> None:
        """Unmap whole pages in ``[addr, addr+length)``."""
        if addr % PAGE_SIZE:
            raise MapError(f"munmap address {addr:#x} is not page-aligned")
        length = round_up_pages(length)
        self._gen_counter += 1
        gen = self._gen_counter
        for idx in page_span(addr, length):
            self._pages.pop(idx, None)
            self._prot.pop(idx, None)
            self._pkey.pop(idx, None)
            self._page_gen[idx] = gen
            self._frozen.discard(idx)
        self._drop_region_overlap(addr, addr + length)

    def mprotect(self, addr: int, length: int, prot: Prot) -> None:
        """Change protection on whole mapped pages (EINVAL-style on gaps)."""
        if addr % PAGE_SIZE:
            raise MapError(f"mprotect address {addr:#x} is not page-aligned")
        length = round_up_pages(length)
        indices = list(page_span(addr, length))
        for idx in indices:
            if idx not in self._pages:
                raise MapError(
                    f"mprotect range {addr:#x}+{length:#x} covers unmapped pages"
                )
        self._gen_counter += 1
        gen = self._gen_counter
        for idx in indices:
            self._prot[idx] = prot
            self._page_gen[idx] = gen

    def pkey_mprotect(self, addr: int, length: int, prot: Prot, pkey: int) -> None:
        """``pkey_mprotect``: mprotect + assign a protection key."""
        if not 0 <= pkey < PKEY_COUNT:
            raise MapError(f"invalid pkey {pkey}")
        self.mprotect(addr, length, prot)
        self._gen_counter += 1
        gen = self._gen_counter
        for idx in page_span(addr, round_up_pages(length)):
            self._pkey[idx] = pkey
            self._page_gen[idx] = gen

    def _find_free(self, length: int) -> int:
        addr = self._mmap_cursor
        while self._overlaps(addr, length):
            addr += round_up_pages(length) + PAGE_SIZE
        self._mmap_cursor = addr + round_up_pages(length) + PAGE_SIZE
        return addr

    def _overlaps(self, addr: int, length: int) -> bool:
        return any(idx in self._pages for idx in page_span(addr, length))

    def _drop_region_overlap(self, start: int, end: int) -> None:
        """Trim or remove region metadata overlapping ``[start, end)``."""
        kept: List[Region] = []
        for region in self.regions:
            if region.end <= start or region.start >= end:
                kept.append(region)
                continue
            if region.start < start:
                kept.append(Region(region.start, start, region.name,
                                   region.file_offset))
            if region.end > end:
                kept.append(Region(end, region.end, region.name,
                                   region.file_offset + (end - region.start)))
        self.regions = sorted(kept, key=lambda r: r.start)
        self._reindex_regions()

    def _reindex_regions(self) -> None:
        self._region_starts = [region.start for region in self.regions]

    # ------------------------------------------------------------------- access

    def is_mapped(self, addr: int, length: int = 1) -> bool:
        return all(idx in self._pages for idx in page_span(addr, length))

    def prot_at(self, addr: int) -> Prot:
        """Protection of the page containing *addr* (NONE if unmapped)."""
        return self._prot.get(page_index(addr), Prot.NONE)

    def pkey_at(self, addr: int) -> int:
        return self._pkey.get(page_index(addr), PKEY_DEFAULT)

    def _check(self, addr: int, length: int, access: str,
               pkru: Optional[Pkru]) -> None:
        needed = {"read": Prot.READ, "write": Prot.WRITE, "exec": Prot.EXEC}[access]
        for idx in page_span(addr, length):
            if idx not in self._pages:
                raise SegmentationFault(addr, access, reason="unmapped")
            if not self._prot[idx] & needed:
                raise SegmentationFault(addr, access, reason="permission")
            if pkru is not None and not pkru.permits(self._pkey[idx], access):
                raise ProtectionKeyFault(addr, access)

    def page_entry(self, idx: int) -> "Optional[Tuple[int, bytearray, int, int]]":
        """Generation-checked ``(gen, page, prot_int, pkey)`` for one page.

        The inline-cache seam the trace JIT compiles against
        (:mod:`repro.cpu.tracejit`): a returned entry is valid until the
        page's generation changes, the page bytearray is the live backing
        store, and ``prot_int``/``pkey`` are raw ints so a compiled trace
        checks permissions with integer arithmetic only.  PKU semantics for
        a data access via *pkey* are ``not (pkru.value >> (pkey * 2)) & 1``
        for reads and ``... & 3`` for writes (AD blocks both, WD writes).
        Returns ``None`` for an unmapped page.
        """
        entry = self._fast.get(idx)
        if entry is None or entry[0] != self._page_gen.get(idx, 0):
            page = self._pages.get(idx)
            if page is None:
                return None
            prot = int(self._prot[idx])
            if prot & _PROT_WRITE and idx in self._frozen:
                # The entry is handed out for in-place writes whenever the
                # write bit is set, so a frozen (snapshot-shared) page must
                # be unshared *before* it becomes reachable through the
                # inline-cache seam.  Read-only pages keep sharing; a later
                # mprotect(+W) bumps the generation and lands back here.
                page = bytearray(page)
                self._pages[idx] = page
                self._frozen.discard(idx)
            entry = (self._page_gen.get(idx, 0), page, prot, self._pkey[idx])
            self._fast[idx] = entry
        return entry

    #: Internal alias — the read/write/fetch fast paths below and the JIT
    #: seam share one implementation (no forwarding frame on either side).
    _fast_entry = page_entry

    def read(self, addr: int, length: int, pkru: Optional[Pkru] = None) -> bytes:
        """Data read with permission + PKU checks."""
        # Single-page fast path: the interpreter's loads are 1- or 8-byte
        # and almost never straddle a page; skip the page_span generator
        # and bytearray assembly.  Any miss or fault falls back to the
        # slow path so exception types/fields stay identical.  The PKU
        # check is pkru.permits(pkey, "read") as integer bit math.
        off = addr & (PAGE_SIZE - 1)
        if off + length <= PAGE_SIZE:
            entry = self._fast_entry(addr // PAGE_SIZE)
            if entry is not None and entry[2] & _PROT_READ and (
                    pkru is None
                    or not (pkru.value >> (entry[3] << 1)) & 1):
                return bytes(entry[1][off:off + length])
        self._check(addr, length, "read", pkru)
        return self._copy_out(addr, length)

    def fetch(self, addr: int, length: int) -> bytes:
        """Instruction fetch: requires EXEC; **not** subject to PKU."""
        off = addr & (PAGE_SIZE - 1)
        if off + length <= PAGE_SIZE:
            entry = self._fast_entry(addr // PAGE_SIZE)
            if entry is not None and entry[2] & _PROT_EXEC:
                return bytes(entry[1][off:off + length])
        self._check(addr, length, "exec", None)
        return self._copy_out(addr, length)

    def write(self, addr: int, data: bytes, pkru: Optional[Pkru] = None) -> None:
        """Data write with permission + PKU checks."""
        length = len(data)
        off = addr & (PAGE_SIZE - 1)
        if off + length <= PAGE_SIZE:
            entry = self._fast_entry(addr // PAGE_SIZE)
            if entry is not None and entry[2] & _PROT_WRITE and (
                    pkru is None
                    or not (pkru.value >> (entry[3] << 1)) & 3):
                entry[1][off:off + length] = data
                return
        self._check(addr, length, "write", pkru)
        self._copy_in(addr, data)

    def read_kernel(self, addr: int, length: int) -> bytes:
        """Kernel-privilege read (loader, ptrace PEEK, /proc): only requires
        the pages to be mapped."""
        for idx in page_span(addr, length):
            if idx not in self._pages:
                raise SegmentationFault(addr, "read", reason="unmapped")
        return self._copy_out(addr, length)

    def write_kernel(self, addr: int, data: bytes) -> None:
        """Kernel-privilege write (loader, ptrace POKE, process_vm_writev)."""
        for idx in page_span(addr, len(data)):
            if idx not in self._pages:
                raise SegmentationFault(addr, "write", reason="unmapped")
        self._copy_in(addr, data)

    def _copy_out(self, addr: int, length: int) -> bytes:
        out = bytearray()
        remaining = length
        cursor = addr
        while remaining:
            idx = page_index(cursor)
            off = cursor - idx * PAGE_SIZE
            take = min(remaining, PAGE_SIZE - off)
            out += self._pages[idx][off:off + take]
            cursor += take
            remaining -= take
        return bytes(out)

    def _copy_in(self, addr: int, data: bytes) -> None:
        cursor = addr
        view = memoryview(data)
        frozen = self._frozen
        while view:
            idx = page_index(cursor)
            if frozen and idx in frozen:
                # Kernel-privilege writes bypass page_entry, so unshare
                # here; bump the generation because a read-only page may
                # already be memoized with the still-shared bytearray.
                self._pages[idx] = bytearray(self._pages[idx])
                frozen.discard(idx)
                self._gen_counter += 1
                self._page_gen[idx] = self._gen_counter
            off = cursor - idx * PAGE_SIZE
            take = min(len(view), PAGE_SIZE - off)
            self._pages[idx][off:off + take] = view[:take]
            cursor += take
            view = view[take:]

    # -------------------------------------------------------------------- /proc

    def region_at(self, addr: int) -> Optional[Region]:
        """The named region containing *addr*, if any (bisect; regions are
        sorted and non-overlapping, so only the rightmost start <= addr can
        contain it)."""
        i = bisect_right(self._region_starts, addr) - 1
        if i >= 0:
            region = self.regions[i]
            if region.contains(addr):
                return region
        return None

    def maps(self) -> List[str]:
        """Render ``/proc/$PID/maps``-style lines, one per region."""
        lines = []
        for region in self.regions:
            prot = self._prot.get(page_index(region.start), Prot.NONE)
            lines.append(
                f"{region.start:012x}-{region.end:012x} {prot.text} "
                f"{region.file_offset:08x} 00:00 0"
                f"{' ' * 19}{region.name}"
            )
        return lines

    @property
    def mapped_bytes(self) -> int:
        """Total bytes currently backed by pages."""
        return len(self._pages) * PAGE_SIZE

    # --------------------------------------------------- snapshot / fork (CoW)

    def _freeze_all(self) -> None:
        """Mark every current page snapshot-shared and invalidate all
        memoized translations.

        Bumping every page's generation honors the :meth:`page_entry`
        contract — any held entry (interpreter fast path, JIT inline
        cache) becomes invalid, so the next access rebuilds through
        ``page_entry`` and unshares there if it can write in place.
        """
        self._frozen.update(self._pages)
        self._gen_counter += 1
        gen = self._gen_counter
        for idx in self._pages:
            self._page_gen[idx] = gen
        self._fast.clear()

    def snapshot(self) -> AddressSpaceSnapshot:
        """Capture a copy-on-write image of the space (O(pages), not O(bytes)).

        The live space keeps running; mutations unshare pages lazily, so
        the returned snapshot is immutable regardless of later activity
        and can be :meth:`restore`\\ d any number of times.
        """
        snap = AddressSpaceSnapshot(
            pages=dict(self._pages),
            prot=dict(self._prot),
            pkey=dict(self._pkey),
            regions=[(r.start, r.end, r.name, r.file_offset)
                     for r in self.regions],
            mmap_cursor=self._mmap_cursor,
        )
        self._freeze_all()
        return snap

    def restore(self, snap: AddressSpaceSnapshot) -> None:
        """Reset the space to *snap*, in place (object identity preserved —
        threads and compiled traces reach memory through the owning
        ``Process``/``mem_space`` reference, which stays valid).

        The restored pages are re-frozen so the snapshot survives further
        mutation and can be restored again.  Callers must flush every
        thread's icache afterwards: decoded blocks cache code *bytes*,
        which this call may have changed wholesale.
        """
        self._pages = dict(snap.pages)
        self._prot = dict(snap.prot)
        self._pkey = dict(snap.pkey)
        self.regions = [Region(start, end, name, file_offset)
                        for start, end, name, file_offset in snap.regions]
        self._reindex_regions()
        self._mmap_cursor = snap.mmap_cursor
        self._frozen = set(self._pages)
        self._gen_counter += 1
        gen = self._gen_counter
        self._page_gen = {idx: gen
                          for idx in set(self._page_gen) | set(self._pages)}
        self._fast.clear()

    def fork_copy(self) -> "AddressSpace":
        """Copy-on-write copy for ``fork``.

        Parent and child share page bytearrays until either side writes
        (both sides' pages are frozen; mutation paths unshare).  The child
        starts with *fresh* fast-path generation state — empty ``_fast``,
        empty ``_page_gen``, zero counter — and the parent's own memoized
        translations are invalidated by :meth:`_freeze_all`, so the two
        spaces never share inline-cache validity: a post-fork SMC patch on
        one side can never satisfy a generation check made against the
        other (the fork-then-SMC pitfall).
        """
        self._freeze_all()
        child = AddressSpace()
        child._pages = dict(self._pages)
        child._prot = dict(self._prot)
        child._pkey = dict(self._pkey)
        child.regions = [Region(r.start, r.end, r.name, r.file_offset)
                         for r in self.regions]
        child._reindex_regions()
        child._mmap_cursor = self._mmap_cursor
        child._frozen = set(self._pages)
        return child
