"""Two-level validity table — the zpoline authors' proposed alternative.

§4.4/§6.1: "The zpoline authors acknowledge P4b and propose alternative,
slower strategies that reduce memory overhead."  The canonical such
strategy is a radix structure: a directory indexed by the address's high
bits whose entries point to demand-allocated leaf bitmaps.  Reserved
virtual memory shrinks from span/8 bytes (16 TiB) to one directory, at the
cost of an extra dependent load per check.

This completes the design-space triangle the evaluation's ablation
measures:

======================  ===================  =======================
structure               check cost           memory
======================  ===================  =======================
flat bitmap (zpoline)   2 ops                16 TiB reserved
two-level table         3 ops (+1 load)      directory + used leaves
robin-hood set (K23)    hashed probe(s)      bounded by log size
======================  ===================  =======================
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.memory.pages import USER_VA_SIZE

#: Address-space span covered by one leaf bitmap: 32 MiB of addresses per
#: leaf keeps the directory at 4M slots (32 MiB reserved — six orders of
#: magnitude below the flat bitmap's 16 TiB) while code typically touches
#: one or two leaves.
LEAF_SPAN = 1 << 25
LEAF_BYTES = LEAF_SPAN // 8

#: Directory entries needed to cover the user address space.
DIRECTORY_ENTRIES = USER_VA_SIZE // LEAF_SPAN

#: Modelled bytes per directory slot (one pointer).
DIRECTORY_SLOT_BYTES = 8


class TwoLevelTable:
    """Directory-of-leaf-bitmaps validity structure."""

    def __init__(self, span: int = USER_VA_SIZE):
        self.span = span
        self._leaves: Dict[int, bytearray] = {}
        self._count = 0

    @staticmethod
    def _locate(address: int):
        leaf_idx, within = divmod(address, LEAF_SPAN)
        byte_idx, bit = divmod(within, 8)
        return leaf_idx, byte_idx, bit

    def set(self, address: int) -> None:
        if not 0 <= address < self.span:
            raise ValueError(f"address {address:#x} outside table span")
        leaf_idx, byte_idx, bit = self._locate(address)
        leaf = self._leaves.get(leaf_idx)
        if leaf is None:
            leaf = self._leaves[leaf_idx] = bytearray(LEAF_BYTES)
        if not leaf[byte_idx] >> bit & 1:
            leaf[byte_idx] |= 1 << bit
            self._count += 1

    def clear(self, address: int) -> None:
        leaf_idx, byte_idx, bit = self._locate(address)
        leaf = self._leaves.get(leaf_idx)
        if leaf is not None and leaf[byte_idx] >> bit & 1:
            leaf[byte_idx] &= ~(1 << bit) & 0xFF
            self._count -= 1

    def test(self, address: int) -> bool:
        """The check: directory load, then leaf bit test (one extra
        dependent memory access vs the flat bitmap)."""
        if not 0 <= address < self.span:
            return False
        leaf_idx, byte_idx, bit = self._locate(address)
        leaf = self._leaves.get(leaf_idx)  # the extra load
        return bool(leaf and leaf[byte_idx] >> bit & 1)

    __contains__ = test

    def __len__(self) -> int:
        return self._count

    # -- footprint accounting ---------------------------------------------------

    @property
    def reserved_virtual_bytes(self) -> int:
        """Only the directory is reserved up front."""
        return (self.span // LEAF_SPAN) * DIRECTORY_SLOT_BYTES

    @property
    def resident_bytes(self) -> int:
        return (self.reserved_virtual_bytes
                + len(self._leaves) * LEAF_BYTES)
