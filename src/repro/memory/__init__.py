"""Virtual-memory substrate.

Implements the memory machinery the paper's interposers depend on:

- :mod:`repro.memory.pages` — page protection flags and constants.
- :mod:`repro.memory.pku` — Protection Keys for Userspace (PKRU semantics,
  including the crucial asymmetry that PKU blocks *data* access but not
  instruction fetch — the root of pitfall P4a).
- :mod:`repro.memory.address_space` — a paged 64-bit address space with
  ``mmap``/``mprotect``/``pkey_mprotect``, named regions (for
  ``/proc/$PID/maps``), and fault-raising access checks.
- :mod:`repro.memory.bitmap` — zpoline's whole-address-space validity bitmap
  (fast checks, large reserved footprint — P4b).
- :mod:`repro.memory.hashset` — K23's robin-hood hash set replacement
  (bounded memory, slightly slower probe — the trade-off quantified in
  Table 5).
- :mod:`repro.memory.twolevel` — the zpoline authors' proposed
  directory-of-bitmaps alternative (§4.4): small reservation, extra load.
"""

from repro.memory.pages import PAGE_SIZE, Prot, page_base, page_index
from repro.memory.pku import PKEY_DEFAULT, Pkru
from repro.memory.address_space import AddressSpace, Region
from repro.memory.bitmap import AddressBitmap
from repro.memory.hashset import RobinHoodSet
from repro.memory.twolevel import TwoLevelTable

__all__ = [
    "PAGE_SIZE",
    "Prot",
    "page_base",
    "page_index",
    "Pkru",
    "PKEY_DEFAULT",
    "AddressSpace",
    "Region",
    "AddressBitmap",
    "RobinHoodSet",
    "TwoLevelTable",
]
