"""Pure SUD interposition (and the armed-but-inactive calibration variant).

The SIGSYS path is the whole story here: every application syscall costs a
kernel entry + signal delivery + handler + sigreturn — the 15.3× of Table 5.
``interpose=False`` arms SUD but leaves the selector at ALLOW, isolating the
armed-kernel slow path ("SUD-no-interposition" in Table 5), the floor under
lazypoline's and K23's overheads.
"""

from __future__ import annotations

from repro.interposers.base import (
    Interposer,
    allocate_selector_page,
    make_injector_library,
    prepend_ld_preload,
    write_selector,
)
from repro.kernel.syscall_impl import BLOCKED
from repro.kernel.syscalls import (
    SIGSYS,
    SYSCALL_DISPATCH_FILTER_ALLOW,
    SYSCALL_DISPATCH_FILTER_BLOCK,
)

LIB_PATH = "/opt/interposers/libsud.so"


class SudInterposer(Interposer):
    """LD_PRELOAD library that arms SUD and handles SIGSYS in user space."""

    def __init__(self, kernel, hook=None, interpose: bool = True):
        super().__init__(kernel, hook)
        self.interpose = interpose
        self.name = "SUD" if interpose else "SUD-no-interposition"
        make_injector_library(kernel, LIB_PATH, "sud", self._constructor)

    def before_exec(self, process) -> None:
        prepend_ld_preload(process.env, LIB_PATH)

    # -- library constructor (runs pre-main via the loader stub) ----------------

    def _constructor(self, thread, base: int) -> None:
        process = thread.process
        selector = allocate_selector_page(self.kernel, process)
        process.interposer_state["sud_selector"] = selector
        process.dispositions.set_action(SIGSYS, self._sigsys_handler)
        for t in process.threads:
            t.sud.arm(allow_start=0, allow_len=0, selector_addr=selector)
        process.sud_armed_ever = True
        value = (SYSCALL_DISPATCH_FILTER_BLOCK if self.interpose
                 else SYSCALL_DISPATCH_FILTER_ALLOW)
        write_selector(self.kernel, process, selector, value)

    def on_fork_child(self, thread, child_pid: int) -> None:
        from repro.interposers.base import reblock_child_selector

        child = self.kernel.find_process(child_pid)
        if child is None or not self.interpose:
            return
        selector = child.interposer_state.get("sud_selector")
        if selector:
            reblock_child_selector(self.kernel, child_pid, selector,
                                   SYSCALL_DISPATCH_FILTER_BLOCK)

    # -- SIGSYS handler ------------------------------------------------------------

    def _sigsys_handler(self, sigctx) -> None:
        thread = sigctx.thread
        process = thread.process
        selector = process.interposer_state["sud_selector"]
        nr = sigctx.info["nr"]
        args = [sigctx.saved["regs"][reg] for reg in
                (7, 6, 2, 10, 8, 9)]  # rdi rsi rdx r10 r8 r9
        # Disable dispatch while the handler itself works (selector trick,
        # §2.1), forward, then re-enable before returning.
        write_selector(self.kernel, process, selector,
                       SYSCALL_DISPATCH_FILTER_ALLOW)
        result = self.run_hook(thread, nr, args, via="sud")
        if not thread._just_execed:
            write_selector(self.kernel, process, selector,
                           SYSCALL_DISPATCH_FILTER_BLOCK)
        if result is BLOCKED:
            thread._sud_restart_credit = True
            # Restart: resume at the syscall instruction itself so the call
            # re-dispatches once the thread unparks.
            sigctx.set_resume_rip(sigctx.fault_rip)
            return
        sigctx.set_return_value(result)
