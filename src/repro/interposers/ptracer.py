"""Standalone ptrace-based interposer.

Exhaustive from the very first instruction — the only commodity mechanism
with that property (§5.2) — but each syscall costs two tracee stops plus
tracer-side work, which is why Table 5-class workloads cannot run under it
permanently.  K23 reuses this machinery for its startup stage
(:mod:`repro.core.ptracer_stage`).
"""

from __future__ import annotations

from repro.interposers.base import Interposer
from repro.kernel.ptrace import Tracer


class PtraceInterposer(Interposer):
    """Attach a host-level tracer to every governed process."""

    name = "ptrace"

    def __init__(self, kernel, hook=None, disable_vdso: bool = True):
        super().__init__(kernel, hook)
        self.disable_vdso = disable_vdso
        self.tracers = {}

    def before_exec(self, process) -> None:
        tracer = Tracer(self.kernel)
        tracer.disable_vdso = self.disable_vdso
        tracer.on_syscall_entry = self._entry
        self.tracers[process.pid] = tracer
        tracer.attach(process)

    def _entry(self, stop) -> bool:
        """Syscall-entry stop: run the hook.

        The default empty hook forwards; under ptrace "forwarding" means
        letting the stopped syscall proceed, so the hook's ``forward()``
        returns a token and we translate it into "don't skip".
        """
        thread = stop.thread
        nr = stop.number
        self.record(thread.process.pid, nr, via="ptrace")

        forwarded = {"yes": False}

        def forward() -> int:
            # Under ptrace the original call proceeds in the kernel after
            # the entry stop; the result is only visible at the exit stop.
            forwarded["yes"] = True
            return 0

        verdict = self.hook(thread, nr, stop.args(), forward)
        if not forwarded["yes"]:
            # The hook swallowed the call (sandbox deny / emulation):
            # skip execution and make its return value the syscall result.
            stop.set_result(verdict if isinstance(verdict, int) else 0)
            return False
        return True

    def on_process_exit(self, process) -> None:
        tracer = self.tracers.pop(process.pid, None)
        if tracer is not None and not tracer.detached:
            tracer.detach()
