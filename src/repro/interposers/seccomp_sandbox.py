"""A kernel-level seccomp sandbox — the expressiveness baseline.

§1 frames the trade-off: seccomp "either incurs comparable performance
overheads or restricts the interposer's expressiveness — such as lacking
support for deep inspection of pointer arguments — depending on how it is
configured."  This interposer is the cheap-but-shallow end of that line: a
pure in-kernel filter (no SIGSYS handler at all) that judges system calls
on **numbers and raw argument values only**.

Contrast with :class:`repro.interposers.hooks.SandboxHook` on any
in-process interposer, which can dereference the pointer arguments (read
the path being opened, the buffer being written) before deciding.  The test
suite demonstrates the gap concretely: a path-based policy is expressible
as a hook but *not* as a seccomp filter.

Costs: one filter evaluation per syscall, no signal traffic — the fastest
possible enforcement, and the least it can know.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.interposers.base import Interposer
from repro.kernel.seccomp import Action, FilterProgram, Verdict
from repro.kernel.syscalls import Errno


class SeccompSandbox(Interposer):
    """Install a deny-by-number filter into every governed process.

    Unlike the LD_PRELOAD interposers this needs no library injection at
    all: the filter is installed before the first instruction (so it also
    covers the loader's startup syscalls) and cannot be removed from user
    space — seccomp filters are one-way.  What it *cannot* do is look
    through pointers: ``deny`` is a set of syscall numbers, optionally
    refined by :meth:`refine` predicates over raw argument values.
    """

    name = "seccomp-sandbox"

    def __init__(self, kernel, deny: Iterable[int] = (),
                 errno: int = Errno.EPERM):
        super().__init__(kernel)
        self.deny = frozenset(int(nr) for nr in deny)
        self.errno = errno
        self._refinements = []
        #: (pid, nr, args) of calls the filter rejected.
        self.denied = []

    def refine(self, nr: int, predicate) -> "SeccompSandbox":
        """Deny *nr* only when ``predicate(args)`` holds (args are raw
        integer values — the full extent of seccomp's visibility)."""
        self._refinements.append((int(nr), predicate))
        return self

    def _program(self, process) -> FilterProgram:
        def program(nr: int, args: Sequence[int]) -> Verdict:
            if nr in self.deny:
                self.denied.append((process.pid, nr, tuple(args)))
                return Verdict(Action.ERRNO, self.errno)
            for target, predicate in self._refinements:
                if nr == target and predicate(args):
                    self.denied.append((process.pid, nr, tuple(args)))
                    return Verdict(Action.ERRNO, self.errno)
            return Verdict(Action.ALLOW)

        return program

    def before_exec(self, process) -> None:
        process.seccomp.install(self._program(process))
