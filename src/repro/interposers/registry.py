"""Declarative mechanism registry — the evaluated configurations.

Every interposition mechanism the evaluation (§6.2) exercises is described
by a :class:`MechanismSpec` and registered, in Table 5 order, with the
module-level :data:`REGISTRY`.  Construction sites (the evaluation runner,
the benchmarks, the CLI tools, the examples) go through
:meth:`MechanismRegistry.create` instead of hard-coding class names, so new
mechanisms — an Arm variant riding on :mod:`repro.arch.arm64`, a seccomp
tracer, an eBPF sketch — plug in with one ``register`` call and immediately
appear in every table, figure, and tool.

Specs are metadata-rich on purpose: they carry the factory (as a lazy
``"module:attr"`` reference, so registering K23 does not import
:mod:`repro.core` at import time), the Table 4 variant name, whether the
mechanism needs the K23 offline phase, whether it arms Syscall User
Dispatch, and — crucially for the memoized evaluation pipeline
(:mod:`repro.evaluation.cache`) — the set of cycle-model events its
steady-state path exercises.  That event set is what lets the result cache
invalidate *exactly* the cells a cycle-constant change affects.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.interposers.base import Interposer, SyscallHook

#: Cycle-model events every mechanism's measurement depends on, regardless
#: of design (baseline execution, kernel entry, scheduling, loading).
BASELINE_EVENTS: Tuple[str, ...] = (
    "INSTRUCTION",
    "KERNEL_SYSCALL",
    "KERNEL_SYSCALL_WORK",
    "CONTEXT_SWITCH",
    "DLOPEN",
)


class UnknownMechanismError(ValueError):
    """Raised for a name the registry has never seen; lists valid names."""

    def __init__(self, name: str, valid: Tuple[str, ...]):
        super().__init__(
            f"unknown mechanism {name!r}; valid mechanisms: "
            + ", ".join(valid))
        self.name = name
        self.valid = valid


@dataclass(frozen=True)
class MechanismSpec:
    """One evaluated mechanism configuration.

    Attributes:
        name: identifier as printed in Tables 4/5/6 (e.g. ``"K23-ultra"``).
        factory: lazy ``"module:attr"`` reference to the interposer class
            (or any callable accepting ``(kernel, hook=..., **kwargs)``).
        kwargs: extra keyword arguments the factory is called with
            (``variant=...``, ``interpose=...``).
        family: mechanism family (``"zpoline"``, ``"K23"``, ``"SUD"``, ...).
        variant: Table 4 variant name within the family, if any.
        needs_offline: True when the mechanism requires K23's offline logs
            to be imported before install.
        arms_sud: True when the mechanism initializes Syscall User Dispatch
            (and therefore pays the armed slow path and, multi-threaded,
            the signal-contention model).
        cost_events: names of :class:`repro.cpu.cycles.Event` members whose
            calibrated costs this mechanism's measured path depends on,
            beyond :data:`BASELINE_EVENTS`.
        description: one line for ``--list`` style output.
    """

    name: str
    factory: str
    kwargs: Tuple[Tuple[str, object], ...] = ()
    family: str = ""
    variant: Optional[str] = None
    needs_offline: bool = False
    arms_sud: bool = False
    cost_events: Tuple[str, ...] = ()
    description: str = ""

    def resolve_factory(self) -> Callable[..., Interposer]:
        module_name, _, attr = self.factory.partition(":")
        module = importlib.import_module(module_name)
        return getattr(module, attr)

    @property
    def relevant_events(self) -> Tuple[str, ...]:
        """Baseline events plus this mechanism's own, deduplicated,
        in :class:`Event` declaration order (stable for cache keys)."""
        wanted = set(BASELINE_EVENTS) | set(self.cost_events)
        from repro.cpu.cycles import Event

        return tuple(event.name for event in Event if event.name in wanted)


class MechanismRegistry:
    """Ordered name → :class:`MechanismSpec` mapping with construction."""

    def __init__(self) -> None:
        self._specs: Dict[str, MechanismSpec] = {}

    # -- registration ---------------------------------------------------------

    def register(self, spec: MechanismSpec, replace: bool = False) -> MechanismSpec:
        if spec.name in self._specs and not replace:
            raise ValueError(f"mechanism {spec.name!r} already registered")
        existing = spec.name in self._specs
        if existing and replace:
            # Preserve evaluation order on re-registration.
            items = [(name, (spec if name == spec.name else value))
                     for name, value in self._specs.items()]
            self._specs = dict(items)
        else:
            self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> None:
        self._specs.pop(name, None)

    # -- lookup ---------------------------------------------------------------

    def get(self, name: str) -> MechanismSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise UnknownMechanismError(name, self.names()) from None

    def names(self) -> Tuple[str, ...]:
        """Registration (= Table 5 evaluation) order."""
        return tuple(self._specs)

    def canonical(self, name: str) -> str:
        """Resolve *name* case-insensitively to its registered spelling.

        Table names are mixed-case (``"K23-ultra"``, ``"SUD"``) but CLI
        users type lowercase; ``canonical("k23-ultra")`` returns
        ``"K23-ultra"``.  Unknown names raise
        :class:`UnknownMechanismError` naming every valid mechanism.
        """
        if name in self._specs:
            return name
        lowered = name.lower()
        for registered in self._specs:
            if registered.lower() == lowered:
                return registered
        raise UnknownMechanismError(name, self.names())

    def specs(self) -> Tuple[MechanismSpec, ...]:
        return tuple(self._specs.values())

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[MechanismSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def needs_offline(self, name: str) -> bool:
        return self.get(name).needs_offline

    # -- construction ---------------------------------------------------------

    def create(self, name: str, kernel, hook: Optional[SyscallHook] = None,
               install: bool = True) -> Interposer:
        """Instantiate mechanism *name* on *kernel*.

        With *install* (the default) the interposer governs subsequently
        spawned processes, mirroring how each real mechanism injects
        itself.  Unknown names raise :class:`UnknownMechanismError` naming
        every valid mechanism.
        """
        spec = self.get(name)
        factory = spec.resolve_factory()
        interposer = factory(kernel, hook=hook, **dict(spec.kwargs))
        return interposer.install() if install else interposer

    def describe(self) -> str:
        """Human-readable catalogue (for CLI ``--list`` output)."""
        lines = []
        for spec in self:
            flags = []
            if spec.needs_offline:
                flags.append("offline-phase")
            if spec.arms_sud:
                flags.append("SUD-armed")
            suffix = f"  [{', '.join(flags)}]" if flags else ""
            lines.append(f"{spec.name:<22} {spec.description}{suffix}")
        return "\n".join(lines)


#: The process-wide registry, pre-populated with the paper's comparison set.
REGISTRY = MechanismRegistry()


_SUD_ENTRY_EVENTS = ("SUD_ARMED_SLOWPATH", "SUD_SELECTOR_WRITE")
_SIGNAL_EVENTS = ("SIGNAL_DELIVERY", "SIGRETURN")
_REWRITE_EVENTS = ("REWRITE_SITE", "MPROTECT", "ICACHE_FLUSH",
                   "TRAMPOLINE_SLED")


def _register_defaults() -> None:
    register = REGISTRY.register
    register(MechanismSpec(
        name="native",
        factory="repro.interposers.null_interposer:NullInterposer",
        family="native",
        description="no interposition — the baseline every table divides by"))
    register(MechanismSpec(
        name="zpoline-default",
        factory="repro.interposers.zpoline:ZpolineInterposer",
        kwargs=(("variant", "default"),),
        family="zpoline", variant="default",
        cost_events=_REWRITE_EVENTS + ("ZPOLINE_HANDLER",),
        description="load-time static rewriting, no hardening"))
    register(MechanismSpec(
        name="zpoline-ultra",
        factory="repro.interposers.zpoline:ZpolineInterposer",
        kwargs=(("variant", "ultra"),),
        family="zpoline", variant="ultra",
        cost_events=_REWRITE_EVENTS + ("ZPOLINE_HANDLER", "BITMAP_CHECK"),
        description="zpoline plus the bitmap NULL-execution check"))
    register(MechanismSpec(
        name="lazypoline",
        factory="repro.interposers.lazypoline:LazypolineInterposer",
        family="lazypoline", arms_sud=True,
        cost_events=(_REWRITE_EVENTS + _SUD_ENTRY_EVENTS + _SIGNAL_EVENTS
                     + ("LAZYPOLINE_HANDLER",)),
        description="SUD-discovery runtime rewriting"))
    register(MechanismSpec(
        name="K23-default",
        factory="repro.core.k23:K23Interposer",
        kwargs=(("variant", "default"),),
        family="K23", variant="default", needs_offline=True, arms_sud=True,
        cost_events=(_REWRITE_EVENTS + _SUD_ENTRY_EVENTS + _SIGNAL_EVENTS
                     + ("K23_HANDLER", "PTRACE_STOP", "PTRACE_TRACER_WORK")),
        description="offline-validated selective rewrite + SUD fallback"))
    register(MechanismSpec(
        name="K23-ultra",
        factory="repro.core.k23:K23Interposer",
        kwargs=(("variant", "ultra"),),
        family="K23", variant="ultra", needs_offline=True, arms_sud=True,
        cost_events=(_REWRITE_EVENTS + _SUD_ENTRY_EVENTS + _SIGNAL_EVENTS
                     + ("K23_HANDLER", "PTRACE_STOP", "PTRACE_TRACER_WORK",
                        "HASHSET_CHECK")),
        description="K23 plus the hash-set NULL-execution check"))
    register(MechanismSpec(
        name="K23-ultra+",
        factory="repro.core.k23:K23Interposer",
        kwargs=(("variant", "ultra+"),),
        family="K23", variant="ultra+", needs_offline=True, arms_sud=True,
        cost_events=(_REWRITE_EVENTS + _SUD_ENTRY_EVENTS + _SIGNAL_EVENTS
                     + ("K23_HANDLER", "PTRACE_STOP", "PTRACE_TRACER_WORK",
                        "HASHSET_CHECK", "STACK_SWITCH")),
        description="K23-ultra plus the dedicated-stack switch"))
    register(MechanismSpec(
        name="SUD-no-interposition",
        factory="repro.interposers.sud_interposer:SudInterposer",
        kwargs=(("interpose", False),),
        family="SUD", variant="no-interposition", arms_sud=True,
        cost_events=_SUD_ENTRY_EVENTS,
        description="SUD armed with an ALLOW selector — the slow-path floor"))
    register(MechanismSpec(
        name="SUD",
        factory="repro.interposers.sud_interposer:SudInterposer",
        kwargs=(("interpose", True),),
        family="SUD", variant=None, arms_sud=True,
        cost_events=_SUD_ENTRY_EVENTS + _SIGNAL_EVENTS,
        description="pure SUD interposition via SIGSYS"))


_register_defaults()
