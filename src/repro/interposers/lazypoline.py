"""lazypoline: SUD-discovery runtime rewriting (Jacobs et al., DSN'24).

Mechanism (faithful to §2.2.2): the LD_PRELOAD constructor installs the
trampoline at address 0 and arms SUD.  The *first* execution of each
``syscall``/``sysenter`` site raises SIGSYS; the handler emulates the call
and rewrites the site to ``callq *%rax`` so subsequent executions take the
binary-rewritten fast path.  No static disassembly is needed (P3a ✓) and
dynamically generated/loaded code is covered (P2a ✓).

Faithful flaws (the paper's §4.5 analysis of the open-source prototype):

- **non-atomic patching** — the two replacement bytes are stored
  separately; a thread executing the site between the stores fetches a torn
  encoding (``FF 05 …``) and faults or misexecutes;
- **no cross-core coherence** — no instruction-stream invalidation is
  performed on other cores, so they may keep executing the stale decode;
- **permission-restore assumptions** — pages are unconditionally flipped to
  rwx and "restored" to r-x, clobbering whatever protection (e.g. XOM) the
  page really had;
- **P3b** — the handler rewrites whatever address faulted: redirect control
  flow into data bytes that decode as ``syscall`` and lazypoline happily
  patches your data;
- **P1b** — a ``prctl(PR_SYS_DISPATCH_OFF)`` is forwarded verbatim,
  silently disarming discovery for every not-yet-rewritten site;
- **P4a** — no NULL-execution check at the trampoline entry.
"""

from __future__ import annotations

from repro.cpu.cycles import Event
from repro.interposers.base import (
    Interposer,
    allocate_selector_page,
    finish_trampoline_call,
    install_trampoline,
    make_injector_library,
    prepend_ld_preload,
    read_return_address,
    restart_from_trampoline,
    write_selector,
)
from repro.kernel.syscall_impl import BLOCKED
from repro.kernel.syscalls import (
    SIGSYS,
    SYSCALL_DISPATCH_FILTER_ALLOW,
    SYSCALL_DISPATCH_FILTER_BLOCK,
)
from repro.memory.pages import PAGE_SIZE, Prot, page_base, round_up_pages

LIB_PATH = "/opt/interposers/liblazypoline.so"


class LazypolineInterposer(Interposer):
    """SUD-discovery rewriting with the upstream prototype's flaws."""

    name = "lazypoline"

    def __init__(self, kernel, hook=None):
        super().__init__(kernel, hook)
        self._entry_idx = kernel.hostcalls.register(self._trampoline_entry,
                                                    "lazypoline.entry")
        make_injector_library(kernel, LIB_PATH, "lazypoline",
                              self._constructor)

    def before_exec(self, process) -> None:
        prepend_ld_preload(process.env, LIB_PATH)

    # -- constructor -----------------------------------------------------------

    def _constructor(self, thread, base: int) -> None:
        process = thread.process
        install_trampoline(self.kernel, process, self._entry_idx, xom=True)
        selector = allocate_selector_page(self.kernel, process)
        process.interposer_state["lazypoline"] = {
            "selector": selector,
            "rewritten": [],
        }
        process.dispositions.set_action(SIGSYS, self._sigsys_handler)
        for t in process.threads:
            t.sud.arm(allow_start=0, allow_len=0, selector_addr=selector)
        process.sud_armed_ever = True
        write_selector(self.kernel, process, selector,
                       SYSCALL_DISPATCH_FILTER_BLOCK)

    def on_fork_child(self, thread, child_pid: int) -> None:
        from repro.interposers.base import reblock_child_selector

        child = self.kernel.find_process(child_pid)
        if child is None:
            return
        state = child.interposer_state.get("lazypoline")
        if state and state.get("selector"):
            reblock_child_selector(self.kernel, child_pid,
                                   state["selector"],
                                   SYSCALL_DISPATCH_FILTER_BLOCK)

    # -- the flawed runtime rewrite (P5 / P3b) -----------------------------------

    def _rewrite_lazily(self, thread, site: int) -> None:
        """Patch *site* to ``callq *%rax`` the way the prototype does."""
        kernel = self.kernel
        process = thread.process
        space = process.address_space
        start = page_base(site)
        span = round_up_pages((site + 2) - start)
        # Flaw: permissions are not saved — the page is assumed to have been
        # r-x and is unconditionally "restored" to r-x afterwards.
        kernel.cycles.charge(Event.MPROTECT)
        space.mprotect(start, span, Prot.READ | Prot.WRITE | Prot.EXEC)
        # Flaw: the two bytes are stored separately (non-atomic).  Another
        # thread scheduled between the stores can fetch a torn instruction.
        space.write_kernel(site, b"\xff")
        thread.icache.invalidate_range(site, 2)  # local coherence only
        kernel.preemption_window(thread)
        space.write_kernel(site + 1, b"\xd0")
        thread.icache.invalidate_range(site, 2)
        # Flaw: no cross-core instruction-stream invalidation here — other
        # threads' icaches keep whatever they had.
        kernel.cycles.charge(Event.MPROTECT)
        space.mprotect(start, span, Prot.READ | Prot.EXEC)
        kernel.cycles.charge(Event.REWRITE_SITE)
        process.interposer_state["lazypoline"]["rewritten"].append(site)
        if kernel.bus.enabled:
            from repro.observability.events import RewriteApplied

            kernel.bus.emit(RewriteApplied(ts=kernel.cycles.cycles,
                                           pid=process.pid, tid=thread.tid,
                                           site=site, protocol="lazy-unsafe",
                                           atomic=False, coherent=False))

    # -- SIGSYS discovery handler ---------------------------------------------------

    def _sigsys_handler(self, sigctx) -> None:
        thread = sigctx.thread
        process = thread.process
        state = process.interposer_state["lazypoline"]
        selector = state["selector"]
        nr = sigctx.info["nr"]
        args = [sigctx.saved["regs"][reg] for reg in (7, 6, 2, 10, 8, 9)]
        site = sigctx.fault_rip

        write_selector(self.kernel, process, selector,
                       SYSCALL_DISPATCH_FILTER_ALLOW)
        # Rewrite first (P3b: whatever RIP pointed at gets patched), then
        # emulate the intercepted call.
        self._rewrite_lazily(thread, site)
        result = self.run_hook(thread, nr, args, via="sud")
        if not thread._just_execed:
            write_selector(self.kernel, process, selector,
                           SYSCALL_DISPATCH_FILTER_BLOCK)
        if result is BLOCKED:
            thread._sud_restart_credit = True
            sigctx.set_resume_rip(site)
            return
        sigctx.set_return_value(result)

    # -- trampoline fast path ----------------------------------------------------------

    def _trampoline_entry(self, thread) -> None:
        kernel = self.kernel
        kernel.cycles.charge(Event.TRAMPOLINE_SLED)
        kernel.cycles.charge(Event.LAZYPOLINE_HANDLER)
        state = thread.process.interposer_state.get("lazypoline")
        nr = thread.context.syscall_number
        args = thread.context.syscall_args()
        # No NULL-execution check (P4a): whatever reached the sled is
        # treated as a legitimate rewritten site.
        selector = state["selector"] if state else None
        if selector is not None:
            write_selector(kernel, thread.process, selector,
                           SYSCALL_DISPATCH_FILTER_ALLOW)
        result = self.run_hook(thread, nr, args, via="rewrite")
        if selector is not None and not thread._just_execed:
            write_selector(kernel, thread.process, selector,
                           SYSCALL_DISPATCH_FILTER_BLOCK)
        if result is BLOCKED:
            restart_from_trampoline(thread)
            return
        finish_trampoline_call(thread, result)
