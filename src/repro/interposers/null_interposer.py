"""The native baseline: no interposition at all."""

from __future__ import annotations

from repro.interposers.base import Interposer


class NullInterposer(Interposer):
    """Native execution — the denominator of every overhead figure."""

    name = "native"
