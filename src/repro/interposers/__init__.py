"""System call interposers — the paper's comparison set.

Each interposer governs processes spawned while installed on the kernel
(``kernel.interposer = <instance>``), injecting itself the same way its
native counterpart does (``LD_PRELOAD`` constructor, SUD arming, ptrace
attach).  All expose the same surface:

- ``hook`` — the interposition function.  The default mirrors the paper's
  evaluation methodology: an empty hook that forwards the original call and
  returns its result (§6.2).
- ``handled`` — per-pid log of application syscalls the interposer actually
  saw, compared against kernel ground truth by the exhaustiveness
  experiments.

Members:

- :class:`repro.interposers.null_interposer.NullInterposer` — native baseline.
- :class:`repro.interposers.sud_interposer.SudInterposer` — pure SUD
  (and the selector-ALLOW "no-interposition" variant isolating the armed
  slow path).
- :class:`repro.interposers.ptracer.PtraceInterposer` — ptrace from first
  instruction.
- :class:`repro.interposers.zpoline.ZpolineInterposer` — load-time static
  rewriting (``-default`` / ``-ultra``), with its genuine pitfalls.
- :class:`repro.interposers.lazypoline.LazypolineInterposer` — SUD-discovery
  runtime rewriting, with its genuine pitfalls.
"""

from repro.interposers.base import EMPTY_HOOK, Interposer, SyscallHook
from repro.interposers.registry import (
    REGISTRY,
    MechanismRegistry,
    MechanismSpec,
    UnknownMechanismError,
)
from repro.interposers.hooks import (
    CountingHook,
    RedirectHook,
    SandboxHook,
    TracingHook,
    chain,
)
from repro.interposers.null_interposer import NullInterposer
from repro.interposers.sud_interposer import SudInterposer
from repro.interposers.ptracer import PtraceInterposer
from repro.interposers.zpoline import ZpolineInterposer
from repro.interposers.lazypoline import LazypolineInterposer
from repro.interposers.seccomp_sandbox import SeccompSandbox

__all__ = [
    "EMPTY_HOOK",
    "Interposer",
    "SyscallHook",
    "REGISTRY",
    "MechanismRegistry",
    "MechanismSpec",
    "UnknownMechanismError",
    "NullInterposer",
    "SudInterposer",
    "PtraceInterposer",
    "ZpolineInterposer",
    "LazypolineInterposer",
    "SeccompSandbox",
    "TracingHook",
    "CountingHook",
    "SandboxHook",
    "RedirectHook",
    "chain",
]
