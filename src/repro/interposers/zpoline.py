"""zpoline: load-time static rewriting (Yasukata et al., ATC'23).

Mechanism (faithful to §2.2.1):

- the LD_PRELOAD constructor installs the trampoline at address 0, then
  disassembles every executable region present *at that moment* with a
  linear sweep and rewrites each discovered ``syscall``/``sysenter`` to
  ``callq *%rax``;
- page permissions are saved before patching and restored afterwards, the
  2-byte store is atomic, and every core's instruction stream is
  invalidated — zpoline does runtime rewriting *once*, safely (P5 ✓);
- ``-ultra`` additionally validates, at the trampoline entry, that the
  return address points just past a known rewritten site, using the
  address-space-sized bitmap (P4a ✓, at P4b's memory cost).

Faithful pitfalls:

- **P1a** — injection rides on LD_PRELOAD alone; an empty-env ``execve``
  silently sheds it.
- **P2a** — the sweep desyncs on embedded data (missing real sites) and
  never sees code generated or dlopen'd later.
- **P2b** — nothing before the constructor runs is interposed; vDSO calls
  never surface.
- **P3a** — a desynced sweep can "find" syscall bytes inside data or other
  instructions and rewrite them, corrupting the program.
"""

from __future__ import annotations

import struct
from typing import List

from repro.arch.disassembler import find_syscall_sites_linear
from repro.cpu.cycles import Event
from repro.errors import InterposerAbort
from repro.interposers.base import (
    Interposer,
    finish_trampoline_call,
    install_trampoline,
    make_injector_library,
    prepend_ld_preload,
    read_return_address,
    restart_from_trampoline,
)
from repro.kernel.syscall_impl import BLOCKED
from repro.memory.bitmap import AddressBitmap
from repro.memory.pages import PAGE_SIZE, Prot, page_base, round_up_pages

LIB_PATH = "/opt/interposers/libzpoline.so"

CALL_RAX = b"\xff\xd0"


def rewrite_site_safely(kernel, process, address: int) -> None:
    """The correct cross-modifying-code protocol (what zpoline and K23 do,
    and lazypoline does not): save page permissions, make the page
    writable, store both bytes in one shot, restore the *saved*
    permissions, and invalidate every core's instruction stream."""
    space = process.address_space
    saved_prot = space.prot_at(address)
    saved_prot_next = space.prot_at(address + 1)
    start = page_base(address)
    span = round_up_pages((address + 2) - start)
    kernel.cycles.charge(Event.MPROTECT)
    space.mprotect(start, span, Prot.READ | Prot.WRITE | Prot.EXEC)
    space.write_kernel(address, CALL_RAX)  # single atomic 2-byte store
    kernel.cycles.charge(Event.MPROTECT)
    space.mprotect(start, PAGE_SIZE, saved_prot)
    if span > PAGE_SIZE:
        space.mprotect(start + PAGE_SIZE, span - PAGE_SIZE, saved_prot_next)
    kernel.cycles.charge(Event.ICACHE_FLUSH)
    for thread in process.threads:
        thread.icache.invalidate_range(address, 2)
    kernel.cycles.charge(Event.REWRITE_SITE)
    if kernel.bus.enabled:
        from repro.observability.events import RewriteApplied

        kernel.bus.emit(RewriteApplied(ts=kernel.cycles.cycles,
                                       pid=process.pid, tid=0, site=address,
                                       protocol="static-safe", atomic=True,
                                       coherent=True))


class ZpolineInterposer(Interposer):
    """zpoline-default / zpoline-ultra."""

    def __init__(self, kernel, hook=None, variant: str = "default"):
        super().__init__(kernel, hook)
        if variant not in ("default", "ultra"):
            raise ValueError(f"unknown zpoline variant {variant!r}")
        self.variant = variant
        self.name = f"zpoline-{variant}"
        self._entry_idx = kernel.hostcalls.register(self._trampoline_entry,
                                                    "zpoline.entry")
        make_injector_library(kernel, LIB_PATH, "zpoline", self._constructor)

    def before_exec(self, process) -> None:
        prepend_ld_preload(process.env, LIB_PATH)

    # -- constructor: trampoline + one-shot static rewrite ----------------------

    def _constructor(self, thread, base: int) -> None:
        process = thread.process
        install_trampoline(self.kernel, process, self._entry_idx, xom=True)
        state = {
            "rewritten": [],
            "bitmap": AddressBitmap() if self.variant == "ultra" else None,
        }
        process.interposer_state["zpoline"] = state
        for region_base, region_len, region_name in self._scan_targets(process):
            code = process.address_space.read_kernel(region_base, region_len)
            for offset in find_syscall_sites_linear(code):
                site = region_base + offset
                rewrite_site_safely(self.kernel, process, site)
                state["rewritten"].append(site)
                if state["bitmap"] is not None:
                    state["bitmap"].set(site)

    def _scan_targets(self, process) -> List[tuple]:
        """Maximal executable page runs present at load time, excluding the
        trampoline itself and the interposer's own library.

        Scanning is page-granular: the data pages of an image are rw- and
        therefore skipped, exactly like a real rewriter walking PT_LOAD
        segments by their protection.
        """
        targets = []
        space = process.address_space
        for region in space.regions:
            if region.name in ("[trampoline]", LIB_PATH, "[vdso]"):
                continue
            run_start = None
            addr = region.start
            while addr <= region.end:
                executable = (addr < region.end
                              and space.prot_at(addr) & Prot.EXEC)
                if executable and run_start is None:
                    run_start = addr
                elif not executable and run_start is not None:
                    targets.append((run_start, addr - run_start, region.name))
                    run_start = None
                addr += PAGE_SIZE
        return targets

    # -- trampoline entry ------------------------------------------------------------

    def _trampoline_entry(self, thread) -> None:
        kernel = self.kernel
        kernel.cycles.charge(Event.TRAMPOLINE_SLED)
        kernel.cycles.charge(Event.ZPOLINE_HANDLER)
        state = thread.process.interposer_state.get("zpoline")
        return_addr = read_return_address(thread)
        site = return_addr - 2
        if state and state["bitmap"] is not None:
            kernel.cycles.charge(Event.BITMAP_CHECK)
            if not state["bitmap"].test(site):
                raise InterposerAbort(
                    f"zpoline-ultra: trampoline entered from unknown site "
                    f"{site:#x} (NULL-execution check)")
        nr = thread.context.syscall_number
        args = thread.context.syscall_args()
        result = self.run_hook(thread, nr, args, via="rewrite")
        if result is BLOCKED:
            restart_from_trampoline(thread)
            return
        finish_trampoline_call(thread, result)
