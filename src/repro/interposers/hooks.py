"""Reusable interposition functions (hooks).

The paper's use-case catalogue (§1) spans tracing, sandboxing, reliability,
and emulation; all of them are *hooks* over the same interposer substrate.
This module ships composable, production-shaped implementations of the
common ones, usable with any interposer in this package::

    from repro.interposers.hooks import TracingHook, SandboxHook, chain
    k23 = K23Interposer(kernel, hook=chain(TracingHook(), SandboxHook(...)))

Every hook follows the standard signature
``hook(thread, nr, args, forward) -> result`` and must return either the
forwarded result or its own (negative-errno) verdict.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.kernel.syscall_impl import BLOCKED
from repro.kernel.syscalls import Errno, Nr


def chain(*hooks):
    """Compose hooks left-to-right: each sees the next as its ``forward``.

    The leftmost hook runs first; a hook that declines to call its forward
    short-circuits the rest (sandbox-deny semantics).
    """
    if not hooks:
        raise ValueError("chain() needs at least one hook")

    def composed(thread, nr, args, forward):
        def run(index: int):
            if index == len(hooks):
                return forward()
            return hooks[index](thread, nr, args, lambda: run(index + 1))

        return run(0)

    return composed


class TracingHook:
    """strace-style recording: (pid, name, args, result) tuples.

    A thin adapter over the instrumentation bus: pass ``bus`` (usually
    ``kernel.bus``) and every observed call is also published as a
    :class:`~repro.observability.events.HookObserved` event, so trace
    sinks see application syscalls alongside kernel-side spans."""

    def __init__(self, capture_args: int = 3, bus=None):
        self.capture_args = capture_args
        self.bus = bus
        self.events: List[Tuple[int, str, Tuple[int, ...], int]] = []

    def __call__(self, thread, nr, args, forward):
        result = forward()
        if result is not BLOCKED:
            self.events.append((thread.process.pid, Nr.name_of(nr),
                                tuple(args[: self.capture_args]), result))
            bus = self.bus
            if bus is not None and bus.enabled:
                from repro.observability.events import HookObserved

                bus.emit(HookObserved(
                    ts=thread.process.kernel.cycles.cycles,
                    pid=thread.process.pid, tid=thread.tid, nr=nr,
                    hook="tracing",
                    result=result if isinstance(result, int) else None))
        return result

    def formatted(self) -> List[str]:
        return [f"[{pid}] {name}({', '.join(f'{a:#x}' for a in args)})"
                f" = {result}"
                for pid, name, args, result in self.events]


class CountingHook:
    """Per-syscall histogram (the `strace -c` summary).

    Like :class:`TracingHook`, optionally a bus adapter: with ``bus``
    set, each counted call is published as ``HookObserved``."""

    def __init__(self, bus=None):
        self.counts: Dict[int, int] = collections.Counter()
        self.bus = bus

    def __call__(self, thread, nr, args, forward):
        result = forward()
        if result is not BLOCKED:
            self.counts[nr] += 1
            bus = self.bus
            if bus is not None and bus.enabled:
                from repro.observability.events import HookObserved

                bus.emit(HookObserved(
                    ts=thread.process.kernel.cycles.cycles,
                    pid=thread.process.pid, tid=thread.tid, nr=nr,
                    hook="counting",
                    result=result if isinstance(result, int) else None))
        return result

    def summary(self) -> str:
        total = sum(self.counts.values())
        lines = [f"{'calls':>8}  syscall", f"{'-' * 8}  {'-' * 20}"]
        for nr, count in sorted(self.counts.items(),
                                key=lambda item: -item[1]):
            lines.append(f"{count:>8}  {Nr.name_of(nr)}")
        lines.append(f"{total:>8}  total")
        return "\n".join(lines)


class SandboxHook:
    """Allowlist/denylist filtering with a configurable verdict errno."""

    def __init__(self, deny: Iterable[int] = (),
                 allow_only: Optional[Iterable[int]] = None,
                 errno: int = Errno.EPERM,
                 kill_on_violation: bool = False):
        self.deny = frozenset(int(nr) for nr in deny)
        self.allow_only = (None if allow_only is None
                           else frozenset(int(nr) for nr in allow_only))
        self.errno = errno
        self.kill_on_violation = kill_on_violation
        self.violations: List[Tuple[int, int]] = []

    def _blocked(self, nr: int) -> bool:
        if nr in self.deny:
            return True
        if self.allow_only is not None and nr not in self.allow_only:
            return True
        return False

    def __call__(self, thread, nr, args, forward):
        if self._blocked(nr):
            self.violations.append((thread.process.pid, nr))
            if self.kill_on_violation:
                from repro.errors import InterposerAbort

                raise InterposerAbort(
                    f"sandbox violation: {Nr.name_of(nr)}")
            return -self.errno
        return forward()


class RedirectHook:
    """Path-redirection (the OS-emulation / compatibility-layer idiom):
    rewrites the path argument of ``openat`` in place before forwarding."""

    PATH_SYSCALLS = {int(Nr.openat): 1, int(Nr.open): 0,
                     int(Nr.stat): 0, int(Nr.access): 0,
                     int(Nr.unlink): 0}

    def __init__(self, mapping: Dict[str, str]):
        self.mapping = dict(mapping)
        self.redirections: List[Tuple[str, str]] = []

    def _read_cstr(self, thread, addr: int) -> str:
        out = bytearray()
        space = thread.process.address_space
        while len(out) < 4096:
            byte = space.read_kernel(addr + len(out), 1)
            if byte == b"\x00":
                break
            out += byte
        return out.decode("latin-1")

    def __call__(self, thread, nr, args, forward):
        arg_index = self.PATH_SYSCALLS.get(nr)
        if arg_index is not None and args[arg_index]:
            original = self._read_cstr(thread, args[arg_index])
            target = self.mapping.get(original)
            if target is not None:
                if len(target) > len(original):
                    # In-place rewrite only (no tracee allocation): the
                    # mapping must not grow the string.
                    raise ValueError(
                        f"redirect target longer than source: {original!r}")
                thread.process.address_space.write_kernel(
                    args[arg_index], target.encode() + b"\x00")
                self.redirections.append((original, target))
        return forward()


@dataclass
class LatencyHook:
    """Fault-injection for reliability testing: adds modelled latency (and
    optional spurious EINTR) to selected syscalls."""

    target_nrs: frozenset
    extra_cycles: int = 10_000
    fail_every: int = 0  # 0 = never inject a failure
    _seen: int = field(default=0, init=False)

    def __call__(self, thread, nr, args, forward):
        if nr not in self.target_nrs:
            return forward()
        self._seen += 1
        thread.process.kernel.cycles.charge_cycles(self.extra_cycles,
                                                   label="hook-latency")
        if self.fail_every and self._seen % self.fail_every == 0:
            return -Errno.EINTR
        return forward()


def latency_hook(nrs: Sequence[int], extra_cycles: int = 10_000,
                 fail_every: int = 0) -> LatencyHook:
    return LatencyHook(frozenset(int(nr) for nr in nrs),
                       extra_cycles, fail_every)
