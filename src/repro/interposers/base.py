"""Interposer framework: hooks, forwarding, and the trampoline at address 0.

The *hook* is the user-facing interposition function.  Its signature is::

    hook(thread, nr, args, forward) -> int | BLOCKED

where ``forward()`` executes the original system call (with full kernel cost
accounting) and returns its result.  The default :data:`EMPTY_HOOK` forwards
unconditionally — the paper's overhead-isolation methodology (§6.2).  Use
cases (tracing, sandboxing, emulation) supply richer hooks; see
``examples/``.

This module also owns the shared trampoline machinery: the page at virtual
address 0 holding a nop sled (landing pad for ``callq *%rax`` with RAX = the
syscall number) that slides into a HOSTCALL tail, protected as eXecute-Only
Memory via PKU — reads and writes keep faulting like a proper NULL
dereference, while execution proceeds (the asymmetry behind P4a).
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional

from repro.arch.assembler import Asm
from repro.arch.registers import Reg
from repro.kernel.syscalls import Nr as _Nr

_NR_FORK = int(_Nr.fork)
from repro.cpu.cycles import Event
from repro.kernel.syscall_impl import BLOCKED
from repro.loader.image import SimImage
from repro.memory.pages import PAGE_SIZE, Prot
from repro.memory.pku import xom_pkru_for

#: Bytes of trampoline tail code (HOSTCALL imm16 = 5, RET = 1).
TRAMPOLINE_TAIL_BYTES = 6

#: Size of the nop sled: one landing byte per interposable syscall number.
#: The sled fills the whole trampoline page up to the tail, so *any* RAX
#: value below ~PAGE_SIZE lands safely (Linux numbers stop below 512, but
#: K23's fake syscalls 1023/1024 — and any forged number — must slide into
#: the tail rather than fetch trailing garbage).  Larger values fall off
#: the page and fault, exactly as on the real systems.
SLED_SIZE = PAGE_SIZE - TRAMPOLINE_TAIL_BYTES

#: The protection key the trampoline page is tagged with.
TRAMPOLINE_PKEY = 1

#: The user-facing interposition function.  Called as
#: ``hook(thread, nr, args, forward)`` where *thread* is the trapping
#: simulated thread, *nr* the syscall number, *args* the six argument
#: registers, and *forward* a zero-argument closure that executes the
#: original call (returning its result, or ``BLOCKED`` when the call
#: parked for a restart).  The hook returns the value the application
#: sees — usually ``forward()``'s result, a substitute, or ``BLOCKED``
#: propagated unchanged.
SyscallHook = Callable[[object, int, List[int], Callable[[], int]], int]


def EMPTY_HOOK(thread, nr: int, args: List[int], forward: Callable[[], int]):
    """The paper's evaluation hook: forward and return (§6.2)."""
    return forward()


class Interposer:
    """Base class: lifecycle hooks plus per-pid accounting."""

    name = "interposer"

    def __init__(self, kernel, hook: Optional[SyscallHook] = None):
        self.kernel = kernel
        self.hook: SyscallHook = hook or EMPTY_HOOK
        #: pid → list of (nr, via) for every application syscall this
        #: interposer intercepted.  ``via`` ∈ {"sud", "rewrite", "ptrace"}.
        self.handled: Dict[int, List[tuple]] = {}

    # -- lifecycle (called by the kernel) -------------------------------------

    def install(self) -> "Interposer":
        """Make this interposer govern subsequently spawned processes."""
        self.kernel.interposer = self
        return self

    def before_exec(self, process) -> None:
        """Adjust *process* (environment, tracer) before its image loads."""

    def on_process_exit(self, process) -> None:
        """Cleanup hook."""

    # -- accounting --------------------------------------------------------------

    def record(self, pid: int, nr: int, via: str) -> None:
        self.handled.setdefault(pid, []).append((nr, via))

    def handled_count(self, pid: Optional[int] = None) -> int:
        if pid is not None:
            return len(self.handled.get(pid, []))
        return sum(len(entries) for entries in self.handled.values())

    # -- forwarding ------------------------------------------------------------------

    def forward(self, thread, nr: int, args: List[int], via: str):
        """Execute the application's original syscall; returns result or
        BLOCKED (propagated so the caller can arrange a restart)."""
        origin = "rewrite-handler" if via == "rewrite" else "sud-handler"
        # Record up front so never-returning calls (exit, execve) are still
        # accounted; roll back if the call parked for a restart.
        self.record(thread.process.pid, nr, via)
        result = self.kernel.direct_syscall(thread, nr, args, origin=origin)
        if result is BLOCKED:
            self.handled[thread.process.pid].pop()
        else:
            # The forwarded syscall really enters the kernel, which clobbers
            # RCX and R11 (the asymmetry K23's trampoline exploits, §6.2.1).
            thread.context.set(Reg.RCX, thread.context.rip)
            thread.context.set(Reg.R11, 0x202)
            if (nr == _NR_FORK and isinstance(result, int)
                    and 0 < result < (1 << 63)):
                # fork executed while the handler had dispatch disabled, so
                # the child inherited an ALLOW selector.  Real selector-based
                # interposers re-initialize in the child (atfork hooks);
                # mirror that here.
                self.on_fork_child(thread, result)
        return result

    def on_fork_child(self, thread, child_pid: int) -> None:
        """Child-side re-initialization after a forwarded fork (overridden
        by selector-based interposers)."""

    def run_hook(self, thread, nr: int, args: List[int], via: str):
        """Invoke the user hook with a forward closure; returns result or
        BLOCKED."""

        def do_forward():
            return self.forward(thread, nr, args, via)

        return self.hook(thread, nr, args, do_forward)


# ---------------------------------------------------------------- LD_PRELOAD


def prepend_ld_preload(env: Dict[str, str], lib_path: str) -> None:
    """Prepend *lib_path* to LD_PRELOAD (idempotent)."""
    existing = env.get("LD_PRELOAD", "")
    entries = [entry for entry in existing.replace(":", " ").split() if entry]
    if lib_path not in entries:
        entries.insert(0, lib_path)
    env["LD_PRELOAD"] = ":".join(entries)


def make_injector_library(kernel, lib_path: str, name: str,
                          constructor) -> SimImage:
    """Build and register a minimal LD_PRELOAD library whose constructor is
    the host-level *constructor* (the interposer's init hook)."""
    image = SimImage(name=lib_path, entry="")
    image.asm.label(f"{name}_init_marker")
    image.asm.endbr64()
    image.asm.ret()
    image.constructors.append(constructor)
    image.finalize()
    kernel.loader.register_image(image)
    return image


# ----------------------------------------------------------------- trampoline


def install_trampoline(kernel, process, entry_hostcall: int,
                       xom: bool = True) -> int:
    """Map the landing-pad trampoline at virtual address 0.

    Layout: ``SLED_SIZE`` single-byte nops, then ``HOSTCALL entry; RET``.
    ``callq *%rax`` with RAX = syscall-number lands inside the sled and
    slides into the tail.  With *xom*, the page is tagged with a dedicated
    protection key and every thread's PKRU denies data access through it —
    NULL reads/writes still fault, NULL execution does not (P4a).

    Returns the address of the tail (for tests).
    """
    asm = Asm()
    asm.nop(SLED_SIZE)
    tail = asm.offset
    asm.hostcall(entry_hostcall)
    asm.ret()
    blob = asm.assemble()

    space = process.address_space
    space.mmap(0, PAGE_SIZE, Prot.READ | Prot.WRITE, name="[trampoline]",
               fixed=True)
    space.write_kernel(0, blob)
    space.mprotect(0, PAGE_SIZE, Prot.READ | Prot.EXEC)
    if xom:
        space.pkey_mprotect(0, PAGE_SIZE, Prot.READ | Prot.EXEC,
                            pkey=TRAMPOLINE_PKEY)
        locked = xom_pkru_for(TRAMPOLINE_PKEY)
        for thread in process.threads:
            thread.context.pkru.value |= locked.value
        process.interposer_state["trampoline_pkru"] = locked.value
    process.interposer_state["trampoline_tail"] = tail
    kernel.cycles.charge(Event.MPROTECT)
    return tail


# --------------------------------------------------------- handler-side helpers


def read_return_address(thread) -> int:
    """Top of stack — where the trampoline's RET will resume (site + 2)."""
    rsp = thread.context.get(Reg.RSP)
    return struct.unpack(
        "<Q", thread.process.address_space.read_kernel(rsp, 8))[0]


def restart_from_trampoline(thread) -> None:
    """Blocked-forward restart for the rewritten path: undo the implicit
    ``call`` push and re-execute the rewritten site once unparked."""
    ctx = thread.context
    rsp = ctx.get(Reg.RSP)
    return_addr = struct.unpack(
        "<Q", thread.process.address_space.read_kernel(rsp, 8))[0]
    ctx.set(Reg.RSP, rsp + 8)
    ctx.rip = return_addr - 2


def finish_trampoline_call(thread, result: int) -> None:
    """Store the syscall result; the trampoline tail's RET resumes the app.

    No-op when the forwarded call was an ``execve`` that replaced the whole
    context — the fresh image must start untouched.
    """
    if not thread._just_execed:
        thread.context.set_syscall_result(result)


# ------------------------------------------------------------ selector machinery


def allocate_selector_page(kernel, process) -> int:
    """Map one rw page holding the SUD selector byte; returns its address.

    Real interposers place the selector in a PKU-protected data section; the
    threat model (§3) assumes that protection, so we keep it plainly
    addressable but note the assumption.
    """
    base = process.address_space.mmap(None, PAGE_SIZE,
                                      Prot.READ | Prot.WRITE,
                                      name="[sud-selector]")
    process.address_space.write_kernel(base, b"\x00")
    return base


def write_selector(kernel, process, selector_addr: int, value: int) -> None:
    """Toggle the selector byte (charged: one user-space store)."""
    kernel.cycles.charge(Event.SUD_SELECTOR_WRITE)
    process.address_space.write_kernel(selector_addr, bytes([value]))


def reblock_child_selector(kernel, child_pid: int, selector_addr: int,
                           block_value: int = 1) -> None:
    """Re-arm a fork child's inherited selector (see
    :meth:`Interposer.on_fork_child`)."""
    child = kernel.find_process(child_pid)
    if child is not None and selector_addr:
        write_selector(kernel, child, selector_addr, block_value)
