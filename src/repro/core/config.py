"""Variant catalogue (the paper's Table 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class VariantSpec:
    """One evaluated configuration.

    Attributes:
        name: variant identifier as printed in the paper.
        extra_features: features enabled beyond the default configuration.
        suited_for: deployment guidance (§6.2, Table 4 caption).
    """

    name: str
    extra_features: Tuple[str, ...]
    suited_for: str


ZPOLINE_VARIANTS: List[VariantSpec] = [
    VariantSpec("zpoline-default", (),
                "high-performance, low-overhead environments"),
    VariantSpec("zpoline-ultra", ("NULL Execution Check",),
                "security- and debugging-critical scenarios"),
]

K23_VARIANTS: List[VariantSpec] = [
    VariantSpec("K23-default", (),
                "high-performance, low-overhead environments"),
    VariantSpec("K23-ultra", ("NULL Execution Check",),
                "security- and debugging-critical scenarios"),
    VariantSpec("K23-ultra+", ("NULL Execution Check", "Stack Switch"),
                "security- and debugging-critical scenarios"),
]


def variant_table() -> str:
    """Render Table 4."""
    rows = ZPOLINE_VARIANTS + K23_VARIANTS
    lines = ["Variants          | Extra Features",
             "------------------+----------------------------------------"]
    for spec in rows:
        features = " & ".join(spec.extra_features) or "—"
        lines.append(f"{spec.name:<18}| {features}")
    return "\n".join(lines)
