"""libK23 — K23's in-process fast interposer (§5.2/§5.3, right half of
Figure 4).

The library image carries one piece of real simulated code: the fake-syscall
handoff routine (``mov rax,1023; syscall; mov rax,1024; syscall``), executed
while the ptracer is still attached so the protocol traverses the genuine
trap path.  Everything else happens in the constructor and handlers:

1. install the XOM trampoline at address 0;
2. load this program's sealed offline log, map ``(region, offset)`` pairs
   back to virtual addresses, and **validate** that each target still
   decodes as ``syscall``/``sysenter`` before touching it;
3. perform the single selective rewrite with the safe protocol
   (save/restore permissions, atomic store, cross-core invalidation) —
   P3a/P3b/P5;
4. record every rewritten site in a robin-hood hash set, bounded by the log
   size (P4b) and consulted at the trampoline entry in the ``-ultra``
   variants (P4a);
5. run the handoff, after which the ptracer detaches;
6. arm the SUD fallback: unlogged sites still trap and get interposed —
   but are **never rewritten** (P2a without reintroducing P3b);
7. guard ``prctl``: any attempt to disable dispatch aborts the process
   (P1b), and ``execve`` re-attaches a fresh ptracer before being forwarded
   so the next image restarts the whole online phase (§5.3).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.arch.decoder import decode
from repro.arch.registers import Reg
from repro.cpu.cycles import Event
from repro.errors import DecodeError, InterposerAbort, SegmentationFault
from repro.core.logs import SiteLog
from repro.interposers.base import (
    allocate_selector_page,
    finish_trampoline_call,
    install_trampoline,
    read_return_address,
    restart_from_trampoline,
    write_selector,
)
from repro.interposers.zpoline import rewrite_site_safely
from repro.kernel.syscall_impl import BLOCKED
from repro.kernel.syscalls import (
    K23_FAKE_SYSCALL_DETACH,
    K23_FAKE_SYSCALL_STATE,
    Nr,
    PR_SET_SYSCALL_USER_DISPATCH,
    PR_SYS_DISPATCH_OFF,
    SIGSYS,
    SYSCALL_DISPATCH_FILTER_ALLOW,
    SYSCALL_DISPATCH_FILTER_BLOCK,
)
from repro.loader.image import SimImage
from repro.memory.hashset import RobinHoodSet
from repro.memory.pages import PAGE_SIZE, Prot

LIB_PATH = "/opt/k23/libk23.so"


def build_libk23_image(kernel, constructor, finish_hostcall: int) -> SimImage:
    """The libK23 library image: constructor + the handoff routine."""
    image = SimImage(name=LIB_PATH, entry="")
    asm = image.asm
    asm.label("__k23_handoff")
    asm.endbr64()
    asm.mov_ri(Reg.RAX, K23_FAKE_SYSCALL_STATE)
    asm.mark("k23.fake_state")
    asm.syscall_()
    asm.mov_ri(Reg.RAX, K23_FAKE_SYSCALL_DETACH)
    asm.mark("k23.fake_detach")
    asm.syscall_()
    asm.hostcall(finish_hostcall)
    asm.ret()
    image.constructors.append(constructor)
    image.finalize()
    return image


class LibK23:
    """Per-interposer in-process component (state lives per process)."""

    def __init__(self, interposer):
        self.interposer = interposer
        self.kernel = interposer.kernel
        self._finish_idx = self.kernel.hostcalls.register(
            self._finish_init, "k23.finish_init")
        self._entry_idx = self.kernel.hostcalls.register(
            self._trampoline_entry, "k23.entry")
        self.image = build_libk23_image(self.kernel, self.constructor,
                                        self._finish_idx)
        self.kernel.loader.register_image(self.image)

    # ------------------------------------------------------------ constructor

    def constructor(self, thread, base: int) -> None:
        """libK23 init: trampoline, selective rewrite, handoff injection."""
        kernel = self.kernel
        process = thread.process
        timeline = self.interposer.timeline
        state: Dict[str, object] = {
            "base": base,
            "rewritten": [],
            "skipped_log_entries": [],
            "hashset": RobinHoodSet(),
            "from_ptracer": None,
            "handoff_token": ("k23", process.pid),
            "selector": None,
        }
        process.interposer_state["k23"] = state

        install_trampoline(kernel, process, self._entry_idx, xom=True)
        timeline.append(("libk23:trampoline", 0))

        # Single selective rewrite of pre-validated sites (§5.2 step ④).
        for site in self._resolve_logged_sites(process, state):
            rewrite_site_safely(kernel, process, site)
            state["rewritten"].append(site)
            state["hashset"].add(site)
        timeline.append(("libk23:rewrote", len(state["rewritten"])))

        # Inject the handoff call: push the stub return address, jump into
        # the library's __k23_handoff routine (real simulated code, so the
        # fake syscalls traverse the genuine trap path while traced).
        ctx = thread.context
        rsp = ctx.get(Reg.RSP) - 8
        ctx.set(Reg.RSP, rsp)
        process.address_space.write_kernel(rsp, struct.pack("<Q", ctx.rip))
        ctx.rip = base + self.image.symbol("__k23_handoff")

    def _resolve_logged_sites(self, process, state) -> List[int]:
        """Map the sealed log's (region, offset) pairs to addresses and
        validate each still decodes as a syscall instruction."""
        if not SiteLog.exists(self.kernel.vfs, process.path):
            self.interposer.timeline.append(("libk23:no-log", process.path))
            return []
        log = SiteLog.load(self.kernel.vfs, process.path)
        space = process.address_space
        bases: Dict[str, int] = {}
        for key, (base, image, ns) in process.loaded_images.items():
            if ns == 0:
                bases[image.name] = base
        sites: List[int] = []
        for region_name, offset in log:
            base = bases.get(region_name)
            if base is None:
                state["skipped_log_entries"].append(
                    (region_name, offset, "region not loaded"))
                continue
            site = base + offset
            try:
                insn = decode(space.read_kernel(site, 2), 0)
            except DecodeError:
                state["skipped_log_entries"].append(
                    (region_name, offset, "undecodable"))
                continue
            except SegmentationFault:
                state["skipped_log_entries"].append(
                    (region_name, offset, "outside mapped region"))
                continue
            if not insn.is_syscall_site:
                state["skipped_log_entries"].append(
                    (region_name, offset, "not a syscall instruction"))
                continue
            sites.append(site)
        return sites

    # ----------------------------------------------------- post-handoff init

    def _finish_init(self, thread) -> None:
        """Runs right after the detach fake-syscall: arm the SUD fallback."""
        kernel = self.kernel
        process = thread.process
        state = process.interposer_state["k23"]
        selector = allocate_selector_page(kernel, process)
        state["selector"] = selector
        process.dispositions.set_action(SIGSYS, self._sigsys_fallback)
        for t in process.threads:
            t.sud.arm(allow_start=0, allow_len=0, selector_addr=selector)
        process.sud_armed_ever = True
        write_selector(kernel, process, selector,
                       SYSCALL_DISPATCH_FILTER_BLOCK)
        self.interposer.timeline.append(
            ("libk23:sud-fallback-armed", selector))

    # ------------------------------------------------------------ dispatch core

    def _guard_and_forward(self, thread, nr: int, args: List[int], via: str):
        """Common policy: P1b prctl guard, execve re-attach, then the hook."""
        if (nr == Nr.prctl and args[0] == PR_SET_SYSCALL_USER_DISPATCH
                and args[1] == PR_SYS_DISPATCH_OFF):
            raise InterposerAbort(
                "libK23: attempt to disable Syscall User Dispatch (P1b)")
        if nr == Nr.execve:
            self.interposer.reattach_ptracer(thread.process)
        return self.interposer.run_hook(thread, nr, args, via=via)

    # -- rewritten fast path -------------------------------------------------------

    def _trampoline_entry(self, thread) -> None:
        kernel = self.kernel
        process = thread.process
        state = process.interposer_state.get("k23")
        variant = self.interposer.variant
        kernel.cycles.charge(Event.TRAMPOLINE_SLED)
        kernel.cycles.charge(Event.K23_HANDLER)
        if variant in ("ultra", "ultra+"):
            kernel.cycles.charge(Event.HASHSET_CHECK)
            site = read_return_address(thread) - 2
            if site not in state["hashset"]:
                raise InterposerAbort(
                    f"libK23: trampoline entered from unknown site "
                    f"{site:#x} (NULL-execution check)")
        if variant == "ultra+":
            kernel.cycles.charge(Event.STACK_SWITCH)
        selector = state["selector"]
        nr = thread.context.syscall_number
        args = thread.context.syscall_args()
        if selector is not None:
            write_selector(kernel, process, selector,
                           SYSCALL_DISPATCH_FILTER_ALLOW)
        result = self._guard_and_forward(thread, nr, args, via="rewrite")
        if selector is not None and not thread._just_execed:
            write_selector(kernel, process, selector,
                           SYSCALL_DISPATCH_FILTER_BLOCK)
        if result is BLOCKED:
            restart_from_trampoline(thread)
            return
        finish_trampoline_call(thread, result)

    # -- SUD fallback (P2a) ------------------------------------------------------------

    def _sigsys_fallback(self, sigctx) -> None:
        kernel = self.kernel
        thread = sigctx.thread
        process = thread.process
        state = process.interposer_state["k23"]
        selector = state["selector"]
        nr = sigctx.info["nr"]
        args = [sigctx.saved["regs"][reg] for reg in (7, 6, 2, 10, 8, 9)]
        if self.interposer.variant == "ultra+":
            kernel.cycles.charge(Event.STACK_SWITCH)
        write_selector(kernel, process, selector,
                       SYSCALL_DISPATCH_FILTER_ALLOW)
        # Unlike lazypoline: NO rewriting here — discovery-driven patching
        # is exactly what enables attack-induced misidentification (P3b).
        result = self._guard_and_forward(thread, nr, args, via="sud")
        if not thread._just_execed:
            write_selector(kernel, process, selector,
                           SYSCALL_DISPATCH_FILTER_BLOCK)
        if result is BLOCKED:
            thread._sud_restart_credit = True
            sigctx.set_resume_rip(sigctx.fault_rip)
            return
        sigctx.set_return_value(result)
