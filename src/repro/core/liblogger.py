"""libLogger — K23's offline-phase SUD logger (§5.1, Figure 2).

An LD_PRELOAD library (performance is irrelevant offline, so the simple
SUD mechanism suffices).  On each SIGSYS it:

1. disables dispatch through the selector (avoiding recursion),
2. resolves the triggering instruction's ``(region, offset)`` by consulting
   ``/proc/$PID/maps``,
3. records the pair — but only for *expected* regions: executable,
   non-writable, file-backed images (libc, the application binary).
   Synthetic regions (the loader stub, anonymous maps, stacks) are excluded
   because their layout is not stable across runs, and writable/generated
   code must never be rewritten later (§5.1),
4. forwards the original call and re-enables dispatch.

A ptracer-like companion guarantees libLogger stays injected across
``execve`` even when the program clears its environment — purely to
maximize coverage, not a security mechanism (§5.3).
"""

from __future__ import annotations

from typing import Dict

from repro.core.logs import SiteLog
from repro.interposers.base import (
    Interposer,
    allocate_selector_page,
    make_injector_library,
    prepend_ld_preload,
    write_selector,
)
from repro.kernel.ptrace import Tracer
from repro.kernel.syscall_impl import BLOCKED
from repro.kernel.syscalls import (
    SIGSYS,
    SYSCALL_DISPATCH_FILTER_ALLOW,
    SYSCALL_DISPATCH_FILTER_BLOCK,
)
from repro.memory.pages import Prot

LIB_PATH = "/opt/k23/liblogger.so"


def region_is_expected(process, region) -> bool:
    """§5.1's filter: executable, non-writable, file-backed regions only."""
    if region is None:
        return False
    if region.name.startswith("["):  # [ld.so], [vdso], [stack], [anon]...
        return False
    prot = process.address_space.prot_at(region.start)
    return bool(prot & Prot.EXEC) and not prot & Prot.WRITE


class LibLogger(Interposer):
    """The offline logger; one :class:`SiteLog` per traced program path."""

    name = "libLogger"

    def __init__(self, kernel, hook=None):
        super().__init__(kernel, hook)
        #: program path → accumulated SiteLog (merged across runs/inputs).
        self.logs: Dict[str, SiteLog] = {}
        #: Figure 2 event trace: (step, detail) tuples.
        self.timeline = []
        make_injector_library(kernel, LIB_PATH, "liblogger",
                              self._constructor)

    def before_exec(self, process) -> None:
        prepend_ld_preload(process.env, LIB_PATH)
        # The injection-guarantee companion (§5.3): re-injects libLogger on
        # execve; records nothing itself.
        guard = Tracer(self.kernel)
        guard.disable_vdso = False

        def enforce(proc, path, argv, env):
            prepend_ld_preload(env, LIB_PATH)
            return env

        guard.on_execve = enforce
        guard.attach(process)

    def log_for(self, program: str) -> SiteLog:
        if program not in self.logs:
            self.logs[program] = SiteLog(program)
        return self.logs[program]

    # -- constructor --------------------------------------------------------------

    def _constructor(self, thread, base: int) -> None:
        process = thread.process
        selector = allocate_selector_page(self.kernel, process)
        process.interposer_state["liblogger"] = {"selector": selector}
        process.dispositions.set_action(SIGSYS, self._sigsys_handler)
        for t in process.threads:
            t.sud.arm(allow_start=0, allow_len=0, selector_addr=selector)
        process.sud_armed_ever = True
        write_selector(self.kernel, process, selector,
                       SYSCALL_DISPATCH_FILTER_BLOCK)
        self.timeline.append(("init", process.path))

    def on_fork_child(self, thread, child_pid: int) -> None:
        from repro.interposers.base import reblock_child_selector

        child = self.kernel.find_process(child_pid)
        if child is None:
            return
        state = child.interposer_state.get("liblogger")
        if state and state.get("selector"):
            reblock_child_selector(self.kernel, child_pid,
                                   state["selector"],
                                   SYSCALL_DISPATCH_FILTER_BLOCK)

    # -- SIGSYS handler (steps ②–④ of Figure 2) --------------------------------------

    def _sigsys_handler(self, sigctx) -> None:
        thread = sigctx.thread
        process = thread.process
        selector = process.interposer_state["liblogger"]["selector"]
        nr = sigctx.info["nr"]
        site = sigctx.fault_rip
        args = [sigctx.saved["regs"][reg] for reg in (7, 6, 2, 10, 8, 9)]

        # ② step: trap delivered; disable dispatch while we work.
        write_selector(self.kernel, process, selector,
                       SYSCALL_DISPATCH_FILTER_ALLOW)

        # ③ step: resolve and record the site by parsing /proc/$PID/maps
        # (the literal mechanism of §5.1; the logger's own open/read/close
        # round trips are charged as interposer-internal kernel work).
        from repro.cpu.cycles import Event
        from repro.kernel.procfs import entry_for, parse_maps, render_maps

        self.kernel.cycles.charge(Event.KERNEL_SYSCALL, times=3)
        entries = parse_maps(render_maps(process).decode())
        entry = entry_for(entries, site)
        if (entry is not None and entry.executable and not entry.writable
                and entry.path and not entry.path.startswith("[")):
            log = self.log_for(process.path)
            if log.add(entry.path, site - entry.start):
                self.timeline.append(
                    ("log", f"{entry.path}+{site - entry.start:#x}"))

        # ④ step: invoke the original call, re-enable, return its result.
        result = self.run_hook(thread, nr, args, via="sud")
        if not thread._just_execed:
            write_selector(self.kernel, process, selector,
                           SYSCALL_DISPATCH_FILTER_BLOCK)
        if result is BLOCKED:
            thread._sud_restart_credit = True
            sigctx.set_resume_rip(site)
            return
        sigctx.set_return_value(result)
