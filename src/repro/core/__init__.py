"""K23 — the paper's contribution: a pitfall-resilient hybrid interposer.

Two phases (§5):

- **offline** (:mod:`repro.core.offline`, :mod:`repro.core.liblogger`) —
  run the target under a SUD-based logger with representative inputs,
  recording the unique ``(region, offset)`` pair of every legitimate
  ``syscall``/``sysenter`` site into sealed log files
  (:mod:`repro.core.logs`, Figure 3 format).
- **online** (:mod:`repro.core.k23`, :mod:`repro.core.ptracer_stage`,
  :mod:`repro.core.libk23`) — a ptrace stage interposes everything from the
  first instruction (and enforces LD_PRELOAD across ``execve`` — P1a);
  libK23 then installs the trampoline, performs a *single selective rewrite*
  of the pre-validated sites (P3a/P3b/P5), arms an SUD fallback for
  everything else (P2a), guards ``prctl`` against dispatch-disable (P1b),
  checks trampoline entries against a bounded hash set (P4a/P4b), and takes
  over via a fake-syscall handoff after which the ptracer detaches.

:class:`repro.core.k23.K23Interposer` exposes the three Table 4 variants:
``default``, ``ultra`` (NULL-execution check), ``ultra+`` (NULL-execution
check + stack switch).
"""

from repro.core.logs import SiteLog, LOG_ROOT
from repro.core.offline import OfflinePhase
from repro.core.k23 import K23Interposer
from repro.core.config import K23_VARIANTS, ZPOLINE_VARIANTS, variant_table

__all__ = [
    "SiteLog",
    "LOG_ROOT",
    "OfflinePhase",
    "K23Interposer",
    "K23_VARIANTS",
    "ZPOLINE_VARIANTS",
    "variant_table",
]
