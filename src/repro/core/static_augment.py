"""Static log augmentation — the paper's §7 future-work direction.

"Not all applications have well-structured or comprehensive benchmark
suites.  In such cases, a promising future direction is to combine dynamic
and static analysis to reliably identify syscall/sysenter instructions
during the offline phase."

This module implements a *conservative* version of that combination.  For
each expected (executable, non-writable, file-backed) image it linear-
sweeps the code pages and accepts a statically-discovered site **only
when**:

1. the sweep of the whole surrounding executable page-run completed with
   **zero desynchronizations** — embedded data anywhere in the run could
   have shifted instruction boundaries, so any desync disqualifies the
   entire run (this is what keeps P3a out: a site inside a cleanly-decoded
   run cannot be a misparsed data byte or a partial instruction); and
2. the byte scan agrees there is a ``syscall``/``sysenter`` pattern at that
   offset (a trivially-true cross-check kept for defence in depth).

Augmented entries are merged into the dynamic log before sealing.  libK23
independently re-validates every entry at load time, so augmentation can
only ever add *fast-path coverage* for sites the benign inputs missed —
never rewrite hazards.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.arch.disassembler import linear_sweep
from repro.core.logs import SiteLog
from repro.memory.pages import PAGE_SIZE, Prot


def clean_sweep_sites(code: bytes) -> "Tuple[bool, List[int]]":
    """Sweep *code*; returns ``(clean, sites)``.

    *clean* means the sweep never desynchronized **except inside the
    trailing zero padding** that page-aligns a code section: a suffix of
    0x00 bytes cannot hide or shift a ``syscall`` encoding, so it is
    benign.  Any desync before that suffix — i.e. anywhere real bytes
    follow — disqualifies the run (embedded data may have shifted every
    subsequent boundary)."""
    stripped = code.rstrip(b"\x00")
    padding_start = len(stripped)
    sites: List[int] = []
    clean = True
    for item in linear_sweep(code):
        if item.is_desync:
            if item.offset < padding_start:
                clean = False
        elif item.instruction.is_syscall_site:
            if item.offset < padding_start:
                sites.append(item.offset)
    return clean, sites


def _executable_runs(process, region):
    """Maximal executable page runs within *region* (see zpoline's scan)."""
    space = process.address_space
    run_start = None
    addr = region.start
    while addr <= region.end:
        executable = addr < region.end and space.prot_at(addr) & Prot.EXEC
        if executable and run_start is None:
            run_start = addr
        elif not executable and run_start is not None:
            yield run_start, addr - run_start
            run_start = None
        addr += PAGE_SIZE


def augment_log(kernel, process, log: SiteLog) -> Dict[str, int]:
    """Merge conservatively static-discovered sites into *log*.

    *process* must have the target program loaded (e.g. the offline-phase
    process after its run).  Returns per-region counts of added sites;
    regions with any sweep desync contribute nothing ("rejected" entries
    are reported under the pseudo-region key ``"!rejected:<name>"``).
    """
    from repro.core.liblogger import region_is_expected

    added: Dict[str, int] = {}
    space = process.address_space
    for region in space.regions:
        if not region_is_expected(process, region):
            continue
        for run_base, run_len in _executable_runs(process, region):
            code = space.read_kernel(run_base, run_len)
            clean, sites = clean_sweep_sites(code)
            if not clean:
                added[f"!rejected:{region.name}"] = (
                    added.get(f"!rejected:{region.name}", 0) + len(sites))
                continue
            for offset in sites:
                absolute = run_base + offset
                if log.add(region.name, absolute - region.start):
                    added[region.name] = added.get(region.name, 0) + 1
    return added


def offline_with_augmentation(offline_phase, path: str, **run_kwargs):
    """Convenience: one offline run followed by static augmentation.

    Returns ``(process, log, added)``.
    """
    process, log = offline_phase.run(path, **run_kwargs)
    added = augment_log(offline_phase.kernel, process, log)
    offline_phase.results[path] = log
    return process, log, added
