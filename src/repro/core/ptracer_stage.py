"""K23's online-phase ptracer (§5.2, left half of Figure 4).

Attached before the first instruction, it:

- interposes every startup syscall (the >100-call loader storm plus
  anything else that runs before libK23's constructor) — P2b's first half;
- disables the vDSO so timer calls take real ``syscall`` paths for the
  program's whole lifetime — P2b's second half;
- intercepts ``execve`` and rewrites ``LD_PRELOAD`` so libK23 is always
  injected, even when the program launches children with a scrubbed or
  empty environment — the P1a fix;
- services the fake-syscall handoff protocol (§5.3): syscall number 1023
  transfers accumulated startup state into libK23 (via
  ``process_vm_writev``-style kernel copies), 1024 detaches the tracer.
  Both are verified to originate from libK23's own mapped region before
  being honoured.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cpu.cycles import Event
from repro.interposers.base import prepend_ld_preload
from repro.kernel.ptrace import Tracer
from repro.kernel.syscalls import (
    K23_FAKE_SYSCALL_DETACH,
    K23_FAKE_SYSCALL_STATE,
)


class K23Ptracer(Tracer):
    """The startup tracer for one K23-governed process."""

    def __init__(self, kernel, lib_path: str, timeline: Optional[list] = None,
                 record=None):
        super().__init__(kernel)
        self.lib_path = lib_path
        self.disable_vdso = True
        self.record = record  # callback(pid, nr) for interposer accounting
        self.timeline = timeline if timeline is not None else []
        #: Startup accounting handed to libK23 at the 1023 handoff.
        self.startup_state: Dict[str, object] = {"startup_syscalls": 0,
                                                 "execve_rewrites": 0}
        self.on_syscall_entry = self._entry
        self.on_execve = self._enforce_preload

    # -- syscall-entry stops ---------------------------------------------------

    def _entry(self, stop) -> bool:
        nr = stop.number
        if nr in (K23_FAKE_SYSCALL_STATE, K23_FAKE_SYSCALL_DETACH):
            return self._handle_fake(stop, nr)
        self.startup_state["startup_syscalls"] += 1
        if self.record is not None:
            self.record(stop.thread.process.pid, nr)
        return True

    def _handle_fake(self, stop, nr: int) -> bool:
        thread = stop.thread
        process = thread.process
        # §5.3: verify the fake syscall originates from libK23, not from
        # potentially compromised code such as the dynamic loader.
        record = process.loaded_images.get(self.lib_path)
        token = process.interposer_state.get("k23", {}).get("handoff_token")
        if record is None or token != ("k23", process.pid):
            self.timeline.append(("ptracer:rejected-fake", nr))
            stop.set_result(-1)
            return False
        if nr == K23_FAKE_SYSCALL_STATE:
            # Transfer accumulated state via process_vm_writev-equivalent
            # kernel copies (charged as one syscall round trip).
            self.kernel.cycles.charge(Event.KERNEL_SYSCALL)
            process.interposer_state["k23"]["from_ptracer"] = dict(
                self.startup_state)
            self.timeline.append(("ptracer:state-handoff",
                                  dict(self.startup_state)))
            stop.set_result(0)
            return False
        # K23_FAKE_SYSCALL_DETACH
        self.timeline.append(("ptracer:detach",
                              self.startup_state["startup_syscalls"]))
        stop.set_result(0)
        self.detach()
        return False

    # -- execve environment enforcement (P1a) --------------------------------------

    def _enforce_preload(self, process, path: str, argv: List[str],
                         env: Dict[str, str]) -> Dict[str, str]:
        entries = env.get("LD_PRELOAD", "")
        if self.lib_path not in entries.replace(":", " ").split():
            prepend_ld_preload(env, self.lib_path)
            self.startup_state["execve_rewrites"] += 1
            self.timeline.append(("ptracer:execve-preload-fix", path))
        return env
