"""The offline-phase driver (§5.1).

Runs a target program — optionally several times with different inputs /
workload drivers — under :class:`repro.core.liblogger.LibLogger` in a
controlled environment, accumulates the unique-site log, writes it into the
simulated filesystem, and seals the log directory immutable.

Produces the data behind Table 2 (unique site counts per program) and the
Figure 3 log files.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.liblogger import LibLogger
from repro.core.logs import LOG_ROOT, SiteLog, seal_logs

#: A workload driver: called with (kernel, process) while the target runs;
#: may inject client connections, then must let the caller keep scheduling.
WorkloadDriver = Callable[[object, object], None]


class OfflinePhase:
    """Run programs under an exhaustive logger and persist sealed site logs.

    ``backend`` selects the logging mechanism (§5.1: "we use LD_PRELOAD to
    inject an SUD-based interposition library (alternatives include ptrace
    or seccomp)"): ``"sud"`` (default, libLogger) or ``"seccomp"``
    (:class:`repro.core.seccomp_logger.SeccompLogger`).  Both produce
    identical logs; performance is irrelevant offline.
    """

    def __init__(self, kernel, backend: str = "sud"):
        self.kernel = kernel
        if backend == "sud":
            self.logger = LibLogger(kernel)
        elif backend == "seccomp":
            from repro.core.seccomp_logger import SeccompLogger

            self.logger = SeccompLogger(kernel)
        else:
            raise ValueError(f"unknown offline backend {backend!r}")
        self.backend = backend
        self.results: Dict[str, SiteLog] = {}

    def run(self, path: str, argv: Optional[List[str]] = None,
            env: Optional[Dict[str, str]] = None,
            driver: Optional[WorkloadDriver] = None,
            max_steps: int = 5_000_000):
        """One logging run of *path*; returns the (cumulative) SiteLog."""
        previous = self.kernel.interposer
        self.kernel.interposer = self.logger
        try:
            process = self.kernel.spawn_process(path, argv, env)
            if driver is not None:
                driver(self.kernel, process)
            self.kernel.run_process(process, max_steps=max_steps)
        finally:
            self.kernel.interposer = previous
        log = self.logger.log_for(path)
        self.results[path] = log
        return process, log

    def persist(self, seal: bool = True) -> List[str]:
        """Write every accumulated log to the VFS; optionally seal (§5.3)."""
        paths = [log.save(self.kernel.vfs) for log in self.results.values()]
        if seal:
            seal_logs(self.kernel.vfs)
        return paths

    def site_counts(self) -> Dict[str, int]:
        """program path → unique site count (the Table 2 numbers)."""
        return {path: len(log) for path, log in self.results.items()}

    def export(self) -> Dict[str, str]:
        """Rendered log text per program — for shipping the offline phase's
        output into a different (online) machine's filesystem."""
        return {path: log.render() for path, log in self.results.items()}


def import_logs(kernel, rendered: Dict[str, str], seal: bool = True) -> None:
    """Install exported offline logs into *kernel*'s filesystem."""
    for program, text in rendered.items():
        log = SiteLog.parse(program, text)
        log.save(kernel.vfs)
    if seal:
        seal_logs(kernel.vfs)
