"""Offline-phase site logs (the Figure 3 file format).

One entry per unique legitimate syscall site: ``<region-path>,<offset>``.
Offsets are relative to the containing region's base, which is exactly what
survives ASLR between the offline and online runs (§5.1).  Logs live in the
simulated VFS under :data:`LOG_ROOT` and are sealed immutable once the
offline phase completes (§5.3).
"""

from __future__ import annotations

import posixpath
from typing import Iterable, List, Set, Tuple

#: Root of the log directory inside the simulated filesystem.
LOG_ROOT = "/var/lib/k23/logs"


class SiteLog:
    """An ordered, de-duplicated set of ``(region, offset)`` pairs."""

    def __init__(self, program: str):
        self.program = program
        self._entries: List[Tuple[str, int]] = []
        self._seen: Set[Tuple[str, int]] = set()

    def add(self, region: str, offset: int) -> bool:
        """Record one site; returns True if it was new."""
        key = (region, offset)
        if key in self._seen:
            return False
        self._seen.add(key)
        self._entries.append(key)
        return True

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return key in self._seen

    def merge(self, other: "SiteLog") -> None:
        """Fold another run's log in (multi-input coverage, §5.1)."""
        for region, offset in other:
            self.add(region, offset)

    # -- serialization (Figure 3) -----------------------------------------------

    def render(self) -> str:
        """The on-disk format: ``region,offset`` per line."""
        return "".join(f"{region},{offset}\n"
                       for region, offset in self._entries)

    @classmethod
    def parse(cls, program: str, text: str) -> "SiteLog":
        log = cls(program)
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            region, _, offset_text = line.rpartition(",")
            if not region:
                raise ValueError(f"{program} log line {lineno}: {line!r}")
            log.add(region, int(offset_text))
        return log

    # -- VFS persistence -----------------------------------------------------------

    @staticmethod
    def path_for(program: str) -> str:
        return f"{LOG_ROOT}/{posixpath.basename(program)}.log"

    def save(self, vfs) -> str:
        """Write the log file; returns its path."""
        path = self.path_for(self.program)
        vfs.create(path, self.render().encode())
        return path

    @classmethod
    def load(cls, vfs, program: str) -> "SiteLog":
        path = cls.path_for(program)
        return cls.parse(program, vfs.read(path).decode())

    @classmethod
    def exists(cls, vfs, program: str) -> bool:
        return vfs.exists(cls.path_for(program))


def seal_logs(vfs) -> None:
    """Mark the whole log directory immutable (§5.3 hardening)."""
    if vfs.exists(LOG_ROOT):
        vfs.set_immutable(LOG_ROOT, recursive=True)
