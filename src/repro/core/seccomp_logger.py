"""A seccomp-based offline logger — the §5.1 alternative backend.

The paper's offline phase only needs *exhaustive* interposition; SUD is the
default, but "alternatives include ptrace or seccomp".  This backend
installs a TRAP-everything seccomp filter and performs the same
(region, offset) logging from the SIGSYS handler.  Functionally it produces
byte-identical logs to :class:`repro.core.liblogger.LibLogger` — asserted
by the test suite — while illustrating the interface trade-off: the filter
itself cannot inspect pointer arguments (only the handler can), and
disabling it from user space is impossible (seccomp filters are one-way),
so this backend is immune to P1b by construction.
"""

from __future__ import annotations

from typing import Dict

from repro.core.logs import SiteLog
from repro.core.liblogger import region_is_expected
from repro.interposers.base import (
    Interposer,
    make_injector_library,
    prepend_ld_preload,
)
from repro.kernel.seccomp import Action, Verdict
from repro.kernel.syscall_impl import BLOCKED
from repro.kernel.syscalls import SIGSYS

LIB_PATH = "/opt/k23/libseccomplogger.so"


class SeccompLogger(Interposer):
    """Offline logging via a TRAP-all seccomp filter."""

    name = "libLogger-seccomp"

    def __init__(self, kernel, hook=None):
        super().__init__(kernel, hook)
        self.logs: Dict[str, SiteLog] = {}
        self.timeline = []
        make_injector_library(kernel, LIB_PATH, "seccomplogger",
                              self._constructor)

    def before_exec(self, process) -> None:
        prepend_ld_preload(process.env, LIB_PATH)

    def log_for(self, program: str) -> SiteLog:
        if program not in self.logs:
            self.logs[program] = SiteLog(program)
        return self.logs[program]

    # -- constructor --------------------------------------------------------

    def _constructor(self, thread, base: int) -> None:
        process = thread.process
        process.dispositions.set_action(SIGSYS, self._sigsys_handler)
        # TRAP everything; the handler forwards through the kernel's direct
        # path (modelling the filter's allowance for the handler's own
        # trusted syscall sites).
        process.seccomp.install(
            lambda nr, args: Verdict(Action.TRAP))
        process.interposer_state["seccomp_logger"] = {"armed": True}
        self.timeline.append(("init", process.path))

    # -- SIGSYS handler -------------------------------------------------------

    def _sigsys_handler(self, sigctx) -> None:
        if not sigctx.info.get("seccomp"):
            return  # not ours
        thread = sigctx.thread
        process = thread.process
        nr = sigctx.info["nr"]
        site = sigctx.fault_rip
        args = [sigctx.saved["regs"][reg] for reg in (7, 6, 2, 10, 8, 9)]
        region = process.address_space.region_at(site)
        if region_is_expected(process, region):
            log = self.log_for(process.path)
            if log.add(region.name, site - region.start):
                self.timeline.append(
                    ("log", f"{region.name}+{site - region.start:#x}"))
        result = self.run_hook(thread, nr, args, via="sud")
        if result is BLOCKED:
            thread._sud_restart_credit = True
            sigctx.set_resume_rip(site)
            return
        sigctx.set_return_value(result)
