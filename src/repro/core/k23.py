"""K23 — the full online-phase interposer (§5.2)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.libk23 import LIB_PATH, LibK23
from repro.core.ptracer_stage import K23Ptracer
from repro.interposers.base import Interposer, prepend_ld_preload


class K23Interposer(Interposer):
    """The hybrid ptrace + selective-rewrite + SUD-fallback interposer.

    Variants (Table 4):

    - ``default`` — fastest: no NULL-execution check, no stack switch;
    - ``ultra`` — adds the hash-set NULL-execution check (P4a/P4b);
    - ``ultra+`` — additionally switches to a dedicated stack on entry.

    All variants address P1a/P1b/P2a/P2b/P3a/P3b/P5 identically; the
    variants only toggle the two hardening features whose costs Table 5
    isolates.
    """

    def __init__(self, kernel, hook=None, variant: str = "default"):
        super().__init__(kernel, hook)
        if variant not in ("default", "ultra", "ultra+"):
            raise ValueError(f"unknown K23 variant {variant!r}")
        self.variant = variant
        self.name = f"K23-{variant}"
        #: Figure 4 event trace.
        self.timeline: List[tuple] = []
        self.libk23 = LibK23(self)
        self.ptracers: Dict[int, K23Ptracer] = {}

    # -- lifecycle ------------------------------------------------------------

    def before_exec(self, process) -> None:
        """Stage 1: attach the startup ptracer and inject libK23."""
        prepend_ld_preload(process.env, LIB_PATH)
        self._attach(process)

    def _attach(self, process) -> None:
        tracer = K23Ptracer(
            self.kernel, LIB_PATH, timeline=self.timeline,
            record=lambda pid, nr: self.record(pid, nr, via="ptrace"))
        self.ptracers[process.pid] = tracer
        tracer.attach(process)
        self.timeline.append(("ptracer:attached", process.pid))

    def reattach_ptracer(self, process) -> None:
        """§5.3: re-attach before a forwarded ``execve`` so the new image
        restarts the whole online phase (startup coverage + P1a fix)."""
        existing = process.tracer
        if existing is not None and not existing.detached:
            return
        self._attach(process)
        self.timeline.append(("ptracer:reattached-for-execve", process.pid))

    def on_process_exit(self, process) -> None:
        tracer = self.ptracers.pop(process.pid, None)
        if tracer is not None and not tracer.detached:
            tracer.detach()

    def on_fork_child(self, thread, child_pid: int) -> None:
        """Child-side re-init after fork: re-arm the inherited selector."""
        from repro.interposers.base import reblock_child_selector
        from repro.kernel.syscalls import SYSCALL_DISPATCH_FILTER_BLOCK

        child = self.kernel.find_process(child_pid)
        if child is None:
            return
        state = child.interposer_state.get("k23")
        if state and state.get("selector"):
            reblock_child_selector(self.kernel, child_pid,
                                   state["selector"],
                                   SYSCALL_DISPATCH_FILTER_BLOCK)

    # -- accounting convenience ---------------------------------------------------

    def startup_state(self, process) -> Optional[dict]:
        """What the ptracer handed over (None before the handoff)."""
        state = process.interposer_state.get("k23")
        return None if state is None else state.get("from_ptracer")

    def rewritten_sites(self, process) -> List[int]:
        state = process.interposer_state.get("k23", {})
        return list(state.get("rewritten", []))
