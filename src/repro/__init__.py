"""repro — a reproduction of "Clair Obscur: The Light and Shadow of System
Call Interposition — From Pitfalls to Solutions with K23" (Middleware '25).

Top-level convenience exports; see the subpackages for the full API:

- :mod:`repro.kernel` — the simulated machine.
- :mod:`repro.interposers` — SUD / ptrace / zpoline / lazypoline.
- :mod:`repro.core` — K23 (offline + online phases).
- :mod:`repro.pitfalls` — the P1–P5 PoCs and Table 3 matrix.
- :mod:`repro.workloads` — programs, servers, load generators.
- :mod:`repro.evaluation` — the §6 experiment harness.
"""

__version__ = "1.0.0"

from repro.kernel import Kernel
from repro.core import K23Interposer, OfflinePhase

__all__ = ["Kernel", "K23Interposer", "OfflinePhase", "__version__"]
