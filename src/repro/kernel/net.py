"""Localhost stream sockets.

The macrobenchmarks (§6.2.2) run client and server on the same machine so
that measurements isolate interposition overhead.  We mirror that structure:
simulated servers accept/recv/send through these kernel objects, while load
generators (the wrk / redis-benchmark stand-ins in
:mod:`repro.workloads.clients`) drive connections from host level — their
cost is off the measured path, exactly like a client pinned to other cores.

Simplification: addresses are bare integer ports (no sockaddr marshalling);
stream semantics, backlog, EAGAIN/blocking, and peer-close behaviour are
kept, since the server-side syscall sequence is what the benchmarks measure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.errors import KernelError
from repro.kernel.syscalls import Errno


class Connection:
    """One established stream, with a byte queue per direction."""

    def __init__(self, port: int):
        self.port = port
        self.to_server: Deque[bytes] = deque()
        self.to_client: Deque[bytes] = deque()
        self.client_closed = False
        self.server_closed = False

    # -- client (host driver) side ------------------------------------------

    def client_send(self, data: bytes) -> None:
        if self.server_closed:
            raise KernelError("send on closed connection")
        self.to_server.append(bytes(data))

    def client_recv(self) -> Optional[bytes]:
        """Drain one message from the server; None when nothing is queued."""
        if self.to_client:
            return self.to_client.popleft()
        return None

    def client_recv_all(self) -> bytes:
        chunks = []
        while self.to_client:
            chunks.append(self.to_client.popleft())
        return b"".join(chunks)

    def client_close(self) -> None:
        self.client_closed = True

    # -- server (simulated process) side ----------------------------------------

    def server_recv(self, max_len: int) -> Optional[bytes]:
        """One chunk for the server; None means would-block; b"" means EOF."""
        if self.to_server:
            chunk = self.to_server.popleft()
            if len(chunk) > max_len:
                self.to_server.appendleft(chunk[max_len:])
                chunk = chunk[:max_len]
            return chunk
        if self.client_closed:
            return b""
        return None

    def server_send(self, data: bytes) -> int:
        if self.client_closed:
            return -Errno.EPIPE
        self.to_client.append(bytes(data))
        return len(data)

    def server_close(self) -> None:
        self.server_closed = True

    @property
    def server_readable(self) -> bool:
        return bool(self.to_server) or self.client_closed


class Listener:
    """A bound, listening endpoint with a backlog of pending connections."""

    def __init__(self, port: int, backlog: int = 128):
        self.port = port
        self.backlog_limit = backlog
        self.pending: Deque[Connection] = deque()
        self.closed = False

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)


class NetStack:
    """Kernel-wide port table."""

    def __init__(self) -> None:
        self._listeners: Dict[int, Listener] = {}

    def bind_listen(self, port: int, backlog: int = 128) -> Listener:
        if port in self._listeners and not self._listeners[port].closed:
            raise KernelError(f"port {port} already bound")
        listener = Listener(port, backlog)
        self._listeners[port] = listener
        return listener

    def lookup(self, port: int) -> Optional[Listener]:
        listener = self._listeners.get(port)
        if listener is not None and listener.closed:
            return None
        return listener

    def connect(self, port: int) -> Connection:
        """Host-driver connect: enqueue a new connection on the listener."""
        listener = self.lookup(port)
        if listener is None:
            raise KernelError(f"connection refused: port {port}")
        if len(listener.pending) >= listener.backlog_limit:
            raise KernelError(f"backlog full on port {port}")
        conn = Connection(port)
        listener.pending.append(conn)
        return conn

    def close_listener(self, port: int) -> None:
        listener = self._listeners.get(port)
        if listener is not None:
            listener.closed = True
