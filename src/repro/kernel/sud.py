"""Syscall User Dispatch (SUD) state.

Per-thread, as in Linux: ``prctl(PR_SET_SYSCALL_USER_DISPATCH, ON, offset,
len, selector_addr)`` arms dispatch with a user-memory *selector byte* and an
allowlisted address range.  At syscall entry the kernel checks, in order:

1. dispatch armed?
2. instruction pointer inside the allowlisted ``[offset, offset+len)``? → run
   the syscall normally (this is how a handler's own ``syscall`` instructions
   avoid recursion when the selector trick is not used);
3. selector byte == ``SYSCALL_DISPATCH_FILTER_BLOCK``? → deliver SIGSYS.

Once *any* thread of a process has ever armed SUD, every syscall of that
process takes a slower kernel entry path — the "SUD-no-interposition" cost
the paper isolates in Table 5 and that lazypoline and K23 pay even on their
rewritten fast paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.syscalls import (
    SYSCALL_DISPATCH_FILTER_ALLOW,
    SYSCALL_DISPATCH_FILTER_BLOCK,
)


@dataclass
class SudState:
    """One thread's SUD configuration."""

    enabled: bool = False
    selector_addr: int = 0
    allow_start: int = 0
    allow_len: int = 0

    def arm(self, allow_start: int, allow_len: int, selector_addr: int) -> None:
        self.enabled = True
        self.allow_start = allow_start
        self.allow_len = allow_len
        self.selector_addr = selector_addr

    def disarm(self) -> None:
        self.enabled = False
        self.selector_addr = 0
        self.allow_start = 0
        self.allow_len = 0

    def in_allowlist(self, rip: int) -> bool:
        return self.allow_len > 0 and self.allow_start <= rip < self.allow_start + self.allow_len

    def should_dispatch(self, rip: int, read_selector) -> bool:
        """Whether a syscall issued at *rip* must be turned into SIGSYS.

        ``read_selector(addr)`` reads the selector byte from user memory
        (kernel-privilege read, as Linux does).
        """
        if not self.enabled:
            return False
        if self.in_allowlist(rip):
            return False
        if self.selector_addr == 0:
            return True  # no selector configured: always dispatch
        return read_selector(self.selector_addr) == SYSCALL_DISPATCH_FILTER_BLOCK

    def copy(self) -> "SudState":
        return SudState(self.enabled, self.selector_addr,
                        self.allow_start, self.allow_len)
