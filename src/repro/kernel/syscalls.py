"""System call numbers, errno values, and prctl/SUD constants.

Numbers are the real x86-64 Linux ABI values — the microbenchmark's
"non-existent system call 500" and the ``prctl(PR_SET_SYSCALL_USER_DISPATCH)``
bypass of pitfall P1b only make sense against the genuine numbering.
"""

from __future__ import annotations

import enum


class Nr(enum.IntEnum):
    """x86-64 Linux syscall numbers (subset implemented by the simulator)."""

    read = 0
    write = 1
    open = 2
    close = 3
    stat = 4
    fstat = 5
    lseek = 8
    mmap = 9
    mprotect = 10
    munmap = 11
    brk = 12
    rt_sigaction = 13
    rt_sigprocmask = 14
    rt_sigreturn = 15
    ioctl = 16
    access = 21
    sched_yield = 24
    dup = 32
    nanosleep = 35
    getpid = 39
    socket = 41
    connect = 42
    accept = 43
    sendto = 44
    recvfrom = 45
    shutdown = 48
    bind = 49
    listen = 50
    clone = 56
    fork = 57
    execve = 59
    exit = 60
    wait4 = 61
    kill = 62
    uname = 63
    fcntl = 72
    fsync = 74
    fdatasync = 75
    getcwd = 79
    chdir = 80
    mkdir = 83
    unlink = 87
    gettimeofday = 96
    ptrace = 101
    getuid = 102
    getppid = 110
    arch_prctl = 158
    setpriority = 141
    prctl = 157
    gettid = 186
    futex = 202
    epoll_create = 213
    getdents64 = 217
    clock_gettime = 228
    exit_group = 231
    epoll_wait = 232
    epoll_ctl = 233
    openat = 257
    newfstatat = 262
    pwritev = 296
    process_vm_readv = 310
    process_vm_writev = 311
    getrandom = 318
    pkey_mprotect = 329
    pkey_alloc = 330
    pkey_free = 331

    @classmethod
    def name_of(cls, number: int) -> str:
        """Readable name for traces; unknown numbers render as ``sys_<n>``."""
        try:
            return cls(number).name
        except ValueError:
            return f"sys_{number}"


#: The paper's microbenchmark syscall: non-existent number 500, chosen to
#: minimize in-kernel time and emphasize interposition overhead (§6.2.1).
FAKE_SYSCALL_STRESS = 500

#: K23's fake syscall numbers for the ptracer↔libK23 handoff protocol
#: (§5.3): the kernel rejects them with ENOSYS, but the ptracer observes
#: them at the syscall-entry stop.
K23_FAKE_SYSCALL_STATE = 1023
K23_FAKE_SYSCALL_DETACH = 1024


class Errno(enum.IntEnum):
    """Linux errno values (positive; syscalls return them negated)."""

    EPERM = 1
    ENOENT = 2
    ESRCH = 3
    EINTR = 4
    EIO = 5
    EBADF = 9
    ECHILD = 10
    EAGAIN = 11
    ENOMEM = 12
    EACCES = 13
    EFAULT = 14
    EBUSY = 16
    EEXIST = 17
    ENOTDIR = 20
    EISDIR = 21
    EINVAL = 22
    ENFILE = 23
    EMFILE = 24
    ENOTTY = 25
    ESPIPE = 29
    EPIPE = 32
    ERANGE = 34
    ENOSYS = 38
    ENOTEMPTY = 39
    EADDRINUSE = 98
    ECONNREFUSED = 111


# -------------------------------------------------------------------- clone

#: ``clone(2)`` flag subset (include/uapi/linux/sched.h) — enough to model
#: thread creation (shared VM) vs. fork-style child processes.
CLONE_VM = 0x0000_0100
CLONE_FS = 0x0000_0200
CLONE_FILES = 0x0000_0400
CLONE_SIGHAND = 0x0000_0800
CLONE_THREAD = 0x0001_0000


# ---------------------------------------------------------------- prctl / SUD

PR_SET_SYSCALL_USER_DISPATCH = 59
PR_SYS_DISPATCH_OFF = 0
PR_SYS_DISPATCH_ON = 1

#: Selector byte values (include/uapi/linux/syscall_user_dispatch.h).
SYSCALL_DISPATCH_FILTER_ALLOW = 0
SYSCALL_DISPATCH_FILTER_BLOCK = 1

# ------------------------------------------------------------------- signals

SIGHUP = 1
SIGINT = 2
SIGQUIT = 3
SIGILL = 4
SIGTRAP = 5
SIGABRT = 6
SIGBUS = 7
SIGFPE = 8
SIGKILL = 9
SIGUSR1 = 10
SIGSEGV = 11
SIGUSR2 = 12
SIGPIPE = 13
SIGALRM = 14
SIGTERM = 15
SIGCHLD = 17
SIGSTOP = 19
SIGURG = 23
SIGWINCH = 28
SIGSYS = 31

SIGNAL_NAMES = {
    SIGHUP: "SIGHUP",
    SIGINT: "SIGINT",
    SIGQUIT: "SIGQUIT",
    SIGILL: "SIGILL",
    SIGTRAP: "SIGTRAP",
    SIGABRT: "SIGABRT",
    SIGBUS: "SIGBUS",
    SIGFPE: "SIGFPE",
    SIGKILL: "SIGKILL",
    SIGUSR1: "SIGUSR1",
    SIGSEGV: "SIGSEGV",
    SIGUSR2: "SIGUSR2",
    SIGPIPE: "SIGPIPE",
    SIGALRM: "SIGALRM",
    SIGTERM: "SIGTERM",
    SIGCHLD: "SIGCHLD",
    SIGSTOP: "SIGSTOP",
    SIGURG: "SIGURG",
    SIGWINCH: "SIGWINCH",
    SIGSYS: "SIGSYS",
}

# ------------------------------------------------------------------- ptrace ops

PTRACE_TRACEME = 0
PTRACE_PEEKTEXT = 1
PTRACE_POKETEXT = 4
PTRACE_CONT = 7
PTRACE_KILL = 8
PTRACE_ATTACH = 16
PTRACE_DETACH = 17
PTRACE_SYSCALL = 24
PTRACE_GETREGS = 12
PTRACE_SETREGS = 13

# ------------------------------------------------------------------- misc ABI

ARCH_SET_FS = 0x1002
AT_FDCWD = -100
