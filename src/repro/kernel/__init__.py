"""Simulated Linux kernel.

Implements the interfaces the paper's interposers are built from, with real
x86-64 syscall numbers and Linux semantics where the pitfalls depend on them:

- :mod:`repro.kernel.syscalls` — syscall numbers, errno values, prctl and
  SUD constants.
- :mod:`repro.kernel.vfs` — in-memory filesystem (files, directories,
  immutability bit for K23's log directory).
- :mod:`repro.kernel.net` — localhost stream sockets driven by host-level
  load generators.
- :mod:`repro.kernel.process` — processes, threads, file descriptors,
  environments.
- :mod:`repro.kernel.signals` — signal actions and SIGSYS/SIGSEGV delivery
  with mutable ucontexts.
- :mod:`repro.kernel.sud` — Syscall User Dispatch (selector byte, allowlist
  range, per-thread arming).
- :mod:`repro.kernel.ptrace` — cross-process tracing with syscall stops and
  tracee memory/register access.
- :mod:`repro.kernel.vdso` — the vDSO fast path that bypasses ``syscall``
  instructions entirely (half of pitfall P2b).
- :mod:`repro.kernel.kernel` — dispatch, scheduling, fork/execve/wait.
"""

from repro.kernel.syscalls import Errno, Nr
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process, Thread

__all__ = ["Errno", "Nr", "Kernel", "Process", "Thread"]
