"""Processes, threads, and file descriptors."""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cpu.cycles import Event
from repro.cpu.icache import ICache
from repro.cpu.state import CpuContext
from repro.errors import VFSError
from repro.kernel.net import Connection, Listener
from repro.kernel.signals import SignalDispositions
from repro.kernel.sud import SudState
from repro.kernel.syscalls import Errno
from repro.kernel.vfs import Inode
from repro.memory.address_space import AddressSpace


class FileDescriptor:
    """Base class for per-process descriptor table entries."""

    def describe(self) -> str:
        return type(self).__name__


class FileFD(FileDescriptor):
    """A regular file opened from the VFS."""

    def __init__(self, inode: Inode, flags: int = 0):
        self.inode = inode
        self.offset = 0
        self.flags = flags

    def describe(self) -> str:
        return self.inode.path


class ListenFD(FileDescriptor):
    """A listening socket."""

    def __init__(self, listener: Listener):
        self.listener = listener

    def describe(self) -> str:
        return f"listen:{self.listener.port}"


class SocketFD(FileDescriptor):
    """A stream socket; unconnected until bound/accepted."""

    def __init__(self, connection: Optional[Connection] = None):
        self.connection = connection

    def describe(self) -> str:
        if self.connection is None:
            return "socket:unconnected"
        return f"socket:{self.connection.port}"


class Thread:
    """One simulated thread: CPU context + core-local icache + SUD state.

    Also the execution environment consumed by :func:`repro.cpu.core.step`
    (``mem_*``, ``on_syscall``, ``on_hostcall``, ``charge``).
    """

    def __init__(self, process: "Process", core_id: int = 0):
        self.process = process
        self.tid = process.kernel.new_tid()
        self.context = CpuContext()
        self.icache = ICache(core_id, engine=process.kernel.engine)
        self.core_id = core_id
        self.sud = SudState()
        self.exited = False
        #: Set by execve/rt_sigreturn to suppress the dispatch layer's
        #: result/clobber writes into a context that was wholly replaced.
        self._just_execed = False
        #: (signal, saved context) frames for simulated-address signal
        #: handlers; popped (and the signal unblocked) by rt_sigreturn.
        self.signal_frames: List[tuple] = []
        #: Signals masked from re-delivery: a signal joins this set while
        #: its handler runs (host handlers until return, simulated handlers
        #: until rt_sigreturn) so the same signal cannot nest.
        self.blocked_signals: set = set()
        #: Async signals that arrived while blocked, delivered in order at
        #: the next sigreturn (each entry is ``(signal, fault_rip, info)``).
        self.pending_signals: List[tuple] = []
        #: One-shot credit granted by a SUD selector-flip restart so the
        #: re-executed syscall is not double-charged (see kernel.handle_syscall).
        self._sud_restart_credit = False
        #: When set, the scheduler skips this thread until the callable
        #: returns True (used for accept/recv/wait4 blocking).
        self.block_condition: Optional[Callable[[], bool]] = None
        #: Set while the thread is inside a host-level yield (re-entrancy
        #: guard for the preemption window modelling, P5).
        self.in_host_handler = False
        #: Host-callable signal handlers currently on this thread's stack.
        #: While > 0, simulated-address deliveries are deferred to
        #: return-to-user (the enclosing handler's context restore would
        #: clobber the user frame — see Kernel.deliver_signal).
        self._host_handler_depth = 0
        #: Bound-method alias: ``charge`` is on the per-instruction hot
        #: path and the kernel's CycleModel is created once and never
        #: replaced, so skip the forwarding frame the class-level method
        #: below would add.
        self.charge = process.kernel.cycles.charge
        #: In-unit retire index maintained by the block executor
        #: (:mod:`repro.cpu.blocks`): the 1-based index of the instruction
        #: currently executing, read by the scheduler to attribute a
        #: faulting instruction when a multi-instruction unit raises.
        self.unit_retired = 0

    # -- execution-environment protocol (repro.cpu.core.step) ------------------

    @property
    def mem_space(self) -> AddressSpace:
        """The live address space — the trace JIT's inline-cache seed.

        Exposing this attribute is the promise (see
        :mod:`repro.cpu.engine`) that ``mem_read``/``mem_write`` below are
        exactly ``address_space.read/write(.., pkru=self.context.pkru)``.
        """
        return self.process.address_space

    def mem_fetch(self, addr: int, length: int) -> bytes:
        return self.process.address_space.fetch(addr, length)

    def mem_read(self, addr: int, length: int) -> bytes:
        return self.process.address_space.read(addr, length,
                                               pkru=self.context.pkru)

    def mem_write(self, addr: int, data: bytes) -> None:
        self.process.address_space.write(addr, data, pkru=self.context.pkru)

    def on_syscall(self) -> None:
        self.process.kernel.handle_syscall(self)

    def on_hostcall(self, index: int) -> None:
        self.process.kernel.dispatch_hostcall(self, index)

    def charge(self, event: Event, times: int = 1) -> None:
        # Shadowed by the bound-method alias set in __init__; kept as the
        # documented protocol signature (and for subclasses that replace
        # the alias).
        self.process.kernel.cycles.charge(event, times)

    # -- state -------------------------------------------------------------------

    @property
    def runnable(self) -> bool:
        if self.exited or self.process.exited:
            return False
        if self.block_condition is not None:
            return False
        return True

    def block_until(self, condition: Callable[[], bool]) -> None:
        self.block_condition = condition

    def try_unblock(self) -> bool:
        if self.block_condition is not None and self.block_condition():
            self.block_condition = None
        return self.block_condition is None

    # -- record/replay checkpointing ----------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """Capture everything replay needs to resurrect this thread.

        ``block_condition`` is deliberately absent: it is a host closure,
        and the recorder's safe-point policy only checkpoints when no
        thread is blocked (see :mod:`repro.replay.recorder`).
        """
        return {
            "tid": self.tid,
            "core_id": self.core_id,
            "context": copy.deepcopy(self.context.save()),
            "sud": self.sud.copy(),
            "exited": self.exited,
            "just_execed": self._just_execed,
            "signal_frames": copy.deepcopy(self.signal_frames),
            "blocked_signals": set(self.blocked_signals),
            "pending_signals": copy.deepcopy(self.pending_signals),
            "sud_restart_credit": self._sud_restart_credit,
            "host_handler_depth": self._host_handler_depth,
            "in_host_handler": self.in_host_handler,
            "unit_retired": self.unit_retired,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Overwrite this thread with a snapshot taken by
        :meth:`snapshot_state`.  Flushes the core-local icache: decoded
        lines, chained blocks, and compiled traces all cache pre-restore
        code bytes and page generations."""
        self.tid = state["tid"]
        self.core_id = state["core_id"]
        self.context.restore(copy.deepcopy(state["context"]))
        self.sud = state["sud"].copy()
        self.exited = state["exited"]
        self._just_execed = state["just_execed"]
        self.signal_frames = copy.deepcopy(state["signal_frames"])
        self.blocked_signals = set(state["blocked_signals"])
        self.pending_signals = copy.deepcopy(state["pending_signals"])
        self._sud_restart_credit = state["sud_restart_credit"]
        self._host_handler_depth = state["host_handler_depth"]
        self.in_host_handler = state["in_host_handler"]
        self.unit_retired = state["unit_retired"]
        self.block_condition = None
        self.icache.flush_all()

    def __repr__(self) -> str:
        return f"Thread(tid={self.tid}, pid={self.process.pid}, rip={self.context.rip:#x})"


class Process:
    """One simulated process."""

    def __init__(self, kernel, pid: int, path: str = "",
                 argv: Optional[List[str]] = None,
                 env: Optional[Dict[str, str]] = None):
        self.kernel = kernel
        self.pid = pid
        self.path = path
        self.argv = list(argv or [])
        self.env: Dict[str, str] = dict(env or {})
        self.address_space = AddressSpace()
        self.threads: List[Thread] = []
        self.fds: Dict[int, FileDescriptor] = {}
        self._next_fd = 3  # 0/1/2 reserved for stdio
        self.cwd = "/"
        self.dispositions = SignalDispositions()
        self.exited = False
        self.exit_status: Optional[int] = None
        #: True when the process died to a signal whose default disposition
        #: dumps core (ProcessKilled.core) — signal(7)'s *Core* rows.
        self.core_dumped = False
        self.parent: Optional["Process"] = None
        self.children: List["Process"] = []
        #: Once any thread arms SUD, every kernel entry of this process pays
        #: the slow path (Table 5, "SUD-no-interposition").
        self.sud_armed_ever = False
        #: Cross-process tracer attached via ptrace (K23's ptracer stage).
        self.tracer = None
        #: seccomp filter-mode state (see repro.kernel.seccomp).
        from repro.kernel.seccomp import SeccompState

        self.seccomp = SeccompState()
        #: Whether the vDSO is available to this process (the tracer clears
        #: this to force timer calls through real syscalls, §5.2).
        self.vdso_enabled = True
        self.brk_cursor = 0
        #: name → (base address, image, namespace) for every loaded image.
        self.loaded_images: Dict[str, tuple] = {}
        #: Application syscalls issued before main (set by the loader stub).
        self.premain_syscalls = 0
        self.premain_log_len = 0
        #: stdout/stderr capture for tests and examples.
        self.output = bytearray()
        #: Arbitrary per-process state interposer libraries hang off the
        #: process (trampoline addresses, selectors, rewritten-site tables).
        self.interposer_state: Dict[str, object] = {}

    # -- threads ------------------------------------------------------------------

    def spawn_thread(self, core_id: Optional[int] = None) -> Thread:
        thread = Thread(self, core_id if core_id is not None
                        else len(self.threads))
        self.threads.append(thread)
        return thread

    @property
    def main_thread(self) -> Thread:
        return self.threads[0]

    @property
    def alive(self) -> bool:
        return not self.exited

    # -- file descriptors ------------------------------------------------------------

    def alloc_fd(self, descriptor: FileDescriptor) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self.fds[fd] = descriptor
        return fd

    def get_fd(self, fd: int) -> FileDescriptor:
        descriptor = self.fds.get(fd)
        if descriptor is None:
            raise VFSError(Errno.EBADF, f"bad fd {fd}")
        return descriptor

    def close_fd(self, fd: int) -> None:
        descriptor = self.fds.pop(fd, None)
        if descriptor is None:
            raise VFSError(Errno.EBADF, f"bad fd {fd}")
        if isinstance(descriptor, SocketFD) and descriptor.connection:
            descriptor.connection.server_close()
        if isinstance(descriptor, ListenFD):
            descriptor.listener.closed = True

    # -- exit ----------------------------------------------------------------------------

    def terminate(self, status: int) -> None:
        self.exited = True
        self.exit_status = status
        for thread in self.threads:
            thread.exited = True

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, path={self.path!r}, exited={self.exited})"
