"""System call implementations.

Each entry is ``impl(kernel, thread, args) -> int | None | BLOCKED``:

- an ``int`` is the return value (negative errno on failure);
- ``None`` means the implementation fully managed the thread context
  (``execve``) or never returns (``exit``);
- :data:`BLOCKED` rewinds RIP over the ``syscall`` instruction and parks the
  thread on a wake condition, so the call transparently retries when ready —
  restartable-syscall semantics for ``accept``/``recvfrom``/``wait4``/
  ``epoll_wait``.

ABI simplifications (documented in DESIGN.md): socket addresses are bare
integer ports; ``stat`` results are existence checks; iovec-based calls take
flat pointers.  The syscall *mix*, blocking behaviour, and failure modes —
what the interposition experiments measure — are preserved.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional

from repro.arch.registers import Reg
from repro.cpu.cycles import Event
from repro.errors import MapError, ProcessExited, SegmentationFault, VFSError
from repro.kernel.process import (
    FileFD,
    ListenFD,
    Process,
    SocketFD,
    Thread,
)
from repro.kernel.syscalls import (
    CLONE_THREAD,
    CLONE_VM,
    Errno,
    Nr,
    PR_SET_SYSCALL_USER_DISPATCH,
    PR_SYS_DISPATCH_OFF,
    PR_SYS_DISPATCH_ON,
)
from repro.memory.pages import PAGE_SIZE, Prot, round_up_pages


class _Blocked:
    """Sentinel: rewind and retry when the wake condition fires."""

    def __repr__(self) -> str:  # pragma: no cover
        return "BLOCKED"


BLOCKED = _Blocked()

#: Linux clamps every read/write to this (fs/read_write.c, rw_verify_area):
#: INT_MAX rounded down to a page boundary.  The clamp is what keeps a
#: negative return value fed back as a count — e.g. ``write(1, buf,
#: read_result)`` after an injected EINTR — from becoming a 2^64-byte copy.
MAX_RW_COUNT = 0x7FFF_F000

# open(2) flag bits.
O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000

# mmap(2) flag bits.
MAP_FIXED = 0x10
MAP_ANONYMOUS = 0x20

# epoll_ctl ops.
EPOLL_CTL_ADD = 1
EPOLL_CTL_DEL = 2


class EpollFD:
    """Minimal epoll instance: a set of watched fds."""

    def __init__(self) -> None:
        self.watched: List[int] = []

    def describe(self) -> str:
        return f"epoll:{self.watched}"


# --------------------------------------------------------------------- helpers


def _read_cstr(process: Process, addr: int, limit: int = 4096) -> str:
    out = bytearray()
    cursor = addr
    while len(out) < limit:
        byte = process.address_space.read_kernel(cursor, 1)
        if byte == b"\x00":
            break
        out += byte
        cursor += 1
    return out.decode("latin-1")


def _read_ptr_array(process: Process, addr: int, limit: int = 256) -> List[int]:
    """Read a NULL-terminated array of 8-byte pointers."""
    out: List[int] = []
    if addr == 0:
        return out
    cursor = addr
    while len(out) < limit:
        ptr = struct.unpack("<Q",
                            process.address_space.read_kernel(cursor, 8))[0]
        if ptr == 0:
            break
        out.append(ptr)
        cursor += 8
    return out


def _resolve(process: Process, path: str) -> str:
    if path.startswith("/"):
        return path
    base = process.cwd.rstrip("/")
    return f"{base}/{path}" if base else f"/{path}"


#: In-kernel data-copy cost: ~0.5 cycles per byte moved between user
#: buffers and kernel objects (page cache, socket queues).  This is what
#: makes the 4 KiB Table 6 rows slower than the 0 KiB rows.
def _charge_copy(kernel, nbytes: int) -> None:
    kernel.cycles.charge_cycles(nbytes // 2, label="io-data-copy")


def _block(thread: Thread, condition: Callable[[], bool]):
    """Park the thread and request a restart (see module docstring).

    The *caller's* dispatch layer decides how to rewind: the trap path backs
    RIP onto the ``syscall`` instruction; interposer handlers rewind onto the
    rewritten site or the SIGSYS fault address.
    """
    thread.block_until(condition)
    return BLOCKED


# ---------------------------------------------------------------------- file I/O


def _user_buffer(process: Process, buf: int, count: int) -> Optional[bytes]:
    """Fetch a user read/write buffer, or None for EFAULT.

    *count* must already be clamped to :data:`MAX_RW_COUNT`; the mapping
    check walks pages and short-circuits at the first hole, so even a
    clamped-from-2^64 count terminates quickly.
    """
    if count == 0:
        return b""
    if not buf or not process.address_space.is_mapped(buf, count):
        return None
    return process.address_space.read_kernel(buf, count)


def sys_read(kernel, thread: Thread, args) -> int:
    fd, buf, count = args[0], args[1], min(args[2], MAX_RW_COUNT)
    if fd == 0:
        return 0  # stdin: EOF
    descriptor = thread.process.get_fd(fd)
    if isinstance(descriptor, FileFD):
        data = bytes(descriptor.inode.data[descriptor.offset:
                                           descriptor.offset + count])
        if data and (not buf or not thread.process.address_space.is_mapped(
                buf, len(data))):
            return -Errno.EFAULT
        descriptor.offset += len(data)
        if data:
            thread.process.address_space.write_kernel(buf, data)
        _charge_copy(kernel, len(data))
        return len(data)
    if isinstance(descriptor, SocketFD):
        return sys_recvfrom(kernel, thread, args)
    return -Errno.EINVAL


def sys_write(kernel, thread: Thread, args) -> int:
    fd, buf, count = args[0], args[1], min(args[2], MAX_RW_COUNT)
    data = _user_buffer(thread.process, buf, count)
    if data is None:
        return -Errno.EFAULT
    _charge_copy(kernel, len(data))
    if fd in (1, 2):
        thread.process.output.extend(data)
        return count
    descriptor = thread.process.get_fd(fd)
    if isinstance(descriptor, FileFD):
        inode = descriptor.inode
        if inode.immutable:
            return -Errno.EPERM
        end = descriptor.offset + len(data)
        if len(inode.data) < end:
            inode.data.extend(b"\x00" * (end - len(inode.data)))
        inode.data[descriptor.offset:end] = data
        descriptor.offset = end
        return len(data)
    if isinstance(descriptor, SocketFD):
        return sys_sendto(kernel, thread, args)
    return -Errno.EINVAL


def _do_open(kernel, thread: Thread, path: str, flags: int) -> int:
    process = thread.process
    path = _resolve(process, path)
    if path.startswith("/proc/"):
        from repro.kernel.procfs import resolve_proc_path
        from repro.kernel.vfs import Inode

        content = resolve_proc_path(kernel, process, path)
        if content is not None:
            # Synthesized, snapshot-at-open inode (never placed in the VFS).
            return process.alloc_fd(FileFD(Inode(path=path,
                                                 data=bytearray(content))))
    if not kernel.vfs.exists(path):
        if not flags & O_CREAT:
            return -Errno.ENOENT
        try:
            kernel.vfs.create(path)
        except VFSError as exc:
            return -exc.errno
    inode = kernel.vfs.lookup(path)
    if flags & O_TRUNC and not inode.is_dir:
        if inode.immutable:
            return -Errno.EPERM
        inode.data.clear()
    descriptor = FileFD(inode, flags)
    if flags & O_APPEND:
        descriptor.offset = len(inode.data)
    return process.alloc_fd(descriptor)


def sys_open(kernel, thread: Thread, args) -> int:
    path = _read_cstr(thread.process, args[0])
    return _do_open(kernel, thread, path, args[1])


def sys_openat(kernel, thread: Thread, args) -> int:
    # dirfd (args[0]) is honoured only as AT_FDCWD; absolute paths dominate.
    path = _read_cstr(thread.process, args[1])
    return _do_open(kernel, thread, path, args[2])


def sys_close(kernel, thread: Thread, args) -> int:
    try:
        thread.process.close_fd(args[0])
    except VFSError as exc:
        return -exc.errno
    return 0


def sys_lseek(kernel, thread: Thread, args) -> int:
    fd, offset, whence = args[0], args[1], args[2]
    descriptor = thread.process.get_fd(fd)
    if not isinstance(descriptor, FileFD):
        return -Errno.ESPIPE
    size = len(descriptor.inode.data)
    if whence == 0:
        descriptor.offset = offset
    elif whence == 1:
        descriptor.offset += offset
    elif whence == 2:
        descriptor.offset = size + offset
    else:
        return -Errno.EINVAL
    return descriptor.offset


def sys_stat(kernel, thread: Thread, args) -> int:
    path = _resolve(thread.process, _read_cstr(thread.process, args[0]))
    return 0 if kernel.vfs.exists(path) else -Errno.ENOENT


def sys_fstat(kernel, thread: Thread, args) -> int:
    try:
        thread.process.get_fd(args[0])
    except VFSError as exc:
        return -exc.errno
    return 0


def sys_newfstatat(kernel, thread: Thread, args) -> int:
    path = _resolve(thread.process, _read_cstr(thread.process, args[1]))
    return 0 if kernel.vfs.exists(path) else -Errno.ENOENT


def sys_access(kernel, thread: Thread, args) -> int:
    path = _resolve(thread.process, _read_cstr(thread.process, args[0]))
    return 0 if kernel.vfs.exists(path) else -Errno.ENOENT


def sys_getdents64(kernel, thread: Thread, args) -> int:
    fd, buf, count = args[0], args[1], args[2]
    descriptor = thread.process.get_fd(fd)
    if not isinstance(descriptor, FileFD) or not descriptor.inode.is_dir:
        return -Errno.ENOTDIR
    if descriptor.offset:
        return 0  # one-shot listing
    names = kernel.vfs.listdir(descriptor.inode.path)
    blob = b"".join(name.encode() + b"\x00" for name in names)[:count]
    if buf and blob:
        thread.process.address_space.write_kernel(buf, blob)
    descriptor.offset = 1
    return len(blob)


def sys_unlink(kernel, thread: Thread, args) -> int:
    path = _resolve(thread.process, _read_cstr(thread.process, args[0]))
    try:
        kernel.vfs.unlink(path)
    except VFSError as exc:
        return -exc.errno
    return 0


def sys_mkdir(kernel, thread: Thread, args) -> int:
    path = _resolve(thread.process, _read_cstr(thread.process, args[0]))
    try:
        kernel.vfs.mkdir(path)
    except VFSError as exc:
        return -exc.errno
    return 0


def sys_getcwd(kernel, thread: Thread, args) -> int:
    buf, size = args[0], args[1]
    cwd = thread.process.cwd.encode() + b"\x00"
    if len(cwd) > size:
        return -Errno.ERANGE
    if buf:
        thread.process.address_space.write_kernel(buf, cwd)
    return len(cwd)


def sys_chdir(kernel, thread: Thread, args) -> int:
    path = _resolve(thread.process, _read_cstr(thread.process, args[0]))
    if not kernel.vfs.is_dir(path):
        return -Errno.ENOENT
    thread.process.cwd = path
    return 0


def sys_fsync(kernel, thread: Thread, args) -> int:
    try:
        thread.process.get_fd(args[0])
    except VFSError as exc:
        return -exc.errno
    return 0


def sys_dup(kernel, thread: Thread, args) -> int:
    try:
        descriptor = thread.process.get_fd(args[0])
    except VFSError as exc:
        return -exc.errno
    return thread.process.alloc_fd(descriptor)


def sys_fcntl(kernel, thread: Thread, args) -> int:
    return 0


def sys_ioctl(kernel, thread: Thread, args) -> int:
    return -Errno.ENOTTY


# ---------------------------------------------------------------------- memory


def sys_mmap(kernel, thread: Thread, args) -> int:
    addr, length, prot, flags, fd = args[0], args[1], args[2], args[3], args[4]
    if length == 0:
        return -Errno.EINVAL
    name = "[anon]"
    if not flags & MAP_ANONYMOUS and fd < (1 << 63):
        try:
            descriptor = thread.process.get_fd(fd)
        except VFSError as exc:
            return -exc.errno
        if isinstance(descriptor, FileFD):
            name = descriptor.inode.path
    try:
        base = thread.process.address_space.mmap(
            addr if addr else None, length, Prot(prot & 0x7), name=name,
            fixed=bool(flags & MAP_FIXED))
    except MapError:
        return -Errno.EINVAL
    if flags & MAP_FIXED:
        # A fixed mapping replaces whatever lived there: like munmap, real
        # kernels shoot down every core's stale decodes for the range.
        kernel.icache_shootdown(thread.process, base,
                                round_up_pages(length))
    return base


def sys_munmap(kernel, thread: Thread, args) -> int:
    start, length = args[0], args[1]
    try:
        thread.process.address_space.munmap(start, length)
    except MapError:
        return -Errno.EINVAL
    # Unmapping is an IPI-backed TLB/icache shootdown on every core: any
    # recorded block or decoded line overlapping the (page-rounded) range
    # must go, or stale code keeps executing from unmapped pages.  This
    # covers partial-region unmaps that split a region, too — invalidation
    # is by page range, not by region.
    kernel.icache_shootdown(thread.process, start, round_up_pages(length))
    return 0


def sys_mprotect(kernel, thread: Thread, args) -> int:
    kernel.cycles.charge(Event.MPROTECT)
    try:
        thread.process.address_space.mprotect(args[0], args[1],
                                              Prot(args[2] & 0x7))
    except MapError:
        return -Errno.EINVAL
    # Deliberately NO icache shootdown: mprotect leaves already-decoded
    # lines in place (the P5 stale-decode window interposers patch inside).
    kernel.notify_prot_change(thread, args[0], args[1], args[2] & 0x7)
    return 0


def sys_pkey_mprotect(kernel, thread: Thread, args) -> int:
    kernel.cycles.charge(Event.MPROTECT)
    try:
        thread.process.address_space.pkey_mprotect(
            args[0], args[1], Prot(args[2] & 0x7), args[3])
    except MapError:
        return -Errno.EINVAL
    kernel.notify_prot_change(thread, args[0], args[1], args[2] & 0x7)
    return 0


def sys_pkey_alloc(kernel, thread: Thread, args) -> int:
    used = getattr(thread.process, "_pkeys_used", None)
    if used is None:
        used = thread.process._pkeys_used = [0]
    for key in range(1, 16):
        if key not in used:
            used.append(key)
            return key
    return -Errno.EINVAL


def sys_pkey_free(kernel, thread: Thread, args) -> int:
    used = getattr(thread.process, "_pkeys_used", [0])
    if args[0] in used and args[0] != 0:
        used.remove(args[0])
        return 0
    return -Errno.EINVAL


def sys_brk(kernel, thread: Thread, args) -> int:
    process = thread.process
    request = args[0]
    if process.brk_cursor == 0:
        process.brk_cursor = process.address_space.mmap(
            None, PAGE_SIZE, Prot.READ | Prot.WRITE, name="[heap]")
    if request == 0 or request <= process.brk_cursor:
        return process.brk_cursor
    grow = round_up_pages(request - process.brk_cursor)
    try:
        process.address_space.mmap(process.brk_cursor + PAGE_SIZE, grow,
                                   Prot.READ | Prot.WRITE, name="[heap]",
                                   fixed=True)
    except MapError:
        return process.brk_cursor
    process.brk_cursor = request
    return process.brk_cursor


# ------------------------------------------------------------------- identity/time


def sys_getpid(kernel, thread: Thread, args) -> int:
    return thread.process.pid


def sys_gettid(kernel, thread: Thread, args) -> int:
    return thread.tid


def sys_getppid(kernel, thread: Thread, args) -> int:
    parent = thread.process.parent
    return parent.pid if parent else 1


def sys_getuid(kernel, thread: Thread, args) -> int:
    return 1000


def sys_uname(kernel, thread: Thread, args) -> int:
    if args[0]:
        blob = b"Linux\x00repro\x006.8.0-sim\x00"
        thread.process.address_space.write_kernel(args[0], blob)
    return 0


def sys_clock_gettime(kernel, thread: Thread, args) -> int:
    ns = kernel.now_ns()
    if args[1]:
        payload = struct.pack("<qq", ns // 1_000_000_000, ns % 1_000_000_000)
        thread.process.address_space.write_kernel(args[1], payload)
    return 0


def sys_gettimeofday(kernel, thread: Thread, args) -> int:
    ns = kernel.now_ns()
    if args[0]:
        payload = struct.pack("<qq", ns // 1_000_000_000,
                              (ns % 1_000_000_000) // 1000)
        thread.process.address_space.write_kernel(args[0], payload)
    return 0


def sys_nanosleep(kernel, thread: Thread, args) -> int:
    if args[0]:
        sec, nsec = struct.unpack(
            "<qq", thread.process.address_space.read_kernel(args[0], 16))
        kernel.cycles.charge_cycles(int((sec * 1_000_000_000 + nsec) * 3.2),
                                    label="nanosleep")
    return 0


def sys_sched_yield(kernel, thread: Thread, args) -> int:
    return 0


def sys_getrandom(kernel, thread: Thread, args) -> int:
    buf, count = args[0], args[1]
    data = bytes(kernel.rng.getrandbits(8) for _ in range(min(count, 256)))
    if kernel.recorder is not None:
        # The nondeterministic-input seam for record/replay: the drawn
        # bytes come from the seeded kernel RNG (whose state checkpoints
        # capture), so the log entry is the replay-side cross-check, not
        # the reproduction source.
        kernel.recorder.on_nondet("getrandom",
                                  {"pid": thread.process.pid,
                                   "count": count, "data": data.hex()})
    if buf:
        thread.process.address_space.write_kernel(buf, data)
    return len(data)


def sys_futex(kernel, thread: Thread, args) -> int:
    return 0


def sys_rt_sigprocmask(kernel, thread: Thread, args) -> int:
    return 0


def sys_arch_prctl(kernel, thread: Thread, args) -> int:
    return 0


def sys_setpriority(kernel, thread: Thread, args) -> int:
    return 0


# ---------------------------------------------------------------------- signals


def sys_rt_sigaction(kernel, thread: Thread, args) -> int:
    """Register a *simulated* handler address for a signal.

    Host-level interposer handlers register through
    ``Process.dispositions.set_action`` directly (they are not addressable
    from simulated code); applications use this syscall.
    """
    signal, handler = args[0], args[1]
    thread.process.dispositions.set_action(signal, handler or None)
    return 0


def sys_rt_sigreturn(kernel, thread: Thread, args) -> Optional[int]:
    frames = thread.signal_frames
    if not frames:
        return -Errno.EINVAL
    kernel.cycles.charge(Event.SIGRETURN)
    signal, saved = frames.pop()
    thread.blocked_signals.discard(signal)
    thread.context.restore(saved)
    thread._just_execed = True  # suppress result/clobber writes
    # The mask just cleared: deliver anything that queued while the
    # handler ran (possibly pushing a fresh frame for the same signal).
    kernel.flush_pending_signals(thread)
    return None


def sys_kill(kernel, thread: Thread, args) -> int:
    target = kernel.find_process(args[0])
    if target is None:
        return -Errno.ESRCH
    signal = args[1]
    if target is thread.process:
        # Route through normal delivery so handlers, masking, and the
        # core-dump/terminate classification all apply; an unhandled fatal
        # signal raises ProcessKilled out of this frame exactly as before.
        kernel.deliver_signal(thread, signal)
        return 0
    from repro.kernel.signals import default_action

    try:
        # Cross-process: apply the target's disposition.  Handler-equipped
        # targets would need a cross-thread delivery queue; the simulator's
        # drivers only ever kill with default-disposition signals.
        if target.dispositions.get_action(signal) is None:
            default_action(signal)
    except ProcessExited as exc:
        target.terminate(exc.status)
        target.core_dumped = bool(getattr(exc, "core", False))
    return 0


# ---------------------------------------------------------------------- prctl/SUD


def sys_prctl(kernel, thread: Thread, args) -> int:
    option = args[0]
    if option == PR_SET_SYSCALL_USER_DISPATCH:
        mode = args[1]
        if mode == PR_SYS_DISPATCH_ON:
            thread.sud.arm(allow_start=args[2], allow_len=args[3],
                           selector_addr=args[4])
            thread.process.sud_armed_ever = True
            return 0
        if mode == PR_SYS_DISPATCH_OFF:
            # The P1b lever: nothing in the vanilla kernel stops a process
            # from disarming its own dispatch.
            thread.sud.disarm()
            return 0
        return -Errno.EINVAL
    return 0


def sys_ptrace(kernel, thread: Thread, args) -> int:
    # Simulated-code tracers are not supported; tracers are host-level
    # (repro.kernel.ptrace.Tracer).  PTRACE_TRACEME succeeds as a no-op so
    # loader stubs behave.
    return 0 if args[0] == 0 else -Errno.EPERM


# ---------------------------------------------------------------------- sockets


def sys_socket(kernel, thread: Thread, args) -> int:
    return thread.process.alloc_fd(SocketFD())


def sys_bind(kernel, thread: Thread, args) -> int:
    descriptor = thread.process.get_fd(args[0])
    if not isinstance(descriptor, SocketFD):
        return -Errno.EINVAL
    descriptor.pending_port = args[1]  # simplified: port passed directly
    return 0


def sys_listen(kernel, thread: Thread, args) -> int:
    process = thread.process
    descriptor = process.get_fd(args[0])
    if not isinstance(descriptor, SocketFD):
        return -Errno.EINVAL
    port = getattr(descriptor, "pending_port", None)
    if port is None:
        return -Errno.EINVAL
    try:
        listener = kernel.net.bind_listen(port, args[1] or 128)
    except Exception:
        return -Errno.EADDRINUSE
    process.fds[args[0]] = ListenFD(listener)
    return 0


#: accept4 flag: the accept itself (not the new socket) is non-blocking.
SOCK_NONBLOCK = 0x800


def sys_accept(kernel, thread: Thread, args):
    descriptor = thread.process.get_fd(args[0])
    if not isinstance(descriptor, ListenFD):
        return -Errno.EINVAL
    listener = descriptor.listener
    if not listener.pending:
        # accept4(SOCK_NONBLOCK): multi-worker servers race on a shared
        # level-triggered listener; the losers must see EAGAIN and
        # return to epoll_wait instead of parking forever.
        if args[3] & SOCK_NONBLOCK:
            return -Errno.EAGAIN
        return _block(thread, lambda: listener.has_pending or listener.closed)
    connection = listener.pending.popleft()
    return thread.process.alloc_fd(SocketFD(connection))


def sys_recvfrom(kernel, thread: Thread, args):
    fd, buf, count = args[0], args[1], min(args[2], MAX_RW_COUNT)
    descriptor = thread.process.get_fd(fd)
    if not isinstance(descriptor, SocketFD) or descriptor.connection is None:
        return -Errno.EINVAL
    connection = descriptor.connection
    chunk = connection.server_recv(count)
    if chunk is None:
        return _block(thread, lambda: connection.server_readable)
    if chunk and buf:
        thread.process.address_space.write_kernel(buf, chunk)
    _charge_copy(kernel, len(chunk))
    return len(chunk)


def sys_sendto(kernel, thread: Thread, args) -> int:
    fd, buf, count = args[0], args[1], min(args[2], MAX_RW_COUNT)
    descriptor = thread.process.get_fd(fd)
    if not isinstance(descriptor, SocketFD) or descriptor.connection is None:
        return -Errno.EINVAL
    data = _user_buffer(thread.process, buf, count)
    if data is None:
        return -Errno.EFAULT
    _charge_copy(kernel, len(data))
    return descriptor.connection.server_send(data)


def sys_shutdown(kernel, thread: Thread, args) -> int:
    descriptor = thread.process.get_fd(args[0])
    if isinstance(descriptor, SocketFD) and descriptor.connection:
        descriptor.connection.server_close()
        return 0
    return -Errno.EINVAL


def sys_connect(kernel, thread: Thread, args) -> int:
    return -Errno.ECONNREFUSED  # simulated clients are host-level drivers


# ------------------------------------------------------------------------ epoll


def sys_epoll_create(kernel, thread: Thread, args) -> int:
    return thread.process.alloc_fd(EpollFD())


def sys_epoll_ctl(kernel, thread: Thread, args) -> int:
    epfd, op, fd = args[0], args[1], args[2]
    descriptor = thread.process.get_fd(epfd)
    if not isinstance(descriptor, EpollFD):
        return -Errno.EINVAL
    if op == EPOLL_CTL_ADD and fd not in descriptor.watched:
        descriptor.watched.append(fd)
    elif op == EPOLL_CTL_DEL and fd in descriptor.watched:
        descriptor.watched.remove(fd)
    return 0


def _epoll_ready(process: Process, epoll: EpollFD) -> List[int]:
    ready = []
    for fd in epoll.watched:
        descriptor = process.fds.get(fd)
        if isinstance(descriptor, ListenFD) and descriptor.listener.has_pending:
            ready.append(fd)
        elif (isinstance(descriptor, SocketFD) and descriptor.connection
              and descriptor.connection.server_readable):
            ready.append(fd)
    return ready


def sys_epoll_wait(kernel, thread: Thread, args):
    epfd, events_buf, max_events = args[0], args[1], args[2]
    descriptor = thread.process.get_fd(epfd)
    if not isinstance(descriptor, EpollFD):
        return -Errno.EINVAL
    process = thread.process
    ready = _epoll_ready(process, descriptor)
    if not ready:
        return _block(thread, lambda: bool(_epoll_ready(process, descriptor)))
    ready = ready[:max_events]
    if events_buf:
        blob = b"".join(struct.pack("<Q", fd) for fd in ready)
        process.address_space.write_kernel(events_buf, blob)
    return len(ready)


# ----------------------------------------------------------------- process mgmt


def sys_exit(kernel, thread: Thread, args) -> None:
    raise ProcessExited(args[0] & 0xFF)


def sys_fork(kernel, thread: Thread, args) -> int:
    import copy as _copy

    parent = thread.process
    child = Process(kernel, kernel.new_pid(), parent.path,
                    list(parent.argv), dict(parent.env))
    child.address_space = parent.address_space.fork_copy()
    child.cwd = parent.cwd
    child.fds = dict(parent.fds)
    child._next_fd = parent._next_fd
    child.dispositions = parent.dispositions.copy()
    child.parent = parent
    child.sud_armed_ever = parent.sud_armed_ever
    child.vdso_enabled = parent.vdso_enabled
    child.brk_cursor = parent.brk_cursor
    child.loaded_images = dict(parent.loaded_images)
    try:
        child.interposer_state = _copy.deepcopy(parent.interposer_state)
    except Exception:
        child.interposer_state = dict(parent.interposer_state)
    child.seccomp = parent.seccomp.copy()  # filters are inherited
    if parent.premain_log_len > 0:
        # A child forked after main entry starts in main phase: the
        # pre-main exclusion covers loader/interposer-constructor traffic,
        # which the child inherits rather than re-executing, and the fork
        # point itself is app-aligned across mechanisms — so forked
        # workers stay visible to occurrence-counted fault injection.
        child.premain_log_len = len(kernel.syscall_log)
    child_thread = child.spawn_thread(core_id=thread.core_id)
    child_thread.context.restore(thread.context.save())
    child_thread.context.set_syscall_result(0)  # fork returns 0 in the child
    child_thread.sud = thread.sud.copy()
    parent.children.append(child)
    kernel.processes[child.pid] = child
    kernel.emit_lifecycle("spawn", child)
    return child.pid


def sys_clone(kernel, thread: Thread, args) -> int:
    """``clone(2)``, raw-ABI argument order: (flags, stack, ptid, ctid, tls).

    ``CLONE_VM|CLONE_THREAD`` creates a sibling thread in the calling
    process; anything else degenerates to :func:`sys_fork`.  Per-thread SUD
    state is *inherited* by the new thread (Linux copies the parent's
    ``syscall_user_dispatch`` config in ``copy_thread``), and the
    process-wide ``sud_armed_ever`` slow-path flag is untouched — it lives
    on the process, so every thread created after any arm keeps paying the
    armed slow path even if the arming thread has since disarmed.
    """
    flags, child_stack = args[0], args[1]
    if flags & CLONE_VM and flags & CLONE_THREAD:
        child = thread.process.spawn_thread()
        child.context.restore(thread.context.save())
        child.context.set_syscall_result(0)  # clone returns 0 in the child
        # The child resumes past the syscall with the kernel's usual
        # RCX/R11 clobber already applied (it never re-enters dispatch).
        child.context.set(Reg.RCX, child.context.rip)
        child.context.set(Reg.R11, 0x202)
        if child_stack:
            child.context.set(Reg.RSP, child_stack)
        child.sud = thread.sud.copy()
        return child.tid
    return sys_fork(kernel, thread, args)


def sys_wait4(kernel, thread: Thread, args):
    wanted, status_ptr = args[0], args[1]
    process = thread.process

    def reapable() -> Optional[Process]:
        for child in process.children:
            if child.exited and not getattr(child, "_reaped", False):
                if wanted in (0, child.pid) or wanted >= (1 << 63):
                    return child
        return None

    child = reapable()
    if child is None:
        if not process.children:
            return -Errno.ECHILD
        return _block(thread, lambda: reapable() is not None)
    child._reaped = True
    if status_ptr:
        process.address_space.write_kernel(
            status_ptr, struct.pack("<i", (child.exit_status or 0) << 8))
    return child.pid


def sys_execve(kernel, thread: Thread, args) -> Optional[int]:
    process = thread.process
    try:
        path = _read_cstr(process, args[0])
        argv_ptrs = _read_ptr_array(process, args[1])
        envp_ptrs = _read_ptr_array(process, args[2])
        argv = [_read_cstr(process, p) for p in argv_ptrs]
        env_list = [_read_cstr(process, p) for p in envp_ptrs]
    except SegmentationFault:
        return -Errno.EFAULT
    return do_execve(kernel, thread, path, argv or [path], env_list)


def do_execve(kernel, thread: Thread, path: str, argv: List[str],
              env_list: List[str]) -> Optional[int]:
    """The exec machinery, shared by the syscall and host-level callers.

    ``env_list`` is exactly what the caller passed — an empty list really
    does produce an empty environment (the P1a scenario), unless an attached
    ptracer rewrites it (the K23 fix).
    """
    process = thread.process
    path = _resolve(process, path)
    if not kernel.vfs.exists(path):
        return -Errno.ENOENT
    env = {}
    for entry in env_list:
        key, _, value = entry.partition("=")
        if key:
            env[key] = value

    tracer = process.tracer
    if tracer is not None and not tracer.detached:
        hook = getattr(tracer, "on_execve", None)
        if hook is not None:
            env = hook(process, path, argv, env)

    # Tear down the old image (Linux execve semantics).
    from repro.memory.address_space import AddressSpace

    process.address_space = AddressSpace()
    process.fds = {}
    process._next_fd = 3
    process.dispositions = type(process.dispositions)()
    process.sud_armed_ever = False
    process.brk_cursor = 0
    process.loaded_images = {}
    process.interposer_state = {}
    process.path = path
    process.argv = list(argv)
    process.env = env
    process.vdso_enabled = not (tracer is not None and not tracer.detached
                                and tracer.disable_vdso)
    process.threads = [thread]
    # SUD does not survive exec (the kernel clears the config with the rest
    # of the mm), and neither do signal frames, masks, or queued signals —
    # they reference the torn-down image.
    thread.sud.disarm()
    thread.sud.selector_addr = 0
    thread.sud.allow_start = 0
    thread.sud.allow_len = 0
    thread.signal_frames.clear()
    thread.blocked_signals.clear()
    thread.pending_signals.clear()
    thread._sud_restart_credit = False
    thread.icache.flush_all()
    fresh = thread.context.__class__()
    thread.context.restore(fresh.save())

    kernel.loader.load_into(process, path, argv, env)
    thread._just_execed = True
    kernel.emit_lifecycle("exec", process)
    return None


def sys_exit_group(kernel, thread: Thread, args) -> None:
    raise ProcessExited(args[0] & 0xFF)


# ------------------------------------------------------------------------- table

SYSCALL_TABLE: Dict[int, Callable] = {
    Nr.read: sys_read,
    Nr.write: sys_write,
    Nr.open: sys_open,
    Nr.openat: sys_openat,
    Nr.close: sys_close,
    Nr.lseek: sys_lseek,
    Nr.stat: sys_stat,
    Nr.fstat: sys_fstat,
    Nr.newfstatat: sys_newfstatat,
    Nr.access: sys_access,
    Nr.getdents64: sys_getdents64,
    Nr.unlink: sys_unlink,
    Nr.mkdir: sys_mkdir,
    Nr.getcwd: sys_getcwd,
    Nr.chdir: sys_chdir,
    Nr.fsync: sys_fsync,
    Nr.fdatasync: sys_fsync,
    Nr.dup: sys_dup,
    Nr.fcntl: sys_fcntl,
    Nr.ioctl: sys_ioctl,
    Nr.mmap: sys_mmap,
    Nr.munmap: sys_munmap,
    Nr.mprotect: sys_mprotect,
    Nr.pkey_mprotect: sys_pkey_mprotect,
    Nr.pkey_alloc: sys_pkey_alloc,
    Nr.pkey_free: sys_pkey_free,
    Nr.brk: sys_brk,
    Nr.getpid: sys_getpid,
    Nr.gettid: sys_gettid,
    Nr.getppid: sys_getppid,
    Nr.getuid: sys_getuid,
    Nr.uname: sys_uname,
    Nr.clock_gettime: sys_clock_gettime,
    Nr.gettimeofday: sys_gettimeofday,
    Nr.nanosleep: sys_nanosleep,
    Nr.sched_yield: sys_sched_yield,
    Nr.getrandom: sys_getrandom,
    Nr.futex: sys_futex,
    Nr.rt_sigprocmask: sys_rt_sigprocmask,
    Nr.arch_prctl: sys_arch_prctl,
    Nr.setpriority: sys_setpriority,
    Nr.rt_sigaction: sys_rt_sigaction,
    Nr.rt_sigreturn: sys_rt_sigreturn,
    Nr.kill: sys_kill,
    Nr.prctl: sys_prctl,
    Nr.ptrace: sys_ptrace,
    Nr.socket: sys_socket,
    Nr.bind: sys_bind,
    Nr.listen: sys_listen,
    Nr.accept: sys_accept,
    Nr.recvfrom: sys_recvfrom,
    Nr.sendto: sys_sendto,
    Nr.shutdown: sys_shutdown,
    Nr.connect: sys_connect,
    Nr.epoll_create: sys_epoll_create,
    Nr.epoll_ctl: sys_epoll_ctl,
    Nr.epoll_wait: sys_epoll_wait,
    Nr.exit: sys_exit,
    Nr.exit_group: sys_exit_group,
    Nr.clone: sys_clone,
    Nr.fork: sys_fork,
    Nr.wait4: sys_wait4,
    Nr.execve: sys_execve,
}
