"""Signal actions and delivery.

Two kinds of handlers exist:

- **host handlers** — Python callables registered by interposer libraries
  (their SIGSYS logic).  They receive a :class:`SignalContext` whose register
  snapshot they may mutate; returning performs ``rt_sigreturn`` semantics
  (the possibly-modified context is restored).  This mirrors the
  "modify the signal context directly" technique of zpoline/lazypoline
  (§2.1), which avoids allowlisting the handler's return ``syscall``.
- **simulated handlers** — a code address in the target; the kernel pushes a
  frame and redirects RIP (used by application-level handlers in tests).

Default dispositions follow Linux: SIGSEGV/SIGILL/SIGTRAP/SIGSYS/SIGABRT
terminate the process; SIGCHLD is ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

from repro.errors import ProcessKilled
from repro.kernel.syscalls import SIGCHLD, SIGNAL_NAMES

#: Signals whose default action terminates the process.
_FATAL_BY_DEFAULT = frozenset(SIGNAL_NAMES) - {SIGCHLD}


@dataclass
class SignalContext:
    """The ucontext handed to a host signal handler.

    Attributes:
        signal: delivered signal number.
        thread: the faulting/dispatching thread (handlers may inspect the
            process through it, e.g. ``/proc`` parsing in libLogger).
        saved: mutable register snapshot (``CpuContext.save()`` format);
            mutations take effect at sigreturn.
        fault_rip: RIP of the *triggering* instruction (for SIGSYS: the
            address of the ``syscall``/``sysenter`` itself — what libLogger
            records and lazypoline rewrites).
        info: free-form extras (syscall number for SIGSYS, fault address for
            SIGSEGV).
    """

    signal: int
    thread: object
    saved: Dict
    fault_rip: int
    info: Dict = field(default_factory=dict)

    def set_return_value(self, value: int) -> None:
        """Set RAX in the saved context (the syscall-emulation idiom)."""
        from repro.arch.registers import Reg

        self.saved["regs"][Reg.RAX] = value & (1 << 64) - 1

    def set_resume_rip(self, address: int) -> None:
        """Redirect where sigreturn resumes execution."""
        self.saved["rip"] = address


#: A host handler takes the SignalContext; a simulated handler is a code
#: address.
Handler = Union[Callable[[SignalContext], None], int]


class SignalDispositions:
    """Per-process signal action table."""

    def __init__(self) -> None:
        self._actions: Dict[int, Handler] = {}

    def set_action(self, signal: int, handler: Optional[Handler]) -> None:
        if handler is None:
            self._actions.pop(signal, None)
        else:
            self._actions[signal] = handler

    def get_action(self, signal: int) -> Optional[Handler]:
        return self._actions.get(signal)

    def copy(self) -> "SignalDispositions":
        clone = SignalDispositions()
        clone._actions = dict(self._actions)
        return clone


def default_action(signal: int, detail: str = "") -> None:
    """Apply the default disposition for *signal*."""
    if signal in _FATAL_BY_DEFAULT:
        raise ProcessKilled(signal, detail or SIGNAL_NAMES.get(signal, str(signal)))
    # Ignored by default (SIGCHLD).
