"""Signal actions and delivery.

Two kinds of handlers exist:

- **host handlers** — Python callables registered by interposer libraries
  (their SIGSYS logic).  They receive a :class:`SignalContext` whose register
  snapshot they may mutate; returning performs ``rt_sigreturn`` semantics
  (the possibly-modified context is restored).  This mirrors the
  "modify the signal context directly" technique of zpoline/lazypoline
  (§2.1), which avoids allowlisting the handler's return ``syscall``.
- **simulated handlers** — a code address in the target; the kernel pushes a
  frame and redirects RIP (used by application-level handlers in tests).

Default dispositions follow Linux's signal(7) table: SIGSEGV/SIGILL/
SIGTRAP/SIGSYS/SIGABRT/SIGBUS/SIGFPE/SIGQUIT dump core, the remaining
fatal signals terminate without a core, and SIGCHLD/SIGURG/SIGWINCH are
ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

from repro.errors import ProcessKilled
from repro.kernel.syscalls import (SIGABRT, SIGBUS, SIGCHLD, SIGFPE, SIGILL,
                                   SIGNAL_NAMES, SIGQUIT, SIGSEGV, SIGSYS,
                                   SIGTRAP, SIGURG, SIGWINCH)

#: Signals whose default action is *Ign* in signal(7).
_IGNORED_BY_DEFAULT = frozenset({SIGCHLD, SIGURG, SIGWINCH})

#: Signals whose default action is *Core* in signal(7); every other fatal
#: default is plain *Term*.
_CORE_BY_DEFAULT = frozenset({SIGQUIT, SIGILL, SIGTRAP, SIGABRT, SIGBUS,
                              SIGFPE, SIGSEGV, SIGSYS})

#: Signals whose default action terminates the process.
_FATAL_BY_DEFAULT = frozenset(SIGNAL_NAMES) - _IGNORED_BY_DEFAULT


@dataclass
class SignalContext:
    """The ucontext handed to a host signal handler.

    Attributes:
        signal: delivered signal number.
        thread: the faulting/dispatching thread (handlers may inspect the
            process through it, e.g. ``/proc`` parsing in libLogger).
        saved: mutable register snapshot (``CpuContext.save()`` format);
            mutations take effect at sigreturn.
        fault_rip: RIP of the *triggering* instruction (for SIGSYS: the
            address of the ``syscall``/``sysenter`` itself — what libLogger
            records and lazypoline rewrites).
        info: free-form extras (syscall number for SIGSYS, fault address for
            SIGSEGV).
    """

    signal: int
    thread: object
    saved: Dict
    fault_rip: int
    info: Dict = field(default_factory=dict)

    def set_return_value(self, value: int) -> None:
        """Set RAX in the saved context (the syscall-emulation idiom)."""
        from repro.arch.registers import Reg

        self.saved["regs"][Reg.RAX] = value & (1 << 64) - 1

    def set_resume_rip(self, address: int) -> None:
        """Redirect where sigreturn resumes execution."""
        self.saved["rip"] = address


#: A host handler takes the SignalContext; a simulated handler is a code
#: address.
Handler = Union[Callable[[SignalContext], None], int]


class SignalDispositions:
    """Per-process signal action table."""

    def __init__(self) -> None:
        self._actions: Dict[int, Handler] = {}

    def set_action(self, signal: int, handler: Optional[Handler]) -> None:
        if handler is None:
            self._actions.pop(signal, None)
        else:
            self._actions[signal] = handler

    def get_action(self, signal: int) -> Optional[Handler]:
        return self._actions.get(signal)

    def copy(self) -> "SignalDispositions":
        clone = SignalDispositions()
        clone._actions = dict(self._actions)
        return clone


def default_action(signal: int, detail: str = "") -> None:
    """Apply the default disposition for *signal*.

    Fatal signals raise :class:`ProcessKilled`, with ``core=True`` for the
    *Core* rows of signal(7) (SIGSEGV, SIGSYS, ...) and ``core=False`` for
    the plain *Term* rows (SIGTERM, SIGPIPE, ...); *Ign* rows return.
    """
    if signal in _FATAL_BY_DEFAULT:
        raise ProcessKilled(
            signal, detail or SIGNAL_NAMES.get(signal, str(signal)),
            core=signal in _CORE_BY_DEFAULT)
    # Ignored by default (SIGCHLD, SIGURG, SIGWINCH).
