"""seccomp (filter mode) — the third Linux interposition interface.

The paper's offline phase uses SUD but notes that "alternatives include
ptrace or seccomp" (§5.1), and §1 discusses seccomp's trade-off: either
comparable overheads or restricted expressiveness (no deep pointer
inspection in the filter itself).  This module implements the
``SECCOMP_RET_TRAP`` subset those use cases need: a per-process filter
evaluated at syscall entry that can allow the call, fail it with an errno,
or convert it into a SIGSYS for a user-space handler.

Faithful to the interface's limits, the filter sees only the syscall
number and raw argument *values* — never dereferenced memory — which is
exactly the expressiveness restriction the paper contrasts with SUD.

Filters are installed through the host-level API
(:meth:`SeccompState.install`), standing in for the BPF program upload;
the evaluation cost per syscall is charged via ``Event.KERNEL_SYSCALL_WORK``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

#: Cycles to evaluate a (short) filter program at syscall entry.
SECCOMP_FILTER_COST = 55


class Action(enum.IntEnum):
    """Filter verdicts (subset of SECCOMP_RET_*)."""

    ALLOW = 0x7FFF0000
    TRAP = 0x00030000
    ERRNO = 0x00050000


@dataclass(frozen=True)
class Verdict:
    """A filter's decision for one syscall."""

    action: Action
    errno: int = 0


#: A filter program: (nr, args) -> Verdict.  Pointer arguments arrive as
#: raw integers — dereferencing is impossible, as on real seccomp.
FilterProgram = Callable[[int, Sequence[int]], Verdict]


def trap_all_except(allowed: Sequence[int]) -> FilterProgram:
    """The logging idiom: TRAP everything except *allowed* numbers."""
    allowed_set = frozenset(int(nr) for nr in allowed)

    def program(nr: int, args: Sequence[int]) -> Verdict:
        if nr in allowed_set:
            return Verdict(Action.ALLOW)
        return Verdict(Action.TRAP)

    return program


def deny_with_errno(denied: Sequence[int], errno: int) -> FilterProgram:
    """The sandbox idiom: fail *denied* numbers with *errno*."""
    denied_set = frozenset(int(nr) for nr in denied)

    def program(nr: int, args: Sequence[int]) -> Verdict:
        if nr in denied_set:
            return Verdict(Action.ERRNO, errno)
        return Verdict(Action.ALLOW)

    return program


class SeccompState:
    """Per-process seccomp state: a stack of filters, most-restrictive wins
    (Linux evaluates all attached filters and takes the highest-priority
    verdict; TRAP > ERRNO > ALLOW in this subset)."""

    def __init__(self) -> None:
        self._filters: List[FilterProgram] = []

    def install(self, program: FilterProgram) -> None:
        self._filters.append(program)

    @property
    def active(self) -> bool:
        return bool(self._filters)

    def evaluate(self, nr: int, args: Sequence[int]) -> Verdict:
        verdict = Verdict(Action.ALLOW)
        for program in self._filters:
            candidate = program(nr, list(args))
            if candidate.action == Action.TRAP:
                return candidate
            if candidate.action == Action.ERRNO:
                verdict = candidate
        return verdict

    def copy(self) -> "SeccompState":
        clone = SeccompState()
        clone._filters = list(self._filters)  # filters are inherited (fork)
        return clone
