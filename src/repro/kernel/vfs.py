"""In-memory filesystem.

Holds regular files (bytes), directories, and — because simulated binaries
are host objects — an optional ``image`` attached to executable files.  The
K23 offline phase writes its logs here, and §5.3's "mark the log directory
immutable" hardening is the :attr:`Inode.immutable` bit enforced on every
mutating operation.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import VFSError
from repro.kernel.syscalls import Errno


@dataclass
class Inode:
    """One filesystem object.

    Attributes:
        path: absolute path (canonical key).
        is_dir: directory flag.
        data: file contents (empty for directories).
        image: optional host-side program image for executables/libraries.
        immutable: chattr +i — rejects writes, truncation, and unlinking of
            the inode and (for directories) creation/removal of entries.
        mode: permission bits (informational).
    """

    path: str
    is_dir: bool = False
    data: bytearray = field(default_factory=bytearray)
    image: object = None
    immutable: bool = False
    mode: int = 0o644


def _canon(path: str) -> str:
    if not path.startswith("/"):
        raise VFSError(Errno.EINVAL, f"VFS paths must be absolute: {path!r}")
    return posixpath.normpath(path)


class VFS:
    """A path-indexed in-memory filesystem."""

    def __init__(self) -> None:
        self._inodes: Dict[str, Inode] = {}
        self.mkdir("/", exist_ok=True)

    # -- lookup ---------------------------------------------------------------

    def lookup(self, path: str) -> Inode:
        inode = self._inodes.get(_canon(path))
        if inode is None:
            raise VFSError(Errno.ENOENT, f"no such file: {path}")
        return inode

    def exists(self, path: str) -> bool:
        return _canon(path) in self._inodes

    def is_dir(self, path: str) -> bool:
        return self.exists(path) and self.lookup(path).is_dir

    # -- directory operations ----------------------------------------------------

    def mkdir(self, path: str, exist_ok: bool = False, parents: bool = True) -> Inode:
        path = _canon(path)
        if path in self._inodes:
            if exist_ok and self._inodes[path].is_dir:
                return self._inodes[path]
            raise VFSError(Errno.EEXIST, f"exists: {path}")
        parent = posixpath.dirname(path)
        if path != "/":
            if parent not in self._inodes:
                if not parents:
                    raise VFSError(Errno.ENOENT, f"no parent: {parent}")
                self.mkdir(parent, exist_ok=True, parents=True)
            self._check_dir_mutable(parent)
        inode = Inode(path=path, is_dir=True, mode=0o755)
        self._inodes[path] = inode
        return inode

    def listdir(self, path: str) -> List[str]:
        path = _canon(path)
        directory = self.lookup(path)
        if not directory.is_dir:
            raise VFSError(Errno.ENOTDIR, f"not a directory: {path}")
        prefix = path if path.endswith("/") else path + "/"
        names = []
        for candidate in self._inodes:
            if candidate != path and candidate.startswith(prefix):
                rest = candidate[len(prefix):]
                if "/" not in rest:
                    names.append(rest)
        return sorted(names)

    # -- file operations -------------------------------------------------------------

    def create(self, path: str, data: bytes = b"", image: object = None,
               mode: int = 0o644, exist_ok: bool = True) -> Inode:
        path = _canon(path)
        existing = self._inodes.get(path)
        if existing is not None:
            if not exist_ok or existing.is_dir:
                raise VFSError(Errno.EEXIST, f"exists: {path}")
            if existing.immutable:
                raise VFSError(Errno.EPERM, f"immutable: {path}")
            existing.data = bytearray(data)
            existing.image = image if image is not None else existing.image
            return existing
        parent = posixpath.dirname(path)
        self.mkdir(parent, exist_ok=True)
        self._check_dir_mutable(parent)
        inode = Inode(path=path, data=bytearray(data), image=image, mode=mode)
        self._inodes[path] = inode
        return inode

    def read(self, path: str) -> bytes:
        inode = self.lookup(path)
        if inode.is_dir:
            raise VFSError(Errno.EISDIR, f"is a directory: {path}")
        return bytes(inode.data)

    def append(self, path: str, data: bytes) -> None:
        inode = self.lookup(path)
        if inode.immutable:
            raise VFSError(Errno.EPERM, f"immutable: {path}")
        inode.data.extend(data)

    def truncate(self, path: str) -> None:
        inode = self.lookup(path)
        if inode.immutable:
            raise VFSError(Errno.EPERM, f"immutable: {path}")
        inode.data.clear()

    def unlink(self, path: str) -> None:
        path = _canon(path)
        inode = self.lookup(path)
        if inode.is_dir:
            raise VFSError(Errno.EISDIR, f"is a directory: {path}")
        if inode.immutable:
            raise VFSError(Errno.EPERM, f"immutable: {path}")
        self._check_dir_mutable(posixpath.dirname(path))
        del self._inodes[path]

    # -- immutability (K23 log hardening, §5.3) ------------------------------------------

    def set_immutable(self, path: str, recursive: bool = True) -> None:
        """chattr +i on *path* (and, for directories, everything under it)."""
        path = _canon(path)
        inode = self.lookup(path)
        inode.immutable = True
        if recursive and inode.is_dir:
            prefix = path if path.endswith("/") else path + "/"
            for candidate, other in self._inodes.items():
                if candidate.startswith(prefix):
                    other.immutable = True

    def _check_dir_mutable(self, path: str) -> None:
        inode = self._inodes.get(_canon(path))
        if inode is not None and inode.immutable:
            raise VFSError(Errno.EPERM, f"immutable directory: {path}")
