"""procfs: synthesized ``/proc`` files.

libLogger resolves trap addresses "by parsing /proc/$PID/maps" (§5.1); this
module makes that literal: opening ``/proc/<pid>/maps`` (or
``/proc/self/maps``) yields the live rendering of the process's address
space, and the maps parser used by the logger consumes exactly that text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

_MAPS_RE = re.compile(
    r"^(?P<start>[0-9a-f]+)-(?P<end>[0-9a-f]+)\s+(?P<perms>[rwxps-]{4})\s+"
    r"(?P<offset>[0-9a-f]+)\s+\S+\s+\d+\s*(?P<path>.*)$")


@dataclass(frozen=True)
class MapsEntry:
    """One parsed ``/proc/$PID/maps`` line."""

    start: int
    end: int
    perms: str
    file_offset: int
    path: str

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    @property
    def executable(self) -> bool:
        return "x" in self.perms

    @property
    def writable(self) -> bool:
        return "w" in self.perms


def render_maps(process) -> bytes:
    """The file contents of ``/proc/<pid>/maps`` for *process*."""
    return ("\n".join(process.address_space.maps()) + "\n").encode()


def parse_maps(text: str) -> List[MapsEntry]:
    """Parse maps text into entries (tolerant of the pathless lines)."""
    entries: List[MapsEntry] = []
    for line in text.splitlines():
        line = line.rstrip()
        if not line:
            continue
        match = _MAPS_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable maps line: {line!r}")
        entries.append(MapsEntry(
            start=int(match.group("start"), 16),
            end=int(match.group("end"), 16),
            perms=match.group("perms"),
            file_offset=int(match.group("offset"), 16),
            path=match.group("path").strip()))
    return entries


def entry_for(entries: List[MapsEntry], address: int) -> Optional[MapsEntry]:
    for entry in entries:
        if entry.contains(address):
            return entry
    return None


def resolve_proc_path(kernel, process, path: str) -> Optional[bytes]:
    """Content for a /proc path opened by *process*, or None if not one we
    synthesize."""
    parts = path.strip("/").split("/")
    if len(parts) != 3 or parts[0] != "proc" or parts[2] != "maps":
        return None
    if parts[1] == "self":
        target = process
    else:
        try:
            target = kernel.find_process(int(parts[1]))
        except ValueError:
            return None
        if target is None:
            return None
    return render_maps(target)
