"""The vDSO: user-space fast paths that never execute a ``syscall``.

Linux maps a small shared object into every process; libc routes
``clock_gettime``/``gettimeofday``/``getcpu``/``time`` through it, so those
"system calls" complete without a ``syscall`` instruction.  Rewriting-based
interposers therefore never see them — half of pitfall P2b.  K23's ptracer
disables the vDSO at startup, forcing libc onto the real syscall path
(§5.2), which is why only K23 observes these calls.

The vDSO body is host-implemented (a ``HOSTCALL`` standing for the pure
user-space gettime code); crucially it is **not** a syscall: SUD does not
trap it, rewriters find no ``0F 05`` in it, and the kernel's syscall
dispatch never runs.  Each invocation is recorded in ``kernel.vdso_calls``
as ground truth for the exhaustiveness experiments.
"""

from __future__ import annotations

import struct

from repro.arch.assembler import Asm
from repro.arch.registers import Reg

#: Symbol names exported by the simulated vDSO.
VDSO_CLOCK_GETTIME = "__vdso_clock_gettime"
VDSO_GETTIMEOFDAY = "__vdso_gettimeofday"


def build_vdso(kernel):
    """Assemble the vDSO image for *kernel*.

    Returns ``(code_bytes, symbols)`` where symbols maps exported names to
    offsets within the blob.
    """

    def _emit(thread, symbol):
        if kernel.bus.enabled:
            from repro.observability.events import VdsoCall

            kernel.bus.emit(VdsoCall(ts=kernel.cycles.cycles,
                                     pid=thread.process.pid, tid=thread.tid,
                                     symbol=symbol, site=thread.context.rip))

    def vdso_clock_gettime(thread):
        """Host body: write the current time into *(rsi) and return 0."""
        kernel.vdso_calls.append(
            (thread.process.pid, VDSO_CLOCK_GETTIME, thread.context.rip)
        )
        _emit(thread, VDSO_CLOCK_GETTIME)
        timespec_ptr = thread.context.get(Reg.RSI)
        ns = kernel.now_ns()
        payload = struct.pack("<qq", ns // 1_000_000_000, ns % 1_000_000_000)
        thread.process.address_space.write_kernel(timespec_ptr, payload)
        thread.context.set(Reg.RAX, 0)

    def vdso_gettimeofday(thread):
        kernel.vdso_calls.append(
            (thread.process.pid, VDSO_GETTIMEOFDAY, thread.context.rip)
        )
        _emit(thread, VDSO_GETTIMEOFDAY)
        timeval_ptr = thread.context.get(Reg.RDI)
        ns = kernel.now_ns()
        payload = struct.pack("<qq", ns // 1_000_000_000,
                              (ns % 1_000_000_000) // 1000)
        thread.process.address_space.write_kernel(timeval_ptr, payload)
        thread.context.set(Reg.RAX, 0)

    clock_idx = kernel.hostcalls.register(vdso_clock_gettime,
                                          VDSO_CLOCK_GETTIME)
    tod_idx = kernel.hostcalls.register(vdso_gettimeofday, VDSO_GETTIMEOFDAY)

    asm = Asm()
    asm.label(VDSO_CLOCK_GETTIME)
    asm.endbr64()
    asm.hostcall(clock_idx)
    asm.ret()
    asm.align(16)
    asm.label(VDSO_GETTIMEOFDAY)
    asm.endbr64()
    asm.hostcall(tod_idx)
    asm.ret()
    return asm.assemble(), dict(asm.labels)
