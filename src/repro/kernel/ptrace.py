"""Cross-process tracing (the ``ptrace`` interface).

K23's online phase starts every target under a ptrace-based tracer
("ptracer", §5.2): the tracer observes *every* syscall from the first
instruction — including the >100 issued by the dynamic loader before any
LD_PRELOAD library exists — can rewrite the environment of ``execve`` calls
(the P1a fix), reads/writes tracee memory and registers, and detaches once
libK23 signals readiness through the fake-syscall protocol (§5.3).

The tracer is modelled as a host-level object rather than a simulated
process: its *logic* runs in Python, while its *cost* is charged faithfully —
two ``PTRACE_STOP`` context-switch round trips per traced syscall plus
tracer-side inspection work, which is exactly why ptrace is unviable as the
steady-state mechanism (§2.1) and why K23 only uses it during startup.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional

from repro.cpu.cycles import Event


class SyscallStop:
    """What the tracer sees at a syscall-entry or -exit stop.

    Mutations through the provided setters are applied to the tracee —
    PTRACE_SETREGS / PTRACE_POKEDATA semantics.
    """

    def __init__(self, thread, entry: bool):
        self.thread = thread
        self.entry = entry

    # -- registers (PTRACE_GETREGS / SETREGS) ---------------------------------

    @property
    def number(self) -> int:
        return self.thread.context.syscall_number

    def args(self, count: int = 6) -> List[int]:
        return self.thread.context.syscall_args(count)

    @property
    def rip(self) -> int:
        """RIP after the syscall instruction (as the kernel reports it)."""
        return self.thread.context.rip

    @property
    def site_rip(self) -> int:
        """Address of the ``syscall`` instruction itself."""
        return self.thread.context.rip - 2

    def set_number(self, number: int) -> None:
        from repro.arch.registers import Reg

        self.thread.context.set(Reg.RAX, number)

    def set_result(self, value: int) -> None:
        self.thread.context.set_syscall_result(value)

    # -- memory (PTRACE_PEEKDATA / POKEDATA, process_vm_readv/writev) -----------

    def peek(self, addr: int, length: int) -> bytes:
        return self.thread.process.address_space.read_kernel(addr, length)

    def poke(self, addr: int, data: bytes) -> None:
        self.thread.process.address_space.write_kernel(addr, data)

    def peek_cstr(self, addr: int, limit: int = 4096) -> str:
        """Read a NUL-terminated string from tracee memory."""
        out = bytearray()
        cursor = addr
        while len(out) < limit:
            byte = self.peek(cursor, 1)
            if byte == b"\x00":
                break
            out += byte
            cursor += 1
        return out.decode("latin-1")


class Tracer:
    """A host-level ptrace tracer attached to one process.

    Subclasses (or callback assignments) implement the policy:
    ``on_syscall_entry`` may rewrite arguments or swallow the call by
    returning ``False``; ``on_syscall_exit`` may rewrite the result.
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self.attached_to = None
        self.detached = False
        #: Ground-truth log of (pid, syscall nr, site rip) the tracer saw.
        self.observed: List[tuple] = []
        self.on_syscall_entry: Optional[Callable[[SyscallStop], Optional[bool]]] = None
        self.on_syscall_exit: Optional[Callable[[SyscallStop], None]] = None
        #: Tracer policy: strip the vDSO from traced children (§5.2).
        self.disable_vdso = True

    # -- attachment ---------------------------------------------------------------

    def attach(self, process) -> None:
        if process.tracer is not None:
            raise RuntimeError(f"pid {process.pid} already traced")
        process.tracer = self
        self.attached_to = process
        self.detached = False
        if self.disable_vdso:
            process.vdso_enabled = False

    def detach(self) -> None:
        if self.attached_to is not None:
            self.attached_to.tracer = None
        self.detached = True

    # -- kernel-side notification hooks ----------------------------------------------

    def _emit_stop(self, thread, entry: bool) -> None:
        bus = self.kernel.bus
        if bus.enabled:
            from repro.observability.events import PtraceStop

            bus.emit(PtraceStop(ts=self.kernel.cycles.cycles,
                                pid=thread.process.pid, tid=thread.tid,
                                nr=thread.context.syscall_number,
                                entry=entry))

    def notify_entry(self, thread) -> bool:
        """Called by the kernel at syscall entry.  Returns False to skip the
        syscall (the tracer emulated/denied it)."""
        self.kernel.cycles.charge(Event.PTRACE_STOP)
        self.kernel.cycles.charge(Event.PTRACE_TRACER_WORK)
        self._emit_stop(thread, entry=True)
        stop = SyscallStop(thread, entry=True)
        self.observed.append((thread.process.pid, stop.number, stop.site_rip))
        if self.on_syscall_entry is not None:
            verdict = self.on_syscall_entry(stop)
            if verdict is False:
                return False
        return True

    def notify_exit(self, thread) -> None:
        self.kernel.cycles.charge(Event.PTRACE_STOP)
        self._emit_stop(thread, entry=False)
        stop = SyscallStop(thread, entry=False)
        if self.on_syscall_exit is not None:
            self.on_syscall_exit(stop)
