"""The simulated kernel: syscall dispatch, signals, scheduling, processes.

Dispatch order at a ``syscall`` instruction mirrors Linux:

1. **Syscall User Dispatch** — if the thread armed SUD and the selector says
   BLOCK (and the site is outside the allowlisted range), the call never
   executes; a SIGSYS is delivered instead.
2. **ptrace** — a traced syscall stops twice (entry/exit) with the tracer
   able to rewrite registers, memory, and the environment of ``execve``.
3. **Execution** — the syscall table runs; once any thread of the process
   has ever armed SUD, every kernel entry also pays the armed-SUD slow path
   (the cost Table 5 isolates as "SUD-no-interposition").

Ground-truth accounting: every *executed* syscall lands in ``syscall_log``
with an origin tag, and every vDSO invocation lands in ``vdso_calls`` — the
raw material for the exhaustiveness experiments (P2a/P2b).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.registers import Reg
from repro.cpu.blocks import run_unit
from repro.cpu.core import HostcallRegistry, step as cpu_step
from repro.cpu.engine import EngineConfig
from repro.cpu.cycles import CycleModel, Event
from repro.errors import (
    Breakpoint,
    Halt,
    InvalidOpcode,
    ProcessExited,
    ProcessKilled,
    SegmentationFault,
)
from repro.kernel.net import NetStack
from repro.kernel.process import Process, Thread
from repro.kernel.syscall_impl import BLOCKED as BLOCKED_SENTINEL, SYSCALL_TABLE
from repro.kernel.signals import SignalContext, default_action
from repro.kernel.syscalls import (
    Errno,
    Nr,
    SIGILL,
    SIGSEGV,
    SIGSYS,
    SIGTRAP,
    SIGNAL_NAMES,
)
from repro.kernel.vfs import VFS
from repro.observability.bus import Bus
from repro.observability.events import (IcacheShootdown, ProcessLifecycle,
                                        QuantumEnd, SignalEvent,
                                        SyscallEnter, SyscallExit)

#: Scheduler quantum: instructions per thread turn.
DEFAULT_QUANTUM = 100


@dataclass
class SyscallRecord:
    """One executed system call (ground truth).

    Attributes:
        pid: calling process.
        nr: syscall number.
        site: address of the triggering ``syscall`` instruction, or 0 when
            the call was issued by host-level interposer code.
        origin: how the call reached execution —
            ``"app"`` (raw trap, uninterposed),
            ``"ptrace"`` (raw trap, observed by an attached tracer),
            ``"sud-handler"`` / ``"rewrite-handler"`` (an interposer
            forwarded the application's original call),
            ``"interposer-internal"`` (interposer bookkeeping, not
            application-requested).
        result: the value returned to the caller (negated errno on
            failure), or None when the handler fully managed the context
            (execve) or the call parked on the BLOCKED sentinel.
    """

    pid: int
    nr: int
    site: int
    origin: str
    result: Optional[int] = None

    @property
    def app_requested(self) -> bool:
        return self.origin != "interposer-internal"

    @property
    def interposed(self) -> bool:
        return self.origin in ("ptrace", "sud-handler", "rewrite-handler")


class Kernel:
    """One simulated machine: kernel state + scheduler + cycle accounting."""

    def __init__(self, seed: int = 0, costs: Optional[Dict] = None,
                 aslr: bool = True):
        self.vfs = VFS()
        self.net = NetStack()
        self.cycles = CycleModel(costs)
        #: Instrumentation bus (repro.observability): disabled until a
        #: sink attaches; every emit site below is one predicate while
        #: quiescent.  The cycle model shares it so charges surface as
        #: CycleCharge/RawCycles events.
        self.bus = Bus()
        self.cycles.bus = self.bus
        self.hostcalls = HostcallRegistry()
        self.processes: Dict[int, Process] = {}
        self._next_pid = 100
        self._next_tid = 1000
        self.rng = random.Random(seed)
        self.aslr = aslr
        self.syscall_log: List[SyscallRecord] = []
        self.vdso_calls: List[tuple] = []
        self.quantum = DEFAULT_QUANTUM
        self._preempting = False
        #: Basic-block translation cache (repro.cpu.blocks).  The
        #: REPRO_NO_BLOCK_CACHE=1 escape hatch selects the reference
        #: single-step path; results are byte-identical either way (the
        #: equivalence the lockstep tests assert), the block path is just
        #: faster.
        self.block_cache_enabled = os.environ.get(
            "REPRO_NO_BLOCK_CACHE", "") != "1"
        #: Execution-engine tiers layered on the block cache
        #: (repro.cpu.engine): block chaining, superblock formation, and
        #: the trace JIT, each with its own escape hatch (REPRO_NO_CHAIN /
        #: REPRO_NO_SUPERBLOCK / REPRO_NO_TRACE_JIT).  Semantics are
        #: byte-identical across every configuration; the tiers only
        #: remove interpreter overhead.
        self.engine = EngineConfig.from_env()
        #: Probability that a mid-patch preemption window actually lets
        #: sibling threads run (pitfall P5).  The window is nanoseconds wide
        #: on hardware, so organic workloads rarely land in it; the default
        #: of 1.0 surfaces the hazard deterministically (as the P5 PoC
        #: does), while the performance harness sets 0.0 to measure the
        #: surviving fast path — matching the paper's completed benchmark
        #: runs of lazypoline.
        self.torn_window_probability = 1.0
        #: The interposer harness currently governing new processes (set by
        #: repro.interposers machinery; None = native execution).
        self.interposer = None
        #: Deterministic fault-injection engine (repro.faultinject).  Every
        #: hook site below is a cheap attribute check while this stays None;
        #: attaching an engine turns syscall entry/exit, unit and quantum
        #: boundaries, signal delivery, icache shootdowns, protection
        #: changes, and preemption windows into injection points.
        self.fault_injector = None
        #: Record/replay recorder (repro.replay).  Like the fault injector,
        #: a None check at scheduler-round boundaries while detached;
        #: attaching one turns round boundaries into checkpoint safe
        #: points (repro.replay.recorder.Recorder.on_round_boundary).
        self.recorder = None
        #: Open-loop admission driver (repro.traffic.fleet).  Same
        #: None-check-at-round-boundary contract as the recorder: when
        #: attached, the traffic engine releases scheduled arrivals into
        #: server connections between scheduler rounds, turning ``run``
        #: into an admission-paced serving loop.
        self.admission = None
        # Lazy import: the loader builds on kernel.process types.
        from repro.loader.linker import Loader

        self.loader = Loader(self)
        self._table = SYSCALL_TABLE

    # ------------------------------------------------------------- processes

    def new_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def new_tid(self) -> int:
        """Per-kernel tid allocation: two same-seed machines number their
        threads identically, so cross-run traces align per (pid, tid)
        track (``repro tracediff``)."""
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def spawn_process(self, path: str, argv: Optional[List[str]] = None,
                      env: Optional[Dict[str, str]] = None) -> Process:
        """Create a process and load *path* into it (fork+exec equivalent)."""
        process = Process(self, self.new_pid(), path, argv, env)
        self.processes[process.pid] = process
        self.emit_lifecycle("spawn", process)
        if self.interposer is not None:
            self.interposer.before_exec(process)
        self.loader.load_into(process, path, argv or [path], process.env)
        return process

    def find_process(self, pid: int) -> Optional[Process]:
        return self.processes.get(pid)

    def now_ns(self) -> int:
        """Monotonic clock derived from the cycle counter (3.2 GHz)."""
        return int(self.cycles.cycles / 3.2)

    def emit_lifecycle(self, kind: str, process: "Process",
                       status: Optional[int] = None, detail: str = "") -> None:
        """Publish a :class:`ProcessLifecycle` event (spawn/exec/exit)."""
        if self.bus.enabled:
            self.bus.emit(ProcessLifecycle(ts=self.cycles.cycles,
                                           pid=process.pid, tid=0, kind=kind,
                                           path=process.path, status=status,
                                           detail=detail))

    # ------------------------------------------------------------- dispatch

    def handle_syscall(self, thread: Thread) -> None:
        """Kernel entry from a ``syscall``/``sysenter`` instruction."""
        ctx = thread.context
        process = thread.process
        nr = ctx.syscall_number
        site = ctx.rip - 2

        # 0. Fault-injection hook: a remote selector flip (or similar) may
        # land here — after the application committed to the syscall but
        # before SUD reads the selector, the race window of pitfall P4.
        fi = self.fault_injector
        if fi is not None:
            fi.on_syscall_entry(thread, nr, site)

        bus = self.bus

        # 1. Syscall User Dispatch.  should_dispatch is False whenever SUD
        # is off, so skip building the selector-read closure (pure
        # per-syscall overhead on the native path) unless it is armed.
        sud = thread.sud
        if sud.enabled and sud.should_dispatch(site,
                                               self._read_selector(process)):
            if bus.enabled:
                bus.emit(SyscallEnter(ts=self.cycles.cycles, pid=process.pid,
                                      tid=thread.tid, nr=nr, site=site,
                                      phase="sud"))
            # A restarted blocking call (accept/recvfrom that parked inside
            # the handler's forwarded syscall) re-enters this path purely as
            # a simulation artifact; on hardware the thread blocks in-kernel
            # within the ORIGINAL dispatch, so the retry is not re-charged.
            restart_credit = getattr(thread, "_sud_restart_credit", False)
            thread._sud_restart_credit = False
            if not restart_credit:
                self.cycles.charge(Event.KERNEL_SYSCALL)
                self.cycles.charge(Event.SUD_ARMED_SLOWPATH)
                armed = sum(1 for t in process.threads
                            if t.sud.enabled and not t.exited)
                if armed > 1:
                    # Multi-threaded signal-delivery contention (see
                    # repro.cpu.cycles.SUD_CONTENTION_FACTOR).
                    from repro.cpu.cycles import SUD_CONTENTION_FACTOR

                    base = (self.cycles.costs[Event.SIGNAL_DELIVERY]
                            + self.cycles.costs[Event.SIGRETURN])
                    self.cycles.charge_cycles(
                        int((armed - 1) * SUD_CONTENTION_FACTOR * base),
                        label="sud-contention")
            self.deliver_signal(thread, SIGSYS, fault_rip=site,
                                info={"nr": nr, "site": site},
                                charge=not restart_credit, sync=True)
            if bus.enabled:
                bus.emit(SyscallExit(ts=self.cycles.cycles, pid=process.pid,
                                     tid=thread.tid, nr=nr, phase="sud",
                                     result=None))
            return

        # 2. ptrace entry stop.
        tracer = process.tracer
        traced = tracer is not None and not tracer.detached
        proceed = True
        if traced:
            proceed = tracer.notify_entry(thread)

        # 2b. seccomp filter evaluation (after the ptrace entry stop, as on
        # Linux; filters see numbers and raw argument values only).
        if proceed and process.seccomp.active:
            from repro.kernel.seccomp import Action, SECCOMP_FILTER_COST

            self.cycles.charge_cycles(SECCOMP_FILTER_COST,
                                      label="seccomp-filter")
            verdict = process.seccomp.evaluate(nr, ctx.syscall_args())
            if verdict.action == Action.TRAP:
                restart_credit = getattr(thread, "_sud_restart_credit", False)
                thread._sud_restart_credit = False
                if not restart_credit:
                    self.cycles.charge(Event.KERNEL_SYSCALL)
                if bus.enabled:
                    bus.emit(SyscallEnter(ts=self.cycles.cycles,
                                          pid=process.pid, tid=thread.tid,
                                          nr=nr, site=site,
                                          phase="seccomp-trap"))
                self.deliver_signal(thread, SIGSYS, fault_rip=site,
                                    info={"nr": nr, "site": site,
                                          "seccomp": True},
                                    charge=not restart_credit, sync=True)
                if bus.enabled:
                    bus.emit(SyscallExit(ts=self.cycles.cycles,
                                         pid=process.pid, tid=thread.tid,
                                         nr=nr, phase="seccomp-trap",
                                         result=None))
                return
            if verdict.action == Action.ERRNO:
                ctx.set_syscall_result(-verdict.errno)
                ctx.set(Reg.RCX, ctx.rip)
                ctx.set(Reg.R11, 0x202)
                if bus.enabled:
                    bus.emit(SyscallEnter(ts=self.cycles.cycles,
                                          pid=process.pid, tid=thread.tid,
                                          nr=nr, site=site,
                                          phase="seccomp-errno"))
                    bus.emit(SyscallExit(ts=self.cycles.cycles,
                                         pid=process.pid, tid=thread.tid,
                                         nr=nr, phase="seccomp-errno",
                                         result=-verdict.errno))
                if traced and not tracer.detached:
                    tracer.notify_exit(thread)
                return

        # 3. Execute.
        thread._just_execed = False
        if proceed:
            origin = "ptrace" if traced else "app"
            if bus.enabled:
                bus.emit(SyscallEnter(ts=self.cycles.cycles, pid=process.pid,
                                      tid=thread.tid, nr=nr, site=site,
                                      phase=origin))
            result = self.do_syscall(thread, nr, ctx.syscall_args(),
                                     origin=origin, site=site)
            if result is BLOCKED_SENTINEL:
                # Restartable syscall: back onto the syscall instruction;
                # the parked thread re-enters this path once the wake
                # condition fires.  Drop the provisional log record so
                # ground truth counts the call once.
                self.syscall_log.pop()
                ctx.rip = site
                if bus.enabled:
                    bus.emit(SyscallExit(ts=self.cycles.cycles,
                                         pid=process.pid, tid=thread.tid,
                                         nr=nr, phase=origin, result=None))
                return
            self.cycles.charge(Event.KERNEL_SYSCALL)
            if process.sud_armed_ever:
                self.cycles.charge(Event.SUD_ARMED_SLOWPATH)
            if result is not None and not thread._just_execed:
                ctx.set_syscall_result(result)
            if bus.enabled:
                bus.emit(SyscallExit(ts=self.cycles.cycles, pid=process.pid,
                                     tid=thread.tid, nr=nr, phase=origin,
                                     result=result if isinstance(result, int)
                                     else None))

        if not thread._just_execed:
            # x86-64 syscall ABI: kernel clobbers RCX (return RIP) and R11
            # (RFLAGS) — the asymmetry K23's trampoline exploits (§6.2.1).
            ctx.set(Reg.RCX, ctx.rip)
            ctx.set(Reg.R11, 0x202)
            if traced and not tracer.detached:
                tracer.notify_exit(thread)
        if proceed and fi is not None:
            # Return-to-user is where async signals land on Linux; forwarded
            # calls (sud-/rewrite-handler) fire this from direct_syscall.
            fi.on_syscall_exit(thread, nr, "ptrace" if traced else "app")

    def _read_selector(self, process: Process) -> Callable[[int], int]:
        def read(addr: int) -> int:
            try:
                return process.address_space.read_kernel(addr, 1)[0]
            except SegmentationFault:
                return 0
        return read

    def do_syscall(self, thread: Thread, nr: int, args: List[int],
                   origin: str, site: int = 0) -> Optional[int]:
        """Execute one syscall against the tables; returns the result value
        (or None when the handler fully managed the context, e.g. execve)."""
        record = SyscallRecord(thread.process.pid, nr, site, origin)
        self.syscall_log.append(record)
        fi = self.fault_injector
        if fi is not None and record.app_requested:
            # Transient-failure injection: the call "executes" but fails
            # with EINTR/EAGAIN/ENOMEM before reaching its implementation,
            # exactly as a signal- or memory-pressure-interrupted kernel
            # path would.  Interposer-internal bookkeeping is never failed.
            errno = fi.transient_errno(thread, nr, origin)
            if errno is not None:
                record.result = -errno
                return -errno
        impl = self._table.get(nr)
        if impl is None:
            record.result = -Errno.ENOSYS
            return record.result
        from repro.errors import VFSError

        try:
            result = impl(self, thread, args)
        except VFSError as exc:
            record.result = -exc.errno
            return record.result
        if result is not BLOCKED_SENTINEL and isinstance(result, int):
            record.result = result
        return result

    def direct_syscall(self, thread: Thread, nr: int, args: List[int],
                       origin: str = "interposer-internal",
                       site: int = 0):
        """Syscall issued by host-level interposer code (its own ``syscall``
        instructions live in allowlisted/selector-off regions, so they enter
        the kernel without re-dispatch).  Charges the same kernel costs.

        Returns the result value, or the BLOCKED sentinel when the call must
        be restarted — the calling handler rewinds its own resume point (see
        ``repro.interposers.base.forward_syscall``).
        """
        bus = self.bus
        if bus.enabled:
            bus.emit(SyscallEnter(ts=self.cycles.cycles,
                                  pid=thread.process.pid, tid=thread.tid,
                                  nr=nr, site=site, phase=origin))
        result = self.do_syscall(thread, nr, args, origin=origin, site=site)
        if result is BLOCKED_SENTINEL:
            self.syscall_log.pop()
            if bus.enabled:
                bus.emit(SyscallExit(ts=self.cycles.cycles,
                                     pid=thread.process.pid, tid=thread.tid,
                                     nr=nr, phase=origin, result=None))
            return result
        self.cycles.charge(Event.KERNEL_SYSCALL)
        if thread.process.sud_armed_ever:
            self.cycles.charge(Event.SUD_ARMED_SLOWPATH)
        result = -Errno.ENOSYS if result is None else result
        if bus.enabled:
            bus.emit(SyscallExit(ts=self.cycles.cycles,
                                 pid=thread.process.pid, tid=thread.tid,
                                 nr=nr, phase=origin,
                                 result=result if isinstance(result, int)
                                 else None))
        if origin != "interposer-internal" and self.fault_injector is not None:
            # The forwarded application call completes here (the raw trap
            # returned early from the SUD/rewrite dispatch path).
            self.fault_injector.on_syscall_exit(thread, nr, origin)
        return result

    def dispatch_hostcall(self, thread: Thread, index: int) -> None:
        self.hostcalls.get(index)(thread)

    # --------------------------------------------------------------- signals

    def deliver_signal(self, thread: Thread, signal: int, fault_rip: int = 0,
                       info: Optional[Dict] = None,
                       charge: bool = True, sync: bool = False) -> None:
        """Deliver *signal* to *thread* per the process dispositions.

        A signal is masked while its own handler runs (host handlers until
        they return, simulated handlers until ``rt_sigreturn``), so the
        same signal never nests — in particular no nested SIGSYS while an
        interposer's host handler is forwarding the original call.  An
        async signal arriving masked is queued on ``thread.pending_signals``
        and flushed after the handler completes; a *synchronous* fault
        (``sync=True``: SIGSEGV/SIGILL/SIGTRAP/SIGSYS raised by the
        faulting instruction itself) arriving masked force-kills with the
        default disposition, as Linux's ``force_sig`` does — the
        alternative is re-executing the faulting instruction forever.

        A *simulated-address* delivery that lands while a **host** handler
        is on this thread's stack (e.g. a fault-injected SIGCHLD at the
        exit of a call an interposer's SIGSYS handler forwarded) is
        deferred to return-to-user: setting up the user frame immediately
        would be undone by the enclosing host handler's context restore,
        double-charging the delivery and orphaning the frame.  Linux has
        no such case — from the kernel's viewpoint the SIGSYS handler *is*
        user code, and new signals are delivered when it returns.
        """
        bus = self.bus
        pid = thread.process.pid
        if self.fault_injector is not None:
            self.fault_injector.on_signal(thread, signal)
        if signal in thread.blocked_signals:
            detail = SIGNAL_NAMES.get(signal, str(signal))
            if sync:
                if bus.enabled:
                    bus.emit(SignalEvent(ts=self.cycles.cycles, pid=pid,
                                         tid=thread.tid, signal=signal,
                                         kind="forced", sync=True))
                default_action(signal, detail + " (blocked, forced)")
                return
            if bus.enabled:
                bus.emit(SignalEvent(ts=self.cycles.cycles, pid=pid,
                                     tid=thread.tid, signal=signal,
                                     kind="queue"))
            thread.pending_signals.append((signal, fault_rip, info or {}))
            return
        action = thread.process.dispositions.get_action(signal)
        if action is None:
            detail = SIGNAL_NAMES.get(signal, str(signal))
            if info:
                detail += f" ({info})"
            if bus.enabled:
                bus.emit(SignalEvent(ts=self.cycles.cycles, pid=pid,
                                     tid=thread.tid, signal=signal,
                                     kind="default", sync=sync))
            default_action(signal, detail)
            return
        if callable(action):
            if charge:
                self.cycles.charge(Event.SIGNAL_DELIVERY)
            if bus.enabled:
                bus.emit(SignalEvent(ts=self.cycles.cycles, pid=pid,
                                     tid=thread.tid, signal=signal,
                                     kind="deliver", sync=sync))
            thread._just_execed = False
            sigctx = SignalContext(signal, thread, thread.context.save(),
                                   fault_rip, info or {})
            thread.blocked_signals.add(signal)
            thread._host_handler_depth += 1
            try:
                action(sigctx)
            finally:
                thread._host_handler_depth -= 1
                thread.blocked_signals.discard(signal)
            if charge:
                self.cycles.charge(Event.SIGRETURN)
            if bus.enabled:
                bus.emit(SignalEvent(ts=self.cycles.cycles, pid=pid,
                                     tid=thread.tid, signal=signal,
                                     kind="return", sync=sync))
            if not thread._just_execed:
                # rt_sigreturn semantics; skipped when the handler execve'd
                # (the frame belongs to the torn-down image).
                thread.context.restore(sigctx.saved)
            self.flush_pending_signals(thread)
            return
        if thread._host_handler_depth > 0 and not sync:
            # Deferred: delivered for real (charged, frame pushed) by the
            # enclosing host handler's flush_pending_signals once its
            # context restore has run — see the docstring.
            if bus.enabled:
                bus.emit(SignalEvent(ts=self.cycles.cycles, pid=pid,
                                     tid=thread.tid, signal=signal,
                                     kind="defer"))
            thread.pending_signals.append((signal, fault_rip, info or {}))
            return
        # Simulated-address handler: push a frame, mask the signal until
        # rt_sigreturn, redirect RIP.
        self.cycles.charge(Event.SIGNAL_DELIVERY)
        if bus.enabled:
            bus.emit(SignalEvent(ts=self.cycles.cycles, pid=pid,
                                 tid=thread.tid, signal=signal,
                                 kind="deliver", sync=sync))
        thread.blocked_signals.add(signal)
        thread.signal_frames.append((signal, thread.context.save()))
        thread.context.set(Reg.RDI, signal)
        thread.context.rip = action

    def flush_pending_signals(self, thread: Thread) -> None:
        """Deliver queued async signals whose mask has cleared (called when
        a host handler returns and at ``rt_sigreturn``).  No-op while a
        host handler is still on the thread's stack: delivery there would
        be clobbered by the enclosing restore; the outermost handler's
        flush (depth 0) drains the queue."""
        if thread._host_handler_depth > 0:
            return
        while thread.pending_signals:
            for i, (signal, fault_rip, info) in enumerate(
                    thread.pending_signals):
                if signal not in thread.blocked_signals:
                    del thread.pending_signals[i]
                    self.deliver_signal(thread, signal, fault_rip=fault_rip,
                                        info=info)
                    break
            else:
                return

    # ----------------------------------------------------- coherence / hooks

    def icache_shootdown(self, process: Process, start: int,
                         length: int) -> None:
        """Invalidate every core's decoded lines and recorded blocks over
        ``[start, start+length)`` — the IPI-based shootdown ``munmap`` and
        ``mmap(MAP_FIXED)`` perform on real kernels (unlike plain stores
        and ``mprotect``, which leave stale decodes in place — P5)."""
        for thread in process.threads:
            thread.icache.invalidate_range(start, length)
        if self.bus.enabled:
            self.bus.emit(IcacheShootdown(ts=self.cycles.cycles,
                                          pid=process.pid, tid=0,
                                          start=start, length=length))
        if self.fault_injector is not None:
            self.fault_injector.on_icache_flush(process, start, length)

    def notify_prot_change(self, thread: Thread, start: int, length: int,
                           prot: int) -> None:
        """Fault-injection hook site: a page-permission change landed."""
        if self.fault_injector is not None:
            self.fault_injector.on_prot_change(thread, start, length, prot)

    # -------------------------------------------------------------- scheduler

    def step_thread(self, thread: Thread) -> bool:
        """Execute one instruction, converting faults to signals.

        Returns False when the thread/process can no longer run.
        """
        try:
            cpu_step(thread)
            return True
        except ProcessExited as exc:
            self._terminate(thread.process, exc)
            return False
        except SegmentationFault as exc:
            return self._fault(thread, SIGSEGV, {"addr": exc.address,
                                                 "access": exc.access,
                                                 "reason": exc.reason})
        except InvalidOpcode as exc:
            return self._fault(thread, SIGILL, {"addr": exc.address})
        except Breakpoint as exc:
            return self._fault(thread, SIGTRAP, {"addr": exc.address})
        except Halt:
            return self._fault(thread, SIGSEGV, {"reason": "hlt"})

    def _fault(self, thread: Thread, signal: int, info: Dict) -> bool:
        try:
            self.deliver_signal(thread, signal, fault_rip=thread.context.rip,
                                info=info, sync=True)
            return True
        except ProcessExited as exc:
            self._terminate(thread.process, exc)
            return False

    def _terminate(self, process: Process, exc: ProcessExited) -> None:
        process.terminate(exc.status)
        process.core_dumped = bool(getattr(exc, "core", False))
        process.kill_detail = getattr(exc, "detail", "") or getattr(
            exc, "reason", "")
        self.emit_lifecycle("exit", process, status=process.exit_status,
                            detail=process.kill_detail)
        if self.interposer is not None:
            self.interposer.on_process_exit(process)

    def _step_unit(self, thread: Thread, budget: int) -> Tuple[int, bool]:
        """Execute up to *budget* instructions as one unit.

        Returns ``(retired, alive)``.  With the block cache disabled this
        is exactly one :meth:`step_thread`; with it enabled, a recorded
        block replays in one call.  Retire attribution on a fault matches
        the per-step loop: the faulting instruction counts iff its signal
        was delivered (``thread.unit_retired`` marks it within the unit).

        Fault injection: an attached engine clips the unit budget so unit
        boundaries land *exactly* on instruction-count trigger points (a
        replayed block is doomed to end at the trigger rather than run
        past it), and its ``on_unit_boundary`` hook then fires triggers at
        identical retire counts in both interpreter modes.
        """
        fi = self.fault_injector
        if not self.block_cache_enabled:
            alive = self.step_thread(thread)
            n = 1 if alive else 0
        else:
            if fi is not None:
                budget = fi.clip_budget(budget)
            thread.unit_retired = 0
            try:
                n, alive = run_unit(thread, budget), True
            except ProcessExited as exc:
                self._terminate(thread.process, exc)
                n, alive = thread.unit_retired - 1, False
            except SegmentationFault as exc:
                alive = self._fault(thread, SIGSEGV, {"addr": exc.address,
                                                      "access": exc.access,
                                                      "reason": exc.reason})
                n = thread.unit_retired - (0 if alive else 1)
            except InvalidOpcode as exc:
                alive = self._fault(thread, SIGILL, {"addr": exc.address})
                n = thread.unit_retired - (0 if alive else 1)
            except Breakpoint as exc:
                alive = self._fault(thread, SIGTRAP, {"addr": exc.address})
                n = thread.unit_retired - (0 if alive else 1)
            except Halt:
                alive = self._fault(thread, SIGSEGV, {"reason": "hlt"})
                n = thread.unit_retired - (0 if alive else 1)
        if alive and fi is not None:
            try:
                fi.on_unit_boundary(thread)
            except ProcessExited as exc:
                self._terminate(thread.process, exc)
                alive = False
        return n, alive

    def runnable_threads(self) -> List[Thread]:
        threads = []
        for process in self.processes.values():
            if process.exited:
                continue
            for thread in process.threads:
                if thread.exited:
                    continue
                if thread.block_condition is not None and not thread.try_unblock():
                    continue
                threads.append(thread)
        return threads

    def run(self, max_steps: int = 5_000_000) -> int:
        """Round-robin scheduler; returns instructions retired.

        Turns are executed in units (single instructions, or cached basic
        blocks): per-unit budgets are capped by both the remaining quantum
        and ``max_steps`` so the retire count — including the historical
        one-extra-step-per-remaining-thread overshoot once the cap is hit
        mid-round — is identical to the per-step loop this replaces.
        """
        retired = 0
        while retired < max_steps:
            threads = self.runnable_threads()
            if not threads:
                # Every thread parked (e.g. the whole fleet in
                # epoll_wait): the admission driver may still have
                # scheduled arrivals to release — including jumping
                # virtual time forward to the next due arrival.
                if self.admission is not None and \
                        self.admission.on_round_boundary(retired):
                    continue
                break
            progressed = False
            for thread in threads:
                done = 0
                while done < self.quantum:
                    if not thread.runnable:
                        break
                    cap = self.quantum - done
                    remaining = max_steps - retired
                    if remaining < cap:
                        # The per-step loop checked the cap *after* each
                        # step, so every thread still gets >= 1 step.
                        cap = remaining if remaining > 1 else 1
                    n, alive = self._step_unit(thread, cap)
                    retired += n
                    done += n
                    if n:
                        progressed = True
                    if not alive or retired >= max_steps:
                        break
                self._quantum_boundary(thread)
            if self.recorder is not None:
                self.recorder.on_round_boundary(retired)
            if self.admission is not None:
                # Arrivals delivered into connections can unblock parked
                # server threads, so a delivery counts as progress.
                if self.admission.on_round_boundary(retired):
                    progressed = True
            if not progressed:
                break
        return retired

    def run_process(self, process: Process, max_steps: int = 5_000_000) -> int:
        """Run until *process* exits (other processes keep scheduling too)."""
        retired = 0
        while not process.exited and retired < max_steps:
            before = retired
            threads = self.runnable_threads()
            if not threads:
                break
            for thread in threads:
                done = 0
                # NB: per the historical loop, a turn runs its full quantum
                # even when it crosses max_steps (the cap is outer-loop only).
                while done < self.quantum:
                    if not thread.runnable:
                        break
                    n, alive = self._step_unit(thread, self.quantum - done)
                    retired += n
                    done += n
                    if not alive:
                        break
                self._quantum_boundary(thread)
            if self.recorder is not None:
                self.recorder.on_round_boundary(retired)
            if self.admission is not None and \
                    self.admission.on_round_boundary(retired):
                continue
            if retired == before:
                break
        if self.bus.enabled:
            self._emit_engine_stats()
        return retired

    def _emit_engine_stats(self) -> None:
        """Emit one :class:`EngineStats` event (attached-sink runs only:
        the null-sink fast path never pays the counter aggregation)."""
        from repro.observability.events import EngineStats

        stats = self.interp_stats()
        flags = self.engine.flags()
        if not self.block_cache_enabled:
            tiers = "single-step"
        else:
            tiers = "+".join(n for n in ("chain", "superblock", "trace_jit")
                             if flags[n]) or "block-cache"
        self.bus.emit(EngineStats(
            ts=self.cycles.cycles, pid=0, tid=0, tiers=tiers,
            chain_links=stats["chain_links"],
            chain_follows=stats["chain_follows"],
            superblocks_formed=stats["superblocks_formed"],
            superblock_hits=stats["superblock_hits"],
            traces_compiled=stats["traces_compiled"],
            trace_hits=stats["trace_hits"],
            guard_fails=stats["guard_fails"],
            invalidation_unlinks=stats["invalidation_unlinks"]))

    def _quantum_boundary(self, thread: Thread) -> None:
        """Fault-injection hook at the end of a thread's scheduler turn."""
        if not thread.runnable:
            return
        if self.bus.enabled:
            self.bus.emit(QuantumEnd(ts=self.cycles.cycles,
                                     pid=thread.process.pid,
                                     tid=thread.tid))
        fi = self.fault_injector
        if fi is None:
            return
        try:
            fi.on_quantum_boundary(thread)
        except ProcessExited as exc:
            self._terminate(thread.process, exc)

    def preemption_window(self, current: Thread, steps: int = 20) -> None:
        """Let *other* threads of the same process run briefly.

        Models the preemption window a host-level handler body is exposed to
        mid-operation — the window lazypoline's non-atomic two-byte patch
        opens (P5).  No-op when re-entered.
        """
        if self._preempting:
            return
        if self.torn_window_probability < 1.0 and \
                self.rng.random() >= self.torn_window_probability:
            return
        self._preempting = True
        try:
            if self.fault_injector is not None:
                # The injection point for remote-thread munmap/mprotect/
                # code-patch events inside interposer-critical windows.
                self.fault_injector.on_preemption_window(current)
            for thread in list(current.process.threads):
                if thread is current or not thread.runnable:
                    continue
                for _ in range(steps):
                    if not thread.runnable:
                        break
                    if not self.step_thread(thread):
                        break
        finally:
            self._preempting = False

    # ------------------------------------------------------------ introspection

    def interp_stats(self) -> Dict[str, int]:
        """Aggregate interpreter counters across every thread ever run:
        decoded-line and basic-block cache activity plus instructions
        retired (for insns/sec reporting in ``evalrun --verbose`` and the
        interpreter benchmarks)."""
        stats = {"instructions": self.cycles.counts[Event.INSTRUCTION],
                 "icache_hits": 0, "icache_misses": 0,
                 "block_hits": 0, "block_installs": 0,
                 "chain_links": 0, "chain_follows": 0,
                 "superblocks_formed": 0, "superblock_hits": 0,
                 "traces_compiled": 0, "trace_hits": 0,
                 "guard_fails": 0, "invalidation_unlinks": 0}
        for process in self.processes.values():
            for thread in process.threads:
                icache = thread.icache
                stats["icache_hits"] += icache.hits
                stats["icache_misses"] += icache.misses
                stats["block_hits"] += icache.block_hits
                stats["block_installs"] += icache.block_installs
                stats["chain_links"] += icache.chain_links
                stats["chain_follows"] += icache.chain_follows
                stats["superblocks_formed"] += icache.superblocks_formed
                stats["superblock_hits"] += icache.superblock_hits
                stats["traces_compiled"] += icache.traces_compiled
                stats["trace_hits"] += icache.trace_hits
                stats["guard_fails"] += icache.guard_fails
                stats["invalidation_unlinks"] += icache.invalidation_unlinks
        return stats

    def app_requested_syscalls(self, pid: Optional[int] = None) -> List[SyscallRecord]:
        """Executed syscalls the application asked for (ground truth)."""
        return [r for r in self.syscall_log
                if r.app_requested and (pid is None or r.pid == pid)]

    def uninterposed_syscalls(self, pid: Optional[int] = None) -> List[SyscallRecord]:
        """Application syscalls that executed without any interposer seeing
        them — the misses behind P1/P2."""
        return [r for r in self.app_requested_syscalls(pid)
                if r.origin == "app"]
