"""Whole-machine checkpoints: capture and restore a running Kernel.

A checkpoint is a :class:`MachineState` — every piece of simulated state
replay needs to resume execution mid-run:

- per-process: the copy-on-write :class:`~repro.memory.address_space.\
AddressSpaceSnapshot` (page dict shallow-copied and frozen; O(pages), not
  O(bytes)), every thread's register file / signal / SUD state, the fd
  table, dispositions, interposer state, premain accounting;
- machine-global: the cycle model, the kernel RNG state, the syscall
  ground-truth log, the VFS and net tables, pid/tid allocators, and the
  fault injector's occurrence counters and remaining trigger indices.

**Host objects are deliberately not captured.**  Program images, seccomp
filter closures, host signal-handler callables, and ptrace callbacks are
re-created identically by re-running the premain phase on a fresh
machine (the replayer does exactly that before calling :func:`restore`);
the snapshot stores markers (``"<host>"`` dispositions, filter counts)
so restore can verify the fresh machine matches and fail loudly when it
does not.  Capture is refused (:class:`CheckpointUnsupported`) for state
that cannot round-trip — live socket/listener descriptors whose peer is
a host-side load generator — which the recorder's safe-point policy
filters out before ever calling :func:`capture`.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.memory.address_space import AddressSpaceSnapshot

#: Checkpoint format version (bump on any MachineState shape change).
CHECKPOINT_VERSION = 1

#: Disposition marker for a host-callable handler (not picklable; the
#: fresh replay machine re-registers the same callable during premain).
HOST_HANDLER = "<host>"

#: FaultInjector occurrence counters captured verbatim.
_INJECTOR_COUNTERS = ("app_calls", "entries", "windows", "quanta",
                      "flushes", "prot_changes", "signals_seen")

#: FaultInjector trigger indices that are consumed by ``dict.pop`` as the
#: run progresses: attribute → schedule trigger name, for rebuild.
_INJECTOR_INDICES = {
    "_exit_faults": "syscall-exit",
    "_quantum_faults": "quantum",
    "_window_faults": "window",
    "_flush_faults": "icache-flush",
    "_prot_faults": "prot-change",
}


class CheckpointUnsupported(Exception):
    """The machine holds state a checkpoint cannot round-trip."""


class CheckpointRestoreError(Exception):
    """The fresh machine does not match the snapshot's host-object
    markers (wrong mechanism/workload/seed, or drifted premain)."""


@dataclass
class ProcessState:
    """Snapshot of one :class:`~repro.kernel.process.Process`."""

    pid: int
    path: str
    argv: List[str]
    env: Dict[str, str]
    cwd: str
    exited: bool
    exit_status: Optional[int]
    core_dumped: bool
    kill_detail: str
    parent_pid: Optional[int]
    children_pids: List[int]
    sud_armed_ever: bool
    vdso_enabled: bool
    brk_cursor: int
    premain_syscalls: int
    premain_log_len: int
    next_fd: int
    output: bytes
    interposer_state: Dict[str, object]
    #: signal → handler address, or :data:`HOST_HANDLER` for a callable.
    dispositions: Dict[int, object]
    #: fd number → index into ``MachineState.fd_objects`` (identity-deduped
    #: so descriptors shared across fork/dup stay shared after restore).
    fd_table: Dict[int, int]
    #: Installed seccomp filter count (verification only — the closures
    #: themselves are host objects the fresh machine re-installs).
    seccomp_filters: int
    #: ``{"detached", "observed", "disable_vdso"}`` or None.
    tracer: Optional[Dict]
    threads: List[Dict]
    space: AddressSpaceSnapshot


@dataclass
class MachineState:
    """One whole-machine checkpoint (see module docstring)."""

    version: int
    #: Event-stream anchor: every recorded event with ``seq <= seq``
    #: happened before this capture.
    seq: int
    index: int
    insns: int
    cycles: int
    counts: Dict
    raw_cycles: Dict[str, int]
    rng_state: object
    next_pid: int
    next_tid: int
    syscall_log: List
    vdso_calls: List[tuple]
    #: path → ``{"is_dir", "data", "immutable", "mode", "has_image"}``.
    vfs: Dict[str, Dict]
    #: port → ``{"closed", "backlog", "pending": [connection state]}``.
    net: Dict[int, Dict]
    #: Identity-deduped descriptor objects (FileFD state dicts).
    fd_objects: List[Dict]
    processes: List[ProcessState]
    #: Fault-injector progress, or None when no injector is attached.
    injector: Optional[Dict]
    schedule_digest: Optional[str]
    #: Interposer per-pid handled accounting, or None (native runs).
    handled: Optional[Dict[int, List[tuple]]] = None

    def total_pages(self) -> int:
        return sum(len(ps.space.pages) for ps in self.processes)


# ---------------------------------------------------------------- capture


def capture(kernel, seq: int, index: int = 0) -> "MachineState":
    """Snapshot *kernel* into a :class:`MachineState`.

    Cheap by design: address-space pages are shared copy-on-write (the
    live space unshares pages lazily as it keeps executing), and all
    other captured structures are small.  The kernel keeps running
    normally afterwards.
    """
    from repro.kernel.process import FileFD

    fd_objects: List[Dict] = []
    fd_ids: Dict[int, int] = {}

    def fd_index(descriptor) -> int:
        key = id(descriptor)
        slot = fd_ids.get(key)
        if slot is None:
            if not isinstance(descriptor, FileFD):
                raise CheckpointUnsupported(
                    f"cannot checkpoint a live {descriptor.describe()} "
                    f"descriptor (socket/listener state is shared with "
                    f"host-side drivers)")
            slot = len(fd_objects)
            fd_ids[key] = slot
            fd_objects.append({"path": descriptor.inode.path,
                               "offset": descriptor.offset,
                               "flags": descriptor.flags})
        return slot

    injector = schedule_digest = None
    inj = kernel.fault_injector
    if inj is not None:
        if inj._selector_restore is not None:
            raise CheckpointUnsupported(
                "cannot checkpoint mid selector-flip window")
        injector = {
            "counters": {name: getattr(inj, name)
                         for name in _INJECTOR_COUNTERS},
            "log": list(inj.log),
            "insn_idx": inj._insn_idx,
            "remaining": {attr: sorted(getattr(inj, attr))
                          for attr in _INJECTOR_INDICES},
        }
        schedule_digest = inj.schedule.digest()

    handled = None
    if kernel.interposer is not None:
        handled = {pid: list(entries)
                   for pid, entries in kernel.interposer.handled.items()}

    vfs_state = {}
    for path, inode in kernel.vfs._inodes.items():
        vfs_state[path] = {"is_dir": inode.is_dir,
                           "data": bytes(inode.data),
                           "immutable": inode.immutable,
                           "mode": inode.mode,
                           "has_image": inode.image is not None}

    net_state = {}
    for port, listener in kernel.net._listeners.items():
        net_state[port] = {
            "closed": listener.closed,
            "backlog": listener.backlog_limit,
            "pending": [{
                "to_server": [bytes(b) for b in conn.to_server],
                "to_client": [bytes(b) for b in conn.to_client],
                "client_closed": conn.client_closed,
                "server_closed": conn.server_closed,
            } for conn in listener.pending],
        }

    processes = [_capture_process(kernel.processes[pid], fd_index)
                 for pid in sorted(kernel.processes)]

    return MachineState(
        version=CHECKPOINT_VERSION,
        seq=seq,
        index=index,
        insns=_insns(kernel),
        cycles=kernel.cycles.cycles,
        counts=dict(kernel.cycles.counts),
        raw_cycles=dict(kernel.cycles.raw_cycles),
        rng_state=kernel.rng.getstate(),
        next_pid=kernel._next_pid,
        next_tid=kernel._next_tid,
        syscall_log=[dataclasses.replace(r) for r in kernel.syscall_log],
        vdso_calls=list(kernel.vdso_calls),
        vfs=vfs_state,
        net=net_state,
        fd_objects=fd_objects,
        processes=processes,
        injector=injector,
        schedule_digest=schedule_digest,
        handled=handled,
    )


def _insns(kernel) -> int:
    from repro.cpu.cycles import Event

    return kernel.cycles.counts[Event.INSTRUCTION]


def _capture_process(proc, fd_index) -> ProcessState:
    dispositions: Dict[int, object] = {}
    for signal, action in proc.dispositions._actions.items():
        dispositions[signal] = action if isinstance(action, int) \
            else HOST_HANDLER
    tracer = None
    if proc.tracer is not None:
        tracer = {"detached": proc.tracer.detached,
                  "observed": list(proc.tracer.observed),
                  "disable_vdso": proc.tracer.disable_vdso}
    return ProcessState(
        pid=proc.pid,
        path=proc.path,
        argv=list(proc.argv),
        env=dict(proc.env),
        cwd=proc.cwd,
        exited=proc.exited,
        exit_status=proc.exit_status,
        core_dumped=proc.core_dumped,
        kill_detail=getattr(proc, "kill_detail", ""),
        parent_pid=proc.parent.pid if proc.parent is not None else None,
        children_pids=[child.pid for child in proc.children],
        sud_armed_ever=proc.sud_armed_ever,
        vdso_enabled=proc.vdso_enabled,
        brk_cursor=proc.brk_cursor,
        premain_syscalls=proc.premain_syscalls,
        premain_log_len=proc.premain_log_len,
        next_fd=proc._next_fd,
        output=bytes(proc.output),
        interposer_state=copy.deepcopy(proc.interposer_state),
        dispositions=dispositions,
        fd_table={fd: fd_index(obj) for fd, obj in proc.fds.items()},
        seccomp_filters=len(proc.seccomp._filters),
        tracer=tracer,
        threads=[thread.snapshot_state() for thread in proc.threads],
        space=proc.address_space.snapshot(),
    )


# ---------------------------------------------------------------- restore


def restore(kernel, state: MachineState) -> None:
    """Overwrite *kernel* with *state*, in place.

    *kernel* must be a **premain-complete** machine built from the same
    RunConfig (same mechanism/workload/seed/schedule) — the replayer
    guarantees this — so every host object the snapshot references by
    marker already exists and is identical.  Mutates in place rather
    than rebuilding: thread ``charge`` aliases, the loader, hostcall
    registry, and attached bus sinks all keep their object identity.
    """
    if state.version != CHECKPOINT_VERSION:
        raise CheckpointRestoreError(
            f"checkpoint version {state.version} != "
            f"supported {CHECKPOINT_VERSION}")
    from repro.kernel.process import FileFD

    cycles = kernel.cycles
    cycles.cycles = state.cycles
    cycles.counts.clear()
    cycles.counts.update(state.counts)
    cycles.raw_cycles.clear()
    cycles.raw_cycles.update(state.raw_cycles)
    kernel.rng.setstate(state.rng_state)
    kernel.syscall_log[:] = [dataclasses.replace(r)
                             for r in state.syscall_log]
    kernel.vdso_calls[:] = list(state.vdso_calls)
    kernel._preempting = False

    _restore_vfs(kernel.vfs, state.vfs)
    _restore_net(kernel.net, state.net)

    fd_objects = []
    for spec in state.fd_objects:
        try:
            inode = kernel.vfs.lookup(spec["path"])
        except Exception as exc:
            raise CheckpointRestoreError(
                f"descriptor target {spec['path']!r} missing after VFS "
                f"restore") from exc
        descriptor = FileFD(inode, spec["flags"])
        descriptor.offset = spec["offset"]
        fd_objects.append(descriptor)

    wanted = {ps.pid for ps in state.processes}
    for pid in [p for p in list(kernel.processes) if p not in wanted]:
        del kernel.processes[pid]
    for ps in state.processes:
        proc = kernel.processes.get(ps.pid)
        if proc is None:
            proc = _materialize_process(kernel, ps)
        _restore_process(kernel, proc, ps, fd_objects)
    for ps in state.processes:
        proc = kernel.processes[ps.pid]
        proc.parent = (kernel.processes.get(ps.parent_pid)
                       if ps.parent_pid is not None else None)
        proc.children = [kernel.processes[pid] for pid in ps.children_pids
                         if pid in kernel.processes]
    kernel._next_pid = state.next_pid
    kernel._next_tid = state.next_tid

    if state.injector is not None:
        _restore_injector(kernel, state)
    if state.handled is not None and kernel.interposer is not None:
        kernel.interposer.handled = {pid: list(entries)
                                     for pid, entries
                                     in state.handled.items()}


def _materialize_process(kernel, ps: ProcessState):
    """Recreate a process that does not exist on the fresh machine (a
    fork child born after premain).  No loader, no lifecycle event — the
    recorded stream already contains its spawn; everything the snapshot
    does not overwrite is inherited from the (already-restored) parent,
    mirroring ``sys_fork``."""
    from repro.kernel.process import Process

    parent = kernel.processes.get(ps.parent_pid)
    if parent is None:
        raise CheckpointRestoreError(
            f"cannot materialize pid {ps.pid}: parent {ps.parent_pid} "
            f"not present")
    proc = Process(kernel, ps.pid, ps.path, list(ps.argv), dict(ps.env))
    proc.loaded_images = dict(parent.loaded_images)
    proc.seccomp = parent.seccomp.copy()
    kernel.processes[ps.pid] = proc
    return proc


def _restore_process(kernel, proc, ps: ProcessState, fd_objects) -> None:
    proc.path = ps.path
    proc.argv = list(ps.argv)
    proc.env = dict(ps.env)
    proc.cwd = ps.cwd
    proc.exited = ps.exited
    proc.exit_status = ps.exit_status
    proc.core_dumped = ps.core_dumped
    if ps.kill_detail:
        proc.kill_detail = ps.kill_detail
    proc.sud_armed_ever = ps.sud_armed_ever
    proc.vdso_enabled = ps.vdso_enabled
    proc.brk_cursor = ps.brk_cursor
    proc.premain_syscalls = ps.premain_syscalls
    proc.premain_log_len = ps.premain_log_len
    proc._next_fd = ps.next_fd
    proc.output = bytearray(ps.output)
    proc.interposer_state = copy.deepcopy(ps.interposer_state)
    proc.fds = {fd: fd_objects[slot] for fd, slot in ps.fd_table.items()}
    _restore_dispositions(kernel, proc, ps)
    if len(proc.seccomp._filters) != ps.seccomp_filters:
        raise CheckpointRestoreError(
            f"pid {ps.pid}: fresh machine has "
            f"{len(proc.seccomp._filters)} seccomp filters, snapshot "
            f"recorded {ps.seccomp_filters} (main-phase filter installs "
            f"are not replayable)")
    if ps.tracer is None:
        proc.tracer = None
    else:
        if proc.tracer is None:
            raise CheckpointRestoreError(
                f"pid {ps.pid}: snapshot has an attached tracer, fresh "
                f"machine has none")
        proc.tracer.detached = ps.tracer["detached"]
        proc.tracer.observed[:] = [tuple(o) for o in ps.tracer["observed"]]
        proc.tracer.disable_vdso = ps.tracer["disable_vdso"]
    del proc.threads[len(ps.threads):]
    while len(proc.threads) < len(ps.threads):
        proc.spawn_thread()
    for thread, tstate in zip(proc.threads, ps.threads):
        thread.restore_state(tstate)
    proc.address_space.restore(ps.space)


def _restore_dispositions(kernel, proc, ps: ProcessState) -> None:
    from repro.kernel.signals import SignalDispositions

    fresh = proc.dispositions
    table = SignalDispositions()
    for signal, action in ps.dispositions.items():
        if action == HOST_HANDLER:
            handler = fresh.get_action(signal)
            if not callable(handler):
                parent = (kernel.processes.get(ps.parent_pid)
                          if ps.parent_pid is not None else None)
                handler = (parent.dispositions.get_action(signal)
                           if parent is not None else None)
            if not callable(handler):
                raise CheckpointRestoreError(
                    f"pid {ps.pid}: snapshot has a host handler for "
                    f"signal {signal} the fresh machine never registered")
            table.set_action(signal, handler)
        else:
            table.set_action(signal, action)
    proc.dispositions = table


def _restore_vfs(vfs, snapshot: Dict[str, Dict]) -> None:
    from repro.kernel.vfs import Inode

    inodes = vfs._inodes
    for path in [p for p in list(inodes) if p not in snapshot]:
        del inodes[path]
    for path, st in snapshot.items():
        inode = inodes.get(path)
        if inode is None:
            inode = Inode(path=path, is_dir=st["is_dir"])
            inodes[path] = inode
        if st["has_image"] and inode.image is None:
            raise CheckpointRestoreError(
                f"inode {path!r} has no program image on the fresh "
                f"machine (snapshot expects one)")
        inode.is_dir = st["is_dir"]
        inode.data = bytearray(st["data"])
        inode.immutable = st["immutable"]
        inode.mode = st["mode"]


def _restore_net(net, snapshot: Dict[int, Dict]) -> None:
    from repro.kernel.net import Connection, Listener

    net._listeners.clear()
    for port, st in snapshot.items():
        listener = Listener(port, st["backlog"])
        listener.closed = st["closed"]
        for cs in st["pending"]:
            conn = Connection(port)
            conn.to_server.extend(bytes(b) for b in cs["to_server"])
            conn.to_client.extend(bytes(b) for b in cs["to_client"])
            conn.client_closed = cs["client_closed"]
            conn.server_closed = cs["server_closed"]
            listener.pending.append(conn)
        net._listeners[port] = listener


def _restore_injector(kernel, state: MachineState) -> None:
    inj = kernel.fault_injector
    if inj is None:
        raise CheckpointRestoreError(
            "recorded run had a fault injector; replay machine has none")
    if inj.schedule.digest() != state.schedule_digest:
        raise CheckpointRestoreError(
            f"fault schedule mismatch: replay machine runs "
            f"{inj.schedule.digest()[:12]}..., snapshot was taken under "
            f"{(state.schedule_digest or '?')[:12]}...")
    saved = state.injector
    for name, value in saved["counters"].items():
        setattr(inj, name, value)
    inj.log = list(saved["log"])
    inj._insn_idx = saved["insn_idx"]
    for attr, trigger in _INJECTOR_INDICES.items():
        keys = set(saved["remaining"][attr])
        setattr(inj, attr, {at: faults
                            for at, faults in inj._index(trigger).items()
                            if at in keys})
    inj._selector_restore = None
