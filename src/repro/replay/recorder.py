"""The record side: one bus sink + one kernel hook → one replay bundle.

A :class:`Recorder` attaches twice to a run:

- **as a bus sink** it writes ``events.jsonl`` — the full semantic event
  stream in ``StreamingJSONLSink`` v2 format, so the bundle's trace is
  directly consumable by ``repro tracediff`` / ``repro traceq`` and its
  ``seq`` numbering matches any other streaming sink on the same run;
- **as ``kernel.recorder``** it receives :meth:`on_round_boundary` after
  every scheduler round (the only safe points: mid-round restore would
  restart the round's thread-iteration order and diverge the
  interleave) and :meth:`on_nondet` from the kernel's nondeterministic
  input seams (``getrandom`` draws).

Checkpoint policy: a copy-on-write :func:`~repro.replay.checkpoint.\
capture` is taken at the first **safe** round boundary after every
``interval`` retired instructions.  Safe means: every live process has
completed premain (host objects exist and are re-creatable by a fresh
premain run), no thread is parked on a host blocking closure, no live
socket/listener descriptors (batch workloads only — ``RunConfig``
enforces this), and the fault injector is not mid selector-flip.
Checkpoints are held in memory during the run — the CoW snapshot makes
that cheap — and pickled into the bundle at :meth:`close`, off the
measured path.

Bundle layout (``bundle_dir/``)::

    meta.json          version, config (incl. the full fault-schedule
                       draw log), checkpoint index, final_seq, exit status
    events.jsonl       semantic event stream (JSONL schema v2)
    log.jsonl          ReplayMeta / Nondet / Checkpoint / RecordEnd lines
    checkpoint-N.pkl   pickled MachineState, one per checkpoint
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Dict, List, Optional

from repro.observability.events import ReplayCheckpoint
from repro.observability.sinks import Sink, StreamingJSONLSink
from repro.replay.checkpoint import MachineState, capture

#: Bundle format version (meta.json / log.jsonl shape).
REPLAY_BUNDLE_VERSION = 1

#: Default checkpoint spacing in retired instructions.  Batch workloads
#: (the only recordable kind) are syscall-dense and instruction-light —
#: the 120-iteration stress run retires ~2.3k instructions total — so
#: the default is sized to land a handful of checkpoints on them.
DEFAULT_CHECKPOINT_INTERVAL = 1_000

EVENTS_FILE = "events.jsonl"
LOG_FILE = "log.jsonl"
META_FILE = "meta.json"


def config_to_json(config) -> Dict:
    """Serialize the semantically relevant part of a RunConfig.

    Sinks/analyzers/trace paths are observe-only and deliberately
    dropped; the fault schedule is embedded **in full** (every pre-drawn
    uniform and fault, with digest) so replay reloads the exact draws
    rather than re-deriving them.
    """
    return {
        "mechanism": config.mechanism,
        "workload": config.workload,
        "seed": config.seed,
        "params": [[k, v] for k, v in config.params],
        "aslr": config.aslr,
        "block_cache": config.block_cache,
        "max_steps": config.max_steps,
        "requests": config.requests,
        "connections": config.connections,
        "warmup_rounds": config.warmup_rounds,
        "checkpoint_interval": config.checkpoint_interval,
        "schedule": (config.schedule.to_json()
                     if config.schedule is not None else None),
    }


def config_from_json(record: Dict):
    """Rebuild the replay-side RunConfig from a bundle's meta entry."""
    from repro.faultinject.schedule import FaultSchedule
    from repro.runapi import RunConfig

    schedule = None
    if record.get("schedule") is not None:
        schedule = FaultSchedule.from_json(record["schedule"])
    return RunConfig(
        mechanism=record["mechanism"],
        workload=record["workload"],
        seed=record["seed"],
        schedule=schedule,
        params=tuple((k, v) for k, v in record.get("params", [])),
        aslr=record.get("aslr", False),
        block_cache=record.get("block_cache"),
        max_steps=record.get("max_steps", 10_000_000),
        requests=record.get("requests", 32),
        connections=record.get("connections"),
        warmup_rounds=record.get("warmup_rounds", 1),
        checkpoint_interval=record.get("checkpoint_interval",
                                       DEFAULT_CHECKPOINT_INTERVAL),
    )


class Recorder(Sink):
    """Record one run into *bundle_dir* (see module docstring)."""

    def __init__(self, bundle_dir: str, kernel, config=None,
                 interval: int = DEFAULT_CHECKPOINT_INTERVAL):
        os.makedirs(bundle_dir, exist_ok=True)
        self.bundle_dir = bundle_dir
        self.kernel = kernel
        self.config = config
        self.interval = max(1, int(interval))
        self._events_file = open(os.path.join(bundle_dir, EVENTS_FILE),
                                 "w", encoding="utf-8")
        self._sink = StreamingJSONLSink(self._events_file,
                                        include_charges=False)
        self._log: List[Dict] = [{"type": "ReplayMeta",
                                  "version": REPLAY_BUNDLE_VERSION,
                                  "interval": self.interval}]
        self.checkpoints: List[MachineState] = []
        self.skipped_unsafe = 0
        self._last_checkpoint_insns = 0
        self._closed = False

    # The seq of the most recently written record (header = 0), i.e. the
    # current stream position; mirrors StreamingJSONLSink numbering.
    @property
    def seq(self) -> int:
        return self._sink._seq - 1

    # ---------------------------------------------------------- bus sink

    def accept(self, event) -> None:
        self._sink.accept(event)

    # ------------------------------------------------------ kernel hooks

    def on_nondet(self, kind: str, payload: Dict) -> None:
        """A nondeterministic input was drawn (e.g. ``getrandom`` bytes).

        The simulator derives all such draws from the seeded kernel RNG,
        whose state every checkpoint captures — so the log is not needed
        to *reproduce* the draw, it is the cross-check replay verifies
        actual draws against (the determinism-bug tripwire)."""
        if self._closed:
            return
        entry = {"type": "Nondet", "seq": self.seq, "kind": kind}
        entry.update(payload)
        self._log.append(entry)

    def on_round_boundary(self, retired: int) -> None:
        """Scheduler-round boundary: take a checkpoint if one is due and
        the machine is at a safe point."""
        if self._closed:
            return
        insns = self._insns()
        if insns - self._last_checkpoint_insns < self.interval:
            return
        if not self._at_safe_point():
            self.skipped_unsafe += 1
            return
        index = len(self.checkpoints)
        # Capture BEFORE emitting the marker: the marker's own assigned
        # seq S then anchors the snapshot — every event with seq <= S is
        # pre-capture history, and S itself is the (skipped-in-compare)
        # ReplayCheckpoint record.
        state = capture(self.kernel, seq=self.seq + 1, index=index)
        self._last_checkpoint_insns = insns
        self.checkpoints.append(state)
        kernel = self.kernel
        kernel.bus.emit(ReplayCheckpoint(ts=kernel.cycles.cycles, pid=0,
                                         tid=0, seq=state.seq, index=index,
                                         insns=state.insns,
                                         pages=state.total_pages()))
        self._log.append({"type": "Checkpoint", "index": index,
                          "seq": state.seq, "insns": state.insns,
                          "pages": state.total_pages(),
                          "file": f"checkpoint-{index}.pkl"})

    # ------------------------------------------------------------ policy

    def _insns(self) -> int:
        from repro.cpu.cycles import Event

        return self.kernel.cycles.counts[Event.INSTRUCTION]

    def _at_safe_point(self) -> bool:
        from repro.kernel.process import FileFD

        kernel = self.kernel
        for proc in kernel.processes.values():
            if proc.exited:
                continue
            if proc.premain_log_len == 0:
                return False
            for thread in proc.threads:
                if not thread.exited and thread.block_condition is not None:
                    return False
            for descriptor in proc.fds.values():
                if not isinstance(descriptor, FileFD):
                    return False
        injector = kernel.fault_injector
        if injector is not None and injector._selector_restore is not None:
            return False
        return True

    def checkpoint_now(self) -> Optional[MachineState]:
        """Force an immediate checkpoint attempt (test/debug surface);
        returns the state, or None when the machine is not at a safe
        point."""
        if not self._at_safe_point():
            return None
        previous = self._last_checkpoint_insns
        self._last_checkpoint_insns = -self.interval
        try:
            before = len(self.checkpoints)
            self.on_round_boundary(0)
            return self.checkpoints[-1] \
                if len(self.checkpoints) > before else None
        finally:
            if self._last_checkpoint_insns < 0:
                self._last_checkpoint_insns = previous

    # ------------------------------------------------------------- close

    def close(self, exit_status: Optional[int] = None) -> Dict:
        """Flush the bundle to disk; returns the written meta dict."""
        if self._closed:
            return self._meta
        self._closed = True
        if self.kernel.recorder is self:
            self.kernel.recorder = None
        final_seq = self.seq
        self._sink.close()
        self._events_file.close()
        for index, state in enumerate(self.checkpoints):
            path = os.path.join(self.bundle_dir, f"checkpoint-{index}.pkl")
            with open(path, "wb") as fh:
                pickle.dump(state, fh, protocol=pickle.HIGHEST_PROTOCOL)
        self._log.append({"type": "RecordEnd", "final_seq": final_seq,
                          "checkpoints": len(self.checkpoints),
                          "skipped_unsafe": self.skipped_unsafe})
        with open(os.path.join(self.bundle_dir, LOG_FILE), "w",
                  encoding="utf-8") as fh:
            for entry in self._log:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
        meta = {
            "version": REPLAY_BUNDLE_VERSION,
            "final_seq": final_seq,
            "exit_status": exit_status,
            "interval": self.interval,
            "engine_tiers": self.kernel.engine.flags(),
            "block_cache": self.kernel.block_cache_enabled,
            "skipped_unsafe": self.skipped_unsafe,
            "checkpoints": [{"index": s.index, "seq": s.seq,
                             "insns": s.insns,
                             "file": f"checkpoint-{s.index}.pkl"}
                            for s in self.checkpoints],
        }
        if self.config is not None:
            meta["config"] = config_to_json(self.config)
        with open(os.path.join(self.bundle_dir, META_FILE), "w",
                  encoding="utf-8") as fh:
            json.dump(meta, fh, indent=2, sort_keys=True)
            fh.write("\n")
        self._meta = meta
        return meta
