"""The replay side: restore the nearest checkpoint, re-execute, compare.

:func:`replay_bundle` is the engine behind ``python -m repro replay``:

1. rebuild the recorded RunConfig from the bundle's ``meta.json``
   (including the embedded fault-schedule draw log) and :func:`prepare`
   a fresh machine from it;
2. re-run the **premain** phase (loader + interposer constructors) on
   that machine — this is what re-creates the host objects (signal
   handler callables, seccomp filter closures, program images, hostcall
   thunks) that checkpoints only reference by marker;
3. pick the last checkpoint with ``seq < to_seq`` and
   :func:`~repro.replay.checkpoint.restore` it in place (no checkpoint
   before ``to_seq`` ⇒ replay from the start, which needs no restore);
4. execute forward in bounded chunks, collecting the live semantic
   event stream, until as many comparable events as the recorded suffix
   ``(checkpoint_seq, to_seq]`` have been observed;
5. compare the replayed suffix byte-for-byte (canonical JSON, ``seq``
   excluded — see :mod:`repro.replay.seqstream`) and cross-check every
   nondeterministic draw against the recorded ``log.jsonl``.

Replay cost is O(premain + to_seq − checkpoint_seq), bounded by the
checkpoint interval rather than the length of the recorded run.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional

from repro.observability.events import CycleCharge, RawCycles
from repro.observability.sinks import Sink
from repro.replay.checkpoint import restore
from repro.replay.recorder import (EVENTS_FILE, LOG_FILE, META_FILE,
                                   REPLAY_BUNDLE_VERSION, config_from_json)
from repro.replay.seqstream import (canonical_line, comparable_records,
                                    load_jsonl)

#: Instructions per forward-execution chunk; small enough that replay
#: overshoots a target seq by at most one chunk of events.
REPLAY_CHUNK_STEPS = 50_000

#: Premain is re-run in small slices so the replayer stops close to the
#: main handoff (overshoot into main is harmless — restore overwrites).
PREMAIN_CHUNK_STEPS = 20_000


class ReplayDivergenceError(Exception):
    """Replay did not reproduce the recorded event suffix."""


@dataclass
class Bundle:
    """A loaded record bundle (meta + replay log + event stream)."""

    path: str
    meta: Dict
    log: List[Dict]
    events: List[Dict]

    @property
    def final_seq(self) -> int:
        return self.meta["final_seq"]

    def checkpoint_before(self, to_seq: int) -> Optional[Dict]:
        """Last checkpoint entry with ``seq < to_seq`` (its own marker
        record is skipped in comparison, so replay must reproduce every
        comparable event in ``(seq, to_seq]``)."""
        candidates = [cp for cp in self.meta.get("checkpoints", [])
                      if cp["seq"] < to_seq]
        return candidates[-1] if candidates else None

    def load_checkpoint(self, entry: Dict):
        with open(os.path.join(self.path, entry["file"]), "rb") as fh:
            return pickle.load(fh)

    def nondet_after(self, seq: int) -> List[Dict]:
        return [e for e in self.log
                if e.get("type") == "Nondet" and e["seq"] >= seq]


@dataclass
class ReplayResult:
    """Outcome of one replay: where it started, what it compared."""

    bundle: str
    to_seq: int
    checkpoint_index: Optional[int]
    checkpoint_seq: int
    compared: int
    replayed_events: int
    divergence: Optional[Dict] = None
    nondet_mismatches: List[Dict] = field(default_factory=list)
    exit_status: Optional[int] = None
    retired: int = 0

    @property
    def ok(self) -> bool:
        return self.divergence is None and not self.nondet_mismatches

    def summary(self) -> str:
        origin = ("from the start" if self.checkpoint_index is None else
                  f"from checkpoint {self.checkpoint_index} "
                  f"(seq {self.checkpoint_seq})")
        verdict = "byte-identical" if self.ok else "DIVERGED"
        return (f"replayed {origin} to seq {self.to_seq}: "
                f"{self.compared} events compared, {verdict}")


def load_bundle(bundle_dir: str) -> Bundle:
    meta_path = os.path.join(bundle_dir, META_FILE)
    if not os.path.exists(meta_path):
        raise FileNotFoundError(
            f"{bundle_dir!r} is not a replay bundle (no {META_FILE}); "
            f"record one with RunConfig(record=...) or "
            f"`python -m repro replay --record`")
    import json

    with open(meta_path, "r", encoding="utf-8") as fh:
        meta = json.load(fh)
    if meta.get("version") != REPLAY_BUNDLE_VERSION:
        raise ValueError(f"bundle version {meta.get('version')} != "
                         f"supported {REPLAY_BUNDLE_VERSION}")
    return Bundle(path=bundle_dir, meta=meta,
                  log=load_jsonl(os.path.join(bundle_dir, LOG_FILE)),
                  events=load_jsonl(os.path.join(bundle_dir, EVENTS_FILE)))


class _CollectorSink(Sink):
    """Collects the live semantic event stream as plain records."""

    def __init__(self, on_event: Optional[Callable[[Dict], None]] = None):
        self.records: List[Dict] = []
        self.on_event = on_event

    def accept(self, event) -> None:
        if isinstance(event, (CycleCharge, RawCycles)):
            return
        record = asdict(event)
        record["type"] = type(event).__name__
        self.records.append(record)
        if self.on_event is not None:
            self.on_event(record)


class _ReplayCursor:
    """``kernel.recorder`` stand-in during replay: takes no checkpoints,
    verifies each nondeterministic draw against the recorded log."""

    def __init__(self, expected: List[Dict]):
        self._expected = list(expected)
        self.mismatches: List[Dict] = []

    def on_round_boundary(self, retired: int) -> None:
        pass

    def on_nondet(self, kind: str, payload: Dict) -> None:
        if not self._expected:
            self.mismatches.append({"want": None,
                                    "got": {"kind": kind, **payload}})
            return
        want = self._expected.pop(0)
        got = {"kind": kind}
        got.update(payload)
        fields = {k: want[k] for k in payload if k in want}
        if want.get("kind") != kind or fields != payload:
            self.mismatches.append({"want": want, "got": got})


def _run_premain(kernel, process, limit: int = 20_000_000) -> int:
    """Execute the fresh machine up to (or just past) the main handoff."""
    total = 0
    while (process.premain_log_len == 0 and not process.exited
           and total < limit):
        retired = kernel.run_process(process,
                                     max_steps=PREMAIN_CHUNK_STEPS)
        total += retired
        if retired == 0:
            break
    return total


def replay_bundle(bundle_dir: str, to_seq: Optional[int] = None,
                  step: Optional[Callable[[Dict], None]] = None,
                  config=None) -> ReplayResult:
    """Replay *bundle_dir* forward to *to_seq* (default: the full run).

    *step* is called with each replayed semantic event record as it is
    collected (the ``--step`` CLI surface).  *config* overrides the
    bundle's recorded RunConfig — callers use this to replay under a
    different engine tier; the semantic stream must not care.
    """
    bundle = load_bundle(bundle_dir)
    final_seq = bundle.final_seq
    if to_seq is None or to_seq > final_seq:
        to_seq = final_seq
    if to_seq < 1:
        raise ValueError(f"--to-seq must be >= 1, got {to_seq}")
    if config is None:
        if "config" not in bundle.meta:
            raise ValueError(f"bundle {bundle_dir!r} has no recorded "
                             f"config; pass one explicitly")
        config = config_from_json(bundle.meta["config"])
    if config.record is not None:
        raise ValueError("replay config must not itself record")

    from repro.runapi import prepare

    prepared = prepare(config)
    kernel = prepared.kernel

    entry = bundle.checkpoint_before(to_seq)
    collector = _CollectorSink(on_event=step)
    if entry is None:
        # No usable checkpoint: replay from the very beginning.  The
        # collector must see premain events too, so attach before spawn.
        anchor = 0
        checkpoint_index = None
        kernel.bus.attach(collector)
        cursor = _ReplayCursor(bundle.nondet_after(0))
        kernel.recorder = cursor
        process = prepared.spawn()
    else:
        anchor = entry["seq"]
        checkpoint_index = entry["index"]
        process = prepared.spawn()
        _run_premain(kernel, process)
        state = bundle.load_checkpoint(entry)
        restore(kernel, state)
        cursor = _ReplayCursor(bundle.nondet_after(anchor))
        kernel.recorder = cursor
        kernel.bus.attach(collector)

    wanted = [canonical_line(r)
              for r in comparable_records(bundle.events, after_seq=anchor)
              if r["seq"] <= to_seq]
    needed = len(wanted)

    retired = 0
    budget = max(config.max_steps * 2, 1_000_000)
    while len(comparable_records(collector.records)) < needed:
        chunk = kernel.run_process(process, max_steps=REPLAY_CHUNK_STEPS)
        retired += chunk
        if chunk == 0 or process.exited or retired >= budget:
            break
    kernel.recorder = None

    got = [canonical_line(r)
           for r in comparable_records(collector.records)][:needed]
    divergence = None
    for index, want in enumerate(wanted):
        have = got[index] if index < len(got) else None
        if have != want:
            divergence = {"index": index, "seq_hint": anchor + 1 + index,
                          "want": want, "got": have}
            break

    return ReplayResult(
        bundle=bundle_dir,
        to_seq=to_seq,
        checkpoint_index=checkpoint_index,
        checkpoint_seq=anchor,
        compared=min(needed, len(got)),
        replayed_events=len(collector.records),
        divergence=divergence,
        nondet_mismatches=list(cursor.mismatches),
        exit_status=process.exit_status,
        retired=retired,
    )


def run_replay(config):
    """``repro.api.run`` path for ``RunConfig(replay_from=...)``: replay
    the whole recorded run (from its last checkpoint) and return a
    :class:`~repro.runapi.RunResult`.  Raises
    :class:`ReplayDivergenceError` when the replayed stream is not
    byte-identical — a determinism bug, not a soft failure."""
    from repro.runapi import RunResult

    bundle = load_bundle(config.replay_from)
    recorded = bundle.meta.get("config")
    if recorded is not None:
        for key in ("mechanism", "workload", "seed"):
            want = recorded.get(key)
            have = getattr(config, key)
            if want != have:
                raise ValueError(
                    f"replay_from mismatch: bundle recorded {key}="
                    f"{want!r}, config says {have!r}")
    result = replay_bundle(config.replay_from)
    if not result.ok:
        raise ReplayDivergenceError(
            f"{result.summary()}; first divergence: {result.divergence}"
            f"{'; nondet mismatches: ' + str(len(result.nondet_mismatches)) if result.nondet_mismatches else ''}")
    return RunResult(
        mechanism=config.mechanism,
        workload=config.workload,
        seed=config.seed,
        exit_status=result.exit_status,
        counters={"replay": {"compared": result.compared,
                             "checkpoint_index": result.checkpoint_index,
                             "checkpoint_seq": result.checkpoint_seq,
                             "retired": result.retired}},
    )
