"""Sequence-anchored event streams: what record and replay compare.

Both sides of the replay equality check reduce an event stream to its
**comparable** subset in **canonical** form:

- *Semantic* records are everything a ``StreamingJSONLSink`` with
  ``include_charges=False`` writes: every bus event except the
  instruction-rate ``CycleCharge``/``RawCycles`` (summarized, not
  streamed).  The recorder's ``seq`` numbering therefore matches any
  user-attached streaming sink record-for-record.
- *Comparable* records additionally drop bookkeeping types that are
  **about** the run rather than **of** it: the ``TraceMeta`` header, the
  ``ChargeSummary`` trailer, ``ReplayCheckpoint`` markers (only the
  recording run emits them), and ``EngineStats`` (execution-tier
  counters — recorded blocks/traces differ between a cold replay machine
  and the warmed recording machine even though the architectural event
  stream is byte-identical; tier-invariance of the semantic stream is
  what the lockstep suite already asserts).
- *Canonical* form is the sorted-key JSON rendering with ``seq``
  removed: replay re-executes a suffix, so its local sequence numbers
  are offset from the recorded ones while the records themselves must
  match byte-for-byte.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

#: Record types excluded from byte-identity comparison (see module doc).
SKIP_TYPES = frozenset({"TraceMeta", "ChargeSummary", "ReplayCheckpoint",
                        "EngineStats"})


def canonical_line(record: Dict) -> str:
    """Canonical JSON for one record: ``seq`` dropped, keys sorted."""
    return json.dumps({k: v for k, v in record.items() if k != "seq"},
                      sort_keys=True)


def comparable_records(records: Iterable[Dict],
                       after_seq: int = -1) -> List[Dict]:
    """The comparable subset of *records*, optionally only the suffix
    strictly after sequence number *after_seq* (records without a ``seq``
    field — live replayed events — always pass the seq filter)."""
    kept = []
    for record in records:
        if record.get("type") in SKIP_TYPES:
            continue
        seq = record.get("seq")
        if seq is not None and seq <= after_seq:
            continue
        kept.append(record)
    return kept


def canonical_suffix(records: Iterable[Dict],
                     after_seq: int = -1) -> List[str]:
    """Canonical lines of the comparable suffix — the unit of equality."""
    return [canonical_line(r) for r in comparable_records(records, after_seq)]


def load_jsonl(path: str) -> List[Dict]:
    """Parse one record per non-empty line of *path*."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
