"""Time-travel record/replay (rr-style) for simulator runs.

The simulator is deterministic by construction — same seed, same fault
schedule, same workload ⇒ byte-identical event stream — so an rr-style
recorder does not need to log syscall *results*: it logs the few
nondeterministic **inputs** (the seed, the pre-drawn fault schedule,
``getrandom`` draws) for verification, and periodically captures
copy-on-write **machine checkpoints** so replay can jump near any event
sequence number instead of re-executing from the start.  See DESIGN.md
§3j for the architecture.

Public surface:

- :class:`~repro.replay.recorder.Recorder` — bus sink + ``kernel.recorder``
  hook that writes an ``events.jsonl`` stream, a ``log.jsonl`` replay log,
  and pickled checkpoints into a bundle directory.
- :func:`~repro.replay.replayer.replay_bundle` — restore the nearest
  checkpoint at-or-before ``--to-seq`` and re-execute forward, comparing
  the replayed event suffix byte-for-byte against the recorded one.
- :func:`~repro.replay.checkpoint.capture` /
  :func:`~repro.replay.checkpoint.restore` — whole-machine snapshot
  primitives (CoW address-space pages + register files + signal/SUD
  state + kernel tables).
"""

from repro.replay.checkpoint import (CheckpointRestoreError,
                                     CheckpointUnsupported, MachineState,
                                     ProcessState, capture, restore)
from repro.replay.recorder import (DEFAULT_CHECKPOINT_INTERVAL, Recorder,
                                   REPLAY_BUNDLE_VERSION)
from repro.replay.replayer import (ReplayDivergenceError, ReplayResult,
                                   load_bundle, replay_bundle, run_replay)
from repro.replay.seqstream import (SKIP_TYPES, canonical_line,
                                    comparable_records)

__all__ = [
    "Recorder",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "REPLAY_BUNDLE_VERSION",
    "MachineState",
    "ProcessState",
    "capture",
    "restore",
    "CheckpointUnsupported",
    "CheckpointRestoreError",
    "ReplayResult",
    "ReplayDivergenceError",
    "replay_bundle",
    "run_replay",
    "load_bundle",
    "SKIP_TYPES",
    "canonical_line",
    "comparable_records",
]
