"""Artifact bundle for a diverged shadow run — the rollback evidence.

When a shadow run finds any divergence, the harness can serialize
everything a post-mortem needs into one directory:

- ``report.json`` — the full :class:`~repro.shadow.harness.ShadowReport`
  (verdict, divergence list, counters, latency deltas);
- ``tracediff.json`` — every normalized-trace divergence, the earliest
  one flagged, with surrounding context records from both sides;
- ``latency_deltas.json`` — per-(phase, nr) and per-phase histogram
  deltas (shadow minus primary);
- ``analyzers.json`` — the AnalyzerSuite reports of both sides
  (evidence event windows included);
- ``primary.trace.json`` / ``shadow.trace.json`` — Perfetto/Chrome
  trace-event exports of both kernels, loadable in ``ui.perfetto.dev``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.observability.export import write_chrome_trace
from repro.shadow.divergence import divergence_context, earliest_divergence

#: Records of surrounding context serialized per divergence side.
CONTEXT_RECORDS = 5


def _write_json(path: Path, document: Dict) -> None:
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")


def tracediff_document(trace_divergences: List[Dict],
                       primary_records: List[Dict],
                       shadow_records: List[Dict]) -> Dict:
    """The earliest-divergence tracediff context document."""
    document: Dict = {"divergences": trace_divergences,
                      "earliest": None}
    if trace_divergences:
        earliest = earliest_divergence(trace_divergences)
        document["earliest"] = {
            "divergence": earliest,
            "primary_context": divergence_context(
                primary_records, earliest, CONTEXT_RECORDS),
            "shadow_context": divergence_context(
                shadow_records, earliest, CONTEXT_RECORDS),
        }
    return document


def write_bundle(bundle_dir, report, primary_records: List[Dict],
                 shadow_records: List[Dict],
                 trace_divergences: List[Dict],
                 primary_trace=None, shadow_trace=None) -> Path:
    """Serialize the full divergence evidence under *bundle_dir*.

    Returns the bundle directory path.  ``primary_trace``/``shadow_trace``
    are the runs' :class:`~repro.observability.export.TraceSink` objects;
    pass None to skip the Perfetto exports.
    """
    out = Path(bundle_dir)
    out.mkdir(parents=True, exist_ok=True)
    _write_json(out / "report.json", report.to_dict())
    _write_json(out / "tracediff.json",
                tracediff_document(trace_divergences, primary_records,
                                   shadow_records))
    _write_json(out / "latency_deltas.json", report.latency_delta)
    _write_json(out / "analyzers.json", report.analyzer_reports)
    if primary_trace is not None:
        write_chrome_trace(primary_trace, out / "primary.trace.json")
    if shadow_trace is not None:
        write_chrome_trace(shadow_trace, out / "shadow.trace.json")
    return out
