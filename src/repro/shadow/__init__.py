"""Shadow-request dark launches for interposer rollouts.

Run a workload on a *primary* interposition mechanism while mirroring
every request to a *shadow* mechanism on a second deterministically-
seeded kernel; discard the shadow's responses, diff behavior and
latency continuously, and turn the divergence count into an automatic
PROMOTE/ROLLBACK verdict::

    from repro.shadow import ShadowConfig, run_shadow

    report = run_shadow(ShadowConfig(primary="lazypoline",
                                     shadow="K23-ultra",
                                     workload="nginx", seed=7))
    report.verdict, report.divergence_count

CLI: ``python -m repro shadow --primary lazypoline --shadow k23-ultra
--workload nginx --seed 7``.  See DESIGN.md §3h for the mirroring seam
and the divergence budget semantics.
"""

from repro.shadow.divergence import (PROMOTE, ROLLBACK, diff_normalized,
                                     normalized_trace, verdict_for)
from repro.shadow.harness import (FAULT_SIDES, ShadowConfig, ShadowReport,
                                  latency_deltas, run_shadow,
                                  shadow_fault_config)

__all__ = [
    "FAULT_SIDES",
    "PROMOTE",
    "ROLLBACK",
    "ShadowConfig",
    "ShadowReport",
    "diff_normalized",
    "latency_deltas",
    "normalized_trace",
    "run_shadow",
    "shadow_fault_config",
    "verdict_for",
]
