"""The dark-launch harness: primary serves, shadow mirrors, diffs decide.

One :func:`run_shadow` call answers the paper's deployment question —
"is mechanism B a safe drop-in for mechanism A under this workload?" —
the way production systems do (the Shadow Request pattern): the workload
runs on a *primary* mechanism while every request is mirrored to a
*shadow* mechanism on a second deterministically-seeded kernel.  Shadow
responses are compared byte-for-byte and then discarded; after the
drive, the normalized app-observable syscall traces of both sides are
aligned with the tracediff machinery and every divergence is emitted as
a :class:`~repro.observability.events.ShadowDivergence` event on the
primary kernel's bus.  A configurable divergence budget turns the count
into an automatic PROMOTE/ROLLBACK verdict, and any mismatch can emit a
forensic artifact bundle (:mod:`repro.shadow.bundle`).

Batch workloads (stress, coreutils) mirror at whole-run granularity:
both sides run to exit and exit status / output bytes / normalized
traces are compared.

Both kernels are built through :func:`repro.api.prepare` — same seed,
ASLR off, torn-window dice off — and fault injection uses identical
seeded :class:`~repro.faultinject.schedule.FaultSchedule` objects, so a
schedule applied to *both* sides is behavior-invariant for conformant
mechanisms while a schedule applied to *one* side forces divergence (the
harness's own negative control, exercised by the CLI's ``--fault-side``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api import (REGISTRY, DivergenceSink, FaultConfig,
                       LatencyAnalyzer, PreparedRun, RunConfig,
                       ShadowDivergence, build_schedule, prepare)
from repro.kernel.syscalls import Errno, Nr
from repro.observability.export import TraceSink
from repro.shadow.divergence import (describe_divergence, diff_normalized,
                                     normalized_trace, verdict_for)
from repro.workloads.clients import MirroredSource

#: Sides the fault schedule can be armed on.
FAULT_SIDES = ("none", "both", "primary", "shadow")


@dataclass(frozen=True)
class ShadowConfig:
    """One dark-launch experiment, frozen and validated.

    Attributes:
        primary / shadow: registry mechanism names (case-insensitive;
            canonicalized at construction).
        workload: a :data:`repro.runapi.WORKLOADS` key.
        seed: kernel seed used for *both* sides (lockstep determinism).
        requests: mirrored round trips (server workloads).
        connections: per-side connection count (None = workload default).
        budget: inclusive divergence budget — ``count <= budget``
            promotes, anything above rolls back.
        fault_seed / fault_side: arm the conformance fault schedule built
            from ``fault_seed`` on ``"both"`` sides (behavior-invariant
            for conformant mechanisms), on ``"primary"`` or ``"shadow"``
            only (forces divergence — the negative control), or
            ``"none"``.
        warmup_rounds: un-compared warmup exchanges before measurement.
        params: workload installer parameters (see ``RunConfig.params``).
        block_cache: force the interpreter mode on both sides.
        max_steps: batch execution budget per side.
        bundle_dir: when set and any divergence is found, the artifact
            bundle is written under this directory.
        trace_out: when set, the primary side's Perfetto/Chrome trace is
            written here unconditionally (the bundle already carries both
            sides' traces on divergence).
    """

    primary: str
    shadow: str
    workload: str
    seed: int = 0
    requests: int = 24
    connections: Optional[int] = None
    budget: int = 0
    fault_seed: Optional[int] = None
    fault_side: str = "none"
    warmup_rounds: int = 1
    params: Tuple[Tuple[str, int], ...] = ()
    block_cache: Optional[bool] = None
    max_steps: int = 10_000_000
    bundle_dir: Optional[str] = None
    trace_out: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "primary", REGISTRY.canonical(self.primary))
        object.__setattr__(self, "shadow", REGISTRY.canonical(self.shadow))
        if self.fault_side not in FAULT_SIDES:
            raise ValueError(f"fault_side must be one of {FAULT_SIDES}, "
                             f"got {self.fault_side!r}")
        if self.budget < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget}")
        if self.fault_side != "none" and self.fault_seed is None:
            raise ValueError("fault_side without fault_seed; pass the "
                             "schedule seed to arm injection")
        object.__setattr__(self, "params",
                           tuple(sorted(tuple(p) for p in self.params)))


@dataclass
class ShadowReport:
    """Everything one shadow run decided and measured."""

    primary: str
    shadow: str
    workload: str
    seed: int
    requests: int
    failures: int
    divergence_count: int
    budget: int
    verdict: str
    divergences: List[Dict] = field(default_factory=list)
    latency_delta: Dict = field(default_factory=dict)
    counters: Dict = field(default_factory=dict)
    analyzer_reports: Dict = field(default_factory=dict)
    bundle_path: Optional[str] = None
    flight_path: Optional[str] = None

    @property
    def promoted(self) -> bool:
        return self.verdict == "PROMOTE"

    def to_dict(self) -> Dict:
        return {
            "primary": self.primary,
            "shadow": self.shadow,
            "workload": self.workload,
            "seed": self.seed,
            "requests": self.requests,
            "failures": self.failures,
            "divergence_count": self.divergence_count,
            "budget": self.budget,
            "verdict": self.verdict,
            "divergences": self.divergences,
            "latency_delta": self.latency_delta,
            "counters": self.counters,
            "bundle_path": self.bundle_path,
            "flight_path": self.flight_path,
        }


def shadow_fault_config() -> FaultConfig:
    """The fault profile shadow runs arm (``fault_seed``/``fault_side``).

    The conformance harness's profile covers only the first 40
    app-requested occurrences — for a server workload that horizon is
    exhausted during boot, before the compared post-warmup window, so a
    one-sided schedule would never force a divergence.  This profile
    pre-draws a horizon deep enough to reach steady state, puts a floor
    rate on every injectable syscall (batch workloads fail via their
    file I/O), and focuses the errno channel on the request-path
    syscalls, so injections land inside the mirrored drive where the
    diff is looking.
    """
    return FaultConfig(
        horizon=8_000,
        errno_rate=0.05,
        errno_rates={int(Nr.recvfrom): 0.25, int(Nr.sendto): 0.25},
        errnos=(Errno.EINTR, Errno.EAGAIN),
    )


def _side_config(config: ShadowConfig, mechanism: str,
                 side: str) -> RunConfig:
    schedule = None
    if config.fault_seed is not None and config.fault_side in ("both", side):
        schedule = build_schedule(config.fault_seed, shadow_fault_config())
    return RunConfig(
        mechanism=mechanism, workload=config.workload, seed=config.seed,
        schedule=schedule, analyzers=(LatencyAnalyzer(),),
        requests=config.requests, connections=config.connections,
        warmup_rounds=config.warmup_rounds, params=config.params,
        block_cache=config.block_cache, max_steps=config.max_steps)


def _percentile_delta(mine: Optional[Dict],
                      theirs: Optional[Dict]) -> Dict:
    """Per-key latency comparison (cycles); one side may lack the key —
    mechanisms route syscalls through different phases legitimately."""
    entry: Dict = {
        "primary": {k: mine[k] for k in ("count", "p50", "p99")}
        if mine else None,
        "shadow": {k: theirs[k] for k in ("count", "p50", "p99")}
        if theirs else None,
    }
    if mine and theirs:
        entry["delta_p50"] = theirs["p50"] - mine["p50"]
        entry["delta_p99"] = theirs["p99"] - mine["p99"]
    return entry


def latency_deltas(primary_snapshot: Dict, shadow_snapshot: Dict) -> Dict:
    """Shadow-minus-primary latency histogram deltas, per (phase, nr)
    key and per phase.  Telemetry, never verdict material: dispatch
    phases are mechanism-specific by design."""
    out: Dict = {"unit": "cycles"}
    for section in ("per_syscall", "per_phase"):
        mine = primary_snapshot.get(section, {})
        theirs = shadow_snapshot.get(section, {})
        out[section] = {
            key: _percentile_delta(mine.get(key), theirs.get(key))
            for key in sorted(set(mine) | set(theirs))
        }
    return out


class _ShadowRun:
    """Internal state of one in-flight shadow experiment."""

    def __init__(self, config: ShadowConfig):
        self.config = config
        self.primary: PreparedRun = prepare(
            _side_config(config, config.primary, "primary"))
        self.shadow: PreparedRun = prepare(
            _side_config(config, config.shadow, "shadow"))
        # Perfetto recording rides along on both sides so a divergence
        # bundle can always include the full event-level story.
        self.primary_trace = TraceSink(mechanism=config.primary,
                                       workload=config.workload)
        self.shadow_trace = TraceSink(mechanism=config.shadow,
                                      workload=config.workload)
        self.primary.kernel.bus.attach(self.primary_trace)
        self.shadow.kernel.bus.attach(self.shadow_trace)
        self.sink = DivergenceSink()
        self.primary.kernel.bus.attach(self.sink)
        self.divergences: List[Dict] = []
        self.primary_records: List[Dict] = []
        self.shadow_records: List[Dict] = []
        self.trace_divergences: List[Dict] = []
        # Flight recorder over the primary's recent exchanges — dumped
        # once, on the first divergence, so the forensics snapshot shows
        # what the traffic looked like when the disagreement surfaced.
        from repro.observability.spans import SpanFlightRecorder

        self.flight = SpanFlightRecorder(capacity=512)
        self.flight_path: Optional[str] = None

    def emit(self, kind: str, request: int, detail: str) -> None:
        self.divergences.append({"kind": kind, "request": request,
                                 "detail": detail})
        self.primary.kernel.bus.emit(ShadowDivergence(
            ts=self.primary.kernel.cycles.cycles, pid=0, tid=0, kind=kind,
            primary=self.config.primary, shadow=self.config.shadow,
            request=request, detail=detail))
        if self.flight_path is None and self.flight.recorded:
            import os

            from repro.observability.spans import flight_dir

            base = self.config.bundle_dir or flight_dir()
            self.flight_path = self.flight.dump(
                os.path.join(base,
                             f"shadow-flight-{self.config.primary}"
                             f"-vs-{self.config.shadow}.json"),
                reason=f"shadow-divergence:{kind}")

    # ---------------------------------------------------------- execution

    def drive_server(self) -> Tuple[int, int]:
        self.primary.boot()
        self.shadow.boot()
        mirror = MirroredSource(
            self.primary.traffic_source(), self.shadow.traffic_source(),
            on_mismatch=lambda m: self.emit("response", m.request,
                                            m.describe()))
        mirror.bind_trace(self.flight)
        mirror.warmup(self.config.warmup_rounds)
        # Compare steady-state traffic only: everything before this point
        # (boot, discovery rewrites, warmup) is mechanism-dependent.
        primary_start = len(self.primary.kernel.syscall_log)
        shadow_start = len(self.shadow.kernel.syscall_log)
        result = mirror.drive(self.config.requests)
        mirror.close()
        self.compare_traces(primary_start, shadow_start)
        return result.requests, result.failures

    def run_batch(self) -> Tuple[int, int]:
        primary_proc = self.primary.spawn()
        shadow_proc = self.shadow.spawn()
        self.primary.kernel.run_process(primary_proc,
                                        max_steps=self.config.max_steps)
        self.shadow.kernel.run_process(shadow_proc,
                                       max_steps=self.config.max_steps)
        if primary_proc.exit_status != shadow_proc.exit_status:
            self.emit("exit", 0,
                      f"exit status: primary {primary_proc.exit_status} "
                      f"!= shadow {shadow_proc.exit_status}")
        if bytes(primary_proc.output) != bytes(shadow_proc.output):
            self.emit("exit", 0,
                      f"output bytes: primary {len(primary_proc.output)}B "
                      f"!= shadow {len(shadow_proc.output)}B")
        self.compare_traces(primary_proc.premain_log_len,
                            shadow_proc.premain_log_len)
        return 0, 0

    def compare_traces(self, primary_start: int, shadow_start: int) -> None:
        self.primary_records = normalized_trace(self.primary.kernel,
                                                start=primary_start)
        self.shadow_records = normalized_trace(self.shadow.kernel,
                                               start=shadow_start)
        self.trace_divergences = diff_normalized(self.primary_records,
                                                 self.shadow_records)
        for divergence in self.trace_divergences:
            self.emit("trace", divergence["index"],
                      describe_divergence(divergence))

    # ------------------------------------------------------------ report

    def report(self, requests: int, failures: int) -> ShadowReport:
        count = len(self.sink)
        primary_latency = self.primary.suite["latency"].snapshot()
        shadow_latency = self.shadow.suite["latency"].snapshot()
        report = ShadowReport(
            primary=self.config.primary, shadow=self.config.shadow,
            workload=self.config.workload, seed=self.config.seed,
            requests=requests, failures=failures,
            divergence_count=count, budget=self.config.budget,
            verdict=verdict_for(count, self.config.budget),
            divergences=self.sink.snapshot(),
            latency_delta=latency_deltas(primary_latency, shadow_latency),
            counters={"primary": self.primary.counters.snapshot(),
                      "shadow": self.shadow.counters.snapshot()},
            analyzer_reports={"primary": self.primary.suite.report(),
                              "shadow": self.shadow.suite.report()},
            flight_path=self.flight_path)
        if count and self.config.bundle_dir is not None:
            from repro.shadow.bundle import write_bundle

            report.bundle_path = str(write_bundle(
                self.config.bundle_dir, report,
                primary_records=self.primary_records,
                shadow_records=self.shadow_records,
                trace_divergences=self.trace_divergences,
                primary_trace=self.primary_trace,
                shadow_trace=self.shadow_trace))
        if self.config.trace_out is not None:
            from repro.observability.export import write_chrome_trace

            write_chrome_trace(self.primary_trace, self.config.trace_out)
        return report


def run_shadow(config: ShadowConfig) -> ShadowReport:
    """Run one dark-launch experiment and return its verdict + evidence."""
    run = _ShadowRun(config)
    from repro.runapi import WORKLOADS

    if WORKLOADS[config.workload].kind == "server":
        requests, failures = run.drive_server()
    else:
        requests, failures = run.run_batch()
    return run.report(requests, failures)
