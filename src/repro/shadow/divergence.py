"""Divergence detection for shadow runs: normalized traces + budgets.

Raw traces of two different mechanisms legitimately differ — phases,
interposer-internal calls, rewrite traffic.  What must *not* differ is
the application-observable projection: the sequence of app-requested
syscalls with mechanism-invariant results (the conformance harness's
normalization: fd-returners → ``fd``, address-returners → ``addr``,
timer syscalls excluded for the vDSO asymmetry).  This module renders
that projection as v2-style JSONL records — one per-pid track, a
``TraceMeta`` header, monotone ``seq`` — so the existing
``repro tracediff`` alignment (:func:`~repro.tools.tracediff.diff_traces`)
does the comparison and earliest-divergence reporting unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.faultinject.conformance import TIMER_NRS, normalize_record
from repro.tools.tracediff import diff_traces, earliest_divergence

#: Header both sides share; deliberately mechanism-free so the header
#: comparison never diverges by construction.
_HEADER = {"type": "TraceMeta", "schema_version": 2,
           "source": "shadow-normalized"}

PROMOTE = "PROMOTE"
ROLLBACK = "ROLLBACK"


def normalized_trace(kernel, start: int = 0,
                     pids: Optional[Sequence[int]] = None) -> List[Dict]:
    """v2-style records of the app-observable syscalls in *kernel*.

    ``start`` slices off everything before it (pre-main or pre-warmup
    traffic, which is mechanism-dependent); ``pids`` restricts to the
    given processes (default: all).  ``tid`` is fixed at 0 — the kernel
    syscall log attributes records per-pid, and one track per pid is
    exactly the alignment granularity the mirror needs.
    """
    wanted = set(pids) if pids is not None else None
    records: List[Dict] = [dict(_HEADER, seq=0)]
    seq = 1
    for record in kernel.syscall_log[start:]:
        if not record.app_requested or record.nr in TIMER_NRS:
            continue
        if wanted is not None and record.pid not in wanted:
            continue
        records.append({"type": "SyscallObserved", "pid": record.pid,
                        "tid": 0, "seq": seq,
                        "call": normalize_record(record)})
        seq += 1
    return records


def diff_normalized(primary_records: List[Dict],
                    shadow_records: List[Dict]) -> List[Dict]:
    """Per-track divergence list between two normalized traces (empty =
    app-observably identical).  Entries are
    :func:`~repro.tools.tracediff.diff_traces` dicts."""
    return diff_traces(primary_records, shadow_records)


def describe_divergence(divergence: Dict) -> str:
    """One report line for a tracediff entry."""
    track = divergence["track"]
    label = ("global" if track == ("global",) or track == ["global"]
             else f"pid={track[0]}")
    a = divergence.get("a") or {}
    b = divergence.get("b") or {}
    return (f"{label} record #{divergence['index']} "
            f"({divergence['kind']}): primary "
            f"{a.get('call', '<absent>')!r} != shadow "
            f"{b.get('call', '<absent>')!r}")


def verdict_for(divergence_count: int, budget: int) -> str:
    """The dark-launch decision: within budget promotes, over rolls back.

    The budget is inclusive — ``divergence_count <= budget`` is
    :data:`PROMOTE`, anything above is :data:`ROLLBACK`; budget 0 means
    any divergence rolls back.
    """
    if budget < 0:
        raise ValueError(f"divergence budget must be >= 0, got {budget}")
    return PROMOTE if divergence_count <= budget else ROLLBACK


def divergence_context(records: List[Dict], divergence: Dict,
                       context: int = 5) -> List[Dict]:
    """The records surrounding *divergence* on its track in *records*."""
    from repro.tools.traceio import by_track, split_header

    _header, body = split_header(records)
    track = tuple(divergence["track"])
    track_records = by_track(body).get(track, [])
    lo = max(0, divergence["index"] - context)
    hi = min(len(track_records), divergence["index"] + context + 1)
    return track_records[lo:hi]


__all__ = [
    "PROMOTE",
    "ROLLBACK",
    "describe_divergence",
    "diff_normalized",
    "divergence_context",
    "earliest_divergence",
    "normalized_trace",
    "verdict_for",
]
