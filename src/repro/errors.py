"""Exception hierarchy shared across the repro package.

Every failure mode of the simulated machine maps onto one of these
exceptions so that tests and pitfall PoCs can assert on precise outcomes
(e.g. "a NULL code fetch must raise :class:`SegmentationFault`, not silently
execute trampoline bytes").
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DecodeError(ReproError):
    """Raised when a byte sequence cannot be decoded as a SimX86 instruction.

    Attributes:
        offset: byte offset (relative to the buffer handed to the decoder)
            at which decoding failed.
    """

    def __init__(self, message: str, offset: int = 0):
        super().__init__(message)
        self.offset = offset


class AssemblerError(ReproError):
    """Raised for invalid assembler input (unknown label, bad operand...)."""


class MemoryError_(ReproError):
    """Base class for address-space errors (named with a trailing underscore
    to avoid shadowing the builtin :class:`MemoryError`)."""


class SegmentationFault(MemoryError_):
    """An access violated page permissions or touched unmapped memory.

    Attributes:
        address: faulting virtual address.
        access: one of ``"read"``, ``"write"``, ``"exec"``.
        reason: human-readable cause ("unmapped", "permission", "pkey").
    """

    def __init__(self, address: int, access: str, reason: str = "unmapped"):
        super().__init__(
            f"segmentation fault: {access} access at {address:#x} ({reason})"
        )
        self.address = address
        self.access = access
        self.reason = reason


class ProtectionKeyFault(SegmentationFault):
    """A data access was blocked by the thread's PKRU register.

    On real hardware this is reported as a SIGSEGV with ``si_code=SEGV_PKUERR``;
    we keep it as a subclass of :class:`SegmentationFault` so generic handlers
    treat it identically.
    """

    def __init__(self, address: int, access: str):
        super().__init__(address, access, reason="pkey")


class MapError(MemoryError_):
    """``mmap``/``mprotect``-style request could not be satisfied."""


class CPUFault(ReproError):
    """Base class for faults raised while the CPU executes instructions."""


class InvalidOpcode(CPUFault):
    """The CPU fetched bytes that do not form a valid instruction (#UD)."""

    def __init__(self, address: int, message: str = ""):
        super().__init__(f"invalid opcode at {address:#x}{': ' + message if message else ''}")
        self.address = address


class Breakpoint(CPUFault):
    """An ``int3`` instruction was executed (#BP)."""

    def __init__(self, address: int):
        super().__init__(f"breakpoint at {address:#x}")
        self.address = address


class Halt(ReproError):
    """A ``hlt`` instruction was executed in user mode (treated as #GP)."""


class KernelError(ReproError):
    """Base class for simulated-kernel errors."""


class NoSuchProcess(KernelError):
    """Operation referenced a PID that does not exist."""


class ProcessExited(KernelError):
    """Raised internally to unwind the interpreter when a process exits.

    Attributes:
        status: the exit status passed to ``exit``/``exit_group``.
    """

    def __init__(self, status: int):
        super().__init__(f"process exited with status {status}")
        self.status = status


class ProcessKilled(ProcessExited):
    """The process was terminated by a fatal signal.

    Attributes:
        signal: the terminating signal number.
        core: whether the signal's default disposition dumps core
            (wait-status bit 0x80 on real Linux).
    """

    def __init__(self, signal: int, detail: str = "", core: bool = False):
        ProcessExited.__init__(self, 128 + signal)
        self.signal = signal
        self.detail = detail
        self.core = core
        self.args = (f"process killed by signal {signal}"
                     f"{' (' + detail + ')' if detail else ''}"
                     f"{' (core dumped)' if core else ''}",)


class InterposerAbort(ProcessExited):
    """An interposer deliberately aborted the process (e.g. K23's NULL
    execution check or prctl guard fired).

    Attributes:
        reason: why the interposer pulled the trigger.
    """

    def __init__(self, reason: str):
        ProcessExited.__init__(self, 134)  # SIGABRT-style status
        self.reason = reason
        self.args = (f"interposer abort: {reason}",)


class LoaderError(ReproError):
    """The program image or one of its libraries could not be loaded."""


class VFSError(KernelError):
    """Simulated-filesystem error; carries a Linux errno."""

    def __init__(self, errno: int, message: str):
        super().__init__(message)
        self.errno = errno
