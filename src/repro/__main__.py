"""``python -m repro`` — the unified CLI.

One dispatcher over the tools::

    python -m repro simtrace <program> [--seed N] [--trace-out F] ...
    python -m repro evalrun [table5|table6|matrix] [--seed N] [--jobs N] ...
    python -m repro conformance [--smoke] [--seed N] [--jobs N] ...
    python -m repro pitfallcheck [zpoline|lazypoline|K23|all] [--seed N] ...
    python -m repro shadow --primary A --shadow B --workload W [--seed N] ...
    python -m repro tracediff A.jsonl B.jsonl [--context N] ...
    python -m repro traceq TRACE [--type T] [--phase P] [--count] ...
    python -m repro replay --bundle B --to-seq N [--step] [--seed N] ...
    python -m repro loadtest [--workload W] [--requests N] [--jobs N] ...
    python -m repro sloexplain [EXEMPLAR_ID] [--worst] [--list] ...

The shared flags — ``--seed``, ``--jobs``, ``--trace-out`` — mean the
same thing everywhere they are accepted (determinism seed, process-pool
width, Perfetto trace output); passing one to a subcommand that does not
support it is an error here — naming the subcommands that *do* accept
it — rather than an argparse surprise there.  The old module paths
(``python -m repro.tools.simtrace`` etc.) keep working.
"""

from __future__ import annotations

import importlib
import sys
from typing import List, Optional, Tuple

#: subcommand → (implementation module, shared flags it supports).
SUBCOMMANDS = {
    "simtrace": ("repro.tools.simtrace", ("--seed", "--trace-out")),
    "evalrun": ("repro.tools.evalrun",
                ("--seed", "--jobs", "--trace-out")),
    "conformance": ("repro.tools.conformance",
                    ("--seed", "--jobs", "--trace-out")),
    "pitfallcheck": ("repro.tools.pitfallcheck", ("--seed",)),
    "shadow": ("repro.tools.shadow", ("--seed", "--trace-out")),
    "tracediff": ("repro.tools.tracediff", ()),
    "traceq": ("repro.tools.traceq", ()),
    "replay": ("repro.tools.replay", ("--seed",)),
    "loadtest": ("repro.tools.loadtest", ("--seed", "--jobs")),
    "sloexplain": ("repro.tools.sloexplain", ()),
}

SHARED_FLAGS = ("--seed", "--jobs", "--trace-out")


def supporters_of(flag: str) -> Tuple[str, ...]:
    """The subcommands that accept *flag* (for the mismatch error)."""
    return tuple(name for name, (_module, shared) in SUBCOMMANDS.items()
                 if flag in shared)


def _usage() -> str:
    lines = ["usage: python -m repro <subcommand> [options]", "",
             "subcommands:"]
    for name, (module, shared) in SUBCOMMANDS.items():
        extra = f"  (shared: {', '.join(shared)})" if shared else ""
        lines.append(f"  {name:<14}{module}{extra}")
    lines += ["",
              "Run `python -m repro <subcommand> --help` for the full "
              "option list."]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_usage())
        return 0 if argv else 2
    name, rest = argv[0], argv[1:]
    if name not in SUBCOMMANDS:
        print(f"unknown subcommand {name!r}\n\n{_usage()}", file=sys.stderr)
        return 2
    module_name, supported = SUBCOMMANDS[name]
    for flag in SHARED_FLAGS:
        if flag in supported:
            continue
        if any(arg == flag or arg.startswith(flag + "=") for arg in rest):
            accepted = supporters_of(flag)
            hint = (f" (supported by: {', '.join(accepted)})"
                    if accepted else "")
            print(f"{name} does not support {flag}{hint}", file=sys.stderr)
            return 2
    module = importlib.import_module(module_name)
    return module.main(rest)


if __name__ == "__main__":
    raise SystemExit(main())
