"""The simulated C library.

Every wrapper owns its own ``syscall`` instruction, so a program that calls
``write`` and ``openat`` exercises two distinct syscall *sites* — the
property that makes K23's offline logs small and stable (Table 2 counts
unique sites, not calls).  The time functions route through the vDSO when
the loader found one (pitfall P2b: no ``syscall`` instruction executes), and
fall back to real syscalls when the vDSO is absent — which is precisely what
K23's ptracer forces by disabling the vDSO (§5.2).

``dlopen``/``dlmopen`` are host-implemented (as in real life they are
loader, not kernel, functionality); dlmopen's namespace argument gives
interposers the isolated-copy semantics prior work relies on (§5.3).
"""

from __future__ import annotations

from typing import Dict

from repro.arch.assembler import Asm
from repro.arch.registers import Reg
from repro.cpu.cycles import Event
from repro.kernel.syscalls import Nr
from repro.loader.image import SimImage

#: Canonical path, matching the paper's Figure 3 log excerpts.
LIBC_PATH = "/usr/lib/x86_64-linux-gnu/libc.so.6"

#: vDSO pointer slots in libc's data section (loader-patched).
VDSO_CLOCK_SLOT = "__vdso_clock_gettime_ptr"
VDSO_TOD_SLOT = "__vdso_gettimeofday_ptr"

#: Wrappers generated mechanically: symbol name → syscall number.
_PLAIN_WRAPPERS: Dict[str, int] = {
    "read": Nr.read,
    "write": Nr.write,
    "open": Nr.open,
    "openat": Nr.openat,
    "close": Nr.close,
    "lseek": Nr.lseek,
    "stat": Nr.stat,
    "fstat": Nr.fstat,
    "newfstatat": Nr.newfstatat,
    "access": Nr.access,
    "getdents64": Nr.getdents64,
    "unlink": Nr.unlink,
    "mkdir": Nr.mkdir,
    "getcwd": Nr.getcwd,
    "chdir": Nr.chdir,
    "fsync": Nr.fsync,
    "fdatasync": Nr.fdatasync,
    "dup": Nr.dup,
    "fcntl": Nr.fcntl,
    "ioctl": Nr.ioctl,
    "mmap": Nr.mmap,
    "munmap": Nr.munmap,
    "mprotect": Nr.mprotect,
    "pkey_mprotect": Nr.pkey_mprotect,
    "pkey_alloc": Nr.pkey_alloc,
    "pkey_free": Nr.pkey_free,
    "brk": Nr.brk,
    "getpid": Nr.getpid,
    "gettid": Nr.gettid,
    "getppid": Nr.getppid,
    "getuid": Nr.getuid,
    "uname": Nr.uname,
    "nanosleep": Nr.nanosleep,
    "sched_yield": Nr.sched_yield,
    "getrandom": Nr.getrandom,
    "futex": Nr.futex,
    "rt_sigaction": Nr.rt_sigaction,
    "rt_sigprocmask": Nr.rt_sigprocmask,
    "arch_prctl": Nr.arch_prctl,
    "setpriority": Nr.setpriority,
    "kill": Nr.kill,
    "prctl": Nr.prctl,
    "socket": Nr.socket,
    "bind": Nr.bind,
    "listen": Nr.listen,
    "accept": Nr.accept,
    "recvfrom": Nr.recvfrom,
    "sendto": Nr.sendto,
    "shutdown": Nr.shutdown,
    "connect": Nr.connect,
    "epoll_create": Nr.epoll_create,
    "epoll_ctl": Nr.epoll_ctl,
    "epoll_wait": Nr.epoll_wait,
    "fork": Nr.fork,
    "execve": Nr.execve,
    "wait4": Nr.wait4,
    "exit": Nr.exit,
    "exit_group": Nr.exit_group,
}


def build_libc(kernel) -> SimImage:
    """Assemble a fresh libc image bound to *kernel*'s hostcall registry."""
    image = SimImage(name=LIBC_PATH, entry="")
    asm = image.asm

    # -- mechanical wrappers ------------------------------------------------
    for symbol, number in _PLAIN_WRAPPERS.items():
        asm.label(symbol)
        asm.endbr64()
        asm.mov_ri(Reg.RAX, int(number))
        asm.syscall_site(f"{symbol}.syscall")
        asm.ret()
        asm.align(16)

    # -- generic syscall(3): nr in RDI, args shifted down one register -------
    asm.label("syscall")
    asm.endbr64()
    asm.mov_rr(Reg.RAX, Reg.RDI)
    asm.mov_rr(Reg.RDI, Reg.RSI)
    asm.mov_rr(Reg.RSI, Reg.RDX)
    asm.mov_rr(Reg.RDX, Reg.R10)
    asm.mov_rr(Reg.R10, Reg.R8)
    asm.mov_rr(Reg.R8, Reg.R9)
    asm.syscall_site("syscall.syscall")
    asm.ret()
    asm.align(16)

    # -- a legacy sysenter-based entry (exercises 0F 34 handling) ------------
    asm.label("legacy_getpid")
    asm.endbr64()
    asm.mov_ri(Reg.RAX, int(Nr.getpid))
    asm.mark("legacy_getpid.sysenter")
    asm.sysenter_()
    asm.ret()
    asm.align(16)

    # -- vDSO-routed time functions (P2b) -------------------------------------
    for symbol, slot, number in (
        ("clock_gettime", VDSO_CLOCK_SLOT, Nr.clock_gettime),
        ("gettimeofday", VDSO_TOD_SLOT, Nr.gettimeofday),
    ):
        asm.label(symbol)
        asm.endbr64()
        asm.lea_rip_label(Reg.RAX, slot)
        asm.load(Reg.RAX, Reg.RAX)
        asm.test_rr(Reg.RAX, Reg.RAX)
        asm.je(f"{symbol}.syscall_path")
        asm.jmp_reg(Reg.RAX)  # tail-call into the vDSO; returns to caller
        asm.label(f"{symbol}.syscall_path")
        asm.mov_ri(Reg.RAX, int(number))
        asm.syscall_site(f"{symbol}.syscall")
        asm.ret()
        asm.align(16)

    # -- dlopen / dlmopen (host-implemented loader entry points) ---------------
    def _read_cstr(thread, addr: int) -> str:
        out = bytearray()
        space = thread.process.address_space
        while len(out) < 4096:
            byte = space.read_kernel(addr + len(out), 1)
            if byte == b"\x00":
                break
            out += byte
        return out.decode("latin-1")

    def dlopen_host(thread):
        kernel.cycles.charge(Event.DLOPEN)
        path = _read_cstr(thread, thread.context.get(Reg.RDI))
        base = kernel.loader.load_library(thread.process, path,
                                          run_constructors_on=thread)
        thread.context.set(Reg.RAX, base)

    def dlmopen_host(thread):
        kernel.cycles.charge(Event.DLOPEN)
        namespace = thread.context.get(Reg.RDI)
        path = _read_cstr(thread, thread.context.get(Reg.RSI))
        base = kernel.loader.load_library(thread.process, path,
                                          run_constructors_on=thread,
                                          namespace=namespace)
        thread.context.set(Reg.RAX, base)

    def pthread_create_host(thread):
        """Spawn a new thread at the function in RDI (pthread_create-lite).

        Inherits the caller's registers, PKRU, and — as on Linux clone —
        the SUD configuration.  The new thread gets its own stack.
        """
        from repro.memory.pages import PAGE_SIZE as _PS, Prot as _Prot

        process = thread.process
        entry = thread.context.get(Reg.RDI)
        child = process.spawn_thread()
        child.context.restore(thread.context.save())
        stack = process.address_space.mmap(None, 16 * _PS,
                                           _Prot.READ | _Prot.WRITE,
                                           name="[thread-stack]")
        child.context.set(Reg.RSP, stack + 16 * _PS - 16)
        child.context.rip = entry
        child.sud = thread.sud.copy()
        thread.context.set(Reg.RAX, child.tid)

    def thread_exit_host(thread):
        """End the calling thread (pthread_exit-lite)."""
        thread.exited = True

    def burn_host(thread):
        """Model application compute: charge RDI cycles in one step.

        Workloads use this to represent request-processing work (parsing,
        hashing, page-cache copies) without single-stepping millions of
        filler instructions.  It is pure user-space work: no interposer
        ever sees it, exactly like real computation.
        """
        kernel.cycles.charge_cycles(thread.context.get(Reg.RDI),
                                    label="app-compute")

    dlopen_idx = kernel.hostcalls.register(dlopen_host, "libc.dlopen")
    dlmopen_idx = kernel.hostcalls.register(dlmopen_host, "libc.dlmopen")
    pthread_idx = kernel.hostcalls.register(pthread_create_host,
                                            "libc.pthread_create")
    texit_idx = kernel.hostcalls.register(thread_exit_host,
                                          "libc.thread_exit")
    burn_idx = kernel.hostcalls.register(burn_host, "libc.burn")

    asm.label("dlopen")
    asm.endbr64()
    asm.hostcall(dlopen_idx)
    asm.ret()
    asm.align(16)
    asm.label("dlmopen")
    asm.endbr64()
    asm.hostcall(dlmopen_idx)
    asm.ret()
    asm.align(16)
    asm.label("pthread_create")
    asm.endbr64()
    asm.hostcall(pthread_idx)
    asm.ret()
    asm.align(16)
    asm.label("pthread_exit")
    asm.endbr64()
    asm.hostcall(texit_idx)
    asm.ret()
    asm.align(16)
    asm.label("burn")
    asm.endbr64()
    asm.hostcall(burn_idx)
    asm.ret()
    asm.align(16)

    # -- data section: vDSO slots + a realistic jump-table-style data island --
    image.begin_data()
    asm.label(VDSO_CLOCK_SLOT)
    asm.dq(0)
    asm.label(VDSO_TOD_SLOT)
    asm.dq(0)
    image.finalize()
    return image
