"""The dynamic loader.

Responsible for everything that happens between ``execve`` and ``main``:

1. choose ASLR bases (offsets within a region stay stable across runs — the
   invariant K23's offline logs rely on, §5.1);
2. map the vDSO (unless a tracer disabled it), every ``LD_PRELOAD`` library,
   the needed libraries, and the main executable;
3. generate and map a **startup stub** — real simulated code that issues the
   authentic pre-main syscall storm (``openat``/``read``/``fstat``/``mmap``/
   ``mprotect``/``close`` per library plus locale/gconv probing).  These are
   genuine ``syscall`` instructions executing before any interposition
   library exists, which is why LD_PRELOAD-based interposers structurally
   miss them (P2b) and only a ptrace stage can see them;
4. patch GOT slots and vDSO pointers;
5. arrange for library constructors (including interposer init hooks) to run
   — preloads first — and finally jump to the program entry.

ASLR bases are filtered so their byte encodings never contain ``0F 05`` /
``0F 34`` pairs; otherwise a random base could nondeterministically add
phantom sites to byte-scanning experiments.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from repro.arch.assembler import Asm
from repro.arch.registers import Reg
from repro.errors import LoaderError
from repro.kernel.syscalls import Nr
from repro.loader.image import DATA_START_LABEL, GOT_PREFIX, SimImage
from repro.memory.pages import PAGE_SIZE, Prot, round_up_pages

#: Virtual-address slots (avoid collisions; every base is slot + jitter).
MAIN_BASE = 0x55_5555_0000
LIB_BASE = 0x7F10_0000_0000
STUB_BASE = 0x7F20_0000_0000
VDSO_BASE = 0x7FFD_0000_0000
STACK_BASE = 0x7FFE_0000_0000
STACK_PAGES = 64

_SCAN_HAZARDS = (b"\x0f\x05", b"\x0f\x34")


def _addr_scan_safe(address: int) -> bool:
    """True when the LE encoding of *address* contains no syscall pattern."""
    packed = struct.pack("<Q", address)
    return not any(pattern in packed for pattern in _SCAN_HAZARDS)


class Loader:
    """Per-kernel dynamic loader."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._vdso_cache: Optional[tuple] = None
        self._libc_registered = False

    # ------------------------------------------------------------ registration

    def ensure_libc(self) -> SimImage:
        """Build and register the libc image once per kernel."""
        if not self._libc_registered:
            from repro.loader.libc import LIBC_PATH, build_libc

            image = build_libc(self.kernel)
            self.register_image(image)
            self._libc_registered = True
        from repro.loader.libc import LIBC_PATH

        return self.kernel.vfs.lookup(LIBC_PATH).image

    def register_image(self, image: SimImage, path: Optional[str] = None) -> None:
        """Place *image* into the VFS as an executable/library file."""
        image.finalize()
        self.kernel.vfs.create(path or image.name, data=image.blob,
                               image=image, mode=0o755)

    # ---------------------------------------------------------------- ASLR

    def _pick_base(self, process, slot: int) -> int:
        if not self.kernel.aslr:
            jitter = 0
        else:
            jitter = self.kernel.rng.randrange(0, 0x4000) * PAGE_SIZE
        base = slot + jitter
        while (not _addr_scan_safe(base)
               or process.address_space.is_mapped(base)):
            base += 0x40 * PAGE_SIZE
        return base

    # ------------------------------------------------------------- image mapping

    def map_image(self, process, image: SimImage, namespace: int = 0) -> int:
        """Map one image (code r-x, data rw-) and record it."""
        image.finalize()
        base = self._pick_base(process, LIB_BASE if image.entry == ""
                               else MAIN_BASE)
        blob = image.blob
        space = process.address_space
        space.mmap(base, round_up_pages(len(blob)), Prot.READ | Prot.WRITE,
                   name=image.name, fixed=True)
        space.write_kernel(base, blob)
        code_len = round_up_pages(image.code_size)
        space.mprotect(base, code_len, Prot.READ | Prot.EXEC)
        if round_up_pages(len(blob)) > code_len:
            space.mprotect(base + code_len,
                           round_up_pages(len(blob)) - code_len,
                           Prot.READ | Prot.WRITE)
        key = image.name if namespace == 0 else f"{image.name}#ns{namespace}"
        process.loaded_images[key] = (base, image, namespace)
        return base

    def resolve_symbol(self, process, name: str,
                       namespace: int = 0) -> Optional[int]:
        """Absolute address of *name* across the process's loaded images."""
        for base, image, img_ns in process.loaded_images.values():
            if img_ns == namespace and image.has_symbol(name):
                return base + image.symbol(name)
        return None

    def _patch_got(self, process, image: SimImage, base: int,
                   namespace: int) -> None:
        for symbol in image.imports:
            target = self.resolve_symbol(process, symbol, namespace)
            if target is None and namespace != 0:
                target = self.resolve_symbol(process, symbol, 0)
            if target is None:
                raise LoaderError(
                    f"{image.name}: unresolved import {symbol!r}")
            process.address_space.write_kernel(
                base + image.got_offset(symbol), struct.pack("<Q", target))

    def _patch_vdso_slots(self, process, image: SimImage, base: int) -> None:
        from repro.kernel.vdso import VDSO_CLOCK_GETTIME, VDSO_GETTIMEOFDAY
        from repro.loader.libc import VDSO_CLOCK_SLOT, VDSO_TOD_SLOT

        for slot, symbol in ((VDSO_CLOCK_SLOT, VDSO_CLOCK_GETTIME),
                             (VDSO_TOD_SLOT, VDSO_GETTIMEOFDAY)):
            if not image.has_symbol(slot):
                continue
            target = 0
            vdso = process.loaded_images.get("[vdso]")
            if vdso is not None and process.vdso_enabled:
                vdso_base, vdso_image, _ = vdso
                target = vdso_base + vdso_image.symbol(symbol)
            process.address_space.write_kernel(
                base + image.symbol(slot), struct.pack("<Q", target))

    def _map_vdso(self, process) -> None:
        if not process.vdso_enabled:
            return
        if self._vdso_cache is None:
            from repro.kernel.vdso import build_vdso

            self._vdso_cache = build_vdso(self.kernel)
        blob, symbols = self._vdso_cache
        image = SimImage(name="[vdso]", entry="")
        image.asm.raw(blob)
        image.begin_data()
        image.asm.dq(0)
        # Rebuild labels from the prebuilt blob's symbol table.
        image.asm.labels.update(symbols)
        image.finalize()
        base = self._pick_base(process, VDSO_BASE)
        space = process.address_space
        space.mmap(base, round_up_pages(len(blob)), Prot.READ | Prot.EXEC,
                   name="[vdso]", fixed=True)
        space.write_kernel(base, blob)
        process.loaded_images["[vdso]"] = (base, image, 0)

    # ---------------------------------------------------------- runtime loading

    def load_library(self, process, path: str, run_constructors_on=None,
                     namespace: int = 0) -> int:
        """dlopen-style load: map, patch, run constructors immediately."""
        inode = self.kernel.vfs.lookup(path)
        if inode.image is None:
            raise LoaderError(f"{path} is not a loadable image")
        image: SimImage = inode.image
        # Dependencies first (one level, matching our image graphs).
        for needed in image.needed:
            already = any(img.name == needed
                          for _, img, ns in process.loaded_images.values()
                          if ns == namespace)
            if not already and needed not in process.loaded_images:
                self.load_library(process, needed, run_constructors_on,
                                  namespace)
        base = self.map_image(process, image, namespace)
        self._patch_got(process, image, base, namespace)
        self._patch_vdso_slots(process, image, base)
        if run_constructors_on is not None:
            for constructor in image.constructors:
                constructor(run_constructors_on, base)
        return base

    # -------------------------------------------------------------- exec loading

    def load_into(self, process, path: str, argv: List[str],
                  env: Dict[str, str]) -> None:
        """Full exec: map everything and point the main thread at the stub."""
        self.ensure_libc()
        inode = self.kernel.vfs.lookup(path)
        if inode.image is None:
            raise LoaderError(f"{path} is not executable")
        main_image: SimImage = inode.image
        main_image.finalize()

        self._map_vdso(process)

        preloads = [entry for entry in
                    env.get("LD_PRELOAD", "").replace(":", " ").split()
                    if entry]
        from repro.loader.libc import LIBC_PATH

        ordered: List[str] = []
        for candidate in (*preloads, LIBC_PATH, *main_image.needed):
            if candidate not in ordered and candidate != path:
                ordered.append(candidate)

        lib_records = []  # (path, base, image)
        process.ld_preload_errors = []
        for lib_path in ordered:
            try:
                lib_inode = self.kernel.vfs.lookup(lib_path)
                if lib_inode.image is None:
                    raise LoaderError(f"{lib_path} is not a loadable image")
            except Exception as exc:
                if lib_path in preloads:
                    # ld.so semantics: a broken LD_PRELOAD entry is warned
                    # about and ignored, never fatal.
                    process.ld_preload_errors.append(
                        f"ERROR: ld.so: object '{lib_path}' cannot be "
                        f"preloaded: ignored ({exc})")
                    continue
                raise
            lib_image: SimImage = lib_inode.image
            base = self.map_image(process, lib_image)
            lib_records.append((lib_path, base, lib_image))

        main_base = self.map_image(process, main_image)

        for lib_path, base, lib_image in lib_records:
            self._patch_got(process, lib_image, base, namespace=0)
            self._patch_vdso_slots(process, lib_image, base)
        self._patch_got(process, main_image, main_base, namespace=0)
        self._patch_vdso_slots(process, main_image, main_base)

        # Stack.
        stack_base = self._pick_base(process, STACK_BASE)
        space = process.address_space
        space.mmap(stack_base, STACK_PAGES * PAGE_SIZE,
                   Prot.READ | Prot.WRITE, name="[stack]", fixed=True)
        stack_top = stack_base + STACK_PAGES * PAGE_SIZE - 16

        # Startup stub.
        entry_abs = main_base + main_image.symbol(main_image.entry)
        stub = self._build_stub(process, main_image, lib_records, entry_abs)
        stub_base = self._pick_base(process, STUB_BASE)
        stub_blob = stub.blob
        space.mmap(stub_base, round_up_pages(len(stub_blob)),
                   Prot.READ | Prot.WRITE, name="[ld.so]", fixed=True)
        space.write_kernel(stub_base, stub_blob)
        code_len = round_up_pages(stub.code_size)
        space.mprotect(stub_base, code_len, Prot.READ | Prot.EXEC)
        process.loaded_images["[ld.so]"] = (stub_base, stub, 0)

        thread = process.main_thread if process.threads else process.spawn_thread()
        thread.context.rip = stub_base
        thread.context.set(Reg.RSP, stack_top)
        thread.icache.flush_all()

    # ------------------------------------------------------------------ stub gen

    def _build_stub(self, process, main_image: SimImage, lib_records,
                    entry_abs: int) -> SimImage:
        """Generate the pre-main startup stub for this exec.

        The stub is its own image ("[ld.so]"): code pages r-x, data page rw-
        (path strings, scratch buffers, and the entry-address slot live in
        non-executable data, so scanners never see their bytes).
        """
        kernel = self.kernel
        stub = SimImage(name="[ld.so]", entry="")
        asm = stub.asm
        data_strings: List[tuple] = []  # (label, text)
        counters = {"n": 0}

        def syscall_(number: int) -> None:
            asm.mov_ri(Reg.RAX, int(number))
            asm.mark(f"stub.{counters['n']}")
            counters["n"] += 1
            asm.syscall_()

        def lea_data(reg: Reg, label: str, text: str) -> None:
            if all(lbl != label for lbl, _ in data_strings):
                data_strings.append((label, text))
            asm.lea_rip_label(reg, label)

        # -- early loader work ------------------------------------------------
        asm.xor_rr(Reg.RDI, Reg.RDI)
        syscall_(Nr.brk)
        lea_data(Reg.RDI, "s_preload", "/etc/ld.so.preload")
        syscall_(Nr.access)  # usually ENOENT
        asm.mov_ri(Reg.RDI, 0x1002)
        asm.xor_rr(Reg.RSI, Reg.RSI)
        syscall_(Nr.arch_prctl)
        asm.xor_rr(Reg.RDI, Reg.RDI)
        syscall_(Nr.uname)
        asm.mov_ri(Reg.RDI, (1 << 64) - 100)  # AT_FDCWD
        lea_data(Reg.RSI, "s_cache", "/etc/ld.so.cache")
        asm.xor_rr(Reg.RDX, Reg.RDX)
        syscall_(Nr.openat)
        asm.mov_rr(Reg.RBX, Reg.RAX)
        asm.mov_rr(Reg.RDI, Reg.RBX)
        syscall_(Nr.fstat)
        asm.mov_rr(Reg.RDI, Reg.RBX)
        syscall_(Nr.close)

        # -- per-library mapping storm ------------------------------------------
        for index, (lib_path, _base, _image) in enumerate(lib_records):
            asm.mov_ri(Reg.RDI, (1 << 64) - 100)
            lea_data(Reg.RSI, f"s_lib{index}", lib_path)
            asm.xor_rr(Reg.RDX, Reg.RDX)
            syscall_(Nr.openat)
            asm.mov_rr(Reg.RBX, Reg.RAX)
            asm.mov_rr(Reg.RDI, Reg.RBX)
            lea_data(Reg.RSI, "s_buf", "\x00" * 64)
            asm.mov_ri(Reg.RDX, 832)
            syscall_(Nr.read)
            asm.mov_rr(Reg.RDI, Reg.RBX)
            syscall_(Nr.fstat)
            # Two anonymous segment mappings + one mprotect (PT_LOAD replay).
            for _ in range(2):
                asm.xor_rr(Reg.RDI, Reg.RDI)
                asm.mov_ri(Reg.RSI, 4 * PAGE_SIZE)
                asm.mov_ri(Reg.RDX, 0x3)
                asm.mov_ri(Reg.R10, 0x22)  # MAP_PRIVATE|MAP_ANONYMOUS
                asm.mov_ri(Reg.R8, (1 << 64) - 1)
                syscall_(Nr.mmap)
            asm.mov_rr(Reg.RDI, Reg.RAX)
            asm.mov_ri(Reg.RSI, PAGE_SIZE)
            asm.mov_ri(Reg.RDX, 0x1)
            syscall_(Nr.mprotect)
            asm.mov_rr(Reg.RDI, Reg.RBX)
            syscall_(Nr.close)

        # -- locale / gconv probing (the long tail of real startups) --------------
        for probe in range(max(0, main_image.stub_profile) // 2):
            asm.mov_ri(Reg.RDI, (1 << 64) - 100)
            lea_data(Reg.RSI, f"s_loc{probe}",
                     f"/usr/lib/locale/C.UTF-8/LC_{probe:02d}")
            asm.xor_rr(Reg.RDX, Reg.RDX)
            syscall_(Nr.openat)  # ENOENT
            lea_data(Reg.RDI, f"s_loc{probe}",
                     f"/usr/lib/locale/C.UTF-8/LC_{probe:02d}")
            syscall_(Nr.stat)  # ENOENT

        # -- constructors (preloads first — glibc init order), then handoff -------
        for lib_path, base, lib_image in lib_records:
            for ordinal, constructor in enumerate(lib_image.constructors):
                index = kernel.hostcalls.register(
                    _make_ctor_thunk(constructor, base),
                    f"ctor:{lib_path}#{ordinal}")
                asm.hostcall(index)
        for ordinal, constructor in enumerate(main_image.constructors):
            main_base_entry = process.loaded_images[main_image.name][0]
            index = kernel.hostcalls.register(
                _make_ctor_thunk(constructor, main_base_entry),
                f"ctor:{main_image.name}#{ordinal}")
            asm.hostcall(index)

        def loader_done(thread) -> None:
            proc = thread.process
            proc.premain_syscalls = len(
                [r for r in kernel.syscall_log
                 if r.pid == proc.pid and r.app_requested])
            proc.premain_log_len = len(kernel.syscall_log)

        asm.hostcall(kernel.hostcalls.register(loader_done, "loader_done"))

        # -- jump to the program entry (address loaded from non-exec data) -------
        asm.lea_rip_label(Reg.RAX, "entry_slot")
        asm.load(Reg.RAX, Reg.RAX)
        asm.jmp_reg(Reg.RAX)

        # -- data section ----------------------------------------------------------
        stub.begin_data()
        asm.label("entry_slot")
        asm.dq(entry_abs)
        for label, text in data_strings:
            asm.label(label)
            asm.ascii(text)
        stub.finalize()
        return stub


def _make_ctor_thunk(constructor, base: int):
    def thunk(thread, _constructor=constructor, _base=base):
        _constructor(thread, _base)

    return thunk
