"""SimELF program images.

An image is a single assembled blob: code first, then (page-aligned) data.
Mapping one blob per image keeps RIP-relative addressing valid between the
two, exactly like a contiguously-mapped ELF segment pair.  The loader maps
the code pages r-x and the data pages rw-, patches the GOT slots of declared
imports with resolved absolute addresses, and registers constructors to run
before ``main`` (this is how interposer libraries bootstrap — their
constructor is the LD_PRELOAD init hook).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.arch.assembler import Asm
from repro.errors import LoaderError
from repro.memory.pages import PAGE_SIZE, round_up_pages

#: Label that separates code pages from data pages inside the blob.
DATA_START_LABEL = "__data_start"

#: GOT slot label prefix; ``__got_write`` holds the address of ``write``.
GOT_PREFIX = "__got_"

#: Constructor signature: (thread, base_address) -> None, where *thread* is
#: the thread executing the loader stub.
Constructor = Callable[[object, int], None]


@dataclass
class SimImage:
    """One loadable object (executable or shared library).

    Attributes:
        name: canonical path (``/usr/lib/x86_64-linux-gnu/libc.so.6``).
        asm: the code+data builder.  Call :meth:`finalize` once done.
        entry: label of the entry point (executables only).
        needed: library paths this image depends on (DT_NEEDED order).
        imports: symbol names resolved through GOT slots at load time.
        constructors: host-level init functions run before ``main``.
        stub_profile: how noisy this program's startup is — the number of
            extra loader-stub syscalls beyond the per-library fixed cost
            (locale/gconv probing and friends).
    """

    name: str
    asm: Asm = field(default_factory=Asm)
    entry: str = "_start"
    needed: List[str] = field(default_factory=list)
    imports: List[str] = field(default_factory=list)
    constructors: List[Constructor] = field(default_factory=list)
    stub_profile: int = 0
    _finalized: bool = False

    # -- building ------------------------------------------------------------

    def begin_data(self) -> None:
        """Close the code section and start the page-aligned data section.

        Emits GOT slots for every declared import first, so importing code
        can use ``lea_rip`` against ``__got_<name>`` labels.
        """
        if DATA_START_LABEL in self.asm.labels:
            raise LoaderError(f"{self.name}: begin_data() called twice")
        self.asm.align(PAGE_SIZE, fill=0x00)
        self.asm.label(DATA_START_LABEL)
        for symbol in self.imports:
            self.asm.label(GOT_PREFIX + symbol)
            self.asm.dq(0)

    def finalize(self) -> "SimImage":
        """Assemble and sanity-check the image (idempotent)."""
        if not self._finalized:
            if DATA_START_LABEL not in self.asm.labels:
                self.begin_data()
                self.asm.dq(0)  # ensure a non-empty data section
            self.asm.assemble()
            if self.entry and self.entry not in self.asm.labels:
                raise LoaderError(
                    f"{self.name}: entry label {self.entry!r} undefined")
            self._finalized = True
        return self

    # -- introspection -----------------------------------------------------------

    @property
    def blob(self) -> bytes:
        self.finalize()
        return self.asm.assemble()

    @property
    def code_size(self) -> int:
        """Bytes of the r-x prefix (everything before ``__data_start``)."""
        self.finalize()
        return self.asm.labels[DATA_START_LABEL]

    @property
    def total_size(self) -> int:
        return round_up_pages(len(self.blob) or PAGE_SIZE)

    def symbol(self, name: str) -> int:
        """Offset of *name* within the image."""
        self.finalize()
        try:
            return self.asm.labels[name]
        except KeyError:
            raise LoaderError(f"{self.name}: unknown symbol {name!r}") from None

    def has_symbol(self, name: str) -> bool:
        self.finalize()
        return name in self.asm.labels

    def got_offset(self, symbol: str) -> int:
        return self.symbol(GOT_PREFIX + symbol)

    @property
    def syscall_sites(self) -> Dict[str, int]:
        """Ground truth: every marked syscall site (mark name → offset)."""
        self.finalize()
        return dict(self.asm.marks)

    def exported_symbols(self) -> Dict[str, int]:
        self.finalize()
        return {name: off for name, off in self.asm.labels.items()
                if not name.startswith("__got_") and not name.startswith(".")}
