"""Program images and the dynamic loader.

- :mod:`repro.loader.image` — "SimELF" images: one code+data blob built with
  the :class:`repro.arch.assembler.Asm` builder, plus symbols, imports
  (GOT-patched at load time), needed libraries, and constructors.
- :mod:`repro.loader.libc` — the simulated C library: one ``syscall``
  instruction per wrapper (so offline logs see realistic per-function sites,
  Table 2), a generic ``syscall(3)`` shim, and vDSO-routed time functions
  (the P2b blind spot).
- :mod:`repro.loader.linker` — the dynamic loader: ASLR placement, library
  mapping, ``LD_PRELOAD`` injection, GOT patching, ``dlopen``/``dlmopen``,
  and a startup stub that issues the genuine pre-main syscall storm (>100
  calls for ``ls``-sized programs — the other half of P2b).
"""

from repro.loader.image import SimImage
from repro.loader.linker import Loader

__all__ = ["SimImage", "Loader"]
