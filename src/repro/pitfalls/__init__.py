"""System Call Interposition Pitfalls — PoCs and the Table 3 matrix.

- :mod:`repro.pitfalls.poc` — one proof-of-concept program per pitfall
  (P1a, P1b, P2a, P2b, P3a, P3b, P4a, P4b, P5), each with an evaluator that
  runs it under a given interposer and grades the outcome.
- :mod:`repro.pitfalls.matrix` — runs every PoC against zpoline,
  lazypoline, and K23 and renders the paper's Table 3.
"""

from repro.pitfalls.poc import (
    PITFALL_IDS,
    PitfallOutcome,
    InterposerKit,
    ZPOLINE_KIT,
    LAZYPOLINE_KIT,
    K23_KIT,
    NATIVE_KIT,
    evaluate_pitfall,
)
from repro.pitfalls.matrix import pitfall_matrix, render_table3

__all__ = [
    "PITFALL_IDS",
    "PitfallOutcome",
    "InterposerKit",
    "ZPOLINE_KIT",
    "LAZYPOLINE_KIT",
    "K23_KIT",
    "NATIVE_KIT",
    "evaluate_pitfall",
    "pitfall_matrix",
    "render_table3",
]
