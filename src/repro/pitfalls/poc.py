"""Proof-of-concept programs for pitfalls P1a–P5 and their evaluators.

Each PoC is a real simulated program (built with
:class:`repro.workloads.programs.ProgramBuilder`) whose behaviour
discriminates "pitfall present" from "pitfall handled" by an observable
outcome — a missed syscall, a corrupted byte surfacing in the exit
status, a crash, or a survived NULL call.  Grading is delegated to the
streaming analyzers in :mod:`repro.observability.analyzers.pitfalls`:
an evaluator stands up the kit, attaches the pitfall's analyzer to the
kernel bus, runs the PoC, and converts the analyzer's
:class:`~repro.observability.analyzers.base.PitfallVerdict` into a
:class:`PitfallOutcome`.  The verdict is judged **from the event stream
alone** (the analyzer never sees the kernel), so the same grading runs
unchanged over a replayed trace.  The one exception is P4b — a memory
*footprint* property with no runtime events — which keeps its
ground-truth evaluator.

The kits mirror the paper's Table 3 columns: zpoline and K23 are evaluated
in their checking (-ultra) configurations where a pitfall concerns the
optional checks (P4a), exactly as the paper's ✓/✗ semantics do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.registers import Reg
from repro.core import K23Interposer, OfflinePhase
from repro.core.offline import import_logs
from repro.interposers import (
    LazypolineInterposer,
    NullInterposer,
    ZpolineInterposer,
)
from repro.kernel import Kernel
from repro.kernel.syscalls import (
    Nr,
    PR_SET_SYSCALL_USER_DISPATCH,
    PR_SYS_DISPATCH_OFF,
)
from repro.loader.image import SimImage
from repro.observability.analyzers import PitfallVerdict, analyzer_for
from repro.workloads.programs import ProgramBuilder, data_ref

PITFALL_IDS = ("P1a", "P1b", "P2a", "P2b", "P3a", "P3b", "P4a", "P4b", "P5")


@dataclass
class PitfallOutcome:
    """Graded result of one PoC under one interposer.

    ``verdict`` carries the analyzer's structured finding (evidence event
    window included) when the grading came from the event stream; it is
    ``None`` for ground-truth-only gradings (P4b).
    """

    pitfall: str
    interposer: str
    handled: bool
    evidence: str
    verdict: Optional[PitfallVerdict] = None


@dataclass
class InterposerKit:
    """How to stand up one Table 3 column on a fresh machine."""

    name: str
    factory: Callable  # factory(kernel) -> Interposer (installed by build)
    needs_offline: bool = False

    def build(self, register: Callable, offline_paths: Tuple[str, ...] = (),
              seed: int = 11) -> Tuple[Kernel, object]:
        """Create a kernel with the PoC programs registered and the
        interposer installed.  For K23, runs the offline phase first on a
        separate machine and imports the sealed logs (§5.1)."""
        kernel = Kernel(seed=seed)
        register(kernel)
        if self.needs_offline:
            offline_kernel = Kernel(seed=seed + 100)
            register(offline_kernel)
            offline = OfflinePhase(offline_kernel)
            for path in offline_paths:
                offline.run(path)
            import_logs(kernel, offline.export())
        interposer = self.factory(kernel)
        interposer.install()
        return kernel, interposer


NATIVE_KIT = InterposerKit("native", lambda k: NullInterposer(k))
ZPOLINE_KIT = InterposerKit(
    "zpoline", lambda k: ZpolineInterposer(k, variant="ultra"))
LAZYPOLINE_KIT = InterposerKit("lazypoline", lambda k: LazypolineInterposer(k))
K23_KIT = InterposerKit(
    "K23", lambda k: K23Interposer(k, variant="ultra"), needs_offline=True)


def _run(kernel, path: str, max_steps: int = 3_000_000):
    process = kernel.spawn_process(path)
    kernel.run_process(process, max_steps=max_steps)
    return process


def _eval_streaming(pitfall: str, kit: InterposerKit, register: Callable,
                    offline_paths: Tuple[str, ...], path: str,
                    pre_run: Optional[Callable] = None,
                    seed: int = 11) -> PitfallOutcome:
    """Stand up *kit*, attach the pitfall's analyzer to the live bus, run
    the PoC, and convert the streamed verdict into a PitfallOutcome."""
    kernel, interposer = kit.build(register, offline_paths=offline_paths,
                                   seed=seed)
    analyzer = analyzer_for(pitfall)
    kernel.bus.attach(analyzer)
    try:
        if pre_run is not None:
            pre_run(kernel)
        _run(kernel, path)
    finally:
        kernel.bus.detach(analyzer)
    verdict = analyzer.finish()[0]
    return PitfallOutcome(pitfall, kit.name, not verdict.detected,
                          verdict.reason, verdict=verdict)


# =========================================================================
# P1a — interposition bypass via environment scrubbing (Listing 1)
# =========================================================================


def _register_p1a(kernel) -> None:
    target = ProgramBuilder("/usr/bin/p1a_target")
    target.string("m", "MARK\n")
    target.start()
    target.libc("write", 1, data_ref("m"), 5)
    target.exit(0)
    target.register(kernel)

    builder = ProgramBuilder("/bin/p1a")
    builder.string("target", "/usr/bin/p1a_target")
    builder.words("argv", [0, 0])
    builder.words("envp", [0])  # empty environment: LD_PRELOAD not inherited
    builder.start()
    builder.libc("fork")
    asm = builder.asm
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.jne("parent")
    asm.lea_rip_label(Reg.RBX, "argv")
    asm.lea_rip_label(Reg.RAX, "target")
    asm.store(Reg.RBX, Reg.RAX)
    builder.libc("execve", data_ref("target"), data_ref("argv"),
                 data_ref("envp"))
    builder.exit(99)
    builder.label("parent")
    builder.libc("wait4", 0, 0, 0, 0)
    builder.exit(0)
    builder.register(kernel)


def _eval_p1a(kit: InterposerKit, seed: int = 11) -> PitfallOutcome:
    return _eval_streaming(
        "P1a", kit, _register_p1a,
        offline_paths=("/bin/p1a", "/usr/bin/p1a_target"), path="/bin/p1a",
        seed=seed)


# =========================================================================
# P1b — interposition bypass via prctl(PR_SYS_DISPATCH_OFF) (Listing 2)
# =========================================================================


def _register_p1b(kernel) -> None:
    builder = ProgramBuilder("/bin/p1b")
    builder.start()
    builder.libc("prctl", PR_SET_SYSCALL_USER_DISPATCH,
                 PR_SYS_DISPATCH_OFF, 0, 0, 0)
    # A fresh, never-before-executed inlined syscall site: anything relying
    # on SUD discovery has lost it after the disable.
    builder.direct_syscall(Nr.getuid, mark="fresh_site")
    builder.exit(0)
    builder.register(kernel)


def _eval_p1b(kit: InterposerKit, seed: int = 11) -> PitfallOutcome:
    return _eval_streaming("P1b", kit, _register_p1b,
                           offline_paths=("/bin/p1b",), path="/bin/p1b",
                           seed=seed)


# =========================================================================
# P2a — system call overlook: disassembly miss + dynamically loaded code
# =========================================================================


def _register_p2a(kernel) -> None:
    plugin = SimImage(name="/opt/p2a_plugin.so", entry="")
    pasm = plugin.asm
    pasm.label("plugin_fn")
    pasm.endbr64()
    pasm.mov_ri(Reg.RAX, int(Nr.gettid))
    pasm.mark("plugin_site")
    pasm.syscall_()
    pasm.ret()
    plugin.finalize()
    kernel.loader.register_image(plugin)

    builder = ProgramBuilder("/bin/p2a")
    builder.string("plug", "/opt/p2a_plugin.so")
    builder.start()
    asm = builder.asm
    # Embedded data desynchronizes the linear sweep: the 48 B8 bait absorbs
    # the following mov+syscall into a phantom 10-byte instruction, so a
    # static rewriter never sees the genuine site at `hidden`.
    asm.jmp("hidden")
    asm.raw(b"\x48\xb8")
    asm.label("hidden")
    asm.mov_ri(Reg.RAX, int(Nr.getpid))
    asm.mark("hidden_site")
    asm.syscall_()
    asm.nop(8)  # resync pad: the phantom ends inside this run
    # Dynamically loaded code: the plugin's site does not exist at load time.
    builder.libc("dlopen", data_ref("plug"), 2)
    asm.call_reg(Reg.RAX)  # plugin_fn is at offset 0
    builder.exit(0)
    builder.register(kernel)


def _eval_p2a(kit: InterposerKit, seed: int = 11) -> PitfallOutcome:
    return _eval_streaming("P2a", kit, _register_p2a,
                           offline_paths=("/bin/p2a",), path="/bin/p2a",
                           seed=seed)


# =========================================================================
# P2b — system call overlook: pre-main startup + vDSO
# =========================================================================


def _register_p2b(kernel) -> None:
    builder = ProgramBuilder("/bin/p2b", stub_profile=40)
    builder.buffer("ts", 16)
    builder.start()
    builder.libc("clock_gettime", 0, data_ref("ts"))
    builder.libc("getpid")
    builder.exit(0)
    builder.register(kernel)


def _eval_p2b(kit: InterposerKit, seed: int = 11) -> PitfallOutcome:
    return _eval_streaming("P2b", kit, _register_p2b,
                           offline_paths=("/bin/p2b",), path="/bin/p2b",
                           seed=seed)


# =========================================================================
# P3a — instruction misidentification by static disassembly
# =========================================================================


def _register_p3a(kernel) -> None:
    builder = ProgramBuilder("/bin/p3a")
    builder.start()
    asm = builder.asm
    asm.jmp("over")
    # Jump-table-style data that byte-for-byte resembles a syscall.
    asm.label("datum")
    asm.raw(b"\x0f\x05")
    asm.label("over")
    asm.lea_rip_label(Reg.RBX, "datum")
    asm.load8(Reg.RAX, Reg.RBX)  # read the data back
    builder.libc("exit", Reg.RAX)  # exit(first data byte)
    builder.register(kernel)


def _eval_p3a(kit: InterposerKit, seed: int = 11) -> PitfallOutcome:
    return _eval_streaming("P3a", kit, _register_p3a,
                           offline_paths=("/bin/p3a",), path="/bin/p3a",
                           seed=seed)


# =========================================================================
# P3b — attack-induced misidentification (control-flow hijack → rewrite)
# =========================================================================

ATTACK_FLAG = "/tmp/attack"


def _register_p3b(kernel) -> None:
    builder = ProgramBuilder("/bin/p3b")
    builder.string("flagfile", ATTACK_FLAG)
    builder.start()
    asm = builder.asm
    asm.xor_rr(Reg.R14, Reg.R14)
    builder.libc("access", data_ref("flagfile"), 0)
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.jne("skip_attack")  # flag file absent → benign path
    # Hijack: jump into the middle of the mov's immediate, where the bytes
    # 0F 05 E9 01 ... decode as `syscall; jmp +1`.
    asm.mov_ri(Reg.RAX, int(Nr.getpid))
    asm.jmp("gadget_plus2")
    asm.label("skip_attack")
    asm.mov_ri(Reg.R14, 1)
    asm.jmp("gadget")
    # The gadget: a legitimate 10-byte mov whose immediate embeds
    # syscall-and-escape bytes (partial-instruction hazard, Figure 1).
    asm.label("gadget")
    asm.raw(b"\x48\xbb")  # mov rbx, imm64 (REX.W B8+3)
    asm.label("gadget_plus2")
    asm.raw(b"\x0f\x05\xe9\x01\x00\x00\x00\x90")  # imm64 payload
    asm.label("after_gadget")
    asm.cmp_ri(Reg.R14, 0)
    asm.jne("done")
    asm.inc(Reg.R14)
    asm.jmp("gadget")  # now execute the mov legitimately
    asm.label("done")
    builder.libc("exit", Reg.RBX)  # exit(imm low byte): 0x0f iff intact
    builder.register(kernel)


def _eval_p3b(kit: InterposerKit, seed: int = 11) -> PitfallOutcome:
    # Offline phase (K23) runs in a controlled environment: no attack flag;
    # the online adversary plants it just before the run.
    return _eval_streaming(
        "P3b", kit, _register_p3b, offline_paths=("/bin/p3b",),
        path="/bin/p3b",
        pre_run=lambda kernel: kernel.vfs.create(ATTACK_FLAG, b""),
        seed=seed)


# =========================================================================
# P4a — NULL-execution goes undetected
# =========================================================================


def _register_p4a(kernel) -> None:
    builder = ProgramBuilder("/bin/p4a")
    builder.string("m", "SURVIVED\n")
    builder.start()
    asm = builder.asm
    asm.xor_rr(Reg.RAX, Reg.RAX)
    asm.xor_rr(Reg.RDI, Reg.RDI)
    asm.xor_rr(Reg.RSI, Reg.RSI)
    asm.xor_rr(Reg.RDX, Reg.RDX)
    asm.mark("null_call")
    asm.call_reg(Reg.RAX)  # the NULL code-pointer bug
    builder.libc("write", 1, data_ref("m"), 9)
    builder.exit(0)
    builder.register(kernel)


def _eval_p4a(kit: InterposerKit, seed: int = 11) -> PitfallOutcome:
    return _eval_streaming("P4a", kit, _register_p4a,
                           offline_paths=("/bin/p4a",), path="/bin/p4a",
                           seed=seed)


# =========================================================================
# P4b — NULL-check memory footprint
# =========================================================================


def _register_p4b(kernel) -> None:
    builder = ProgramBuilder("/bin/p4b")
    builder.start()
    builder.libc("getpid")
    builder.exit(0)
    builder.register(kernel)


#: Footprint threshold: anything over 1 GiB of reserved memory per process
#: is disqualifying for low-end / many-process deployments (§4.4).
P4B_BUDGET_BYTES = 1 << 30


def _eval_p4b(kit: InterposerKit, seed: int = 11) -> PitfallOutcome:
    kernel, interposer = kit.build(_register_p4b, offline_paths=("/bin/p4b",),
                                   seed=seed)
    process = _run(kernel, "/bin/p4b")
    state = process.interposer_state
    if "zpoline" in state and state["zpoline"].get("bitmap") is not None:
        bitmap = state["zpoline"]["bitmap"]
        reserved = bitmap.reserved_virtual_bytes
        handled = reserved <= P4B_BUDGET_BYTES
        evidence = (f"bitmap reserves {reserved / (1 << 40):.0f} TiB of "
                    f"virtual memory per process "
                    f"({bitmap.resident_bytes} B resident)")
        return PitfallOutcome("P4b", kit.name, handled, evidence)
    if "k23" in state:
        hashset = state["k23"]["hashset"]
        evidence = (f"hash set bounded by offline log: "
                    f"{hashset.memory_bytes} B for {len(hashset)} sites")
        return PitfallOutcome("P4b", kit.name, True, evidence)
    return PitfallOutcome("P4b", kit.name, True,
                          "no validity structure retained")


# =========================================================================
# P5 — runtime rewriting races (torn writes, stale instruction streams)
# =========================================================================


def _register_p5(kernel) -> None:
    builder = ProgramBuilder("/bin/p5")
    builder.buffer("flag", 8)
    builder.start()
    asm = builder.asm
    asm.lea_rip_label(Reg.RDI, "spinner")
    builder.libc("pthread_create", Reg.RDI)
    # Release the spinner, then trigger the first execution of getpid's
    # site.  Under a discovery-rewriter, the patch happens now — and the
    # spinner races straight into the half-written instruction.
    asm.lea_rip_label(Reg.RBX, "flag")
    asm.mov_ri(Reg.RAX, 1)
    asm.store8(Reg.RBX, Reg.RAX)
    builder.libc("getpid")
    builder.loop(50)
    asm.nop()
    builder.end_loop()
    builder.exit(0)
    builder.label("spinner")
    asm.endbr64()
    asm.lea_rip_label(Reg.RBX, "flag")
    asm.label("spin")
    asm.load8(Reg.RAX, Reg.RBX)
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.je("spin")
    builder.libc("getpid")  # fetches the site mid-patch
    builder.libc("pthread_exit")
    builder.register(kernel)


def _eval_p5(kit: InterposerKit, seed: int = 11) -> PitfallOutcome:
    return _eval_streaming("P5", kit, _register_p5,
                           offline_paths=("/bin/p5",), path="/bin/p5",
                           seed=seed)


# =========================================================================


@dataclass(frozen=True)
class PitfallSetup:
    """Everything needed to reproduce one streamed PoC run outside the
    evaluator — the replay-determinism tests and ad-hoc forensics stand up
    the same kernel this way.  P4b has no entry: its property (memory
    footprint) never crosses the event bus, so it stays ground-truth-graded.
    """

    register: Callable
    path: str
    offline_paths: Tuple[str, ...]
    pre_run: Optional[Callable] = None


PITFALL_SETUPS: Dict[str, PitfallSetup] = {
    "P1a": PitfallSetup(_register_p1a, "/bin/p1a",
                        ("/bin/p1a", "/usr/bin/p1a_target")),
    "P1b": PitfallSetup(_register_p1b, "/bin/p1b", ("/bin/p1b",)),
    "P2a": PitfallSetup(_register_p2a, "/bin/p2a", ("/bin/p2a",)),
    "P2b": PitfallSetup(_register_p2b, "/bin/p2b", ("/bin/p2b",)),
    "P3a": PitfallSetup(_register_p3a, "/bin/p3a", ("/bin/p3a",)),
    "P3b": PitfallSetup(
        _register_p3b, "/bin/p3b", ("/bin/p3b",),
        pre_run=lambda kernel: kernel.vfs.create(ATTACK_FLAG, b"")),
    "P4a": PitfallSetup(_register_p4a, "/bin/p4a", ("/bin/p4a",)),
    "P5": PitfallSetup(_register_p5, "/bin/p5", ("/bin/p5",)),
}


_EVALUATORS: Dict[str, Callable[..., PitfallOutcome]] = {
    "P1a": _eval_p1a,
    "P1b": _eval_p1b,
    "P2a": _eval_p2a,
    "P2b": _eval_p2b,
    "P3a": _eval_p3a,
    "P3b": _eval_p3b,
    "P4a": _eval_p4a,
    "P4b": _eval_p4b,
    "P5": _eval_p5,
}


def evaluate_pitfall(pitfall: str, kit: InterposerKit,
                     seed: int = 11) -> PitfallOutcome:
    """Run one PoC under one interposer kit and grade the outcome.

    *seed* feeds the kernels the kit stands up (online and, for K23, the
    offline machine at ``seed + 100``); the grading must be seed-stable,
    which ``pitfallcheck --seed`` lets CI spot-check.
    """
    try:
        evaluator = _EVALUATORS[pitfall]
    except KeyError:
        raise ValueError(f"unknown pitfall {pitfall!r}") from None
    return evaluator(kit, seed=seed)
