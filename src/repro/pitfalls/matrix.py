"""The Table 3 matrix: every pitfall × every interposer."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.pitfalls.poc import (
    K23_KIT,
    LAZYPOLINE_KIT,
    PITFALL_IDS,
    PitfallOutcome,
    ZPOLINE_KIT,
    InterposerKit,
    evaluate_pitfall,
)

#: The paper's Table 3 expectations — used by tests to assert the
#: reproduction matches, and by the renderer to flag divergence.
PAPER_TABLE3: Dict[str, Dict[str, bool]] = {
    "P1a": {"zpoline": False, "lazypoline": False, "K23": True},
    "P1b": {"zpoline": True, "lazypoline": False, "K23": True},
    "P2a": {"zpoline": False, "lazypoline": True, "K23": True},
    "P2b": {"zpoline": False, "lazypoline": False, "K23": True},
    "P3a": {"zpoline": False, "lazypoline": True, "K23": True},
    "P3b": {"zpoline": True, "lazypoline": False, "K23": True},
    "P4a": {"zpoline": True, "lazypoline": False, "K23": True},
    "P4b": {"zpoline": False, "lazypoline": True, "K23": True},
    "P5": {"zpoline": True, "lazypoline": False, "K23": True},
}

_SECTION = {
    "P1a": "P1 - Interposition Bypass (§4.1)",
    "P1b": "P1 - Interposition Bypass (§4.1)",
    "P2a": "P2 - System Call Overlook (§4.2)",
    "P2b": "P2 - System Call Overlook (§4.2)",
    "P3a": "P3 - Instruction Misidentification (§4.3)",
    "P3b": "P3 - Instruction Misidentification (§4.3)",
    "P4a": "P4 - NULL Access Termination (§4.4)",
    "P4b": "P4 - NULL Access Termination (§4.4)",
    "P5": "P5 - Runtime Rewriting (§4.5)",
}

DEFAULT_KITS = (ZPOLINE_KIT, LAZYPOLINE_KIT, K23_KIT)


def pitfall_matrix(kits: Sequence[InterposerKit] = DEFAULT_KITS,
                   pitfalls: Sequence[str] = PITFALL_IDS
                   ) -> List[PitfallOutcome]:
    """Evaluate every (pitfall, interposer) cell; returns the outcomes."""
    outcomes: List[PitfallOutcome] = []
    for pitfall in pitfalls:
        for kit in kits:
            outcomes.append(evaluate_pitfall(pitfall, kit))
    return outcomes


def render_table3(outcomes: List[PitfallOutcome],
                  show_evidence: bool = False) -> str:
    """Render the outcomes as the paper's Table 3."""
    names: List[str] = []
    for outcome in outcomes:
        if outcome.interposer not in names:
            names.append(outcome.interposer)
    cells: Dict[tuple, PitfallOutcome] = {
        (o.pitfall, o.interposer): o for o in outcomes
    }
    header = f"{'Pitfall':<44}" + "".join(f"{n:>12}" for n in names)
    lines = [header, "-" * len(header)]
    for pitfall in PITFALL_IDS:
        if (pitfall, names[0]) not in cells:
            continue
        row = f"{_SECTION[pitfall] + '  ' + pitfall:<44}"
        for name in names:
            outcome = cells.get((pitfall, name))
            mark = "-" if outcome is None else ("Y" if outcome.handled else "X")
            expected = PAPER_TABLE3.get(pitfall, {}).get(name)
            if expected is not None and outcome is not None \
                    and outcome.handled != expected:
                mark += "!"  # divergence from the paper
            row += f"{mark:>12}"
        lines.append(row)
    if show_evidence:
        lines.append("")
        for outcome in outcomes:
            lines.append(f"[{outcome.pitfall}/{outcome.interposer}] "
                         f"{'OK ' if outcome.handled else 'HIT'} "
                         f"{outcome.evidence}")
    return "\n".join(lines)


def matches_paper(outcomes: List[PitfallOutcome]) -> bool:
    """True when every cell agrees with the paper's Table 3."""
    for outcome in outcomes:
        expected = PAPER_TABLE3.get(outcome.pitfall, {}).get(outcome.interposer)
        if expected is not None and outcome.handled != expected:
            return False
    return True
