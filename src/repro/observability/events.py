"""The typed event taxonomy of the instrumentation bus.

Every event is a frozen dataclass with three shared fields:

- ``ts`` — the simulated cycle counter at emission (3.2 GHz; exporters
  divide by :data:`~repro.cpu.cycles.CLOCK_HZ` for wall-clock).
- ``pid`` / ``tid`` — the simulated process/thread the event belongs to
  (0 when the event is machine-global, e.g. a cycle charge made outside
  any thread context).

Events are *observations*, never control flow: a sink cannot return a
verdict, mutate registers, or fail a syscall.  Channels that need a
return value (the fault-injection engine's ``transient_errno`` /
``clip_budget``) therefore stay direct kernel callbacks and surface here
only as :class:`FaultInjected` records of what they already did — see
DESIGN.md §3f for the taxonomy split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True, slots=True)
class BusEvent:
    """Base event: timestamp (simulated cycles) + thread identity."""

    ts: int
    pid: int
    tid: int


@dataclass(frozen=True, slots=True)
class SyscallEnter(BusEvent):
    """A system call entered the kernel (raw trap or interposer forward).

    ``phase`` tags the dispatch route the call is taking — the mechanism
    phase the paper's cost decomposition attributes cycles to:
    ``"app"`` (raw uninterposed trap), ``"ptrace"``, ``"sud"`` (SUD
    blocked the trap; a SIGSYS delivery follows), ``"seccomp-trap"``,
    ``"sud-handler"`` / ``"rewrite-handler"`` (an interposer forwarding
    the application's call), ``"interposer-internal"``.
    """

    nr: int
    site: int
    phase: str


@dataclass(frozen=True, slots=True)
class SyscallExit(BusEvent):
    """The matching return-to-user (or forward completion) of a call."""

    nr: int
    phase: str
    result: Optional[int]


@dataclass(frozen=True, slots=True)
class SignalEvent(BusEvent):
    """One step of signal traffic.

    ``kind``: ``"deliver"`` (a handler frame was set up — host-callable
    or simulated-address), ``"default"`` (default disposition ran),
    ``"queue"`` (masked async signal parked on ``pending_signals``),
    ``"defer"`` (simulated-address delivery deferred to return-to-user
    because a host handler is on stack), ``"forced"`` (masked
    synchronous fault force-killed, Linux ``force_sig``), ``"return"``
    (host handler returned / ``rt_sigreturn`` executed).
    """

    signal: int
    kind: str
    sync: bool = False


@dataclass(frozen=True, slots=True)
class PtraceStop(BusEvent):
    """A tracee stopped for its tracer (syscall entry or exit stop)."""

    nr: int
    entry: bool


@dataclass(frozen=True, slots=True)
class IcacheShootdown(BusEvent):
    """IPI-based invalidation of decoded lines/blocks over a range."""

    start: int
    length: int


@dataclass(frozen=True, slots=True)
class FaultInjected(BusEvent):
    """The fault-injection engine performed one scheduled injection.

    ``description`` is the engine's log line — the determinism artifact —
    so a trace can be cross-checked against ``FaultInjector.log``.
    """

    description: str


@dataclass(frozen=True, slots=True)
class QuantumEnd(BusEvent):
    """A thread's scheduler turn ended (quantum boundary)."""


@dataclass(frozen=True, slots=True)
class CycleCharge(BusEvent):
    """A modelled event was charged to the cycle model.

    ``event`` is the :class:`repro.cpu.cycles.Event` value string;
    ``cycles`` is the total added (``times`` × unit cost).  Sinks that
    aggregate (counters, the trace exporter's attribution table) key on
    ``event``; per-charge storage is deliberately avoided for
    INSTRUCTION-rate events.
    """

    event: str
    times: int
    cycles: int


@dataclass(frozen=True, slots=True)
class RawCycles(BusEvent):
    """A data-dependent raw cycle charge (``CycleModel.charge_cycles``).

    ``label`` names the charge site (``"io-data"``, ``"sud-contention"``,
    ``"seccomp-filter"``, ...); these are the rows that make the cycle
    decomposition sum exactly to the total.
    """

    label: str
    cycles: int


@dataclass(frozen=True, slots=True)
class HookObserved(BusEvent):
    """An interposition hook observed one application syscall."""

    nr: int
    hook: str
    result: Optional[int]


@dataclass(frozen=True, slots=True)
class ProcessLifecycle(BusEvent):
    """A process was created, replaced its image, or exited.

    ``kind``: ``"spawn"`` (``spawn_process``/``fork``), ``"exec"``
    (``execve`` replaced the image; ``path`` is the *new* image), or
    ``"exit"`` (``status`` carries the exit/kill status and ``detail``
    the kill reason, e.g. an ``InterposerAbort`` message).  These are the
    events that let stream analyzers attribute syscall traffic to a
    program and grade run outcomes without kernel introspection.
    """

    kind: str
    path: str
    status: Optional[int] = None
    detail: str = ""


@dataclass(frozen=True, slots=True)
class RewriteApplied(BusEvent):
    """An interposer rewrote application code bytes at runtime.

    ``protocol`` names the code path (``"static-safe"`` for the
    save/patch/restore/shootdown sequence zpoline and K23 use,
    ``"lazy-unsafe"`` for lazypoline's discovery patch); ``atomic`` and
    ``coherent`` record whether the store was single-shot and whether a
    cross-core instruction-stream invalidation followed — the two
    properties whose absence is pitfall P5.
    """

    site: int
    protocol: str
    atomic: bool
    coherent: bool


@dataclass(frozen=True, slots=True)
class VdsoCall(BusEvent):
    """A vDSO fast path ran — no ``syscall`` instruction was executed,
    so no interposer (except a vDSO-disabling ptracer) could see it:
    the stream-visible half of pitfall P2b."""

    symbol: str
    site: int


@dataclass(frozen=True, slots=True)
class ShadowDivergence(BusEvent):
    """The shadow harness observed the mirror disagree with the primary.

    ``kind`` names the compared channel: ``"response"`` (a mirrored
    request's response bytes differ), ``"trace"`` (the normalized
    app-observable syscall trace diverges), or ``"exit"`` (a batch
    workload's exit status / output bytes differ).  ``request`` is the
    mirrored request (or aligned trace record) index the divergence was
    detected at; ``primary``/``shadow`` are the two mechanism names and
    ``detail`` the one-line rendering the rollback report prints.
    """

    kind: str
    primary: str
    shadow: str
    request: int
    detail: str


@dataclass(frozen=True, slots=True)
class EngineStats(BusEvent):
    """Execution-engine tier counters for one finished run.

    Emitted once per ``run_process`` completion (when a sink is attached)
    so traces record how the work was executed: how many unit dispatches
    hit a chained edge, how often superblocks and compiled traces
    replayed, and how the speculation failed (``guard_fails``) or was torn
    down (``invalidation_unlinks``).  ``tiers`` is the
    :meth:`repro.cpu.engine.EngineConfig.flags` rendering, e.g.
    ``"chain+superblock+trace_jit"`` or ``"interp"``.
    """

    tiers: str
    chain_links: int
    chain_follows: int
    superblocks_formed: int
    superblock_hits: int
    traces_compiled: int
    trace_hits: int
    guard_fails: int
    invalidation_unlinks: int


@dataclass(frozen=True, slots=True)
class ReplayCheckpoint(BusEvent):
    """The record/replay recorder captured a machine checkpoint here.

    ``seq`` is the recorder's semantic-event sequence number the state
    corresponds to (every event with sequence <= ``seq`` happened before
    the capture) — the anchor ``repro replay --to-seq`` restores from.
    ``index`` is the checkpoint's ordinal in the bundle, ``insns`` the
    retired-instruction count at capture, and ``pages`` the number of
    address-space pages the copy-on-write snapshot references.
    """

    seq: int
    index: int
    insns: int
    pages: int


@dataclass(frozen=True, slots=True)
class QueueDepthSample(BusEvent):
    """One queue-depth observation from the traffic engine's fabric.

    Sampled on a fixed virtual-time grid per fleet server while an
    open-loop load test runs: ``server`` is the fleet index, ``depth``
    the number of admitted-but-unserved requests levelled in that
    server's queue, ``in_flight`` how many are in service across its
    workers, and ``t_ns`` the virtual (schedule) time of the sample.
    The series behind METRICS_slo.json's ``queue_depth`` section.
    """

    server: int
    depth: int
    in_flight: int
    t_ns: int


@dataclass(frozen=True, slots=True)
class TrafficStageStats(BusEvent):
    """Aggregate outcome of one ramp stage of an open-loop load test.

    One event per arrival-rate step: ``rate`` is the offered rate
    (requests/second), ``offered``/``completed``/``shed`` the request
    tallies, ``p99_ns`` the stage's p99 latency and ``max_depth`` the
    deepest queue observed — the series the saturation knee is read
    from.
    """

    stage: int
    rate: int
    offered: int
    completed: int
    shed: int
    p99_ns: int
    max_depth: int


@dataclass(frozen=True, slots=True)
class RequestSpan(BusEvent):
    """One finished (or shed) open-loop request's span decomposition.

    The flat, queryable rendering of a traffic span tree
    (:mod:`repro.observability.spans`): ``request`` is the exemplar ID
    (``"r-<schedule index>"`` — the key ``sloexplain`` and
    ``traceq --where request=...`` take), stage durations are integer
    nanoseconds and sum exactly to ``latency_ns`` (the zero-residual
    contract; ``service_ns`` is the closing remainder).  ``shed`` marks
    a rejected request, ``stalled`` one abandoned by stall-shed
    detection (a wedged fleet).  Emitted behind the null-sink guard
    only when span tracing is enabled for the run.
    """

    request: str
    server: int
    conn: int
    stage: int
    tenant: str
    kind: str
    arrival_ns: int
    latency_ns: int
    admission_ns: int
    conn_wait_ns: int
    queue_ns: int
    service_ns: int
    shed: bool
    stalled: bool


#: Every event type, for sink filters and schema docs.
EVENT_TYPES: Tuple[type, ...] = (
    SyscallEnter, SyscallExit, SignalEvent, PtraceStop, IcacheShootdown,
    FaultInjected, QuantumEnd, CycleCharge, RawCycles, HookObserved,
    ProcessLifecycle, RewriteApplied, VdsoCall, ShadowDivergence,
    EngineStats, ReplayCheckpoint, QueueDepthSample, TrafficStageStats,
    RequestSpan,
)
