"""Request-scoped span trees: per-request critical-path attribution.

``METRICS_slo.json`` aggregates latency into histograms; a p99.9
outlier cannot be explained from a histogram.  This module supplies the
request-scoped layer underneath: every request the traffic engine
serves — in the model fabric *and* on real kernels — can carry a
**span tree**: the fixed stage decomposition

    arrival → admission-wait → conn-wait → queue-wait → service

with the invariant that the stage durations sum *exactly* to the
request's recorded latency (the zero-residual contract, mirroring the
PR 4 cycle-decomposition invariant).  The closing stage (``service``)
is always computed as the remainder, so cycle→ns rounding can never
leave a residual.

Retention is **rank-based, not wall-clock**: an
:class:`ExemplarReservoir` keeps the slowest-N span trees per
``(stage, tenant, kind)`` group plus the earliest-K shed/stalled
requests per group (K bounds memory at 10^6-request scale; the exact
shed *count* is always carried alongside).  Because a group's global
top-N is contained in the union of per-server top-Ns (each global
winner is also a winner on its own server), merging per-server
reservoirs and re-trimming reproduces the unsharded reservoir exactly —
the property that keeps exemplar IDs in ``METRICS_slo.json``
byte-identical across ``--jobs`` shard counts.

The :class:`TraceContext` is the trace-context field threaded through
``TrafficSource`` / ``RoundAdmission`` / ``ServerSim``: it owns the
reservoir, a :class:`SpanFlightRecorder` ring (dumped on stall-shed or
shadow divergence), and — when a kernel bus is attached — emits one
:class:`~repro.observability.events.RequestSpan` event per request
behind the established null-sink guard.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Version of the exemplar/span document schema (bump on shape changes).
SPAN_SCHEMA_VERSION = "spans-v1"

#: The fixed stage decomposition, in causal order.  Both serve modes
#: emit all four stages so span trees are structurally identical:
#: the model fabric has no admission seam (admission-wait is 0) and the
#: full-serve kernel's internal queueing is not separately observable
#: (queue-wait is 0; that time lands in service).
STAGE_NAMES = ("admission-wait", "conn-wait", "queue-wait", "service")

#: Flight-recorder dumps default under the benchmarks output tree;
#: REPRO_FLIGHT_DIR overrides (kept out of TrafficConfig so artifact
#: bytes and cache keys never depend on it).
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"
DEFAULT_FLIGHT_DIR = os.path.join("benchmarks", "output", "flightrec")


def span_id(index: int) -> str:
    """The exemplar ID of schedule-index *index* (globally unique:
    schedule indices never repeat across servers or shards)."""
    return f"r-{index}"


def make_span(index: int, server: int, conn: int, stage: int,
              tenant: str, kind: str, arrival_ns: int, latency_ns: int,
              admission_ns: int = 0, conn_wait_ns: int = 0,
              queue_ns: int = 0, shed: bool = False,
              stalled: bool = False) -> Dict:
    """Build one JSON-safe span tree.  ``service`` is the remainder
    ``latency - admission - conn_wait - queue`` so the zero-residual
    invariant holds by construction; a negative remainder is a caller
    bug (stages exceeding the recorded latency) and raises."""
    service_ns = latency_ns - admission_ns - conn_wait_ns - queue_ns
    if service_ns < 0:
        raise ValueError(
            f"span {span_id(index)}: stages exceed latency "
            f"({admission_ns}+{conn_wait_ns}+{queue_ns} > {latency_ns})")
    return {
        "id": span_id(index),
        "index": index,
        "server": server,
        "conn": conn,
        "stage": stage,
        "tenant": tenant,
        "kind": kind,
        "arrival_ns": arrival_ns,
        "latency_ns": latency_ns,
        "shed": bool(shed),
        "stalled": bool(stalled),
        "stages": [[STAGE_NAMES[0], admission_ns],
                   [STAGE_NAMES[1], conn_wait_ns],
                   [STAGE_NAMES[2], queue_ns],
                   [STAGE_NAMES[3], service_ns]],
    }


def residual(span: Dict) -> int:
    """``latency - sum(stage durations)`` — 0 for every well-formed
    span; ``sloexplain`` refuses to render anything else."""
    return span["latency_ns"] - sum(dur for _name, dur in span["stages"])


def group_key(span: Dict) -> str:
    """The reservoir group of a span: ``"stage:tenant:kind"`` (names,
    not indices — spans are forensics artifacts, read by humans)."""
    return f"{span['stage']}:{span['tenant']}:{span['kind']}"


def _slowness(span: Dict) -> Tuple[int, int]:
    """Total order for tail ranking: slowest first, index breaks ties
    (indices are unique, so the order — hence the trim — is exact)."""
    return (-span["latency_ns"], span["index"])


class ExemplarReservoir:
    """Deterministic rank-based retention of span trees.

    Per ``(stage, tenant, kind)`` group: the ``per_group`` slowest
    completed spans.  Shed/stalled spans are kept separately, earliest
    ``shed_keep`` per group (shedding onset is where the knee forensics
    live), with the exact total always tallied.  Offer order is
    irrelevant to the output — ranking is by ``(-latency, index)`` /
    ``(index)``, both total orders.
    """

    def __init__(self, per_group: int = 4, shed_keep: int = 16):
        if per_group <= 0:
            raise ValueError("per_group must be positive")
        if shed_keep < 0:
            raise ValueError("shed_keep must be >= 0")
        self.per_group = per_group
        self.shed_keep = shed_keep
        self._groups: Dict[str, List[Dict]] = {}
        self._shed: Dict[str, List[Dict]] = {}
        self.shed_total = 0

    def offer(self, span: Dict) -> None:
        if span["shed"]:
            self.shed_total += 1
            if self.shed_keep == 0:
                return
            bucket = self._shed.setdefault(group_key(span), [])
            bucket.append(span)
            if len(bucket) > 4 * self.shed_keep:
                bucket.sort(key=lambda s: s["index"])
                del bucket[self.shed_keep:]
            return
        bucket = self._groups.setdefault(group_key(span), [])
        bucket.append(span)
        # Amortized trim: exact because ranking is a total order.
        if len(bucket) > 4 * self.per_group:
            bucket.sort(key=_slowness)
            del bucket[self.per_group:]

    def to_doc(self) -> Dict:
        """Final (fully trimmed) JSON-safe reservoir document."""
        return {
            "schema": SPAN_SCHEMA_VERSION,
            "per_group_keep": self.per_group,
            "shed_keep": self.shed_keep,
            "per_group": {
                key: sorted(bucket, key=_slowness)[:self.per_group]
                for key, bucket in sorted(self._groups.items())
            },
            "shed": {
                key: sorted(bucket,
                            key=lambda s: s["index"])[:self.shed_keep]
                for key, bucket in sorted(self._shed.items())
            },
            "shed_total": self.shed_total,
        }


def merge_exemplar_docs(docs: Sequence[Dict], per_group: int,
                        shed_keep: int) -> Dict:
    """Fold per-server reservoir docs into one — shard-count-blind.

    Union then re-trim with the same total orders the per-server
    reservoirs used; since every global winner is a winner on its own
    server, the result equals the unsharded reservoir whatever the
    server→shard dealing was.
    """
    groups: Dict[str, List[Dict]] = {}
    sheds: Dict[str, List[Dict]] = {}
    shed_total = 0
    for doc in docs:
        for key, spans in doc.get("per_group", {}).items():
            groups.setdefault(key, []).extend(spans)
        for key, spans in doc.get("shed", {}).items():
            sheds.setdefault(key, []).extend(spans)
        shed_total += doc.get("shed_total", 0)
    return {
        "schema": SPAN_SCHEMA_VERSION,
        "per_group_keep": per_group,
        "shed_keep": shed_keep,
        "per_group": {key: sorted(spans, key=_slowness)[:per_group]
                      for key, spans in sorted(groups.items())},
        "shed": {key: sorted(spans, key=lambda s: s["index"])[:shed_keep]
                 for key, spans in sorted(sheds.items())},
        "shed_total": shed_total,
    }


def iter_spans(exemplars: Dict) -> Iterator[Dict]:
    """Every retained span in an exemplar doc, deterministic order
    (completed groups first, then shed groups)."""
    for _key, spans in sorted(exemplars.get("per_group", {}).items()):
        yield from spans
    for _key, spans in sorted(exemplars.get("shed", {}).items()):
        yield from spans


def find_span(exemplars: Dict, wanted_id: str) -> Optional[Dict]:
    for span in iter_spans(exemplars):
        if span["id"] == wanted_id:
            return span
    return None


def worst_span(exemplars: Dict) -> Optional[Dict]:
    """The slowest retained *completed* span (shed spans are a separate
    forensics channel — their latency is time-to-rejection)."""
    worst = None
    for _key, spans in sorted(exemplars.get("per_group", {}).items()):
        for span in spans:
            if worst is None or _slowness(span) < _slowness(worst):
                worst = span
    return worst


class SpanFlightRecorder:
    """Bounded ring of the most recent spans — the flight recorder.

    Always cheap to feed (deque append), only materialized on demand:
    the traffic engine dumps it when stall-shed detection fires, the
    shadow harness on the first :class:`ShadowDivergence`.  Entries are
    plain dicts, so lightweight closed-loop exchange records (from
    :class:`~repro.workloads.clients.KeepAliveSource`) ride in the same
    ring as full span trees.
    """

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.spans: deque = deque(maxlen=capacity)
        self.recorded = 0

    def record(self, span: Dict) -> None:
        self.spans.append(span)
        self.recorded += 1

    def snapshot(self) -> List[Dict]:
        return list(self.spans)

    def dump(self, path: str, reason: str) -> str:
        """Write the ring as a JSON forensics artifact; returns the
        path.  Serialization is pinned like every other artifact."""
        doc = {
            "schema": SPAN_SCHEMA_VERSION,
            "reason": reason,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "spans": self.snapshot(),
        }
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, sort_keys=True, indent=2) + "\n")
        return path


def flight_dir() -> str:
    return os.environ.get(FLIGHT_DIR_ENV, DEFAULT_FLIGHT_DIR)


class TraceContext:
    """The trace-context field threaded through the traffic path.

    One per fleet server (per mechanism).  ``record`` is the single
    entry point both serve modes call per finished (or shed) request:
    it builds the span tree, offers it to the exemplar reservoir, feeds
    the flight ring, and — when a kernel ``bus`` is attached *and*
    enabled — emits a :class:`RequestSpan` event (null-sink guard:
    disabled buses cost one predicate).
    """

    def __init__(self, server: int, tenant_names: Sequence[str],
                 kind_names: Sequence[str], per_group: int = 4,
                 shed_keep: int = 16, flight_capacity: int = 256,
                 bus=None):
        self.server = server
        self.tenant_names = tuple(tenant_names)
        self.kind_names = tuple(kind_names)
        self.reservoir = ExemplarReservoir(per_group, shed_keep)
        self.flight = SpanFlightRecorder(flight_capacity)
        self.bus = bus

    def record(self, index: int, conn: int, stage: int, tenant: int,
               kind: int, arrival_ns: int, latency_ns: int,
               admission_ns: int = 0, conn_wait_ns: int = 0,
               queue_ns: int = 0, shed: bool = False,
               stalled: bool = False, ts: int = 0) -> Dict:
        span = make_span(
            index=index, server=self.server, conn=conn, stage=stage,
            tenant=self.tenant_names[tenant], kind=self.kind_names[kind],
            arrival_ns=arrival_ns, latency_ns=latency_ns,
            admission_ns=admission_ns, conn_wait_ns=conn_wait_ns,
            queue_ns=queue_ns, shed=shed, stalled=stalled)
        self.reservoir.offer(span)
        self.flight.record(span)
        if self.bus is not None and self.bus.enabled:
            from repro.observability.events import RequestSpan

            self.bus.emit(RequestSpan(
                ts=ts, pid=0, tid=0, request=span["id"],
                server=self.server, conn=conn, stage=stage,
                tenant=span["tenant"], kind=span["kind"],
                arrival_ns=arrival_ns, latency_ns=latency_ns,
                admission_ns=admission_ns, conn_wait_ns=conn_wait_ns,
                queue_ns=queue_ns,
                service_ns=span["stages"][3][1],
                shed=bool(shed), stalled=bool(stalled)))
        return span


def syscall_profile(analyzer, requests: int) -> Dict:
    """Render a :class:`LatencyAnalyzer`'s per-(phase, nr) histograms as
    the calibrated per-kind syscall sub-span profile.

    ``count``/``cycles`` are exact integer totals over *requests*
    calibration round trips; consumers divide for per-request rates
    (integer math only — see ``sloexplain``).  Rows sort by descending
    cycles so the dominant sub-span leads.
    """
    from repro.kernel.syscalls import Nr

    rows = []
    for (phase, nr), hist in analyzer.histograms.items():
        rows.append({
            "phase": phase,
            "name": Nr.name_of(nr),
            "count": hist.count,
            "cycles": hist.total,
        })
    rows.sort(key=lambda r: (-r["cycles"], r["phase"], r["name"]))
    return {"requests": requests, "rows": rows}
