"""The instrumentation bus: one producer API, N attached sinks.

The bus is *disabled* (``enabled`` False) until a sink attaches, and
every emit site in the kernel/CPU/injector guards on that single
predicate::

    bus = self.bus
    if bus.enabled:
        bus.emit(SyscallEnter(...))

so a quiescent bus costs one attribute read plus one truth test per
site — the null-sink fast path the interpreter-overhead budget in
``benchmarks/bench_interp_speed.py`` polices.  Event *construction*
(the expensive part) only happens behind the guard.

Sinks are observe-only: ``emit`` returns nothing and sinks cannot
influence execution, which is what makes the trace-on/off lockstep
property (tests/observability/test_lockstep.py) hold by construction.
"""

from __future__ import annotations

from typing import List

from repro.observability.events import BusEvent


class Bus:
    """Fan-out of :class:`BusEvent` objects to attached sinks."""

    __slots__ = ("enabled", "sinks")

    def __init__(self) -> None:
        #: Fast-path predicate; kept in lockstep with ``sinks`` by
        #: attach/detach.  Emit sites read this, never ``sinks``.
        self.enabled: bool = False
        self.sinks: List = []

    def attach(self, sink) -> "Bus":
        """Attach *sink* (anything with ``accept(event)``); enables the bus."""
        if sink not in self.sinks:
            self.sinks.append(sink)
        self.enabled = True
        return self

    def detach(self, sink) -> None:
        """Detach *sink*; the bus disables itself when no sinks remain."""
        try:
            self.sinks.remove(sink)
        except ValueError:
            pass
        self.enabled = bool(self.sinks)

    def emit(self, event: BusEvent) -> None:
        for sink in self.sinks:
            sink.accept(event)
