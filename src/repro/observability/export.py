"""Chrome trace-event / Perfetto export of a bus event stream.

:class:`TraceSink` attaches to a kernel's bus and accumulates the
run; :func:`write_chrome_trace` then emits the JSON object format of
the Chrome trace-event spec (the format ``ui.perfetto.dev`` and
``chrome://tracing`` load directly):

- one track per simulated thread — ``B``/``E`` duration slices for every
  syscall (nested for interposer forwards: the SIGSYS-handler span
  contains the forwarded call's span), ``i`` instants for signal
  traffic, ptrace stops, icache shootdowns, and fault injections;
- a ``C`` counter track sampling the simulated cycle total at every
  syscall exit;
- a synthetic *cycle-attribution* process: one ``X`` slice per cycle-
  model event (and per raw-charge label), width proportional to the
  cycles it consumed, laid end to end — a one-level flamegraph of where
  the mechanism's time went.

Timestamps are microseconds (the spec's unit) derived from the simulated
3.2 GHz cycle counter: ``us = cycles / 3200``.

:func:`validate_chrome_trace` is the schema check the tests and the
``trace-smoke`` CI job run over exported files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.observability.events import (BusEvent, CycleCharge, FaultInjected,
                                        HookObserved, IcacheShootdown,
                                        PtraceStop, QuantumEnd, RawCycles,
                                        SignalEvent, SyscallEnter,
                                        SyscallExit)
from repro.observability.sinks import Sink

#: Simulated clock (kept in sync with repro.cpu.cycles.CLOCK_HZ, which
#: cannot be imported at module level: cycles.py imports this package's
#: event types, so the exporter resolves the constant lazily).
CLOCK_HZ = 3_200_000_000

#: Cycles per exported microsecond (3.2 GHz).
CYCLES_PER_US = CLOCK_HZ / 1_000_000

#: pid of the synthetic cycle-attribution track (far above real pids).
ATTRIBUTION_PID = 999_999

#: Version of this exporter's trace shape.  v2: the JSONL stream gained
#: per-record ``seq``/``type`` fields (repro.observability.sinks) and the
#: Chrome export stamps its version here; the validator rejects traces
#: whose version does not match.
TRACE_SCHEMA_VERSION = 2


def _us(cycles: int) -> float:
    return round(cycles / CYCLES_PER_US, 4)


class TraceSink(Sink):
    """Accumulates bus events into Chrome trace-event dicts."""

    def __init__(self, mechanism: str = "unknown", workload: str = ""):
        self.mechanism = mechanism
        self.workload = workload
        self.trace_events: List[Dict] = []
        self._open: Dict[Tuple[int, int], List[str]] = {}
        self._charge_cycles: Dict[str, int] = {}
        self._charge_counts: Dict[str, int] = {}
        self._threads_seen: Dict[Tuple[int, int], bool] = {}
        self._cycles_seen = 0
        self._last_ts = 0

    # ------------------------------------------------------------- accept

    def accept(self, event: BusEvent) -> None:
        self._last_ts = max(self._last_ts, event.ts)
        if isinstance(event, CycleCharge):
            self._charge_cycles[event.event] = (
                self._charge_cycles.get(event.event, 0) + event.cycles)
            self._charge_counts[event.event] = (
                self._charge_counts.get(event.event, 0) + event.times)
            self._cycles_seen += event.cycles
            return
        if isinstance(event, RawCycles):
            key = f"raw:{event.label}"
            self._charge_cycles[key] = (self._charge_cycles.get(key, 0)
                                        + event.cycles)
            self._charge_counts[key] = self._charge_counts.get(key, 0) + 1
            self._cycles_seen += event.cycles
            return
        self._track(event.pid, event.tid)
        if isinstance(event, SyscallEnter):
            self._begin(event, self._sysname(event.nr), event.phase,
                        {"nr": event.nr, "site": event.site,
                         "phase": event.phase})
        elif isinstance(event, SyscallExit):
            self._end(event)
            self.trace_events.append({
                "name": "sim-cycles", "ph": "C", "ts": _us(event.ts),
                "pid": event.pid, "tid": event.tid,
                "args": {"cycles": self._cycles_seen},
            })
        elif isinstance(event, SignalEvent):
            self._instant(event, f"signal {event.signal} {event.kind}",
                          "signal", {"signal": event.signal,
                                     "kind": event.kind, "sync": event.sync})
        elif isinstance(event, PtraceStop):
            which = "entry" if event.entry else "exit"
            self._instant(event, f"ptrace-stop {which}", "ptrace",
                          {"nr": event.nr, "entry": event.entry})
        elif isinstance(event, IcacheShootdown):
            self._instant(event, "icache-shootdown", "coherence",
                          {"start": event.start, "length": event.length})
        elif isinstance(event, FaultInjected):
            self._instant(event, event.description, "faultinject", {})
        elif isinstance(event, QuantumEnd):
            self._instant(event, "quantum-end", "sched", {})
        elif isinstance(event, HookObserved):
            self._instant(event, f"hook:{event.hook}", "hook",
                          {"nr": event.nr, "result": event.result})

    # ------------------------------------------------------------ helpers

    @staticmethod
    def _sysname(nr: int) -> str:
        from repro.kernel.syscalls import Nr

        return Nr.name_of(nr)

    def _track(self, pid: int, tid: int) -> None:
        if (pid, tid) in self._threads_seen:
            return
        self._threads_seen[(pid, tid)] = True
        self.trace_events.append({
            "name": "thread_name", "ph": "M", "ts": 0, "pid": pid,
            "tid": tid, "args": {"name": f"sim-thread {tid}"},
        })
        self.trace_events.append({
            "name": "process_name", "ph": "M", "ts": 0, "pid": pid,
            "tid": tid, "args": {"name": f"sim-process {pid}"},
        })

    def _begin(self, event: BusEvent, name: str, cat: str,
               args: Dict) -> None:
        self._open.setdefault((event.pid, event.tid), []).append(name)
        self.trace_events.append({
            "name": name, "cat": cat, "ph": "B", "ts": _us(event.ts),
            "pid": event.pid, "tid": event.tid, "args": args,
        })

    def _end(self, event: "SyscallExit") -> None:
        stack = self._open.get((event.pid, event.tid))
        if not stack:
            # Unbalanced exit (enter predates sink attachment): drop it
            # rather than emit an E that would unbalance the track.
            return
        stack.pop()
        self.trace_events.append({
            "name": self._sysname(event.nr), "cat": event.phase, "ph": "E",
            "ts": _us(event.ts), "pid": event.pid, "tid": event.tid,
            "args": {"result": event.result, "phase": event.phase},
        })

    def _instant(self, event: BusEvent, name: str, cat: str,
                 args: Dict) -> None:
        self.trace_events.append({
            "name": name, "cat": cat, "ph": "i", "ts": _us(event.ts),
            "pid": event.pid, "tid": event.tid, "s": "t", "args": args,
        })

    # ----------------------------------------------------------- finalize

    def finalize(self) -> List[Dict]:
        """Close unbalanced spans and append the attribution flamegraph."""
        closing = []
        for (pid, tid), stack in self._open.items():
            while stack:
                name = stack.pop()
                closing.append({
                    "name": name, "cat": "truncated", "ph": "E",
                    "ts": _us(self._last_ts), "pid": pid, "tid": tid,
                    "args": {"truncated": True},
                })
        self.trace_events.extend(closing)
        if self._charge_cycles:
            self.trace_events.append({
                "name": "process_name", "ph": "M", "ts": 0,
                "pid": ATTRIBUTION_PID, "tid": 0,
                "args": {"name":
                         f"cycle attribution [{self.mechanism}]"},
            })
            cursor = 0
            ordered = sorted(self._charge_cycles.items(),
                             key=lambda item: (-item[1], item[0]))
            for name, cycles in ordered:
                self.trace_events.append({
                    "name": name, "cat": "cycles", "ph": "X",
                    "ts": _us(cursor), "dur": max(_us(cycles), 0.0001),
                    "pid": ATTRIBUTION_PID, "tid": 0,
                    "args": {"cycles": cycles,
                             "count": self._charge_counts.get(name, 0)},
                })
                cursor += cycles
        return self.trace_events

    def to_chrome_trace(self) -> Dict:
        """The full trace-event JSON object (finalizes the stream)."""
        return {
            "traceEvents": self.finalize(),
            "displayTimeUnit": "ms",
            "otherData": {
                "mechanism": self.mechanism,
                "workload": self.workload,
                "clock_hz": CLOCK_HZ,
                "trace_schema_version": TRACE_SCHEMA_VERSION,
                "cycle_attribution": dict(sorted(
                    self._charge_cycles.items())),
            },
        }


def write_trace_doc(doc: Dict, path) -> Path:
    """Serialize a trace-event JSON object to *path* (pinned layout);
    returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return path


def write_chrome_trace(sink: TraceSink, path) -> Path:
    """Serialize *sink* to *path*; returns the written path."""
    return write_trace_doc(sink.to_chrome_trace(), path)


def spans_to_chrome_trace(spans: List[Dict], mechanism: str = "",
                          workload: str = "") -> Dict:
    """Render traffic span trees (`repro.observability.spans` dicts) as
    a Chrome trace-event JSON object for the Perfetto pipeline.

    One track per (server, connection): each request's four stages are
    ``X`` slices laid end to end from its arrival time, so the critical
    path reads left to right exactly as ``sloexplain`` prints it.
    Span times are virtual schedule nanoseconds; the spec's unit is
    microseconds, hence ``/ 1000``.
    """
    events: List[Dict] = []
    tracks_seen = set()
    for span in spans:
        pid = span["server"]
        tid = span["conn"]
        if pid not in tracks_seen:
            tracks_seen.add(pid)
            events.append({
                "name": "process_name", "ph": "M", "ts": 0, "pid": pid,
                "tid": 0, "args": {"name": f"fleet server {pid}"},
            })
        cursor = span["arrival_ns"]
        for name, dur_ns in span["stages"]:
            if dur_ns <= 0:
                continue
            events.append({
                "name": name, "cat": "request", "ph": "X",
                "ts": round(cursor / 1000, 4),
                "dur": max(round(dur_ns / 1000, 4), 0.0001),
                "pid": pid, "tid": tid,
                "args": {"request": span["id"], "tenant": span["tenant"],
                         "kind": span["kind"], "stage": span["stage"],
                         "shed": span["shed"], "stalled": span["stalled"]},
            })
            cursor += dur_ns
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "mechanism": mechanism,
            "workload": workload,
            "clock_hz": CLOCK_HZ,
            "trace_schema_version": TRACE_SCHEMA_VERSION,
            "span_count": len(spans),
        },
    }


_VALID_PH = frozenset("BEXiICMbensf")


def validate_chrome_trace(doc: Dict) -> List[str]:
    """Schema check against the Chrome trace-event JSON object format.

    Returns a list of problems (empty = valid): top-level shape, the
    per-event required keys, known phase codes, non-negative numeric
    timestamps, ``dur`` on complete events, scope on instants, and
    B/E balance per (pid, tid) track.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["top level is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing/invalid 'traceEvents' array"]
    version = doc.get("otherData", {}).get("trace_schema_version")
    if version != TRACE_SCHEMA_VERSION:
        problems.append(f"trace_schema_version {version!r} != "
                        f"{TRACE_SCHEMA_VERSION}")
    depth: Dict[Tuple[int, int], int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event #{i} is not an object")
            continue
        for key in ("name", "ph", "pid", "tid", "ts"):
            if key not in ev:
                problems.append(f"event #{i} missing {key!r}")
        ph = ev.get("ph")
        if ph not in _VALID_PH:
            problems.append(f"event #{i} unknown phase {ph!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event #{i} bad ts {ts!r}")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            problems.append(f"event #{i} complete event missing dur")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            problems.append(f"event #{i} instant missing scope")
        if ph in "BE":
            track = (ev.get("pid"), ev.get("tid"))
            depth[track] = depth.get(track, 0) + (1 if ph == "B" else -1)
            if depth[track] < 0:
                problems.append(f"event #{i} E without matching B on "
                                f"track {track}")
                depth[track] = 0
    for track, d in sorted(depth.items(), key=str):
        if d != 0:
            problems.append(f"track {track} has {d} unclosed B events")
    return problems
