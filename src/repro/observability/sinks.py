"""Sinks: what attaches to the :class:`~repro.observability.bus.Bus`.

- :class:`NullSink` — accepts and drops everything; exists so the cost
  of an *attached-but-indifferent* consumer can be measured (the
  disabled-bus fast path never even reaches a sink).
- :class:`CounterSink` — counters + histograms: per-event-type tallies,
  per-:class:`~repro.observability.events.CycleCharge` cycle
  attribution, per-label raw-cycle attribution, and a per-syscall-number
  histogram.  This is what ``evaluation/breakdown.py`` and the
  conformance matrix consume, and what the ``METRICS_*.json`` artifacts
  snapshot.
- :class:`RingBufferSink` — bounded in-memory tracer (flight recorder):
  keeps the last N events, O(1) per emit.
- :class:`StreamingJSONLSink` — one JSON object per line to a stream,
  for piping a live run into external tooling.
"""

from __future__ import annotations

import collections
import json
from dataclasses import asdict
from typing import Dict, Optional, TextIO

from repro.observability.events import (BusEvent, CycleCharge, HookObserved,
                                        RawCycles, ShadowDivergence,
                                        SyscallEnter)


class Sink:
    """Sink protocol: ``accept`` one event, never raise, never return."""

    def accept(self, event: BusEvent) -> None:  # pragma: no cover - protocol
        raise NotImplementedError


class NullSink(Sink):
    """Accepts everything, stores nothing."""

    def accept(self, event: BusEvent) -> None:
        pass


class CounterSink(Sink):
    """Counters and histograms over the event stream.

    Attributes:
        events: event-type name → occurrences seen.
        charge_counts / charge_cycles: cycle-model event value →
            times charged / cycles added (mirrors ``CycleModel.counts``
            exactly when attached for a whole run).
        raw_cycles: raw-charge label → cycles added.
        syscalls: (phase, syscall nr) histogram of ``SyscallEnter``.
        hooks: hook-name histogram of ``HookObserved``.
    """

    def __init__(self) -> None:
        self.events: Dict[str, int] = collections.Counter()
        self.charge_counts: Dict[str, int] = collections.Counter()
        self.charge_cycles: Dict[str, int] = collections.Counter()
        self.raw_counts: Dict[str, int] = collections.Counter()
        self.raw_cycles: Dict[str, int] = collections.Counter()
        self.syscalls: Dict[tuple, int] = collections.Counter()
        self.hooks: Dict[str, int] = collections.Counter()

    def accept(self, event: BusEvent) -> None:
        self.events[type(event).__name__] += 1
        if isinstance(event, CycleCharge):
            self.charge_counts[event.event] += event.times
            self.charge_cycles[event.event] += event.cycles
        elif isinstance(event, RawCycles):
            self.raw_counts[event.label] += 1
            self.raw_cycles[event.label] += event.cycles
        elif isinstance(event, SyscallEnter):
            self.syscalls[(event.phase, event.nr)] += 1
        elif isinstance(event, HookObserved):
            self.hooks[event.hook] += 1

    @property
    def total_cycles(self) -> int:
        """Every cycle the model accumulated while this sink listened —
        modelled charges plus raw charges.  The decomposition invariant
        (tests/evaluation/test_breakdown_invariant.py) is that this
        equals the cycle-counter delta exactly."""
        return (sum(self.charge_cycles.values())
                + sum(self.raw_cycles.values()))

    def snapshot(self) -> Dict:
        """JSON-ready copy of every counter (sorted, deterministic)."""
        return {
            "events": dict(sorted(self.events.items())),
            "charge_counts": dict(sorted(self.charge_counts.items())),
            "charge_cycles": dict(sorted(self.charge_cycles.items())),
            "raw_counts": dict(sorted(self.raw_counts.items())),
            "raw_cycles": dict(sorted(self.raw_cycles.items())),
            "syscalls": {f"{phase}:{nr}": n for (phase, nr), n
                         in sorted(self.syscalls.items())},
            "hooks": dict(sorted(self.hooks.items())),
            "total_cycles": self.total_cycles,
        }


class RingBufferSink(Sink):
    """Flight recorder: the last *capacity* events, O(1) per accept.

    ``CycleCharge`` events are excluded by default — they arrive at
    INSTRUCTION rate and would evict everything interesting; pass
    ``keep_charges=True`` to record them too.
    """

    def __init__(self, capacity: int = 4096, keep_charges: bool = False):
        self.buffer: collections.deque = collections.deque(maxlen=capacity)
        self.keep_charges = keep_charges
        self.dropped = 0

    def accept(self, event: BusEvent) -> None:
        if not self.keep_charges and isinstance(event, (CycleCharge,
                                                        RawCycles)):
            return
        if len(self.buffer) == self.buffer.maxlen:
            self.dropped += 1
        self.buffer.append(event)

    def events(self) -> list:
        return list(self.buffer)


class DivergenceSink(Sink):
    """Collects :class:`ShadowDivergence` events, drops everything else.

    The shadow harness emits one event per detected divergence onto the
    *primary* kernel's bus; this sink is the budget counter — verdicts
    compare ``len(sink)`` against the configured divergence budget, and
    the artifact bundle serializes :meth:`snapshot`.
    """

    def __init__(self) -> None:
        self.divergences: list = []

    def accept(self, event: BusEvent) -> None:
        if isinstance(event, ShadowDivergence):
            self.divergences.append(event)

    def __len__(self) -> int:
        return len(self.divergences)

    def snapshot(self) -> list:
        """JSON-ready copy of every collected divergence, in order."""
        return [{"kind": d.kind, "primary": d.primary, "shadow": d.shadow,
                 "request": d.request, "detail": d.detail, "ts": d.ts,
                 "pid": d.pid, "tid": d.tid}
                for d in self.divergences]


#: JSONL trace stream format version.  v2: every record carries a
#: monotonically increasing ``seq`` (line 0 is a ``TraceMeta`` header),
#: which is what ``repro tracediff`` aligns on.
JSONL_SCHEMA_VERSION = 2


class StreamingJSONLSink(Sink):
    """One JSON object per event per line, written as events arrive.

    Line 0 is a ``TraceMeta`` header carrying the schema version.  Every
    record (header included) has a ``seq`` field assigned in emission
    order and a ``type`` field naming the event class — together they
    make two traces of the same run alignable record-by-record.

    ``CycleCharge``/``RawCycles`` are summarized on ``close()`` instead
    of streamed (they arrive at instruction rate).
    """

    def __init__(self, stream: TextIO, include_charges: bool = False):
        self.stream = stream
        self.include_charges = include_charges
        self._charge_cycles: Dict[str, int] = collections.Counter()
        self._seq = 0
        self._write({"type": "TraceMeta",
                     "schema_version": JSONL_SCHEMA_VERSION,
                     "include_charges": include_charges})

    def _write(self, record: Dict) -> None:
        record["seq"] = self._seq
        self._seq += 1
        self.stream.write(json.dumps(record, sort_keys=True) + "\n")

    def accept(self, event: BusEvent) -> None:
        if isinstance(event, (CycleCharge, RawCycles)):
            if not self.include_charges:
                key = (event.event if isinstance(event, CycleCharge)
                       else f"raw:{event.label}")
                self._charge_cycles[key] += event.cycles
                return
        record = asdict(event)
        record["type"] = type(event).__name__
        self._write(record)

    def close(self) -> Optional[Dict[str, int]]:
        """Flush the aggregated charge summary as one final line."""
        if self._charge_cycles:
            self._write({"type": "ChargeSummary",
                         "cycles": dict(sorted(self._charge_cycles.items()))})
        self.stream.flush()
        return dict(self._charge_cycles) or None
