"""Unified instrumentation: one typed event bus over every channel.

PRs 1–3 grew three disjoint instrumentation paths — the fault-injection
kernel hooks, the interposer hook chains, and the cycle model's event
counters read ad hoc by the evaluation.  This package unifies them as
*producers* on a single :class:`Bus` (``kernel.bus``) with pluggable
sinks:

    from repro.observability import Bus, CounterSink, TraceSink

    counters = CounterSink()
    kernel.bus.attach(counters)
    ...
    counters.snapshot()          # per-event counts, cycles, histograms

The bus is observe-only and disabled until a sink attaches; a disabled
bus costs one predicate per emit site (see DESIGN.md §3f).  For traces,
attach a :class:`TraceSink` and write it with
:func:`write_chrome_trace` — the output loads directly in Perfetto
(``ui.perfetto.dev``) or ``chrome://tracing``.
"""

from repro.observability.bus import Bus
from repro.observability.events import (BusEvent, CycleCharge, EVENT_TYPES,
                                        FaultInjected, HookObserved,
                                        IcacheShootdown, PtraceStop,
                                        QuantumEnd, QueueDepthSample,
                                        RawCycles, RequestSpan,
                                        ShadowDivergence, SignalEvent,
                                        SyscallEnter, SyscallExit,
                                        TrafficStageStats)
from repro.observability.export import (TraceSink, spans_to_chrome_trace,
                                        validate_chrome_trace,
                                        write_chrome_trace)
from repro.observability.sinks import (CounterSink, DivergenceSink, NullSink,
                                       RingBufferSink, Sink,
                                       StreamingJSONLSink)
from repro.observability.spans import (ExemplarReservoir, SpanFlightRecorder,
                                       TraceContext, merge_exemplar_docs)

__all__ = [
    "Bus",
    "BusEvent",
    "CycleCharge",
    "EVENT_TYPES",
    "FaultInjected",
    "HookObserved",
    "IcacheShootdown",
    "PtraceStop",
    "QuantumEnd",
    "QueueDepthSample",
    "RawCycles",
    "TrafficStageStats",
    "RequestSpan",
    "ShadowDivergence",
    "SignalEvent",
    "SyscallEnter",
    "SyscallExit",
    "Sink",
    "NullSink",
    "CounterSink",
    "DivergenceSink",
    "RingBufferSink",
    "StreamingJSONLSink",
    "TraceSink",
    "ExemplarReservoir",
    "SpanFlightRecorder",
    "TraceContext",
    "merge_exemplar_docs",
    "spans_to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
