"""Latency-distribution telemetry: HDR-style log-bucketed histograms.

``CounterSink`` collapses the per-syscall story to flat tallies; a
mechanism whose median forward is cheap but whose p99 stalls (a SIGSYS
delivery landing on a contended selector, a first-execution rewrite) is
invisible there.  :class:`LatencyAnalyzer` pairs ``SyscallEnter`` /
``SyscallExit`` events per ``(pid, tid)`` and feeds the cycle deltas into
:class:`LogHistogram` — power-of-two octaves split into
``2**SUB_BUCKET_BITS`` sub-buckets, so any recorded value is within
~``1/2**SUB_BUCKET_BITS`` of its bucket (the HdrHistogram layout), with
O(1) record cost and a few hundred bytes of state per key.

Keys are ``(phase, nr)`` — a ``write`` forwarded by an interposer's
SIGSYS handler (``sud-handler``) is a different distribution from the
same ``write`` as a raw app trap, which is exactly the per-mechanism-
phase attribution Table 5's cost decomposition needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.observability.analyzers.base import Analyzer
from repro.observability.events import BusEvent, SyscallEnter, SyscallExit

#: Sub-bucket resolution: 2**3 = 8 sub-buckets per power-of-two octave,
#: i.e. every value lands in a bucket within 12.5% of its magnitude.
SUB_BUCKET_BITS = 3
_SUB = 1 << SUB_BUCKET_BITS


def bucket_index(value: int) -> int:
    """Index of the log-bucket holding *value* (values < 8 are exact)."""
    if value < _SUB:
        return value
    shift = value.bit_length() - SUB_BUCKET_BITS - 1
    return (shift << SUB_BUCKET_BITS) + (value >> shift)


def bucket_bounds(index: int) -> Tuple[int, int]:
    """Inclusive ``(low, high)`` value range of bucket *index*."""
    if index < _SUB:
        return index, index
    shift = (index - _SUB) >> SUB_BUCKET_BITS
    mantissa = index - (shift << SUB_BUCKET_BITS)
    low = mantissa << shift
    high = ((mantissa + 1) << shift) - 1
    return low, high


def percentile_rank(count: int, p: float) -> int:
    """Target rank (1-based) of percentile *p* over *count* values:
    ``ceil(count * p / 100)`` computed in integer tenths.

    The single rank rule every histogram consumer shares — the SLO
    report, the per-span analyzer snapshots, and ``sloexplain`` — so
    two code paths can never round a boundary differently.  The tenths
    conversion uses explicit half-up rounding: ``int(round(p * 10))``
    banker's-rounds ties to even (``round(992.5) == 992``), which
    silently shifted the target rank down at .5-tenth boundaries like
    ``p=99.25``.
    """
    tenths = int(p * 10 + 0.5)
    return max(1, -(-count * tenths // 1000))  # ceil


def percentile_of_doc(doc: Dict, p: float) -> int:
    """Percentile *p* of a serialized histogram (``to_dict`` output) —
    exact: the sparse bucket table round-trips the full state, so this
    agrees byte-for-byte with the live histogram's :meth:`percentile`."""
    return LogHistogram.from_dict(doc).percentile(p)


class LogHistogram:
    """Sparse log-bucketed histogram of non-negative integers."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max = 0

    def record(self, value: int) -> None:
        if value < 0:
            value = 0
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        self.max = max(self.max, value)
        self.min = value if self.min is None else min(self.min, value)

    def merge(self, other: "LogHistogram") -> None:
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        self.max = max(self.max, other.max)
        if other.min is not None:
            self.min = other.min if self.min is None \
                else min(self.min, other.min)

    def percentile(self, p: float) -> int:
        """Value at percentile *p* (0–100]: the upper bound of the bucket
        the target rank falls in, clamped to the observed max — the
        "highest equivalent value" convention of HdrHistogram."""
        if not self.count:
            return 0
        # Integer rank arithmetic (p may be fractional, e.g. 99.9): the
        # target rank is ceil(count * p / 100) computed in tenths so the
        # result is identical however many shards the counts arrived in.
        target = percentile_rank(self.count, p)
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                return min(bucket_bounds(index)[1], self.max)
        return self.max

    def to_dict(self) -> Dict:
        """Deterministic JSON-ready summary + sparse bucket table.

        ``count``/``sum`` are the *exact* integer tallies (``mean`` stays
        a rounded rendering), so two shards' dicts merge via
        :meth:`from_dict` + :meth:`merge` into byte-for-byte the
        histogram a single unsharded run would have produced.
        """
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min or 0,
            "max": self.max,
            "mean": round(self.total / self.count, 2) if self.count else 0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "p999": self.percentile(99.9),
            "pmax": self.max,
            "buckets": {str(bucket_bounds(i)[0]): self.buckets[i]
                        for i in sorted(self.buckets)},
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "LogHistogram":
        """Rebuild a histogram from :meth:`to_dict` output — exact: the
        sparse bucket table plus ``count``/``sum``/``min``/``max`` carry
        the full mergeable state (bucket keys are low bounds, which
        :func:`bucket_index` maps back to their bucket)."""
        hist = cls()
        for low, n in doc.get("buckets", {}).items():
            hist.buckets[bucket_index(int(low))] = int(n)
        hist.count = int(doc.get("count", 0))
        hist.total = int(doc.get("sum", 0))
        hist.max = int(doc.get("max", 0))
        if hist.count:
            hist.min = int(doc.get("min", 0))
        return hist


class LatencyAnalyzer(Analyzer):
    """Per-``(phase, nr)`` and per-phase syscall latency histograms.

    Enter/exit pairing is a per-``(pid, tid)`` stack, so nested spans
    (an interposer handler's forwarded call inside the original trap's
    span) attribute correctly: the inner forward pops first.
    """

    name = "latency"

    def __init__(self) -> None:
        super().__init__(window_size=1)
        self._open: Dict[Tuple[int, int], List[Tuple[int, str, int]]] = {}
        self.histograms: Dict[Tuple[str, int], LogHistogram] = {}
        self.phase_histograms: Dict[str, LogHistogram] = {}
        self.unmatched_exits = 0

    def observe(self, event: BusEvent) -> None:
        if isinstance(event, SyscallEnter):
            self._open.setdefault((event.pid, event.tid), []).append(
                (event.nr, event.phase, event.ts))
        elif isinstance(event, SyscallExit):
            stack = self._open.get((event.pid, event.tid))
            if not stack:
                # Enter predates sink attachment: drop, like TraceSink.
                self.unmatched_exits += 1
                return
            _nr, _phase, entered = stack.pop()
            duration = max(0, event.ts - entered)
            key = (event.phase, event.nr)
            hist = self.histograms.get(key)
            if hist is None:
                hist = self.histograms[key] = LogHistogram()
            hist.record(duration)
            phist = self.phase_histograms.get(event.phase)
            if phist is None:
                phist = self.phase_histograms[event.phase] = LogHistogram()
            phist.record(duration)

    def snapshot(self) -> Dict:
        """JSON-ready distribution summary (sorted, deterministic)."""
        from repro.kernel.syscalls import Nr

        per_syscall = {
            f"{phase}:{Nr.name_of(nr)}": hist.to_dict()
            for (phase, nr), hist in self.histograms.items()
        }
        per_phase = {phase: hist.to_dict()
                     for phase, hist in self.phase_histograms.items()}
        return {
            "unit": "cycles",
            "per_syscall": dict(sorted(per_syscall.items())),
            "per_phase": dict(sorted(per_phase.items())),
            "unmatched_exits": self.unmatched_exits,
        }
