"""Analyzer substrate: stateful sinks that turn the event stream into
forensic verdicts.

An :class:`Analyzer` is a :class:`~repro.observability.sinks.Sink` with
memory: it watches the bus, keeps a bounded evidence window of recent
events, and — once the run is over — renders structured
:class:`PitfallVerdict` findings.  Analyzers obey the bus contract
(observe-only, never raise, never return a value into the emitting
kernel), which is what lets the lockstep property extend to them: a run
with every analyzer attached is byte-identical, app-observably, to an
untraced run.  Diagnosis therefore cannot *mask* the bug it diagnoses —
the record-and-replay property ReVirt-style debuggers rely on.

Because analyzers only consume :class:`~repro.observability.events.BusEvent`
objects, the same analyzer instance grades a **live** run (attached to
``kernel.bus``) and a **replayed** one (events fed back from a
``RingBufferSink`` or a JSONL trace) identically — the determinism
property ``tests/observability/test_analyzer_determinism.py`` pins.
"""

from __future__ import annotations

import collections
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.observability.events import BusEvent, CycleCharge, RawCycles
from repro.observability.sinks import Sink

#: Version of the verdict/report JSON schema (bump on shape changes).
ANALYZER_SCHEMA_VERSION = 1


def event_to_dict(event: BusEvent) -> Dict:
    """JSON-ready rendering of one event, type tag included."""
    record = asdict(event)
    record["type"] = type(event).__name__
    return record


@dataclass(frozen=True)
class PitfallVerdict:
    """One structured finding of a pitfall analyzer.

    Attributes:
        pitfall: Table 3 row id (``"P1a"`` … ``"P5"``).
        analyzer: name of the analyzer that produced the finding.
        detected: True when the pitfall *fired* (the paper's ✗), False
            when the mechanism handled it (✓).
        reason: one-line human-readable grading, the string
            ``pitfallcheck --evidence`` prints.
        pid: the process the finding is about (0 = machine-global).
        ts: simulated cycle timestamp of the decisive event.
        evidence: the event window backing the finding — the decisive
            events themselves, not a narrative about them.
    """

    pitfall: str
    analyzer: str
    detected: bool
    reason: str
    pid: int = 0
    ts: int = 0
    evidence: Tuple[BusEvent, ...] = ()

    def to_dict(self) -> Dict:
        return {
            "pitfall": self.pitfall,
            "analyzer": self.analyzer,
            "detected": self.detected,
            "reason": self.reason,
            "pid": self.pid,
            "ts": self.ts,
            "evidence": [event_to_dict(e) for e in self.evidence],
        }


class Analyzer(Sink):
    """Stateful streaming sink with an evidence window and verdicts.

    Subclasses implement :meth:`observe` (per-event state updates) and
    :meth:`on_finish` (end-of-run grading).  ``CycleCharge``/``RawCycles``
    arrive at instruction rate and are routed to :meth:`observe_charge`
    (default: dropped) so the evidence window holds *interesting* events.
    """

    #: Table 3 row this analyzer grades ("" = telemetry, no verdicts).
    pitfall: str = ""
    name: str = "analyzer"

    def __init__(self, window_size: int = 64):
        self.window: collections.deque = collections.deque(maxlen=window_size)
        self._verdicts: List[PitfallVerdict] = []
        self._finished = False

    # ------------------------------------------------------------- sink

    def accept(self, event: BusEvent) -> None:
        if isinstance(event, (CycleCharge, RawCycles)):
            self.observe_charge(event)
            return
        self.window.append(event)
        self.observe(event)

    def observe(self, event: BusEvent) -> None:  # pragma: no cover - hook
        pass

    def observe_charge(self, event: BusEvent) -> None:
        pass

    # ---------------------------------------------------------- verdicts

    def on_finish(self) -> None:  # pragma: no cover - hook
        pass

    def finish(self) -> List[PitfallVerdict]:
        """Finalize (idempotent) and return every verdict."""
        if not self._finished:
            self._finished = True
            self.on_finish()
        return self.verdicts()

    def verdicts(self) -> List[PitfallVerdict]:
        return list(self._verdicts)

    def emit_verdict(self, detected: bool, reason: str, pid: int = 0,
                     ts: int = 0,
                     evidence: Optional[Iterable[BusEvent]] = None
                     ) -> PitfallVerdict:
        verdict = PitfallVerdict(
            pitfall=self.pitfall, analyzer=self.name, detected=detected,
            reason=reason, pid=pid, ts=ts,
            evidence=tuple(self.window if evidence is None else evidence))
        self._verdicts.append(verdict)
        return verdict

    def report(self) -> Dict:
        """JSON-ready findings of this analyzer alone."""
        return {"analyzer": self.name, "pitfall": self.pitfall,
                "verdicts": [v.to_dict() for v in self.finish()]}


class AnalyzerSuite(Sink):
    """Fan one bus attachment out to N analyzers and aggregate reports.

    Attaching the suite (one ``bus.attach``) instead of each analyzer
    keeps the emit fan-out loop short; ``replay`` feeds a recorded event
    sequence through the same path, so live and replayed grading share
    every line of code.
    """

    def __init__(self, analyzers: Iterable[Analyzer]):
        self.analyzers: List[Analyzer] = list(analyzers)

    def accept(self, event: BusEvent) -> None:
        for analyzer in self.analyzers:
            analyzer.accept(event)

    def replay(self, events: Iterable[BusEvent]) -> "AnalyzerSuite":
        for event in events:
            self.accept(event)
        return self

    def finish(self) -> List[PitfallVerdict]:
        verdicts: List[PitfallVerdict] = []
        for analyzer in self.analyzers:
            verdicts.extend(analyzer.finish())
        return verdicts

    def __getitem__(self, name: str) -> Analyzer:
        for analyzer in self.analyzers:
            if analyzer.name == name:
                return analyzer
        raise KeyError(name)

    def report(self) -> Dict:
        """One JSON-ready document: verdicts plus telemetry snapshots."""
        verdicts = [v.to_dict() for v in self.finish()]
        telemetry = {a.name: a.snapshot() for a in self.analyzers
                     if hasattr(a, "snapshot")}
        return {"schema_version": ANALYZER_SCHEMA_VERSION,
                "verdicts": verdicts, "telemetry": telemetry}
