"""Pitfall forensics: one streaming analyzer per Table 3 pitfall class.

Each analyzer grades a pitfall **from the event stream alone** — no
kernel introspection, no ``process`` object, no ground-truth log.  The
stream equivalents used throughout:

========================  ====================================================
kernel ground truth        stream analog
========================  ====================================================
``uninterposed_syscalls``  ``SyscallEnter`` with ``phase == "app"`` (a raw
                           trap that reached the kernel dispatcher with no
                           interposition layer in front of it)
``process.exit_status``    ``ProcessLifecycle(kind="exit").status``
``process.kill_detail``    ``ProcessLifecycle(kind="exit").detail``
``kernel.vdso_calls``      ``VdsoCall`` events
rewrite protocol safety    ``RewriteApplied.atomic`` / ``.coherent``
========================  ====================================================

The one deliberate exception is **P4b** (NULL-check *memory footprint*):
reserved-virtual-bytes is a static property of the validity structure,
not a runtime behaviour, so no events encode it and the ground-truth
evaluator in :mod:`repro.pitfalls.poc` keeps grading it directly.

Analyzer reasons reproduce the legacy evaluator evidence strings
byte-for-byte so ``pitfallcheck --evidence`` output is unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.kernel.syscalls import Nr
from repro.observability.analyzers.base import Analyzer, AnalyzerSuite
from repro.observability.analyzers.latency import LatencyAnalyzer
from repro.observability.events import (
    BusEvent,
    IcacheShootdown,
    ProcessLifecycle,
    RewriteApplied,
    SyscallEnter,
    VdsoCall,
)

#: PoC image paths, mirrored from repro.pitfalls.poc (kept literal here so
#: the analyzers stay importable without pulling in the workload builders).
POC_PATHS = {
    "P1a": "/usr/bin/p1a_target",
    "P1b": "/bin/p1b",
    "P2a": "/bin/p2a",
    "P2b": "/bin/p2b",
    "P3a": "/bin/p3a",
    "P3b": "/bin/p3b",
    "P4a": "/bin/p4a",
    "P5": "/bin/p5",
}


class PitfallAnalyzer(Analyzer):
    """Shared plumbing for per-pitfall forensics.

    Tracks which pids belong to the *target image* (via
    ``ProcessLifecycle`` spawn/exec events carrying the image path — this
    is how P1a follows the fork'd child across its ``execve``), the
    uninterposed (``phase == "app"``) syscalls those pids issued, their
    exit records, and the rewrite/icache traffic that touched them.
    ``target_path=None`` attributes every process to the target.
    """

    def __init__(self, target_path: Optional[str] = None,
                 window_size: int = 64):
        super().__init__(window_size=window_size)
        self.target_path = target_path
        self.pids: set = set()
        self.exits: Dict[int, ProcessLifecycle] = {}
        self.app_calls: Dict[int, List[SyscallEnter]] = {}
        self.rewrites: List[RewriteApplied] = []
        self.shootdowns: List[IcacheShootdown] = []
        self.vdso: Dict[int, List[VdsoCall]] = {}

    # ------------------------------------------------------------ routing

    def observe(self, event: BusEvent) -> None:
        if isinstance(event, ProcessLifecycle):
            if event.kind in ("spawn", "exec"):
                if self.target_path is None or event.path == self.target_path:
                    self.pids.add(event.pid)
                elif event.kind == "exec":
                    # exec'd into a different image: stop attributing.
                    self.pids.discard(event.pid)
            elif event.kind == "exit":
                self.exits[event.pid] = event
        elif isinstance(event, SyscallEnter):
            if event.phase == "app" and self._is_target(event.pid):
                self.app_calls.setdefault(event.pid, []).append(event)
        elif isinstance(event, RewriteApplied):
            self.rewrites.append(event)
        elif isinstance(event, IcacheShootdown):
            self.shootdowns.append(event)
        elif isinstance(event, VdsoCall):
            if self._is_target(event.pid):
                self.vdso.setdefault(event.pid, []).append(event)
        self.inspect(event)

    def inspect(self, event: BusEvent) -> None:  # pragma: no cover - hook
        pass

    # ------------------------------------------------------------ helpers

    def _is_target(self, pid: int) -> bool:
        return self.target_path is None or pid in self.pids

    def target_pid(self) -> Optional[int]:
        return min(self.pids) if self.pids else None

    def target_exit(self) -> Optional[ProcessLifecycle]:
        pid = self.target_pid()
        if pid is None:
            # target_path=None and no lifecycle events at all
            return min(self.exits.values(), key=lambda e: e.pid, default=None)
        return self.exits.get(pid)

    def missed(self, pid: Optional[int] = None) -> List[SyscallEnter]:
        """Uninterposed app-phase syscalls issued by the target."""
        if pid is not None:
            return list(self.app_calls.get(pid, ()))
        events: List[SyscallEnter] = []
        for p in sorted(self.app_calls):
            events.extend(self.app_calls[p])
        return events


# =========================================================================
# P1a — bootstrap bypass: LD_PRELOAD shed by an empty-env execve
# =========================================================================


class P1aBootstrapAnalyzer(PitfallAnalyzer):
    pitfall = "P1a"
    name = "p1a-bootstrap"

    def __init__(self, target_path: Optional[str] = POC_PATHS["P1a"]):
        super().__init__(target_path=target_path)

    def on_finish(self) -> None:
        pid = self.target_pid()
        if pid is None:
            self.emit_verdict(True, "target never executed")
            return
        decisive = [e for e in self.missed(pid)
                    if e.nr in (Nr.write, Nr.exit)]
        nrs = [e.nr for e in decisive]
        detected = bool(decisive)
        reason = (f"target ran uninterposed after empty-env execve "
                  f"(missed nrs {sorted(set(nrs))})" if detected else
                  "target's write/exit interposed across empty-env execve")
        self.emit_verdict(detected, reason, pid=pid,
                          ts=decisive[0].ts if decisive else 0,
                          evidence=decisive or None)


# =========================================================================
# P1b — tamper bypass: prctl(PR_SYS_DISPATCH_OFF) disarms discovery
# =========================================================================


class P1bTamperAnalyzer(PitfallAnalyzer):
    pitfall = "P1b"
    name = "p1b-prctl-tamper"

    def __init__(self, target_path: Optional[str] = POC_PATHS["P1b"]):
        super().__init__(target_path=target_path)

    def on_finish(self) -> None:
        pid = self.target_pid()
        exit_event = self.target_exit()
        detail = exit_event.detail if exit_event else ""
        if "P1b" in detail:
            self.emit_verdict(False, f"aborted on disable attempt: {detail}",
                              pid=pid or 0,
                              ts=exit_event.ts if exit_event else 0,
                              evidence=(exit_event,) if exit_event else None)
            return
        escaped = [e for e in self.missed(pid) if e.nr == Nr.getuid]
        detected = bool(escaped)
        reason = ("prctl disabled dispatch; fresh site escaped interposition"
                  if detected else "post-disable syscall still interposed")
        self.emit_verdict(detected, reason, pid=pid or 0,
                          ts=escaped[0].ts if escaped else 0,
                          evidence=escaped or None)


# =========================================================================
# P2a — overlook: disassembly desync + dynamically loaded code
# =========================================================================


class P2aOverlookAnalyzer(PitfallAnalyzer):
    pitfall = "P2a"
    name = "p2a-overlook"

    def __init__(self, target_path: Optional[str] = POC_PATHS["P2a"]):
        super().__init__(target_path=target_path)

    def on_finish(self) -> None:
        pid = self.target_pid()
        exit_event = self.target_exit()
        status = exit_event.status if exit_event else None
        escaped = [e for e in self.missed(pid)
                   if e.nr in (Nr.getpid, Nr.gettid)]
        detected = bool(escaped) or status != 0
        names = sorted({Nr.name_of(e.nr) for e in escaped})
        reason = (f"sites escaped interposition: {names} (exit={status})"
                  if detected else
                  "hidden and dlopen'd sites both interposed")
        evidence = list(escaped)
        if exit_event is not None:
            evidence.append(exit_event)
        self.emit_verdict(detected, reason, pid=pid or 0,
                          ts=escaped[0].ts if escaped else 0,
                          evidence=evidence or None)


# =========================================================================
# P2b — overlook: pre-main startup syscalls + vDSO fast paths
# =========================================================================


class P2bPreMainAnalyzer(PitfallAnalyzer):
    pitfall = "P2b"
    name = "p2b-premain"

    def __init__(self, target_path: Optional[str] = POC_PATHS["P2b"]):
        super().__init__(target_path=target_path)

    def on_finish(self) -> None:
        pid = self.target_pid()
        premain = self.missed(pid)
        vdso = (self.vdso.get(pid, []) if pid is not None
                else [e for events in self.vdso.values() for e in events])
        detected = bool(premain) or bool(vdso)
        reason = (f"{len(premain)} startup syscalls and {len(vdso)} vDSO "
                  f"calls escaped interposition" if detected else
                  "startup syscalls traced; vDSO disabled and interposed")
        evidence = premain + vdso
        self.emit_verdict(detected, reason, pid=pid or 0,
                          ts=evidence[0].ts if evidence else 0,
                          evidence=evidence or None)


# =========================================================================
# P3a / P3b — false rewrites (data / hijack-induced), graded by sentinel
# =========================================================================


class P3RewriteAnalyzer(PitfallAnalyzer):
    """The PoC reads its own 0x0F sentinel byte back and exits with it;
    any false rewrite corrupts the byte and the exit status says so.  The
    decisive evidence is the exit record plus every ``RewriteApplied``
    the interposer performed in that process."""

    #: Sentinel byte the PoC exits with when its bytes were left intact.
    SENTINEL = 0x0F

    def __init__(self, pitfall: str, target_path: Optional[str] = None):
        if pitfall not in ("P3a", "P3b"):
            raise ValueError(f"not a P3 pitfall: {pitfall!r}")
        super().__init__(
            target_path=POC_PATHS[pitfall] if target_path is None
            else target_path)
        self.pitfall = pitfall
        self.name = ("p3a-data-rewrite" if pitfall == "P3a"
                     else "p3b-hijack-rewrite")

    def on_finish(self) -> None:
        pid = self.target_pid()
        exit_event = self.target_exit()
        status = exit_event.status if exit_event else None
        detected = status != self.SENTINEL
        shown = status if status is not None else -1
        if self.pitfall == "P3a":
            reason = (f"embedded data corrupted by rewriting "
                      f"(read back {shown:#x}, expected 0x0f)" if detected
                      else f"embedded data intact (read back {shown:#x})")
        else:
            reason = (f"hijacked execution caused code rewrite: immediate "
                      f"now {shown:#x}, expected 0x0f" if detected else
                      f"partial-instruction bytes intact after hijack "
                      f"(read back {shown:#x})")
        evidence = [r for r in self.rewrites if pid is None or r.pid == pid]
        if exit_event is not None:
            evidence.append(exit_event)
        self.emit_verdict(detected, reason, pid=pid or 0,
                          ts=exit_event.ts if exit_event else 0,
                          evidence=evidence or None)


# =========================================================================
# P4a — NULL-execution goes undetected (masked by the trampoline)
# =========================================================================


class P4aNullExecAnalyzer(PitfallAnalyzer):
    """The PoC calls through a NULL pointer, then prints SURVIVED and
    exits 0.  In the stream, a clean ``exit(0)`` therefore *is* the
    masked-bug signature: execution fell into the trampoline at address 0
    and kept going.  Any kill (non-zero status, detail set) means the
    mechanism stopped the NULL execution."""

    pitfall = "P4a"
    name = "p4a-null-exec"

    def __init__(self, target_path: Optional[str] = POC_PATHS["P4a"]):
        super().__init__(target_path=target_path)

    def on_finish(self) -> None:
        pid = self.target_pid()
        exit_event = self.target_exit()
        status = exit_event.status if exit_event else None
        survived = status == 0
        if survived:
            reason = ("NULL call silently executed the trampoline; "
                      f"the bug was masked (exit {status})")
        else:
            detail = (exit_event.detail if exit_event else "") or "fault"
            reason = f"NULL execution stopped: {detail}"
        self.emit_verdict(survived, reason, pid=pid or 0,
                          ts=exit_event.ts if exit_event else 0,
                          evidence=(exit_event,) if exit_event else None)


# =========================================================================
# P5 — runtime rewriting races: torn stores and stale icaches
# =========================================================================


class P5CoherenceAnalyzer(PitfallAnalyzer):
    """Two signals: the outcome (did the racing thread die executing a
    torn instruction?) and the cause (``RewriteApplied`` events whose
    protocol was non-atomic or locally-coherent-only).  The rewrite
    events are the forensic value-add — the verdict's evidence shows
    *which* patch protocol put the torn bytes there."""

    pitfall = "P5"
    name = "p5-coherence"

    def __init__(self, target_path: Optional[str] = POC_PATHS["P5"]):
        super().__init__(target_path=target_path)

    def unsafe_rewrites(self) -> List[RewriteApplied]:
        pid = self.target_pid()
        return [r for r in self.rewrites
                if (pid is None or r.pid == pid)
                and not (r.atomic and r.coherent)]

    def on_finish(self) -> None:
        pid = self.target_pid()
        exit_event = self.target_exit()
        status = exit_event.status if exit_event else None
        detected = status != 0
        if detected:
            detail = (exit_event.detail if exit_event else "") or ""
            reason = (f"racing thread executed a torn instruction: "
                      f"killed ({detail or status})")
        else:
            reason = "concurrent first-execution race completed correctly"
        evidence: List[BusEvent] = list(self.unsafe_rewrites() if detected
                                        else self.rewrites[:8])
        if exit_event is not None:
            evidence.append(exit_event)
        self.emit_verdict(detected, reason, pid=pid or 0,
                          ts=exit_event.ts if exit_event else 0,
                          evidence=evidence or None)


# =========================================================================

#: Per-pitfall analyzer factories (P4b is ground-truth-only; see module
#: docstring).
ANALYZER_FACTORIES = {
    "P1a": P1aBootstrapAnalyzer,
    "P1b": P1bTamperAnalyzer,
    "P2a": P2aOverlookAnalyzer,
    "P2b": P2bPreMainAnalyzer,
    "P3a": lambda: P3RewriteAnalyzer("P3a"),
    "P3b": lambda: P3RewriteAnalyzer("P3b"),
    "P4a": P4aNullExecAnalyzer,
    "P5": P5CoherenceAnalyzer,
}


def analyzer_for(pitfall: str) -> PitfallAnalyzer:
    """Fresh analyzer instance grading *pitfall* (KeyError for P4b)."""
    return ANALYZER_FACTORIES[pitfall]()


def default_suite(include_latency: bool = True) -> AnalyzerSuite:
    """Every pitfall analyzer (+ latency telemetry) in one suite."""
    analyzers: List[Analyzer] = [factory() for factory in
                                 ANALYZER_FACTORIES.values()]
    if include_latency:
        analyzers.append(LatencyAnalyzer())
    return AnalyzerSuite(analyzers)
