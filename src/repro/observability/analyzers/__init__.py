"""Streaming forensics analyzers over the observability bus.

``Analyzer`` subclasses are ordinary sinks with memory: attach them live
(``kernel.bus.attach(suite)``) or replay a recorded event sequence
(``suite.replay(ring.events())``) — both paths grade identically, which
is the property the determinism tests pin.
"""

from repro.observability.analyzers.base import (
    ANALYZER_SCHEMA_VERSION,
    Analyzer,
    AnalyzerSuite,
    PitfallVerdict,
    event_to_dict,
)
from repro.observability.analyzers.latency import (
    LatencyAnalyzer,
    LogHistogram,
)
from repro.observability.analyzers.pitfalls import (
    ANALYZER_FACTORIES,
    P1aBootstrapAnalyzer,
    P1bTamperAnalyzer,
    P2aOverlookAnalyzer,
    P2bPreMainAnalyzer,
    P3RewriteAnalyzer,
    P4aNullExecAnalyzer,
    P5CoherenceAnalyzer,
    PitfallAnalyzer,
    analyzer_for,
    default_suite,
)

__all__ = [
    "ANALYZER_FACTORIES",
    "ANALYZER_SCHEMA_VERSION",
    "Analyzer",
    "AnalyzerSuite",
    "LatencyAnalyzer",
    "LogHistogram",
    "P1aBootstrapAnalyzer",
    "P1bTamperAnalyzer",
    "P2aOverlookAnalyzer",
    "P2bPreMainAnalyzer",
    "P3RewriteAnalyzer",
    "P4aNullExecAnalyzer",
    "P5CoherenceAnalyzer",
    "PitfallAnalyzer",
    "PitfallVerdict",
    "analyzer_for",
    "default_suite",
    "event_to_dict",
]
