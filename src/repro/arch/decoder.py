"""Single-instruction decoder for SimX86.

``decode`` implements exactly the encodings listed in :mod:`repro.arch.isa`.
Anything else raises :class:`repro.errors.DecodeError` — which is precisely
what makes linear-sweep disassembly *desync* when it wanders into embedded
data, the root cause of pitfalls P2a/P3a.
"""

from __future__ import annotations

import struct

from repro.arch.isa import (
    Cond,
    GRP1_EXT_TO_MNEMONIC,
    Instruction,
    Mnemonic,
    split_modrm,
)
from repro.arch.registers import Reg
from repro.errors import DecodeError

_ONE_BYTE = {
    0x90: Mnemonic.NOP,
    0xC3: Mnemonic.RET,
    0xCC: Mnemonic.INT3,
    0xF4: Mnemonic.HLT,
}


def _s8(value: int) -> int:
    return value - 0x100 if value >= 0x80 else value


def _s32(value: int) -> int:
    return value - 0x1_0000_0000 if value >= 0x8000_0000 else value


def _need(code: bytes, offset: int, count: int) -> None:
    if offset + count > len(code):
        raise DecodeError(
            f"truncated instruction at offset {offset:#x}", offset=offset
        )


def decode(code: bytes, offset: int = 0) -> Instruction:
    """Decode one instruction from ``code`` starting at ``offset``.

    Returns the decoded :class:`Instruction`; raises :class:`DecodeError`
    for any byte sequence outside the SimX86 subset.
    """
    start = offset
    _need(code, offset, 1)

    # F3 0F 1E FA → endbr64 (only F3-prefixed form we accept).
    if code[offset] == 0xF3:
        _need(code, offset, 4)
        if code[offset:offset + 4] == b"\xf3\x0f\x1e\xfa":
            return Instruction(Mnemonic.ENDBR64, 4, bytes(code[start:start + 4]))
        raise DecodeError(f"unsupported F3-prefixed opcode at {start:#x}", start)

    rex_w = rex_r = rex_b = False
    has_rex = False
    if 0x40 <= code[offset] <= 0x4F:
        prefix = code[offset]
        rex_w = bool(prefix & 0x08)
        rex_r = bool(prefix & 0x04)
        rex_b = bool(prefix & 0x01)
        has_rex = True
        offset += 1
        _need(code, offset, 1)

    op = code[offset]
    offset += 1

    def make(mn: Mnemonic, end: int, **kw) -> Instruction:
        return Instruction(mn, end - start, bytes(code[start:end]), **kw)

    # -- one-byte opcodes ---------------------------------------------------
    if op in _ONE_BYTE and not has_rex:
        return make(_ONE_BYTE[op], offset)
    if op == 0x90 and has_rex:  # REX.B 90 is xchg r8,rax on real HW; reject.
        raise DecodeError(f"REX-prefixed nop at {start:#x}", start)

    # -- push/pop (50+r / 58+r) ---------------------------------------------
    if 0x50 <= op <= 0x57:
        return make(Mnemonic.PUSH, offset, reg=Reg((op - 0x50) | (rex_b << 3)))
    if 0x58 <= op <= 0x5F:
        return make(Mnemonic.POP, offset, reg=Reg((op - 0x58) | (rex_b << 3)))

    # -- mov reg, imm (B8+r) ------------------------------------------------
    if 0xB8 <= op <= 0xBF:
        reg = Reg((op - 0xB8) | (rex_b << 3))
        if rex_w:
            _need(code, offset, 8)
            imm = struct.unpack_from("<Q", code, offset)[0]
            return make(Mnemonic.MOV_RI, offset + 8, reg=reg, imm=imm)
        _need(code, offset, 4)
        imm = struct.unpack_from("<I", code, offset)[0]
        return make(Mnemonic.MOV_RI, offset + 4, reg=reg, imm=imm)

    # -- jumps / calls -------------------------------------------------------
    if op == 0xEB:
        _need(code, offset, 1)
        return make(Mnemonic.JMP_REL, offset + 1, rel=_s8(code[offset]))
    if op == 0xE9:
        _need(code, offset, 4)
        return make(Mnemonic.JMP_REL, offset + 4,
                    rel=_s32(struct.unpack_from("<I", code, offset)[0]))
    if op == 0xE8:
        _need(code, offset, 4)
        return make(Mnemonic.CALL_REL, offset + 4,
                    rel=_s32(struct.unpack_from("<I", code, offset)[0]))
    if 0x70 <= op <= 0x7F:
        _need(code, offset, 1)
        return make(Mnemonic.JCC_REL, offset + 1,
                    rel=_s8(code[offset]), cond=Cond(op - 0x70))

    # -- FF group: inc/dec/call/jmp on register operands ----------------------
    if op == 0xFF:
        _need(code, offset, 1)
        mod, ext, rm = split_modrm(code[offset])
        if mod != 0b11:
            raise DecodeError(f"FF group with memory operand at {start:#x}", start)
        target = Reg(rm | (rex_b << 3))
        offset += 1
        if ext == 0:
            return make(Mnemonic.INC, offset, reg=target)
        if ext == 1:
            return make(Mnemonic.DEC, offset, reg=target)
        if ext == 2:
            return make(Mnemonic.CALL_REG, offset, reg=target)
        if ext == 4:
            return make(Mnemonic.JMP_REG, offset, reg=target)
        raise DecodeError(f"unsupported FF /{ext} at {start:#x}", start)

    # -- ModRM arithmetic / data movement -------------------------------------
    _RR_OPS = {0x01: Mnemonic.ADD_RR, 0x29: Mnemonic.SUB_RR,
               0x39: Mnemonic.CMP_RR, 0x31: Mnemonic.XOR_RR,
               0x85: Mnemonic.TEST_RR}
    if op in _RR_OPS:
        _need(code, offset, 1)
        mod, r, rm = split_modrm(code[offset])
        if mod != 0b11:
            raise DecodeError(f"{op:#x} with memory operand at {start:#x}", start)
        # In the /r convention for 01/29/39/31/85: rm is dst, reg is src.
        return make(_RR_OPS[op], offset + 1,
                    reg=Reg(rm | (rex_b << 3)), rm=Reg(r | (rex_r << 3)))

    if op == 0x89:  # mov r/m64, r64
        _need(code, offset, 1)
        mod, r, rm = split_modrm(code[offset])
        src = Reg(r | (rex_r << 3))
        dst = Reg(rm | (rex_b << 3))
        if mod == 0b11:
            return make(Mnemonic.MOV_RR, offset + 1, reg=dst, rm=src)
        if mod == 0b00:
            if dst.low3 in (0b100, 0b101):
                raise DecodeError(f"SIB/disp addressing at {start:#x}", start)
            return make(Mnemonic.MOV_STORE, offset + 1, reg=src, rm=dst)
        raise DecodeError(f"mov with displacement at {start:#x}", start)

    if op == 0x8B:  # mov r64, r/m64
        _need(code, offset, 1)
        mod, r, rm = split_modrm(code[offset])
        dst = Reg(r | (rex_r << 3))
        src = Reg(rm | (rex_b << 3))
        if mod == 0b00:
            if src.low3 in (0b100, 0b101):
                raise DecodeError(f"SIB/disp addressing at {start:#x}", start)
            return make(Mnemonic.MOV_LOAD, offset + 1, reg=dst, rm=src)
        raise DecodeError(f"unsupported 8B form at {start:#x}", start)

    if op == 0x88:  # mov r/m8, r8
        _need(code, offset, 1)
        mod, r, rm = split_modrm(code[offset])
        if mod != 0b00 or rm in (0b100, 0b101):
            raise DecodeError(f"unsupported 88 form at {start:#x}", start)
        return make(Mnemonic.MOV_STORE8, offset + 1,
                    reg=Reg(r | (rex_r << 3)), rm=Reg(rm | (rex_b << 3)))

    if op == 0x8A:  # mov r8, r/m8
        _need(code, offset, 1)
        mod, r, rm = split_modrm(code[offset])
        if mod != 0b00 or rm in (0b100, 0b101):
            raise DecodeError(f"unsupported 8A form at {start:#x}", start)
        return make(Mnemonic.MOV_LOAD8, offset + 1,
                    reg=Reg(r | (rex_r << 3)), rm=Reg(rm | (rex_b << 3)))

    if op == 0x8D:  # lea r64, [rip+disp32]
        _need(code, offset, 1)
        mod, r, rm = split_modrm(code[offset])
        if mod != 0b00 or rm != 0b101:
            raise DecodeError(f"unsupported lea form at {start:#x}", start)
        offset += 1
        _need(code, offset, 4)
        disp = _s32(struct.unpack_from("<I", code, offset)[0])
        return make(Mnemonic.LEA_RIP, offset + 4,
                    reg=Reg(r | (rex_r << 3)), rel=disp)

    if op == 0x83:  # grp1 r/m64, imm8
        _need(code, offset, 2)
        mod, ext, rm = split_modrm(code[offset])
        if mod != 0b11 or ext not in GRP1_EXT_TO_MNEMONIC:
            raise DecodeError(f"unsupported 83 /{ext} at {start:#x}", start)
        return make(GRP1_EXT_TO_MNEMONIC[ext], offset + 2,
                    reg=Reg(rm | (rex_b << 3)), imm=_s8(code[offset + 1]))

    if op == 0x81:  # grp1 r/m64, imm32
        _need(code, offset, 5)
        mod, ext, rm = split_modrm(code[offset])
        if mod != 0b11 or ext not in GRP1_EXT_TO_MNEMONIC:
            raise DecodeError(f"unsupported 81 /{ext} at {start:#x}", start)
        imm = _s32(struct.unpack_from("<I", code, offset + 1)[0])
        return make(GRP1_EXT_TO_MNEMONIC[ext], offset + 5,
                    reg=Reg(rm | (rex_b << 3)), imm=imm)

    # -- 0F escape ------------------------------------------------------------
    if op == 0x0F:
        _need(code, offset, 1)
        op2 = code[offset]
        offset += 1
        if op2 == 0x05:
            return make(Mnemonic.SYSCALL, offset)
        if op2 == 0x34:
            return make(Mnemonic.SYSENTER, offset)
        if op2 == 0x0B:
            return make(Mnemonic.UD2, offset)
        if op2 == 0xA2:
            return make(Mnemonic.CPUID, offset)
        if op2 == 0xAE:
            _need(code, offset, 1)
            if code[offset] == 0xF0:
                return make(Mnemonic.MFENCE, offset + 1)
            raise DecodeError(f"unsupported 0F AE form at {start:#x}", start)
        if op2 == 0x1F:
            _need(code, offset, 1)
            m3 = code[offset]
            if m3 == 0x00:  # 0F 1F 00: canonical 3-byte nop
                return make(Mnemonic.NOP, offset + 1)
            if m3 == 0xF8:  # SimX86 hostcall escape: 0F 1F F8 imm16
                _need(code, offset + 1, 2)
                idx = struct.unpack_from("<H", code, offset + 1)[0]
                return make(Mnemonic.HOSTCALL, offset + 3, hostcall=idx)
            raise DecodeError(f"unsupported 0F 1F form at {start:#x}", start)
        if 0x80 <= op2 <= 0x8F:  # Jcc rel32
            _need(code, offset, 4)
            rel = _s32(struct.unpack_from("<I", code, offset)[0])
            return make(Mnemonic.JCC_REL, offset + 4,
                        rel=rel, cond=Cond(op2 - 0x80))
        raise DecodeError(f"unsupported 0F {op2:02x} at {start:#x}", start)

    raise DecodeError(f"unknown opcode {op:02x} at {start:#x}", start)
