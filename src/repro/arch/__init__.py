"""SimX86: a byte-exact x86-64 subset.

The pitfalls studied by the K23 paper are *structural* properties of the
x86-64 encoding: ``syscall`` (``0F 05``) and ``sysenter`` (``0F 34``) are two
bytes long, ``callq *%rax`` (``FF D0``) happens to be two bytes as well, the
instruction stream is variable length, and the bytes of a ``syscall`` opcode
can appear inside longer instructions or inside data embedded in code pages.
This package implements a subset of x86-64 that preserves all of those
properties with the real encodings, so binary-rewriting interposers built on
top behave exactly like their native counterparts with respect to
rewriting, misidentification, and disassembler desync.

Public surface:

- :mod:`repro.arch.registers` — register file constants and helpers.
- :mod:`repro.arch.isa` — instruction table and the :class:`Instruction` type.
- :mod:`repro.arch.decoder` — single-instruction decoder.
- :mod:`repro.arch.assembler` — :class:`Asm`, a label-aware code builder.
- :mod:`repro.arch.disassembler` — linear sweep (with realistic desync) and
  raw byte-pattern scanning, the two site-discovery strategies contrasted in
  the paper (P2a/P3a).
"""

from repro.arch.registers import Reg
from repro.arch.isa import (
    Instruction,
    Mnemonic,
    SYSCALL_BYTES,
    SYSENTER_BYTES,
    CALL_RAX_BYTES,
    NOP_BYTE,
)
from repro.arch.decoder import decode
from repro.arch.assembler import Asm
from repro.arch.disassembler import (
    linear_sweep,
    find_syscall_sites_linear,
    find_syscall_sites_bytescan,
    classify_syscall_sites,
    SiteKind,
)

__all__ = [
    "Reg",
    "Instruction",
    "Mnemonic",
    "SYSCALL_BYTES",
    "SYSENTER_BYTES",
    "CALL_RAX_BYTES",
    "NOP_BYTE",
    "decode",
    "Asm",
    "linear_sweep",
    "find_syscall_sites_linear",
    "find_syscall_sites_bytescan",
    "classify_syscall_sites",
    "SiteKind",
]
