"""x86-64 general-purpose register numbering.

The numeric values match the hardware encoding (the 3-bit register field in
ModRM / opcode+r, extended to 4 bits by REX.R / REX.B), which matters because
``callq *%rax`` must encode to exactly ``FF D0`` for the two-byte rewrite
trick the paper's interposers rely on.
"""

from __future__ import annotations

import enum


class Reg(enum.IntEnum):
    """General-purpose 64-bit registers, hardware-numbered."""

    RAX = 0
    RCX = 1
    RDX = 2
    RBX = 3
    RSP = 4
    RBP = 5
    RSI = 6
    RDI = 7
    R8 = 8
    R9 = 9
    R10 = 10
    R11 = 11
    R12 = 12
    R13 = 13
    R14 = 14
    R15 = 15

    @property
    def low3(self) -> int:
        """The 3-bit field stored in ModRM / opcode+r."""
        return int(self) & 0b111

    @property
    def needs_rex_bit(self) -> bool:
        """Whether encoding this register requires a REX extension bit."""
        return int(self) >= 8


#: System V AMD64 syscall argument registers, in order (``man 2 syscall``).
SYSCALL_ARG_REGS = (Reg.RDI, Reg.RSI, Reg.RDX, Reg.R10, Reg.R8, Reg.R9)

#: Registers the kernel clobbers on ``syscall``: RCX receives the return RIP
#: and R11 receives RFLAGS.  K23's trampoline exploits this to avoid saving
#: them (Section 6.2.1 of the paper).
SYSCALL_CLOBBERED_REGS = (Reg.RCX, Reg.R11)

#: Callee-saved registers per the System V AMD64 ABI.
CALLEE_SAVED_REGS = (Reg.RBX, Reg.RBP, Reg.R12, Reg.R13, Reg.R14, Reg.R15)

REG_NAMES = {r: r.name.lower() for r in Reg}
NAME_TO_REG = {name: reg for reg, name in REG_NAMES.items()}


def reg_name(reg: "Reg | int") -> str:
    """Return the canonical lower-case name for *reg*."""
    return REG_NAMES[Reg(reg)]


def parse_reg(name: str) -> Reg:
    """Parse a register name like ``"rax"`` or ``"%rax"`` into a :class:`Reg`."""
    cleaned = name.strip().lstrip("%").lower()
    try:
        return NAME_TO_REG[cleaned]
    except KeyError:
        raise ValueError(f"unknown register name: {name!r}") from None
