"""Static site discovery: the two strategies the paper contrasts.

zpoline-style rewriters must locate every ``syscall``/``sysenter`` in a code
region *statically*.  Two families of techniques exist, and both are
implemented here with their real failure modes:

- :func:`linear_sweep` / :func:`find_syscall_sites_linear` — decode
  instructions sequentially from the region start.  When the sweep hits bytes
  it cannot decode (embedded data, alignment padding of an unknown form) it
  *resyncs* by skipping a single byte, exactly like objdump-style tooling.
  Once desynchronized it can (a) sail past a genuine ``syscall`` whose bytes
  got absorbed into a phantom instruction (**P2a**: system call overlook) and
  (b) report a phantom ``syscall`` assembled out of data bytes or the tail of
  a longer instruction (**P3a**: instruction misidentification).

- :func:`find_syscall_sites_bytescan` — report *every* occurrence of the
  ``0F 05`` / ``0F 34`` byte pairs.  Exhaustive but wildly over-approximate:
  it flags partial instructions and data.  Rewriting from this set corrupts
  code and data (P3a), which is why no serious interposer uses it alone.

:func:`classify_syscall_sites` grades a candidate set against ground truth
(the assembler's marks and data spans) into the three categories of the
paper's Figure 1: valid sites, partial-instruction hits, and data hits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Set, Tuple

from repro.arch.decoder import decode
from repro.arch.isa import Instruction, SYSCALL_PATTERNS
from repro.errors import DecodeError


@dataclass(frozen=True)
class SweepItem:
    """One linear-sweep event: either a decoded instruction or a skipped byte.

    Attributes:
        offset: offset of the item within the scanned buffer.
        instruction: the decoded instruction, or ``None`` when the sweep had
            to resync by skipping one undecodable byte.
    """

    offset: int
    instruction: "Instruction | None"

    @property
    def is_desync(self) -> bool:
        return self.instruction is None


def linear_sweep(code: bytes, start: int = 0, end: "int | None" = None) -> Iterator[SweepItem]:
    """Sweep ``code[start:end]`` decoding instructions sequentially.

    Yields a :class:`SweepItem` per decoded instruction, and a desync item
    (``instruction=None``) for every byte skipped while resynchronizing.
    """
    limit = len(code) if end is None else end
    offset = start
    while offset < limit:
        try:
            insn = decode(code, offset)
        except DecodeError:
            yield SweepItem(offset, None)
            offset += 1
            continue
        if offset + insn.length > limit:
            yield SweepItem(offset, None)
            offset += 1
            continue
        yield SweepItem(offset, insn)
        offset += insn.length


def find_syscall_sites_linear(code: bytes) -> List[int]:
    """Offsets that a linear-sweep disassembler believes are syscall sites.

    Subject to both false negatives and false positives once the sweep
    desynchronizes inside embedded data (P2a / P3a).
    """
    return [item.offset for item in linear_sweep(code)
            if item.instruction is not None and item.instruction.is_syscall_site]


def find_syscall_sites_bytescan(code: bytes) -> List[int]:
    """Every offset whose two bytes match ``0F 05`` or ``0F 34``.

    Exhaustive (no false negatives) but includes partial instructions and
    data — the over-approximation illustrated by the paper's Figure 1.
    """
    sites: List[int] = []
    for offset in range(len(code) - 1):
        if code[offset:offset + 2] in SYSCALL_PATTERNS:
            sites.append(offset)
    return sites


class SiteKind(enum.Enum):
    """Ground-truth classification of a candidate syscall site (Figure 1)."""

    VALID = "valid syscall/sysenter instruction"
    PARTIAL = "syscall opcode bytes inside another instruction"
    DATA = "data bytes resembling a syscall instruction"


def classify_syscall_sites(
    candidates: Iterable[int],
    true_sites: Iterable[int],
    data_spans: Sequence[Tuple[int, int]],
) -> List[Tuple[int, SiteKind]]:
    """Grade candidate offsets against ground truth.

    Args:
        candidates: offsets some discovery strategy proposed.
        true_sites: offsets of genuine ``syscall``/``sysenter`` instructions
            (e.g. the assembler marks recorded while building the program).
        data_spans: ``(start, end)`` ranges emitted as data.

    Returns:
        ``(offset, SiteKind)`` pairs, sorted by offset.
    """
    truth: Set[int] = set(true_sites)
    graded: List[Tuple[int, SiteKind]] = []
    for offset in sorted(set(candidates)):
        if offset in truth:
            graded.append((offset, SiteKind.VALID))
        elif any(start <= offset < end for start, end in data_spans):
            graded.append((offset, SiteKind.DATA))
        else:
            graded.append((offset, SiteKind.PARTIAL))
    return graded


def sweep_statistics(code: bytes) -> dict:
    """Summarize a sweep: counts of instructions, desync bytes, and sites.

    Useful for tests asserting that embedded data really does desynchronize
    the sweep, and for the Figure 1 harness.
    """
    decoded = 0
    desyncs = 0
    sites = 0
    for item in linear_sweep(code):
        if item.is_desync:
            desyncs += 1
        else:
            decoded += 1
            if item.instruction.is_syscall_site:
                sites += 1
    return {"decoded": decoded, "desync_bytes": desyncs, "syscall_sites": sites}
