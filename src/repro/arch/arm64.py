"""SimA64: the fixed-length counterpart, for the §7 porting analysis.

The paper's discussion: "for architectures with fixed instruction lengths,
such as ARM, disassembly-based rewriting is expected to be less challenging
than on variable-length architectures like x86-64.  Porting K23 to such
architectures ... is an interesting direction for future work."

This module implements the *static-analysis layer* of that port — enough of
an AArch64-flavoured fixed-length encoding (4-byte instructions, ``SVC #0``
as the kernel trap) to make the claim quantitative:

- instruction boundaries are every 4 bytes, so a sweep can never
  desynchronize: discovery is exact (**P2a's disassembly half and P3a
  vanish structurally**);
- the trap and its replacement branch are the same width, so the size-
  mismatch problem that forces zpoline's trampoline gymnastics on x86-64
  does not arise (a ``B``-range analysis replaces the address-0 trampoline);
- the *environmental* pitfalls (P1a/P1b, P2b's pre-main and vDSO blind
  spots, P5's coherence rules) are ISA-independent and remain — which is
  why a K23-style hybrid is still the right design on ARM.

Execution of SimA64 code is out of scope (the dynamic experiments run on
SimX86); :func:`compare_discovery` is the analysis artifact.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: Fixed instruction width.
INSN_BYTES = 4

#: ``SVC #0`` — the AArch64 supervisor call (syscall trap).
SVC_0 = 0xD4000001

#: ``NOP``.
NOP = 0xD503201F

#: ``RET``.
RET = 0xD65F03C0

#: ``B <imm26>`` opcode head (unconditional branch, ±128 MiB range).
B_HEAD = 0b000101 << 26

#: ``MOVZ Xd, #imm16`` head (64-bit, shift 0).
MOVZ_HEAD = 0xD2800000

#: ``BLR Xn`` head.
BLR_HEAD = 0xD63F0000


def movz(rd: int, imm16: int) -> int:
    if not 0 <= rd < 31 or not 0 <= imm16 <= 0xFFFF:
        raise ValueError("movz operands out of range")
    return MOVZ_HEAD | (imm16 << 5) | rd


def b(offset_insns: int) -> int:
    """``B`` with a signed offset in *instructions* (±2^25)."""
    if not -(1 << 25) <= offset_insns < (1 << 25):
        raise ValueError("branch out of range")
    return B_HEAD | (offset_insns & ((1 << 26) - 1))


def blr(rn: int) -> int:
    if not 0 <= rn < 31:
        raise ValueError("register out of range")
    return BLR_HEAD | (rn << 5)


@dataclass(frozen=True)
class A64Insn:
    """One decoded (or raw-data) 4-byte word."""

    offset: int
    word: int

    @property
    def is_svc(self) -> bool:
        return self.word == SVC_0

    @property
    def mnemonic(self) -> str:
        if self.word == SVC_0:
            return "svc #0"
        if self.word == NOP:
            return "nop"
        if self.word == RET:
            return "ret"
        if self.word >> 26 == B_HEAD >> 26:
            return "b"
        if self.word & 0xFFE00000 == MOVZ_HEAD & 0xFFE00000:
            return "movz"
        if self.word & 0xFFFFFC1F == BLR_HEAD:
            return "blr"
        return ".word"  # unknown/data — still a well-defined 4-byte slot


class A64Builder:
    """Tiny fixed-width code builder (words, labels not needed: offsets
    are trivially computable at fixed width)."""

    def __init__(self) -> None:
        self._words: List[int] = []
        self.svc_sites: List[int] = []
        self.data_slots: List[int] = []

    @property
    def offset(self) -> int:
        return len(self._words) * INSN_BYTES

    def emit(self, word: int) -> "A64Builder":
        self._words.append(word & 0xFFFFFFFF)
        return self

    def svc(self) -> "A64Builder":
        self.svc_sites.append(self.offset)
        return self.emit(SVC_0)

    def nop(self, count: int = 1) -> "A64Builder":
        for _ in range(count):
            self.emit(NOP)
        return self

    def ret(self) -> "A64Builder":
        return self.emit(RET)

    def word_data(self, value: int) -> "A64Builder":
        """Embed a literal-pool word — data in the code stream, including
        values that equal the SVC encoding."""
        self.data_slots.append(self.offset)
        return self.emit(value)

    def assemble(self) -> bytes:
        return b"".join(struct.pack("<I", word) for word in self._words)


def sweep(code: bytes, base: int = 0) -> Iterable[A64Insn]:
    """Fixed-width disassembly: every 4-byte slot decodes, by construction.

    There is no resynchronization concept — the property that removes
    P2a's disassembly half and P3a's partial-instruction hazard.
    """
    if len(code) % INSN_BYTES:
        raise ValueError("A64 code must be a multiple of 4 bytes")
    for offset in range(0, len(code), INSN_BYTES):
        yield A64Insn(base + offset,
                      struct.unpack_from("<I", code, offset)[0])


def find_svc_sites(code: bytes) -> List[int]:
    """Every aligned SVC slot.  Exact: no false negatives, and the only
    possible false positives are *aligned literal words* that equal the SVC
    encoding — detectable because they sit in the literal pool, never
    reachable as instructions on a well-formed binary."""
    return [insn.offset for insn in sweep(code) if insn.is_svc]


def rewrite_feasibility(code: bytes) -> Dict[str, object]:
    """The §7 size-match analysis: every discovered site can be replaced
    in place by one same-width branch (``B``) whose ±128 MiB range must
    cover the interposer stub."""
    sites = find_svc_sites(code)
    return {
        "sites": sites,
        "replacement_width_matches": True,  # both are 4 bytes, always
        "branch_range_bytes": (1 << 25) * INSN_BYTES,
        "needs_null_trampoline": False,  # B reaches a real stub directly
    }


def compare_discovery(x86_code: bytes, x86_true_sites: Iterable[int],
                      a64_builder: A64Builder) -> str:
    """Side-by-side discovery quality: SimX86 linear sweep (desync-prone)
    vs SimA64 fixed-width sweep (exact).  The Figure-1-style artifact for
    the porting discussion."""
    from repro.arch.disassembler import (
        find_syscall_sites_linear,
        sweep_statistics,
    )

    x86_found = set(find_syscall_sites_linear(x86_code))
    x86_truth = set(x86_true_sites)
    stats = sweep_statistics(x86_code)
    a64_code = a64_builder.assemble()
    a64_found = set(find_svc_sites(a64_code))
    a64_truth = set(a64_builder.svc_sites)
    a64_data_hits = a64_found - a64_truth

    lines = [
        "Discovery quality: variable-length (x86-64) vs fixed-length (A64)",
        "",
        f"x86-64 sweep : {len(x86_found & x86_truth)}/{len(x86_truth)} true "
        f"sites found, {len(x86_found - x86_truth)} phantom, "
        f"{stats['desync_bytes']} desync bytes",
        f"A64 sweep    : {len(a64_found & a64_truth)}/{len(a64_truth)} true "
        f"sites found, {len(a64_data_hits)} literal-pool collisions "
        f"(aligned, pool-resident, filterable)",
        "",
        "fixed width eliminates desync and partial-instruction hazards",
        "(P2a's static half, P3a); P1/P2b/P5 are ISA-independent and a",
        "K23-style hybrid remains necessary.",
    ]
    return "\n".join(lines)
