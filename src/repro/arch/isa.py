"""SimX86 instruction model.

Instruction encodings implemented (all byte-for-byte x86-64):

====================  ==========================  ===========================
Mnemonic              Encoding                    Notes
====================  ==========================  ===========================
NOP                   ``90``                      1 byte
NOP3                  ``0F 1F 00``                multi-byte nop
ENDBR64               ``F3 0F 1E FA``             decoded as a 4-byte nop
RET                   ``C3``
INT3                  ``CC``                      #BP
HLT                   ``F4``                      privileged; #GP in user mode
UD2                   ``0F 0B``                   guaranteed #UD
CPUID                 ``0F A2``                   serializing
MFENCE                ``0F AE F0``                fence
SYSCALL               ``0F 05``                   2 bytes — the star of the show
SYSENTER              ``0F 34``                   2 bytes
CALL_REG              ``FF /2`` (mod=11)          ``FF D0`` = callq *%rax
JMP_REG               ``FF /4`` (mod=11)          ``FF E0`` = jmp *%rax
PUSH                  ``50+r`` (REX.B)
POP                   ``58+r`` (REX.B)
MOV_RI64              ``REX.W B8+r imm64``        10 bytes; imm may embed 0F 05
MOV_RI32              ``B8+r imm32``              5 bytes, zero-extends
MOV_RR                ``REX.W 89 /r`` (mod=11)
MOV_STORE             ``REX.W 89 /r`` (mod=00)    mov [rm], reg
MOV_LOAD              ``REX.W 8B /r`` (mod=00)    mov reg, [rm]
MOV_STORE8            ``88 /r`` (mod=00)          mov byte [rm], reg8
MOV_LOAD8             ``8A /r`` (mod=00)          movzx-ish byte load
LEA_RIP               ``REX.W 8D /r`` (mod=00,    rip-relative lea
                      rm=101) disp32
ADD_RR/SUB_RR/...     ``REX.W 01/29/39/31/85``    mod=11
GRP1_I8               ``REX.W 83 /n imm8``        n: 0=add 5=sub 7=cmp
GRP1_I32              ``REX.W 81 /n imm32``
INC/DEC               ``REX.W FF /0, /1`` mod=11
JMP_REL8 / JMP_REL32  ``EB ib`` / ``E9 id``
CALL_REL32            ``E8 id``
Jcc rel8              ``70+cc ib``
Jcc rel32             ``0F 80+cc id``
HOSTCALL              ``0F 1F /7 imm16`` →        SimX86-only escape used to
                      ``0F 1F F8+? ...``          enter host-level (Python)
                                                  handler code; see below
====================  ==========================  ===========================

``HOSTCALL`` is the one deliberate extension: interposer handler bodies (the
C/asm logic of zpoline/lazypoline/K23 and the signal trampolines) run as host
Python callbacks, and simulated code transfers into them via ``HOSTCALL n``.
We encode it as ``0F 1F F8`` + imm16 — in real x86-64 this falls in the
multi-byte-NOP space (``0F 1F /r``), so it never collides with ``0F 05`` /
``0F 34`` and cannot be confused with a syscall site by any scanner.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.arch.registers import Reg

# ---------------------------------------------------------------------------
# Byte-pattern constants used throughout the interposers.
# ---------------------------------------------------------------------------

SYSCALL_BYTES = b"\x0f\x05"
SYSENTER_BYTES = b"\x0f\x34"
CALL_RAX_BYTES = b"\xff\xd0"
NOP_BYTE = 0x90
HOSTCALL_PREFIX = b"\x0f\x1f\xf8"  # + imm16 little-endian

#: Both trap patterns the rewriters look for.
SYSCALL_PATTERNS = (SYSCALL_BYTES, SYSENTER_BYTES)


class Mnemonic(enum.Enum):
    """Every instruction the SimX86 decoder understands."""

    NOP = "nop"
    RET = "ret"
    INT3 = "int3"
    HLT = "hlt"
    UD2 = "ud2"
    CPUID = "cpuid"
    MFENCE = "mfence"
    ENDBR64 = "endbr64"
    SYSCALL = "syscall"
    SYSENTER = "sysenter"
    CALL_REG = "call_reg"
    JMP_REG = "jmp_reg"
    PUSH = "push"
    POP = "pop"
    MOV_RI = "mov_ri"
    MOV_RR = "mov_rr"
    MOV_LOAD = "mov_load"
    MOV_STORE = "mov_store"
    MOV_LOAD8 = "mov_load8"
    MOV_STORE8 = "mov_store8"
    LEA_RIP = "lea_rip"
    ADD_RR = "add_rr"
    SUB_RR = "sub_rr"
    CMP_RR = "cmp_rr"
    XOR_RR = "xor_rr"
    TEST_RR = "test_rr"
    ADD_RI = "add_ri"
    SUB_RI = "sub_ri"
    CMP_RI = "cmp_ri"
    INC = "inc"
    DEC = "dec"
    JMP_REL = "jmp_rel"
    CALL_REL = "call_rel"
    JCC_REL = "jcc_rel"
    HOSTCALL = "hostcall"


class Cond(enum.IntEnum):
    """Condition codes (low nibble of the 0x70/0x0F80 opcode families)."""

    O = 0x0
    NO = 0x1
    B = 0x2
    AE = 0x3
    E = 0x4
    NE = 0x5
    BE = 0x6
    A = 0x7
    S = 0x8
    NS = 0x9
    P = 0xA
    NP = 0xB
    L = 0xC
    GE = 0xD
    LE = 0xE
    G = 0xF


#: Mnemonics that unconditionally divert control flow.
BRANCH_MNEMONICS = frozenset(
    {
        Mnemonic.RET,
        Mnemonic.CALL_REG,
        Mnemonic.JMP_REG,
        Mnemonic.JMP_REL,
        Mnemonic.CALL_REL,
        Mnemonic.JCC_REL,
    }
)


@dataclass(frozen=True)
class Instruction:
    """A decoded SimX86 instruction.

    Attributes:
        mnemonic: which instruction this is.
        length: encoded size in bytes.
        raw: the exact bytes that were decoded.
        reg: primary register operand, if any (destination for most forms).
        rm: secondary register operand (source / base address), if any.
        imm: immediate value, if any (sign information preserved by caller
            convention: immediates are stored as the unsigned encoded value
            for MOV, and as the signed value for arithmetic/branches).
        rel: signed branch displacement relative to the *next* instruction.
        cond: condition code for ``JCC_REL``.
        hostcall: host-callback index for ``HOSTCALL``.
    """

    mnemonic: Mnemonic
    length: int
    raw: bytes
    reg: Optional[Reg] = None
    rm: Optional[Reg] = None
    imm: Optional[int] = None
    rel: Optional[int] = None
    cond: Optional[Cond] = None
    hostcall: Optional[int] = None

    @property
    def is_syscall_site(self) -> bool:
        """True for the two instructions that trap into the kernel."""
        return self.mnemonic in (Mnemonic.SYSCALL, Mnemonic.SYSENTER)

    @property
    def is_branch(self) -> bool:
        return self.mnemonic in BRANCH_MNEMONICS

    def text(self) -> str:
        """A human-readable AT&T-flavoured rendering (for traces/figures)."""
        m = self.mnemonic
        if m is Mnemonic.MOV_RI:
            return f"mov ${self.imm:#x}, %{self.reg.name.lower()}"
        if m is Mnemonic.MOV_RR:
            return f"mov %{self.rm.name.lower()}, %{self.reg.name.lower()}"
        if m is Mnemonic.MOV_LOAD:
            return f"mov (%{self.rm.name.lower()}), %{self.reg.name.lower()}"
        if m is Mnemonic.MOV_STORE:
            return f"mov %{self.reg.name.lower()}, (%{self.rm.name.lower()})"
        if m is Mnemonic.MOV_LOAD8:
            return f"movb (%{self.rm.name.lower()}), %{self.reg.name.lower()}b"
        if m is Mnemonic.MOV_STORE8:
            return f"movb %{self.reg.name.lower()}b, (%{self.rm.name.lower()})"
        if m is Mnemonic.LEA_RIP:
            return f"lea {self.rel:#x}(%rip), %{self.reg.name.lower()}"
        if m in (Mnemonic.ADD_RR, Mnemonic.SUB_RR, Mnemonic.CMP_RR,
                 Mnemonic.XOR_RR, Mnemonic.TEST_RR):
            op = m.value.split("_")[0]
            return f"{op} %{self.rm.name.lower()}, %{self.reg.name.lower()}"
        if m in (Mnemonic.ADD_RI, Mnemonic.SUB_RI, Mnemonic.CMP_RI):
            op = m.value.split("_")[0]
            return f"{op} ${self.imm:#x}, %{self.reg.name.lower()}"
        if m in (Mnemonic.PUSH, Mnemonic.POP, Mnemonic.INC, Mnemonic.DEC):
            return f"{m.value} %{self.reg.name.lower()}"
        if m is Mnemonic.CALL_REG:
            return f"callq *%{self.reg.name.lower()}"
        if m is Mnemonic.JMP_REG:
            return f"jmp *%{self.reg.name.lower()}"
        if m in (Mnemonic.JMP_REL, Mnemonic.CALL_REL):
            op = "jmp" if m is Mnemonic.JMP_REL else "call"
            return f"{op} .{self.rel:+#x}"
        if m is Mnemonic.JCC_REL:
            return f"j{self.cond.name.lower()} .{self.rel:+#x}"
        if m is Mnemonic.HOSTCALL:
            return f"hostcall ${self.hostcall}"
        return m.value


# Group-1 /n extension values (the reg field of ModRM selects the operation).
GRP1_ADD = 0
GRP1_SUB = 5
GRP1_CMP = 7

GRP1_EXT_TO_MNEMONIC = {
    GRP1_ADD: Mnemonic.ADD_RI,
    GRP1_SUB: Mnemonic.SUB_RI,
    GRP1_CMP: Mnemonic.CMP_RI,
}
MNEMONIC_TO_GRP1_EXT = {v: k for k, v in GRP1_EXT_TO_MNEMONIC.items()}


def modrm(mod: int, reg: int, rm: int) -> int:
    """Pack a ModRM byte."""
    return ((mod & 0b11) << 6) | ((reg & 0b111) << 3) | (rm & 0b111)


def split_modrm(byte: int) -> Tuple[int, int, int]:
    """Unpack a ModRM byte into ``(mod, reg, rm)``."""
    return (byte >> 6) & 0b11, (byte >> 3) & 0b111, byte & 0b111


def rex(w: bool = False, r: bool = False, x: bool = False, b: bool = False) -> int:
    """Build a REX prefix byte."""
    return 0x40 | (w << 3) | (r << 2) | (x << 1) | int(b)
