"""A small label-aware assembler for SimX86.

``Asm`` is the builder used everywhere a simulated binary needs code: the
simulated libc, the workload applications, the pitfall PoCs, and the
interposer trampolines.  It emits the byte-exact encodings documented in
:mod:`repro.arch.isa`, resolves labels to rel32 displacements at
:meth:`Asm.assemble` time, and can embed raw data bytes inside the code
stream — the exact property (data in code pages, e.g. jump tables) that makes
static rewriting hazardous (P3a).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch.isa import (
    GRP1_ADD,
    GRP1_CMP,
    GRP1_SUB,
    modrm,
    rex,
)
from repro.arch.registers import Reg
from repro.errors import AssemblerError


@dataclass
class _Fixup:
    """A rel32 field awaiting label resolution.

    Attributes:
        field_offset: where the 4 displacement bytes live.
        next_offset: offset of the instruction *after* the branch (the
            reference point for the displacement).
        label: target label name.
    """

    field_offset: int
    next_offset: int
    label: str


class Asm:
    """Incremental SimX86 code builder.

    Usage::

        a = Asm()
        a.mov_ri(Reg.RAX, 60)          # exit(0)
        a.xor_rr(Reg.RDI, Reg.RDI)
        a.mark("exit_site")
        a.syscall_()
        code = a.assemble()

    ``marks`` records named byte offsets (e.g. the location of each
    ``syscall`` instruction), which tests and the offline-phase checker use to
    ground-truth site discovery.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self.labels: Dict[str, int] = {}
        self.marks: Dict[str, int] = {}
        #: (start, end) byte ranges emitted as data, not instructions.
        self.data_spans: List[tuple] = []
        self._fixups: List[_Fixup] = []
        self._assembled: Optional[bytes] = None

    # -- bookkeeping ---------------------------------------------------------

    @property
    def offset(self) -> int:
        """Current emission offset (== size of code emitted so far)."""
        return len(self._buf)

    def label(self, name: str) -> "Asm":
        """Define *name* at the current offset."""
        if name in self.labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self.labels[name] = self.offset
        return self

    def mark(self, name: str) -> "Asm":
        """Record the current offset under *name* without creating a label."""
        if name in self.marks:
            raise AssemblerError(f"duplicate mark {name!r}")
        self.marks[name] = self.offset
        return self

    def _emit(self, data: bytes) -> "Asm":
        self._assembled = None
        self._buf.extend(data)
        return self

    def _emit_data(self, data: bytes) -> "Asm":
        start = self.offset
        self._emit(data)
        self.data_spans.append((start, self.offset))
        return self

    def raw(self, data: bytes) -> "Asm":
        """Embed raw bytes (data-in-code); never validated as instructions."""
        return self._emit_data(bytes(data))

    def align(self, boundary: int, fill: int = 0x90) -> "Asm":
        """Pad with *fill* bytes up to the next multiple of *boundary*."""
        while self.offset % boundary:
            self._emit(bytes([fill]))
        return self

    # -- zero-operand instructions --------------------------------------------

    def nop(self, count: int = 1) -> "Asm":
        return self._emit(b"\x90" * count)

    def ret(self) -> "Asm":
        return self._emit(b"\xc3")

    def int3(self) -> "Asm":
        return self._emit(b"\xcc")

    def hlt(self) -> "Asm":
        return self._emit(b"\xf4")

    def ud2(self) -> "Asm":
        return self._emit(b"\x0f\x0b")

    def cpuid(self) -> "Asm":
        return self._emit(b"\x0f\xa2")

    def mfence(self) -> "Asm":
        return self._emit(b"\x0f\xae\xf0")

    def endbr64(self) -> "Asm":
        return self._emit(b"\xf3\x0f\x1e\xfa")

    def syscall_(self) -> "Asm":
        return self._emit(b"\x0f\x05")

    def sysenter_(self) -> "Asm":
        return self._emit(b"\x0f\x34")

    def syscall_site(self, name: str) -> "Asm":
        """``mark(name)`` + ``syscall`` — the idiom for ground-truthed sites."""
        return self.mark(name).syscall_()

    def hostcall(self, index: int) -> "Asm":
        """Emit the SimX86 host-callback escape (``0F 1F F8 imm16``)."""
        if not 0 <= index <= 0xFFFF:
            raise AssemblerError(f"hostcall index out of range: {index}")
        return self._emit(b"\x0f\x1f\xf8" + struct.pack("<H", index))

    # -- register forms --------------------------------------------------------

    def call_reg(self, reg: Reg) -> "Asm":
        out = bytearray()
        if reg.needs_rex_bit:
            out.append(rex(b=True))
        out += bytes([0xFF, modrm(0b11, 2, reg.low3)])
        return self._emit(bytes(out))

    def jmp_reg(self, reg: Reg) -> "Asm":
        out = bytearray()
        if reg.needs_rex_bit:
            out.append(rex(b=True))
        out += bytes([0xFF, modrm(0b11, 4, reg.low3)])
        return self._emit(bytes(out))

    def push(self, reg: Reg) -> "Asm":
        out = bytearray()
        if reg.needs_rex_bit:
            out.append(rex(b=True))
        out.append(0x50 + reg.low3)
        return self._emit(bytes(out))

    def pop(self, reg: Reg) -> "Asm":
        out = bytearray()
        if reg.needs_rex_bit:
            out.append(rex(b=True))
        out.append(0x58 + reg.low3)
        return self._emit(bytes(out))

    def inc(self, reg: Reg) -> "Asm":
        return self._emit(bytes([rex(w=True, b=reg.needs_rex_bit),
                                 0xFF, modrm(0b11, 0, reg.low3)]))

    def dec(self, reg: Reg) -> "Asm":
        return self._emit(bytes([rex(w=True, b=reg.needs_rex_bit),
                                 0xFF, modrm(0b11, 1, reg.low3)]))

    # -- moves ------------------------------------------------------------------

    def mov_ri(self, reg: Reg, imm: int, width: int = 0) -> "Asm":
        """``mov $imm, %reg``.

        ``width`` of 32 or 64 forces the encoding; 0 picks the shortest that
        fits.  The 64-bit form is 10 bytes with the immediate inline — the
        canonical carrier of *partial* ``syscall`` byte patterns (P3a).
        """
        imm &= (1 << 64) - 1
        use64 = width == 64 or (width == 0 and (imm > 0xFFFF_FFFF or reg.needs_rex_bit))
        if width == 32 and imm > 0xFFFF_FFFF:
            raise AssemblerError(f"immediate {imm:#x} does not fit in 32 bits")
        if use64:
            return self._emit(bytes([rex(w=True, b=reg.needs_rex_bit),
                                     0xB8 + reg.low3]) + struct.pack("<Q", imm))
        if reg.needs_rex_bit:
            # 32-bit form with high register still needs REX.B but not REX.W;
            # keep the subset simple: use the 64-bit form instead.
            return self._emit(bytes([rex(w=True, b=True),
                                     0xB8 + reg.low3]) + struct.pack("<Q", imm))
        return self._emit(bytes([0xB8 + reg.low3]) + struct.pack("<I", imm))

    def mov_rr(self, dst: Reg, src: Reg) -> "Asm":
        return self._emit(bytes([
            rex(w=True, r=src.needs_rex_bit, b=dst.needs_rex_bit),
            0x89, modrm(0b11, src.low3, dst.low3)]))

    def load(self, dst: Reg, addr_reg: Reg) -> "Asm":
        """``mov (%addr_reg), %dst`` (64-bit load)."""
        if addr_reg.low3 in (0b100, 0b101):
            raise AssemblerError(f"{addr_reg.name} cannot be a bare base register")
        return self._emit(bytes([
            rex(w=True, r=dst.needs_rex_bit, b=addr_reg.needs_rex_bit),
            0x8B, modrm(0b00, dst.low3, addr_reg.low3)]))

    def store(self, addr_reg: Reg, src: Reg) -> "Asm":
        """``mov %src, (%addr_reg)`` (64-bit store)."""
        if addr_reg.low3 in (0b100, 0b101):
            raise AssemblerError(f"{addr_reg.name} cannot be a bare base register")
        return self._emit(bytes([
            rex(w=True, r=src.needs_rex_bit, b=addr_reg.needs_rex_bit),
            0x89, modrm(0b00, src.low3, addr_reg.low3)]))

    def load8(self, dst: Reg, addr_reg: Reg) -> "Asm":
        """``movb (%addr_reg), %dst_b`` — byte load (zero-extends in SimX86)."""
        if addr_reg.low3 in (0b100, 0b101) or dst.needs_rex_bit or addr_reg.needs_rex_bit:
            raise AssemblerError("load8 restricted to low registers / simple bases")
        return self._emit(bytes([0x8A, modrm(0b00, dst.low3, addr_reg.low3)]))

    def store8(self, addr_reg: Reg, src: Reg) -> "Asm":
        """``movb %src_b, (%addr_reg)`` — byte store."""
        if addr_reg.low3 in (0b100, 0b101) or src.needs_rex_bit or addr_reg.needs_rex_bit:
            raise AssemblerError("store8 restricted to low registers / simple bases")
        return self._emit(bytes([0x88, modrm(0b00, src.low3, addr_reg.low3)]))

    def lea_rip_label(self, dst: Reg, label: str) -> "Asm":
        """``lea label(%rip), %dst`` with the displacement fixed up later."""
        self._emit(bytes([rex(w=True, r=dst.needs_rex_bit),
                          0x8D, modrm(0b00, dst.low3, 0b101)]))
        self._fixups.append(_Fixup(self.offset, self.offset + 4, label))
        return self._emit(b"\x00\x00\x00\x00")

    # -- arithmetic ---------------------------------------------------------------

    def _rr(self, opcode: int, dst: Reg, src: Reg) -> "Asm":
        return self._emit(bytes([
            rex(w=True, r=src.needs_rex_bit, b=dst.needs_rex_bit),
            opcode, modrm(0b11, src.low3, dst.low3)]))

    def add_rr(self, dst: Reg, src: Reg) -> "Asm":
        return self._rr(0x01, dst, src)

    def sub_rr(self, dst: Reg, src: Reg) -> "Asm":
        return self._rr(0x29, dst, src)

    def cmp_rr(self, dst: Reg, src: Reg) -> "Asm":
        return self._rr(0x39, dst, src)

    def xor_rr(self, dst: Reg, src: Reg) -> "Asm":
        return self._rr(0x31, dst, src)

    def test_rr(self, dst: Reg, src: Reg) -> "Asm":
        return self._rr(0x85, dst, src)

    def _grp1(self, ext: int, reg: Reg, imm: int) -> "Asm":
        if -128 <= imm <= 127:
            return self._emit(bytes([rex(w=True, b=reg.needs_rex_bit), 0x83,
                                     modrm(0b11, ext, reg.low3), imm & 0xFF]))
        if -(1 << 31) <= imm < (1 << 31):
            return self._emit(bytes([rex(w=True, b=reg.needs_rex_bit), 0x81,
                                     modrm(0b11, ext, reg.low3)])
                              + struct.pack("<i", imm))
        raise AssemblerError(f"immediate {imm:#x} does not fit in 32 bits")

    def add_ri(self, reg: Reg, imm: int) -> "Asm":
        return self._grp1(GRP1_ADD, reg, imm)

    def sub_ri(self, reg: Reg, imm: int) -> "Asm":
        return self._grp1(GRP1_SUB, reg, imm)

    def cmp_ri(self, reg: Reg, imm: int) -> "Asm":
        return self._grp1(GRP1_CMP, reg, imm)

    # -- control flow ----------------------------------------------------------------

    def _rel32_branch(self, opcode: bytes, label: str) -> "Asm":
        self._emit(opcode)
        self._fixups.append(_Fixup(self.offset, self.offset + 4, label))
        return self._emit(b"\x00\x00\x00\x00")

    def jmp(self, label: str) -> "Asm":
        return self._rel32_branch(b"\xe9", label)

    def call(self, label: str) -> "Asm":
        return self._rel32_branch(b"\xe8", label)

    def _jcc(self, cc: int, label: str) -> "Asm":
        return self._rel32_branch(bytes([0x0F, 0x80 + cc]), label)

    def je(self, label: str) -> "Asm":
        return self._jcc(0x4, label)

    def jne(self, label: str) -> "Asm":
        return self._jcc(0x5, label)

    def jl(self, label: str) -> "Asm":
        return self._jcc(0xC, label)

    def jge(self, label: str) -> "Asm":
        return self._jcc(0xD, label)

    def jle(self, label: str) -> "Asm":
        return self._jcc(0xE, label)

    def jg(self, label: str) -> "Asm":
        return self._jcc(0xF, label)

    # -- data directives ------------------------------------------------------------

    def db(self, *values: int) -> "Asm":
        """Emit literal data bytes."""
        return self._emit_data(bytes(values))

    def dq(self, *values: int) -> "Asm":
        """Emit 64-bit little-endian data words."""
        out = b"".join(struct.pack("<Q", v & (1 << 64) - 1) for v in values)
        return self._emit_data(out)

    def ascii(self, text: str, nul: bool = True) -> "Asm":
        """Emit an (optionally NUL-terminated) ASCII string as data."""
        return self._emit_data(text.encode("ascii") + (b"\x00" if nul else b""))

    # -- finalization -----------------------------------------------------------------

    def assemble(self) -> bytes:
        """Resolve fixups and return the code bytes (idempotent)."""
        if self._assembled is None:
            out = bytearray(self._buf)
            for fixup in self._fixups:
                if fixup.label not in self.labels:
                    raise AssemblerError(f"undefined label {fixup.label!r}")
                rel = self.labels[fixup.label] - fixup.next_offset
                struct.pack_into("<i", out, fixup.field_offset, rel)
            self._assembled = bytes(out)
        return self._assembled
