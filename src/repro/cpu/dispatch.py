"""Per-mnemonic dispatch: instruction semantics as pre-bound closures.

The seed interpreter dispatched every instruction through a ~30-arm
``if``/``elif`` chain in :func:`repro.cpu.core.step`.  This module replaces
that chain with a *compiler table*: :data:`COMPILERS` maps each
:class:`~repro.arch.isa.Mnemonic` to a function that takes the decoded
:class:`~repro.arch.isa.Instruction` once and returns an executor closure
``fn(env, ctx)`` with the operands already bound.  The closure is the single
source of the instruction's semantics — the single-step path
(:func:`repro.cpu.core.step`) and the basic-block translation cache
(:mod:`repro.cpu.blocks`) both execute the *same* closure, so the two
execution modes cannot drift apart.

Closures are compiled once per :class:`~repro.cpu.icache.ICache` line (the
cache stores ``(raw, insn, fn)``), so steady-state execution pays one dict
lookup instead of re-walking a dispatch chain per retired instruction.

Execution environment contract (duck-typed, see
:class:`repro.kernel.process.Thread`): ``context``, ``icache``,
``mem_fetch``/``mem_read``/``mem_write``, ``on_syscall``, ``on_hostcall``,
``charge``.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict

from repro.arch.isa import (
    BRANCH_MNEMONICS,
    Cond,
    Instruction,
    Mnemonic,
)
from repro.arch.registers import Reg
from repro.errors import (
    Breakpoint,
    Halt,
    InvalidOpcode,
    ProtectionKeyFault,
    SegmentationFault,
)

_MASK64 = (1 << 64) - 1
_PACK_Q = struct.Struct("<Q").pack
_UNPACK_Q = struct.Struct("<Q").unpack

#: An executor closure: runs one instruction against (env, ctx).  By the
#: time it is called, RIP has already been advanced past the instruction
#: and the INSTRUCTION event charged — matching hardware retire order.
Executor = Callable[[object, object], None]

#: Mnemonics that end a basic block: control transfers, kernel/host
#: entries, serializing instructions, and the faulting trio.  The
#: single-byte NOP also ends a block (handled separately — its run-slide
#: optimisation re-reads memory, so its effect cannot be cached).
BLOCK_TERMINATORS = frozenset(BRANCH_MNEMONICS) | {
    Mnemonic.SYSCALL,
    Mnemonic.SYSENTER,
    Mnemonic.HOSTCALL,
    Mnemonic.CPUID,
    Mnemonic.MFENCE,
    Mnemonic.INT3,
    Mnemonic.UD2,
    Mnemonic.HLT,
}


def cond_met(cond: Cond, flags) -> bool:
    """Evaluate a condition code against the ZF/SF flags model."""
    if cond is Cond.E:
        return flags.zf
    if cond is Cond.NE:
        return not flags.zf
    if cond is Cond.L:
        return flags.sf
    if cond is Cond.GE:
        return not flags.sf
    if cond is Cond.LE:
        return flags.zf or flags.sf
    if cond is Cond.G:
        return not (flags.zf or flags.sf)
    if cond is Cond.S:
        return flags.sf
    if cond is Cond.NS:
        return not flags.sf
    raise InvalidOpcode(0, f"unsupported condition {cond.name}")


# --------------------------------------------------------------- primitives


def _store(env, addr: int, data: bytes) -> None:
    env.mem_write(addr, data)
    # x86 local coherence: the storing core sees its own modification.
    env.icache.invalidate_range(addr, len(data))


def _push(env, ctx, value: int) -> None:
    rsp = (ctx.get(Reg.RSP) - 8) & _MASK64
    ctx.set(Reg.RSP, rsp)
    env.mem_write(rsp, _PACK_Q(value & _MASK64))


def _pop(env, ctx) -> int:
    rsp = ctx.get(Reg.RSP)
    value = _UNPACK_Q(env.mem_read(rsp, 8))[0]
    ctx.set(Reg.RSP, (rsp + 8) & _MASK64)
    return value


# ---------------------------------------------------------------- compilers


def _c_nop(insn: Instruction) -> Executor:
    if insn.length == 1:
        def run(env, ctx):
            # Interpreter optimization: consume runs of single-byte nops in
            # one step (the trampoline sled at address 0 is up to 512 of
            # them).  Semantics are identical — nops have no side effects.
            # The run is charged as a single retired instruction: nop-sled
            # traversal cost is modelled by the TRAMPOLINE_SLED event the
            # interposer handlers charge (matching zpoline's jump-optimized
            # trampoline, whose traversal cost is near-constant in the
            # landing offset).
            while True:
                lookahead = b""
                for span in (64, 16, 4, 1):  # degrade at page boundaries
                    try:
                        lookahead = env.mem_fetch(ctx.rip, span)
                        break
                    except (SegmentationFault, ProtectionKeyFault):
                        continue
                run_len = 0
                while run_len < len(lookahead) and lookahead[run_len] == 0x90:
                    run_len += 1
                if run_len == 0:
                    break
                ctx.rip = (ctx.rip + run_len) & _MASK64
                if run_len < len(lookahead):
                    break
        return run

    def run_wide(env, ctx):
        pass  # multi-byte nop / endbr64: no side effects
    return run_wide


def _c_mov_ri(insn: Instruction) -> Executor:
    reg, imm = insn.reg, insn.imm

    def run(env, ctx):
        ctx.set(reg, imm)
    return run


def _c_mov_rr(insn: Instruction) -> Executor:
    reg, rm = insn.reg, insn.rm

    def run(env, ctx):
        ctx.set(reg, ctx.get(rm))
    return run


def _c_mov_load(insn: Instruction) -> Executor:
    reg, rm = insn.reg, insn.rm

    def run(env, ctx):
        ctx.set(reg, _UNPACK_Q(env.mem_read(ctx.get(rm), 8))[0])
    return run


def _c_mov_store(insn: Instruction) -> Executor:
    reg, rm = insn.reg, insn.rm

    def run(env, ctx):
        _store(env, ctx.get(rm), _PACK_Q(ctx.get(reg)))
    return run


def _c_mov_load8(insn: Instruction) -> Executor:
    reg, rm = insn.reg, insn.rm

    def run(env, ctx):
        ctx.set(reg, env.mem_read(ctx.get(rm), 1)[0])
    return run


def _c_mov_store8(insn: Instruction) -> Executor:
    reg, rm = insn.reg, insn.rm

    def run(env, ctx):
        _store(env, ctx.get(rm), bytes([ctx.get(reg) & 0xFF]))
    return run


def _c_lea_rip(insn: Instruction) -> Executor:
    reg, rel = insn.reg, insn.rel

    def run(env, ctx):
        ctx.set(reg, (ctx.rip + rel) & _MASK64)
    return run


def _c_add_rr(insn: Instruction) -> Executor:
    reg, rm = insn.reg, insn.rm

    def run(env, ctx):
        result = ctx.get(reg) + ctx.get(rm)
        ctx.set(reg, result)
        ctx.flags.set_from_result(result)
    return run


def _c_sub_rr(insn: Instruction) -> Executor:
    reg, rm = insn.reg, insn.rm

    def run(env, ctx):
        result = ctx.get(reg) - ctx.get(rm)
        ctx.set(reg, result)
        ctx.flags.set_from_result(result)
    return run


def _c_cmp_rr(insn: Instruction) -> Executor:
    reg, rm = insn.reg, insn.rm

    def run(env, ctx):
        ctx.flags.set_from_result(ctx.get(reg) - ctx.get(rm))
    return run


def _c_xor_rr(insn: Instruction) -> Executor:
    reg, rm = insn.reg, insn.rm

    def run(env, ctx):
        result = ctx.get(reg) ^ ctx.get(rm)
        ctx.set(reg, result)
        ctx.flags.set_from_result(result)
    return run


def _c_test_rr(insn: Instruction) -> Executor:
    reg, rm = insn.reg, insn.rm

    def run(env, ctx):
        ctx.flags.set_from_result(ctx.get(reg) & ctx.get(rm))
    return run


def _c_add_ri(insn: Instruction) -> Executor:
    reg, imm = insn.reg, insn.imm

    def run(env, ctx):
        result = ctx.get(reg) + imm
        ctx.set(reg, result)
        ctx.flags.set_from_result(result)
    return run


def _c_sub_ri(insn: Instruction) -> Executor:
    reg, imm = insn.reg, insn.imm

    def run(env, ctx):
        result = ctx.get(reg) - imm
        ctx.set(reg, result)
        ctx.flags.set_from_result(result)
    return run


def _c_cmp_ri(insn: Instruction) -> Executor:
    reg, imm = insn.reg, insn.imm

    def run(env, ctx):
        ctx.flags.set_from_result(ctx.get(reg) - imm)
    return run


def _c_inc(insn: Instruction) -> Executor:
    reg = insn.reg

    def run(env, ctx):
        result = ctx.get(reg) + 1
        ctx.set(reg, result)
        ctx.flags.set_from_result(result)
    return run


def _c_dec(insn: Instruction) -> Executor:
    reg = insn.reg

    def run(env, ctx):
        result = ctx.get(reg) - 1
        ctx.set(reg, result)
        ctx.flags.set_from_result(result)
    return run


def _c_push(insn: Instruction) -> Executor:
    reg = insn.reg

    def run(env, ctx):
        _push(env, ctx, ctx.get(reg))
    return run


def _c_pop(insn: Instruction) -> Executor:
    reg = insn.reg

    def run(env, ctx):
        ctx.set(reg, _pop(env, ctx))
    return run


def _c_jmp_rel(insn: Instruction) -> Executor:
    rel = insn.rel

    def run(env, ctx):
        ctx.rip = (ctx.rip + rel) & _MASK64
    return run


def _c_jcc_rel(insn: Instruction) -> Executor:
    rel, cond = insn.rel, insn.cond

    def run(env, ctx):
        if cond_met(cond, ctx.flags):
            ctx.rip = (ctx.rip + rel) & _MASK64
    return run


def _c_call_rel(insn: Instruction) -> Executor:
    rel = insn.rel

    def run(env, ctx):
        _push(env, ctx, ctx.rip)
        ctx.rip = (ctx.rip + rel) & _MASK64
    return run


def _c_call_reg(insn: Instruction) -> Executor:
    reg = insn.reg

    def run(env, ctx):
        _push(env, ctx, ctx.rip)
        ctx.rip = ctx.get(reg)
    return run


def _c_jmp_reg(insn: Instruction) -> Executor:
    reg = insn.reg

    def run(env, ctx):
        ctx.rip = ctx.get(reg)
    return run


def _c_ret(insn: Instruction) -> Executor:
    def run(env, ctx):
        ctx.rip = _pop(env, ctx)
    return run


def _c_syscall(insn: Instruction) -> Executor:
    def run(env, ctx):
        env.on_syscall()
    return run


def _c_hostcall(insn: Instruction) -> Executor:
    index = insn.hostcall

    def run(env, ctx):
        env.on_hostcall(index)
    return run


def _c_serializing(insn: Instruction) -> Executor:
    def run(env, ctx):
        # Serializing: this core discards any stale decoded lines (and,
        # with them, every cached basic block).
        env.icache.flush_all()
    return run


def _c_int3(insn: Instruction) -> Executor:
    length = insn.length

    def run(env, ctx):
        raise Breakpoint((ctx.rip - length) & _MASK64)
    return run


def _c_ud2(insn: Instruction) -> Executor:
    length = insn.length

    def run(env, ctx):
        raise InvalidOpcode((ctx.rip - length) & _MASK64, "ud2")
    return run


def _c_hlt(insn: Instruction) -> Executor:
    length = insn.length

    def run(env, ctx):
        raise Halt(f"hlt in user mode at {(ctx.rip - length) & _MASK64:#x}")
    return run


#: Mnemonic → compiler.  Exhaustive over :class:`Mnemonic`; the assertion
#: below keeps it that way when the ISA grows.
COMPILERS: Dict[Mnemonic, Callable[[Instruction], Executor]] = {
    Mnemonic.NOP: _c_nop,
    Mnemonic.ENDBR64: _c_nop,
    Mnemonic.RET: _c_ret,
    Mnemonic.INT3: _c_int3,
    Mnemonic.HLT: _c_hlt,
    Mnemonic.UD2: _c_ud2,
    Mnemonic.CPUID: _c_serializing,
    Mnemonic.MFENCE: _c_serializing,
    Mnemonic.SYSCALL: _c_syscall,
    Mnemonic.SYSENTER: _c_syscall,
    Mnemonic.CALL_REG: _c_call_reg,
    Mnemonic.JMP_REG: _c_jmp_reg,
    Mnemonic.PUSH: _c_push,
    Mnemonic.POP: _c_pop,
    Mnemonic.MOV_RI: _c_mov_ri,
    Mnemonic.MOV_RR: _c_mov_rr,
    Mnemonic.MOV_LOAD: _c_mov_load,
    Mnemonic.MOV_STORE: _c_mov_store,
    Mnemonic.MOV_LOAD8: _c_mov_load8,
    Mnemonic.MOV_STORE8: _c_mov_store8,
    Mnemonic.LEA_RIP: _c_lea_rip,
    Mnemonic.ADD_RR: _c_add_rr,
    Mnemonic.SUB_RR: _c_sub_rr,
    Mnemonic.CMP_RR: _c_cmp_rr,
    Mnemonic.XOR_RR: _c_xor_rr,
    Mnemonic.TEST_RR: _c_test_rr,
    Mnemonic.ADD_RI: _c_add_ri,
    Mnemonic.SUB_RI: _c_sub_ri,
    Mnemonic.CMP_RI: _c_cmp_ri,
    Mnemonic.INC: _c_inc,
    Mnemonic.DEC: _c_dec,
    Mnemonic.JMP_REL: _c_jmp_rel,
    Mnemonic.CALL_REL: _c_call_rel,
    Mnemonic.JCC_REL: _c_jcc_rel,
    Mnemonic.HOSTCALL: _c_hostcall,
}

assert set(COMPILERS) == set(Mnemonic), \
    "dispatch table out of sync with the ISA"


def compile_insn(insn: Instruction) -> Executor:
    """Compile *insn* into its pre-bound executor closure."""
    return COMPILERS[insn.mnemonic](insn)
