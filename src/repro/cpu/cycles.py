"""The event-based cycle-cost model.

Every performance number this reproduction emits comes from here.  The model
charges cycles for *events* — instructions retired, kernel entries, signal
deliveries, ptrace stops, trampoline bodies, data-structure probes — and each
interposer incurs exactly the events its design implies.  Nothing charges
"zpoline costs X": zpoline's overhead is the sum of its call/sled/handler
events, and K23-ultra's extra cost over K23-default is literally the hash-set
probe event its entry check performs.

Calibration (once, against the paper's Table 5 on a Xeon w5-3425 @ 3.2 GHz,
Linux 6.8; see EXPERIMENTS.md):

- ``KERNEL_SYSCALL`` — round-trip for a minimal (non-existent) system call.
- ``SUD_ARMED_SLOWPATH`` — extra kernel-entry work once Syscall User Dispatch
  is initialized; this is charged on *every* syscall of a SUD-armed process,
  selector state notwithstanding, reproducing the paper's observation that
  lazypoline and K23 pay it even on rewritten fast paths
  ("SUD-no-interposition", §6.2.1).
- ``SIGNAL_DELIVERY`` / ``SIGRETURN`` — SIGSYS frame setup and the
  ``rt_sigreturn`` round trip; these dominate pure-SUD interposition (15.3×).
- ``PTRACE_STOP`` — one tracee stop + tracer wakeup (two context switches);
  a traced syscall takes two stops, plus tracer-side syscalls to inspect the
  tracee.

The absolute values are modelled; the *shape* of every comparison (ordering,
ratios, crossovers) emerges from which events each mechanism triggers.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.observability.bus import Bus
from repro.observability.events import CycleCharge, RawCycles


class Event(enum.Enum):
    """Chargeable machine events."""

    # Members are process-wide singletons (pickling resolves by name), so
    # identity hashing is correct — and the C slot avoids a Python-level
    # __hash__ frame on the costs/counts lookups the hot charge path does
    # hundreds of thousands of times per simulated second.
    __hash__ = object.__hash__

    # Baseline execution.
    INSTRUCTION = "instruction"            # one retired simulated instruction
    KERNEL_SYSCALL = "kernel_syscall"      # bare syscall entry/exit round trip
    KERNEL_SYSCALL_WORK = "kernel_work"    # per-syscall in-kernel service work

    # SUD machinery.
    SUD_ARMED_SLOWPATH = "sud_armed_slowpath"  # extra entry cost, SUD armed
    SUD_SELECTOR_WRITE = "sud_selector_write"  # one selector byte toggle
    SIGNAL_DELIVERY = "signal_delivery"        # kernel → user SIGSYS frame
    SIGRETURN = "sigreturn"                    # rt_sigreturn round trip

    # ptrace machinery.
    PTRACE_STOP = "ptrace_stop"            # tracee stop + tracer switch
    PTRACE_TRACER_WORK = "ptrace_tracer_work"  # tracer-side inspection calls

    # Rewritten fast-path bodies.
    TRAMPOLINE_SLED = "trampoline_sled"    # nop-sled traversal at address 0
    ZPOLINE_HANDLER = "zpoline_handler"    # zpoline save/dispatch/restore
    LAZYPOLINE_HANDLER = "lazypoline_handler"  # lazypoline dispatch body
    K23_HANDLER = "k23_handler"            # K23 dispatch body (rcx/r11 reuse)

    # Optional hardening features (Table 4 variants).
    BITMAP_CHECK = "bitmap_check"          # zpoline-ultra NULL-exec check
    HASHSET_CHECK = "hashset_check"        # K23-ultra NULL-exec check
    STACK_SWITCH = "stack_switch"          # K23-ultra+ dedicated stack swap

    # One-time / slow-path work.
    REWRITE_SITE = "rewrite_site"          # patch one syscall site
    MPROTECT = "mprotect"                  # permission flip for rewriting
    ICACHE_FLUSH = "icache_flush"          # serialize after code patching
    DLOPEN = "dlopen"                      # library mapping
    CONTEXT_SWITCH = "context_switch"      # scheduler switch


#: Calibrated cycle costs.  See module docstring and EXPERIMENTS.md.
DEFAULT_COSTS: Dict[Event, int] = {
    Event.INSTRUCTION: 1,
    Event.KERNEL_SYSCALL: 300,
    Event.KERNEL_SYSCALL_WORK: 0,
    Event.SUD_ARMED_SLOWPATH: 71,
    Event.SUD_SELECTOR_WRITE: 1,
    Event.SIGNAL_DELIVERY: 2100,
    Event.SIGRETURN: 1961,
    Event.PTRACE_STOP: 5000,
    Event.PTRACE_TRACER_WORK: 2000,
    Event.TRAMPOLINE_SLED: 10,
    Event.ZPOLINE_HANDLER: 26,
    Event.LAZYPOLINE_HANDLER: 33,
    Event.K23_HANDLER: 1,
    Event.BITMAP_CHECK: 10,
    Event.HASHSET_CHECK: 36,
    Event.STACK_SWITCH: 1,
    Event.REWRITE_SITE: 40,
    Event.MPROTECT: 600,
    Event.ICACHE_FLUSH: 200,
    Event.DLOPEN: 20_000,
    Event.CONTEXT_SWITCH: 1500,
}

#: Simulated clock, matching the evaluation machine (3.20 GHz Xeon w5-3425).
CLOCK_HZ = 3_200_000_000

#: SUD signal-delivery contention: with T SUD-armed threads in one process,
#: each SIGSYS delivery+return costs an extra
#: ``(T-1) * SUD_CONTENTION_FACTOR * (SIGNAL_DELIVERY + SIGRETURN)`` cycles
#: (kernel-side signal bookkeeping serializes across the thread group).
#: Calibrated against the paper's redis 6-I/O-thread SUD row (Table 6).
SUD_CONTENTION_FACTOR = 0.62


class CycleModel:
    """Accumulates cycles from charged events.

    One instance per simulated system; interposers, the kernel, and the CPU
    all charge through it.  ``counts`` keeps per-event tallies so experiments
    can decompose where time went (used by the microbenchmark analysis).
    """

    def __init__(self, costs: "Dict[Event, int] | None" = None):
        self.costs: Dict[Event, int] = dict(DEFAULT_COSTS)
        if costs:
            self.costs.update(costs)
        self.cycles = 0
        self.counts: Dict[Event, int] = {event: 0 for event in Event}
        #: Raw (data-dependent) cycles by charge-site label; together with
        #: ``counts × costs`` these account for every cycle in ``cycles``
        #: — the decomposition invariant the breakdown tests assert.
        self.raw_cycles: Dict[str, int] = {}
        #: Instrumentation bus (replaced by the owning kernel with its
        #: own).  Always a Bus — never None — so the two charge paths
        #: below pay exactly one predicate each while no sink is
        #: attached: the null-sink fast path.
        self.bus = Bus()

    def charge(self, event: Event, times: int = 1) -> int:
        """Charge *event* *times* times; returns the cycles added."""
        added = self.costs[event] * times
        self.cycles += added
        self.counts[event] += times
        bus = self.bus
        if bus.enabled:
            bus.emit(CycleCharge(ts=self.cycles, pid=0, tid=0,
                                 event=event.value, times=times,
                                 cycles=added))
        return added

    def charge_cycles(self, cycles: int, label: str = "unattributed") -> None:
        """Charge a raw cycle amount (used for data-dependent costs such as
        per-probe hash-set accounting).  *label* names the charge site so
        the cycle decomposition can attribute these too."""
        self.cycles += cycles
        self.raw_cycles[label] = self.raw_cycles.get(label, 0) + cycles
        bus = self.bus
        if bus.enabled:
            bus.emit(RawCycles(ts=self.cycles, pid=0, tid=0,
                               label=label, cycles=cycles))

    @property
    def seconds(self) -> float:
        """Wall-clock equivalent at the modelled 3.2 GHz."""
        return self.cycles / CLOCK_HZ

    def snapshot(self) -> Dict[Event, int]:
        """Copy of the per-event counters."""
        return dict(self.counts)

    def raw_snapshot(self) -> Dict[str, int]:
        """Copy of the per-label raw cycle charges."""
        return dict(self.raw_cycles)

    def reset(self) -> None:
        self.cycles = 0
        self.counts = {event: 0 for event in Event}
        self.raw_cycles = {}
