"""Tiered execution engine: chaining, superblocks, and the trace JIT.

The basic-block translation cache (:mod:`repro.cpu.blocks`, PR 2) made a
*block* the unit of replay but still pays a dispatcher round-trip — block
lookup, heat bookkeeping, a fresh ``run_unit`` frame — per block executed.
This module adds the three tiers that remove that overhead for hot code:

1. **Block chaining** — a block ending in a direct jump, a direct call, or
   a fall-through cut caches a reference to its successor block (a
   monomorphic inline cache on ``Block.succ``); steady-state execution
   follows the chain inside one ``run_unit`` call instead of returning to
   the scheduler loop per block.  Conditional branches chain too: the edge
   caches the *last observed* successor and is re-validated against
   ``ctx.rip`` on every follow.
2. **Superblock formation** — when a block's replay count crosses
   :attr:`EngineConfig.superblock_threshold`, the hot chain starting there
   is stitched (across direct edges and last-observed conditional edges,
   ending at an indirect jump / syscall / serializing block) into one
   :class:`Superblock`: a single replay unit with **one** batched
   INSTRUCTION charge and one budget check.  Conditional edges inside the
   superblock become *guards*: if the branch goes the other way at replay
   time, the superblock exits early, un-charges the unexecuted tail, and
   the interpreter resumes at the architecturally-correct RIP.
3. **Trace compilation** — the hottest superblocks
   (:attr:`EngineConfig.jit_threshold` dispatches) are compiled by
   :mod:`repro.cpu.tracejit` into one ``exec``'d Python function with
   register/flag operations inlined and an inline-cached single-page
   memory fast path seeded from
   :meth:`repro.memory.address_space.AddressSpace.page_entry`.  Any guard
   failure or fast-path miss falls back to the interpreter's own
   primitives, so architectural behaviour is bit-identical.

Escape hatches (each disables its tier *and everything above it*,
mirroring ``REPRO_NO_BLOCK_CACHE``):

- ``REPRO_NO_CHAIN=1``    → PR 2 behaviour: one block per unit.
- ``REPRO_NO_SUPERBLOCK=1`` → chaining only.
- ``REPRO_NO_TRACE_JIT=1``  → chaining + interpreted superblocks.

Invariants (the lockstep fuzzer asserts them across all four configs):

- **Scheduler semantics**: a unit still ends at every point the block
  cache ended one *where the scheduler could act* — syscalls, hostcalls,
  serializing instructions, indirect branches, faults, and budget
  exhaustion.  Chaining only merges boundaries that were no-ops (the
  fault-injection engine clips the whole-unit budget, so insn-count
  triggers still land exactly on a unit boundary).
- **Cycle accounting**: every tier batch-charges INSTRUCTION up front and
  un-charges the unexecuted tail before any observation point, exactly
  like block replay; total sim cycles are identical across tiers.
- **Icache coherence**: superblocks doom with their constituent blocks —
  :meth:`repro.cpu.icache.ICache._drop_block` and ``flush_all`` doom every
  superblock a dropped block participates in, and chain edges are
  validated (``succ.valid``) at follow time, so page-indexed invalidation
  (including the munmap/MAP_FIXED shootdowns) unlinks chains and dooms
  superblocks in the same call that drops the lines.

Environments that expose a ``mem_space`` attribute (the process
:class:`~repro.memory.address_space.AddressSpace`) additionally promise
that their ``mem_read``/``mem_write`` are exactly
``space.read/write(addr, .., pkru=ctx.pkru)`` — the contract that lets a
compiled trace touch page bytes directly.  Environments without it never
get traces compiled (``Superblock.trace`` stays ``False``).
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.cpu.cycles import Event
from repro.cpu.icache import Block, TERM_COND, TERM_END, TERM_INDIRECT
from repro.cpu.tracejit import compile_superblock


class EngineConfig:
    """Which execution tiers are enabled, and their heat thresholds."""

    __slots__ = ("chain", "superblock", "trace_jit",
                 "superblock_threshold", "jit_threshold", "superblock_max")

    def __init__(self, chain: bool = True, superblock: bool = True,
                 trace_jit: bool = True, superblock_threshold: int = 16,
                 jit_threshold: int = 8, superblock_max: int = 96):
        # Tier hierarchy: superblocks are formed from chains and traces are
        # compiled from superblocks, so disabling a tier disables the ones
        # stacked on it.
        self.chain = chain
        self.superblock = chain and superblock
        self.trace_jit = chain and superblock and trace_jit
        self.superblock_threshold = superblock_threshold
        self.jit_threshold = jit_threshold
        self.superblock_max = superblock_max

    @classmethod
    def from_env(cls) -> "EngineConfig":
        """The configuration the escape hatches select."""
        env = os.environ.get
        return cls(chain=env("REPRO_NO_CHAIN", "") != "1",
                   superblock=env("REPRO_NO_SUPERBLOCK", "") != "1",
                   trace_jit=env("REPRO_NO_TRACE_JIT", "") != "1")

    def flags(self) -> dict:
        """JSON-safe tier flags (evaluation cache keys, stats labels)."""
        return {"chain": self.chain, "superblock": self.superblock,
                "trace_jit": self.trace_jit}

    def __repr__(self) -> str:
        return (f"EngineConfig(chain={self.chain}, "
                f"superblock={self.superblock}, trace_jit={self.trace_jit})")


class Superblock:
    """A hot chain of blocks flattened into one replay unit.

    ``steps`` is the concatenation of the constituent blocks' steps;
    ``guards[i]`` is the RIP the next constituent starts at when step *i*
    is a conditional branch that must go the recorded way (``None``
    everywhere else).  ``valid`` is flipped by the owning icache the
    moment any constituent block is dropped; ``trace`` is ``None`` until
    the JIT threshold, then either the compiled function or ``False``
    (compilation declined — replay stays interpreted).
    """

    __slots__ = ("entry", "blocks", "steps", "guards", "n_steps",
                 "tail_end", "valid", "trace", "hits")

    def __init__(self, blocks: List[Block]):
        self.entry = blocks[0].entry
        self.blocks = blocks
        steps = []
        guards: List[Optional[int]] = []
        for index, block in enumerate(blocks):
            steps.extend(block.steps)
            guards.extend([None] * len(block.steps))
            if index + 1 < len(blocks) and block.term == TERM_COND:
                guards[-1] = blocks[index + 1].entry
        self.steps = steps
        self.guards = guards
        self.n_steps = len(steps)
        #: True when the final constituent ends the unit (syscall,
        #: hostcall, indirect branch, serializing, faulting trio).
        self.tail_end = blocks[-1].term == TERM_END
        self.valid = True
        self.trace = None
        self.hits = 0

    def __len__(self) -> int:
        return self.n_steps


def form_superblock(icache, head: Block, engine: EngineConfig) -> Superblock:
    """Stitch the hot chain starting at *head* into a superblock.

    Follows each block's last-observed successor edge across direct and
    conditional terminators, stopping at an unit-ending block, an
    unchained/invalid edge, a revisited entry (loop closure), or
    :attr:`EngineConfig.superblock_max` steps.  Registers the superblock
    with every constituent so invalidation dooms it.
    """
    blocks = [head]
    seen = {head.entry}
    total = len(head.steps)
    current = head
    while current.term < TERM_INDIRECT:
        successor = current.succ
        if successor is None or not successor.valid:
            break
        if (successor.entry in seen
                or total + len(successor.steps) > engine.superblock_max):
            break
        blocks.append(successor)
        seen.add(successor.entry)
        total += len(successor.steps)
        current = successor
    superblock = Superblock(blocks)
    for block in blocks:
        block.sbs.append(superblock)
    head.superblock = superblock
    icache.superblocks_formed += 1
    return superblock


def run_superblock(env, ctx, icache, sb: Superblock, base: int) -> int:
    """Replay *sb* (compiled trace if hot enough, else interpreted).

    *base* is the number of instructions already retired this unit; fault
    paths report ``env.unit_retired = base + <in-superblock index> + 1``
    so the scheduler's attribution matches the per-block path exactly.
    Returns the number of steps retired (``< n_steps`` on a guard failure
    or a constituent invalidation, with the overshoot un-charged).
    """
    icache.superblock_hits += 1
    trace = sb.trace
    if trace is None and icache.engine.trace_jit:
        hits = sb.hits + 1
        sb.hits = hits
        if hits >= icache.engine.jit_threshold:
            trace = compile_superblock(sb, env)
            sb.trace = trace
            if trace is not False:
                icache.traces_compiled += 1
    n = sb.n_steps
    env.charge(Event.INSTRUCTION, n)
    if trace:
        icache.trace_hits += 1
        try:
            i = trace(env, ctx, base)
        except BaseException:
            # The trace maintains env.unit_retired before every step that
            # can raise; un-charge only the never-executed tail.
            overshoot = n - (env.unit_retired - base)
            if overshoot > 0:
                env.charge(Event.INSTRUCTION, -overshoot)
            raise
    else:
        steps = sb.steps
        guards = sb.guards
        i = 0
        try:
            while i < n:
                step = steps[i]
                ctx.rip = step[0]
                step[1](env, ctx)
                i += 1
                if not sb.valid:
                    # A constituent was dropped (own store into the span,
                    # serializing flush): stop where single-step would
                    # re-fetch.
                    break
                guard = guards[i - 1]
                if guard is not None and ctx.rip != guard:
                    icache.guard_fails += 1
                    break
        except BaseException:
            env.unit_retired = base + i + 1
            overshoot = n - i - 1
            if overshoot > 0:
                env.charge(Event.INSTRUCTION, -overshoot)
            raise
    if i < n:
        env.charge(Event.INSTRUCTION, -(n - i))
    return i
