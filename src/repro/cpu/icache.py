"""Per-core instruction cache with explicit-invalidation semantics.

x86 keeps the instruction cache coherent with *local* stores, but
cross-modifying code (thread A patches bytes thread B is executing) is only
architecturally safe if the writer uses a proper protocol and the executor
serializes.  lazypoline's rewriter does neither (pitfall P5): it stores the
two patch bytes non-atomically and never serializes other cores, so a core
that already decoded the old instruction may keep executing it, or may fetch
a *torn* half-patched encoding.

This cache models that hazard precisely:

- each core caches decoded instructions by address;
- stores by the *same* core invalidate its own lines (x86 local coherence);
- stores by *other* cores leave the cache stale unless the writer calls
  :meth:`ICache.flush_remote` on every core (the "icache flush / shootdown"
  a correct rewriter performs) or the executing core runs a serializing
  instruction (``cpuid``/``mfence`` in the SimX86 subset).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.arch.decoder import decode
from repro.arch.isa import Instruction
from repro.errors import DecodeError

#: Maximum bytes one line caches (longest SimX86 instruction is 10 bytes).
LINE_SPAN = 16


class ICache:
    """Decoded-instruction cache for one core."""

    def __init__(self, core_id: int = 0):
        self.core_id = core_id
        self._lines: Dict[int, Tuple[bytes, Instruction]] = {}
        self.hits = 0
        self.misses = 0

    def fetch(self, address: int, read_bytes) -> Instruction:
        """Return the instruction at *address*.

        ``read_bytes(addr, n)`` performs the actual (permission-checked)
        memory fetch on a miss.  On a hit the cached decode is returned
        without touching memory — stale bytes and all.
        """
        line = self._lines.get(address)
        if line is not None:
            self.hits += 1
            return line[1]
        self.misses += 1
        raw = None
        fault = None
        # A full line may cross into an unmapped page even though the
        # instruction itself fits (e.g. the tail of the trampoline page);
        # degrade to shorter reads before giving up.
        for span in (LINE_SPAN, 10, 5, 2, 1):
            try:
                raw = read_bytes(address, span)
                break
            except Exception as exc:  # SegmentationFault and kin
                fault = exc
        if raw is None:
            raise fault
        insn = decode(raw, 0)
        self._lines[address] = (raw[: insn.length], insn)
        return insn

    # -- invalidation protocol -------------------------------------------------

    def invalidate_range(self, start: int, length: int) -> None:
        """Drop lines overlapping ``[start, start+length)``.

        Called automatically for same-core stores, and by correct rewriters
        (zpoline, K23) for every core after patching.
        """
        doomed = [addr for addr in self._lines
                  if addr < start + length and start < addr + len(self._lines[addr][0])]
        for addr in doomed:
            del self._lines[addr]

    def flush_all(self) -> None:
        """Serializing instruction executed on this core (cpuid/mfence)."""
        self._lines.clear()

    def __len__(self) -> int:
        return len(self._lines)
