"""Per-core instruction cache with explicit-invalidation semantics.

x86 keeps the instruction cache coherent with *local* stores, but
cross-modifying code (thread A patches bytes thread B is executing) is only
architecturally safe if the writer uses a proper protocol and the executor
serializes.  lazypoline's rewriter does neither (pitfall P5): it stores the
two patch bytes non-atomically and never serializes other cores, so a core
that already decoded the old instruction may keep executing it, or may fetch
a *torn* half-patched encoding.

This cache models that hazard precisely:

- each core caches decoded instructions by address;
- stores by the *same* core invalidate its own lines (x86 local coherence);
- stores by *other* cores leave the cache stale unless the writer invalidates
  every core's cache (the "icache flush / shootdown" a correct rewriter
  performs) or the executing core runs a serializing instruction
  (``cpuid``/``mfence`` in the SimX86 subset).

The cache is also the home of the **basic-block translation cache**
(:mod:`repro.cpu.blocks`).  A :class:`Block` is a straight-line run of
already-executed instructions replayed as pre-bound closures.  The coherence
invariant that keeps block execution byte-identical to single-stepping is:

    *a live block implies every ICache line it was recorded from is live
    and unchanged* —

because blocks are recorded strictly from lines this cache served (never by
decoding ahead), and every invalidation path (:meth:`invalidate_range`,
:meth:`flush_all`) drops blocks overlapping the invalidated span in the same
call that drops the lines.  A store that would leave a single-step core
executing stale decodes leaves the block cache executing the *same* stale
decodes; a store that invalidates lines kills the blocks too.

Lines and blocks are indexed by page so per-store invalidation inspects only
candidates on the written pages instead of scanning every cached entry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.arch.decoder import decode
from repro.arch.isa import Instruction, Mnemonic
from repro.cpu.dispatch import BLOCK_TERMINATORS, Executor, compile_insn
from repro.errors import ProtectionKeyFault, SegmentationFault
from repro.memory.pages import page_index

#: Maximum bytes one line caches (longest SimX86 instruction is 10 bytes).
LINE_SPAN = 16

#: A cached line: the raw bytes the decode consumed, the decoded
#: instruction, and its compiled executor closure.
Line = Tuple[bytes, Instruction, Executor]

#: How a block ends, for the chaining tier (:mod:`repro.cpu.engine`):
#: a statically-known single successor (direct jump/call, fall-through
#: cut), a conditional branch (two static successors), an indirect branch
#: (successor computed at run time — chains follow it through the
#: validated ``succ`` edge, but superblock formation stops), or a
#: unit-ending terminator (syscall, hostcall, serializing, faulting trio)
#: after which the scheduler must get control back.
TERM_DIRECT = 0
TERM_COND = 1
TERM_INDIRECT = 2
TERM_END = 3


class Block:
    """A cached straight-line run of compiled instructions.

    ``steps[i]`` is ``(next_rip, fn, insn)`` — the post-advance RIP and the
    executor for the *i*-th instruction of the run.  ``valid`` is flipped by
    the owning cache's invalidation paths; replay checks it between
    instructions so a block self-invalidated by its own store stops exactly
    where single-stepping would have re-fetched.

    The chaining/superblock tiers hang their bookkeeping here: ``succ`` is
    a monomorphic inline cache of the last-observed successor block
    (validated against ``ctx.rip`` and ``succ.valid`` at follow time, so a
    stale edge degrades to a dictionary lookup, never to wrong execution);
    ``heat`` counts replays toward superblock formation; ``superblock`` is
    the superblock headed here (``None`` until formed); ``sbs`` lists every
    superblock this block participates in, so dropping the block dooms
    them all.
    """

    __slots__ = ("entry", "end", "steps", "valid",
                 "heat", "succ", "superblock", "sbs", "term")

    def __init__(self, entry: int, end: int,
                 steps: List[Tuple[int, Executor, Instruction]]):
        self.entry = entry
        self.end = end          # exclusive: entry + sum of lengths
        self.steps = steps
        self.valid = True
        self.heat = 0
        self.succ: Optional["Block"] = None
        self.superblock = None
        self.sbs: list = []
        mnemonic = steps[-1][2].mnemonic
        if mnemonic is Mnemonic.JCC_REL:
            self.term = TERM_COND
        elif mnemonic is Mnemonic.JMP_REL or mnemonic is Mnemonic.CALL_REL:
            self.term = TERM_DIRECT
        elif (mnemonic is Mnemonic.RET or mnemonic is Mnemonic.JMP_REG
              or mnemonic is Mnemonic.CALL_REG):
            self.term = TERM_INDIRECT
        elif mnemonic in BLOCK_TERMINATORS:
            self.term = TERM_END
        else:
            self.term = TERM_DIRECT  # fall-through cut (budget/BLOCK_MAX)

    def __len__(self) -> int:
        return len(self.steps)


class ICache:
    """Decoded-instruction cache (and block cache) for one core.

    *engine* is the :class:`repro.cpu.engine.EngineConfig` selecting the
    chaining/superblock/trace-JIT tiers; ``None`` (the default, used by
    unit-test environments) runs the plain one-block-per-unit PR 2 path.
    """

    def __init__(self, core_id: int = 0, engine=None):
        self.core_id = core_id
        self.engine = engine
        self._lines: Dict[int, Line] = {}
        self._line_pages: Dict[int, Set[int]] = {}
        self._blocks: Dict[int, Block] = {}
        self._blocks_by_page: Dict[int, Set[int]] = {}
        # In-progress block recording span (see repro.cpu.blocks): a store
        # or flush overlapping it dooms the recording so a block is never
        # installed over bytes that changed while it was being traced.
        self._rec_active = False
        self._rec_lo = 0
        self._rec_hi = 0
        self._rec_doomed = False
        self.hits = 0
        self.misses = 0
        self.block_hits = 0
        self.block_installs = 0
        # Engine-tier counters (repro.cpu.engine / repro.cpu.tracejit).
        self.chain_links = 0
        self.chain_follows = 0
        self.superblocks_formed = 0
        self.superblock_hits = 0
        self.traces_compiled = 0
        self.trace_hits = 0
        self.guard_fails = 0
        self.invalidation_unlinks = 0

    # -- decoded-line interface ------------------------------------------------

    def fetch(self, address: int, read_bytes) -> Instruction:
        """Return the instruction at *address*.

        ``read_bytes(addr, n)`` performs the actual (permission-checked)
        memory fetch on a miss.  On a hit the cached decode is returned
        without touching memory — stale bytes and all.
        """
        return self.fetch_entry(address, read_bytes)[1]

    def fetch_entry(self, address: int, read_bytes) -> Line:
        """Like :meth:`fetch`, returning the whole ``(raw, insn, fn)`` line."""
        line = self._lines.get(address)
        if line is not None:
            self.hits += 1
            return line
        self.misses += 1
        raw = None
        fault = None
        # A full line may cross into an unmapped page even though the
        # instruction itself fits (e.g. the tail of the trampoline page);
        # degrade to shorter reads before giving up.
        for span in (LINE_SPAN, 10, 5, 2, 1):
            try:
                raw = read_bytes(address, span)
                break
            except (SegmentationFault, ProtectionKeyFault) as exc:
                fault = exc
        if raw is None:
            raise fault
        insn = decode(raw, 0)
        line = (raw[: insn.length], insn, compile_insn(insn))
        self._lines[address] = line
        for page in range(page_index(address),
                          page_index(address + insn.length - 1) + 1):
            self._line_pages.setdefault(page, set()).add(address)
        return line

    # -- block interface -------------------------------------------------------

    def block_at(self, entry: int) -> Optional[Block]:
        block = self._blocks.get(entry)
        if block is not None:
            self.block_hits += 1
        return block

    def install_block(self, block: Block) -> None:
        old = self._blocks.get(block.entry)
        if old is not None:
            self._drop_block(old)
        self._blocks[block.entry] = block
        for page in range(page_index(block.entry),
                          page_index(block.end - 1) + 1):
            self._blocks_by_page.setdefault(page, set()).add(block.entry)
        self.block_installs += 1

    def _drop_block(self, block: Block) -> None:
        block.valid = False
        if block.succ is not None or block.heat:
            # The block participated in chaining: its outgoing edge dies
            # here and every incoming edge is rejected at follow time by
            # the ``succ.valid`` check.
            self.invalidation_unlinks += 1
        block.succ = None
        if block.sbs:
            self._doom_superblocks(block)
        if self._blocks.get(block.entry) is block:
            del self._blocks[block.entry]
        for page in range(page_index(block.entry),
                          page_index(block.end - 1) + 1):
            entries = self._blocks_by_page.get(page)
            if entries is not None:
                entries.discard(block.entry)
                if not entries:
                    del self._blocks_by_page[page]

    def _doom_superblocks(self, block: Block) -> None:
        """Invalidate every superblock *block* participates in.

        The doomed superblock's head becomes eligible for re-formation
        (after re-heating — a page under repeated patching must not thrash
        the formation machinery), and the other constituents forget the
        doomed superblock so the membership lists stay small.
        """
        for sb in block.sbs:
            if not sb.valid:
                continue
            sb.valid = False
            head = sb.blocks[0]
            head.superblock = None
            head.heat = 0
            for member in sb.blocks:
                if member is not block and sb in member.sbs:
                    member.sbs.remove(sb)
        block.sbs = []

    # Recording span: repro.cpu.blocks brackets first-execution tracing with
    # begin/end so invalidations racing the trace doom the block-in-progress.

    def begin_record(self, start: int) -> None:
        self._rec_active = True
        self._rec_lo = start
        self._rec_hi = start
        self._rec_doomed = False

    def extend_record(self, hi: int) -> None:
        self._rec_hi = hi

    def end_record(self) -> bool:
        """Stop recording; returns True if the span survived untouched."""
        self._rec_active = False
        return not self._rec_doomed

    # -- invalidation protocol -------------------------------------------------

    def invalidate_range(self, start: int, length: int) -> None:
        """Drop lines and blocks overlapping ``[start, start+length)``.

        Called automatically for same-core stores, and by correct rewriters
        (zpoline, K23) for every core after patching.
        """
        end = start + length
        if self._rec_active and start < self._rec_hi and self._rec_lo < end:
            self._rec_doomed = True
        for page in range(page_index(start), page_index(end - 1) + 1):
            addrs = self._line_pages.get(page)
            if addrs:
                doomed = [addr for addr in addrs
                          if addr < end and start < addr + len(self._lines[addr][0])]
                for addr in doomed:
                    raw = self._lines.pop(addr)[0]
                    for p in range(page_index(addr),
                                   page_index(addr + len(raw) - 1) + 1):
                        lines = self._line_pages.get(p)
                        if lines is not None:
                            lines.discard(addr)
                            if not lines:
                                del self._line_pages[p]
            entries = self._blocks_by_page.get(page)
            if entries:
                for entry in [e for e in entries
                              if e < end and start < self._blocks[e].end]:
                    self._drop_block(self._blocks[entry])

    def flush_all(self) -> None:
        """Serializing instruction executed on this core (cpuid/mfence)."""
        self._lines.clear()
        self._line_pages.clear()
        for block in self._blocks.values():
            block.valid = False
            block.succ = None
            if block.sbs:
                self._doom_superblocks(block)
        self._blocks.clear()
        self._blocks_by_page.clear()
        if self._rec_active:
            self._rec_doomed = True

    def __len__(self) -> int:
        return len(self._lines)
