"""Basic-block translation cache: record-and-replay execution units.

:func:`run_unit` is the block-mode counterpart of
:func:`repro.cpu.core.step`: it executes *up to* ``budget`` instructions for
an execution environment and returns how many retired.  The first visit to
an address **records** — it executes instruction-by-instruction through the
normal ICache fetch path while tracing the straight-line run into a
:class:`repro.cpu.icache.Block` of pre-bound closures.  Later visits
**replay** the block without re-fetching or re-decoding.

Equivalence with single-stepping is the design invariant (the evaluation
pipeline's numbers must be byte-identical with the cache on or off):

- **Recording is a trace, not a disassembly.**  Only instructions the unit
  actually executed — fetched through the same ICache the single-step path
  uses — enter a block, so a block can never contain a decode single-step
  would not have produced (this is what preserves pitfall P5's stale-decode
  and torn-patch behaviour bit-for-bit).
- **Blocks end where single-step behaviour could diverge**: at control
  transfers, ``syscall``/``sysenter``, ``HOSTCALL``, serializing
  instructions, the faulting trio (``int3``/``ud2``/``hlt``), the budget
  (scheduler-quantum) boundary, :data:`BLOCK_MAX`, and before any
  single-byte ``nop`` (whose run-slide consumes a memory-dependent number
  of bytes and is therefore executed via the uncached path in both modes).
- **Cycle charges are batched but observationally identical.**  Replay
  pre-charges ``INSTRUCTION × n`` up front; any early exit un-charges the
  overshoot *before* control leaves the unit, so every point where
  simulated code can observe the clock — the terminal syscall/hostcall of a
  block, or a fault's signal delivery — sees exactly the cycle count the
  single-step interpreter would have accumulated.
- **Retire accounting** uses ``env.unit_retired``: set to ``k + 1`` before
  instruction *k* is fetched, so the scheduler attributes a faulting
  instruction to the unit exactly as the per-step loop did (a fetch fault
  retires uncharged; an execution fault retires charged; a process exit
  leaves the final instruction uncounted).
"""

from __future__ import annotations

from repro.arch.isa import Mnemonic
from repro.cpu.cycles import Event
from repro.cpu.dispatch import BLOCK_TERMINATORS
from repro.cpu.engine import form_superblock, run_superblock
from repro.cpu.icache import Block, TERM_END
from repro.errors import DecodeError, InvalidOpcode

_MASK64 = (1 << 64) - 1

#: Maximum instructions per recorded block (well under the default
#: scheduler quantum of 100, so loops still re-enter their block).
BLOCK_MAX = 64


def run_unit(env, budget: int) -> int:
    """Execute up to *budget* instructions starting at ``env.context.rip``.

    Returns the number of instructions retired (>= 1 unless an exception is
    raised).  Exceptions propagate exactly as from single-stepping, with
    ``env.unit_retired`` naming the in-unit index of the culprit.

    With a chaining-enabled :class:`repro.cpu.engine.EngineConfig` on the
    environment's icache, one unit follows the chain of cached blocks
    (dispatching superblocks and compiled traces where formed) until a
    unit-ending terminator, an uncached/invalid successor, or the budget;
    without one, a unit is exactly one block — PR 2 behaviour.
    """
    ctx = env.context
    icache = env.icache
    block = icache.block_at(ctx.rip)
    if block is None:
        return _record(env, ctx, icache, budget)
    engine = icache.engine
    if engine is None or not engine.chain:
        return _replay(env, ctx, block, budget, 0)
    return _run_chained(env, ctx, icache, engine, block, budget)


def _run_chained(env, ctx, icache, engine, block, budget: int) -> int:
    """Follow the block chain for up to *budget* instructions."""
    total = 0
    blocks = icache._blocks
    while True:
        sb = block.superblock
        if sb is None:
            heat = block.heat + 1
            block.heat = heat
            if engine.superblock and heat >= engine.superblock_threshold:
                sb = form_superblock(icache, block, engine)
        if sb is not None and sb.valid and sb.n_steps <= budget - total:
            n = run_superblock(env, ctx, icache, sb, total)
            total += n
            if n < sb.n_steps or sb.tail_end:
                # Early exit (guard failure / constituent invalidated) or
                # a unit-ending tail: hand control back to the scheduler.
                return total
            block = sb.blocks[-1]
        else:
            n = _replay(env, ctx, block, budget - total, total)
            total += n
            if n < len(block.steps) or block.term == TERM_END:
                return total
        if total >= budget:
            return total
        rip = ctx.rip
        nxt = block.succ
        if nxt is None or nxt.entry != rip or not nxt.valid:
            nxt = blocks.get(rip)
            if nxt is None:
                # Uncached successor: end the unit; the next unit records
                # it (with a fresh base, exactly like the unchained path).
                return total
            block.succ = nxt
            icache.chain_links += 1
        else:
            icache.chain_follows += 1
        block = nxt


def _replay(env, ctx, block: Block, budget: int, base: int) -> int:
    steps = block.steps
    n = len(steps)
    if budget < n:
        n = budget
    # Batch the whole unit's instruction charge up front; see module
    # docstring for why every observation point still matches single-step.
    env.charge(Event.INSTRUCTION, n)
    i = 0
    try:
        while i < n:
            step = steps[i]
            ctx.rip = step[0]
            step[1](env, ctx)
            i += 1
            if not block.valid:
                # Own store hit the block span: stop where single-step
                # would have re-fetched (possibly modified) bytes.
                break
    except BaseException:
        # Instruction i faulted mid-execution — it *was* charged by the
        # single-step path (charge precedes execution); un-charge only the
        # never-executed tail before the fault becomes observable, and
        # mark the culprit's in-unit (chain-cumulative) index for the
        # scheduler.
        env.unit_retired = base + i + 1
        overshoot = n - i - 1
        if overshoot > 0:
            env.charge(Event.INSTRUCTION, -overshoot)
        raise
    if i < n:
        env.charge(Event.INSTRUCTION, -(n - i))
    return i


def _record(env, ctx, icache, budget: int) -> int:
    entry = ctx.rip
    icache.begin_record(entry)
    steps = []
    executed = 0
    try:
        while True:
            env.unit_retired = executed + 1
            fetch_addr = ctx.rip
            try:
                _raw, insn, fn = icache.fetch_entry(fetch_addr, env.mem_fetch)
            except DecodeError as exc:
                raise InvalidOpcode(fetch_addr, str(exc)) from exc
            single_nop = insn.mnemonic is Mnemonic.NOP and insn.length == 1
            if single_nop and steps:
                # The nop run-slide re-reads memory each execution; end the
                # block here and let the next unit single-step it.
                break
            next_rip = (fetch_addr + insn.length) & _MASK64
            icache.extend_record(next_rip)
            ctx.rip = next_rip
            env.charge(Event.INSTRUCTION)
            fn(env, ctx)
            executed += 1
            if single_nop:
                # Executed as its own one-instruction unit, never recorded.
                return executed
            steps.append((next_rip, fn, insn))
            if insn.mnemonic in BLOCK_TERMINATORS:
                break
            if executed >= budget or len(steps) >= BLOCK_MAX:
                break
    except BaseException:
        icache.end_record()
        raise
    if icache.end_record() and steps:
        # The traced span survived un-invalidated: cache it.  A doomed
        # recording (own store into the span, serializing flush, execve)
        # still *executed* correctly — it just isn't worth caching.
        icache.install_block(Block(entry, steps[-1][0], steps))
    return executed
