"""Single-step instruction semantics for SimX86.

:func:`step` executes exactly one instruction for an execution environment
(duck-typed; implemented by :class:`repro.kernel.process.Thread`):

- ``context`` — a :class:`repro.cpu.state.CpuContext`;
- ``icache`` — this thread's core-local :class:`repro.cpu.icache.ICache`;
- ``mem_fetch(addr, n)`` / ``mem_read(addr, n)`` / ``mem_write(addr, data)``
  — permission-checked memory access (fetch is PKU-exempt);
- ``on_syscall()`` — kernel dispatch for ``syscall``/``sysenter``;
- ``on_hostcall(index)`` — host-callback dispatch for interposer bodies;
- ``charge(event)`` — cycle accounting.

RIP is advanced *before* execution, matching hardware: the kernel sees the
return address in RCX on ``syscall``, and a trampoline entered by
``callq *%rax`` finds the address of the instruction after the rewritten
site on the stack — the exact property zpoline-style handlers rely on.

Instruction semantics live in :mod:`repro.cpu.dispatch` as per-mnemonic
compiled closures; this function and the basic-block replay path
(:mod:`repro.cpu.blocks`) execute the *same* closures, cached per ICache
line, so the two execution modes share one source of truth.

Condition codes model ZF/SF only (no OF/CF); signed comparisons in SimX86
programs must keep operands within ±2^62, which all generated workloads do.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.arch.isa import Instruction
from repro.cpu.cycles import Event
from repro.cpu.dispatch import cond_met as _cond_met  # noqa: F401 (back-compat)
from repro.errors import DecodeError, InvalidOpcode

_MASK64 = (1 << 64) - 1


def _burned_index(env) -> None:  # pragma: no cover - placeholder slot
    raise InvalidOpcode(0, "burned hostcall index")


class HostcallRegistry:
    """Maps hostcall indices to Python callables.

    Interposer bodies (signal handler logic, trampoline tails) are registered
    here by library constructors; simulated code reaches them with the
    ``HOSTCALL`` escape instruction.
    """

    def __init__(self) -> None:
        self._handlers: List[Callable] = []
        self._names: Dict[int, str] = {}

    #: Indices whose little-endian encoding would place a ``0F 05``/``0F 34``
    #: byte pair inside the HOSTCALL instruction (e.g. 0x050F → ``0F 05``),
    #: which would perturb byte-scanning experiments.  Burned, never issued.
    _HAZARDOUS_INDICES = frozenset({0x050F, 0x340F})

    def register(self, handler: Callable, name: str = "") -> int:
        """Register *handler*; returns the index to assemble into code."""
        while len(self._handlers) in self._HAZARDOUS_INDICES:
            self._handlers.append(_burned_index)
        index = len(self._handlers)
        self._handlers.append(handler)
        self._names[index] = name or getattr(handler, "__name__", f"host{index}")
        return index

    def get(self, index: int) -> Callable:
        try:
            return self._handlers[index]
        except IndexError:
            raise InvalidOpcode(0, f"unregistered hostcall {index}") from None

    def name(self, index: int) -> str:
        return self._names.get(index, f"host{index}")

    def __len__(self) -> int:
        return len(self._handlers)


def step(env) -> Instruction:
    """Execute one instruction; returns it (for tracing)."""
    ctx = env.context
    fetch_addr = ctx.rip
    try:
        _raw, insn, fn = env.icache.fetch_entry(fetch_addr, env.mem_fetch)
    except DecodeError as exc:
        raise InvalidOpcode(fetch_addr, str(exc)) from exc

    ctx.rip = (fetch_addr + insn.length) & _MASK64
    env.charge(Event.INSTRUCTION)
    fn(env, ctx)
    return insn
