"""Single-step instruction semantics for SimX86.

:func:`step` executes exactly one instruction for an execution environment
(duck-typed; implemented by :class:`repro.kernel.process.Thread`):

- ``context`` — a :class:`repro.cpu.state.CpuContext`;
- ``icache`` — this thread's core-local :class:`repro.cpu.icache.ICache`;
- ``mem_fetch(addr, n)`` / ``mem_read(addr, n)`` / ``mem_write(addr, data)``
  — permission-checked memory access (fetch is PKU-exempt);
- ``on_syscall()`` — kernel dispatch for ``syscall``/``sysenter``;
- ``on_hostcall(index)`` — host-callback dispatch for interposer bodies;
- ``charge(event)`` — cycle accounting.

RIP is advanced *before* execution, matching hardware: the kernel sees the
return address in RCX on ``syscall``, and a trampoline entered by
``callq *%rax`` finds the address of the instruction after the rewritten
site on the stack — the exact property zpoline-style handlers rely on.

Condition codes model ZF/SF only (no OF/CF); signed comparisons in SimX86
programs must keep operands within ±2^62, which all generated workloads do.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List

from repro.arch.isa import Cond, Instruction, Mnemonic
from repro.arch.registers import Reg
from repro.cpu.cycles import Event
from repro.errors import Breakpoint, DecodeError, Halt, InvalidOpcode

_MASK64 = (1 << 64) - 1


def _burned_index(env) -> None:  # pragma: no cover - placeholder slot
    raise InvalidOpcode(0, "burned hostcall index")


class HostcallRegistry:
    """Maps hostcall indices to Python callables.

    Interposer bodies (signal handler logic, trampoline tails) are registered
    here by library constructors; simulated code reaches them with the
    ``HOSTCALL`` escape instruction.
    """

    def __init__(self) -> None:
        self._handlers: List[Callable] = []
        self._names: Dict[int, str] = {}

    #: Indices whose little-endian encoding would place a ``0F 05``/``0F 34``
    #: byte pair inside the HOSTCALL instruction (e.g. 0x050F → ``0F 05``),
    #: which would perturb byte-scanning experiments.  Burned, never issued.
    _HAZARDOUS_INDICES = frozenset({0x050F, 0x340F})

    def register(self, handler: Callable, name: str = "") -> int:
        """Register *handler*; returns the index to assemble into code."""
        while len(self._handlers) in self._HAZARDOUS_INDICES:
            self._handlers.append(_burned_index)
        index = len(self._handlers)
        self._handlers.append(handler)
        self._names[index] = name or getattr(handler, "__name__", f"host{index}")
        return index

    def get(self, index: int) -> Callable:
        try:
            return self._handlers[index]
        except IndexError:
            raise InvalidOpcode(0, f"unregistered hostcall {index}") from None

    def name(self, index: int) -> str:
        return self._names.get(index, f"host{index}")

    def __len__(self) -> int:
        return len(self._handlers)


def _cond_met(cond: Cond, flags) -> bool:
    if cond is Cond.E:
        return flags.zf
    if cond is Cond.NE:
        return not flags.zf
    if cond is Cond.L:
        return flags.sf
    if cond is Cond.GE:
        return not flags.sf
    if cond is Cond.LE:
        return flags.zf or flags.sf
    if cond is Cond.G:
        return not (flags.zf or flags.sf)
    if cond is Cond.S:
        return flags.sf
    if cond is Cond.NS:
        return not flags.sf
    raise InvalidOpcode(0, f"unsupported condition {cond.name}")


def step(env) -> Instruction:
    """Execute one instruction; returns it (for tracing)."""
    ctx = env.context
    fetch_addr = ctx.rip
    try:
        insn = env.icache.fetch(fetch_addr, env.mem_fetch)
    except DecodeError as exc:
        raise InvalidOpcode(fetch_addr, str(exc)) from exc

    ctx.rip = (ctx.rip + insn.length) & _MASK64
    env.charge(Event.INSTRUCTION)
    m = insn.mnemonic

    if m in (Mnemonic.NOP, Mnemonic.ENDBR64):
        # Interpreter optimization: consume runs of single-byte nops in one
        # step (the trampoline sled at address 0 is up to 512 of them).
        # Semantics are identical — nops have no side effects.  The run is
        # charged as a single retired instruction: nop-sled traversal cost
        # is modelled by the TRAMPOLINE_SLED event the interposer handlers
        # charge (matching zpoline's jump-optimized trampoline, whose
        # traversal cost is near-constant in the landing offset).
        if insn.length == 1:
            while True:
                lookahead = b""
                for span in (64, 16, 4, 1):  # degrade at page boundaries
                    try:
                        lookahead = env.mem_fetch(ctx.rip, span)
                        break
                    except Exception:
                        continue
                run = 0
                while run < len(lookahead) and lookahead[run] == 0x90:
                    run += 1
                if run == 0:
                    break
                ctx.rip = (ctx.rip + run) & _MASK64
                if run < len(lookahead):
                    break

    elif m is Mnemonic.MOV_RI:
        ctx.set(insn.reg, insn.imm)

    elif m is Mnemonic.MOV_RR:
        ctx.set(insn.reg, ctx.get(insn.rm))

    elif m is Mnemonic.MOV_LOAD:
        raw = env.mem_read(ctx.get(insn.rm), 8)
        ctx.set(insn.reg, struct.unpack("<Q", raw)[0])

    elif m is Mnemonic.MOV_STORE:
        _store(env, ctx.get(insn.rm), struct.pack("<Q", ctx.get(insn.reg)))

    elif m is Mnemonic.MOV_LOAD8:
        raw = env.mem_read(ctx.get(insn.rm), 1)
        ctx.set(insn.reg, raw[0])

    elif m is Mnemonic.MOV_STORE8:
        _store(env, ctx.get(insn.rm), bytes([ctx.get(insn.reg) & 0xFF]))

    elif m is Mnemonic.LEA_RIP:
        ctx.set(insn.reg, (ctx.rip + insn.rel) & _MASK64)

    elif m is Mnemonic.ADD_RR:
        result = ctx.get(insn.reg) + ctx.get(insn.rm)
        ctx.set(insn.reg, result)
        ctx.flags.set_from_result(result)

    elif m is Mnemonic.SUB_RR:
        result = ctx.get(insn.reg) - ctx.get(insn.rm)
        ctx.set(insn.reg, result)
        ctx.flags.set_from_result(result)

    elif m is Mnemonic.CMP_RR:
        ctx.flags.set_from_result(ctx.get(insn.reg) - ctx.get(insn.rm))

    elif m is Mnemonic.XOR_RR:
        result = ctx.get(insn.reg) ^ ctx.get(insn.rm)
        ctx.set(insn.reg, result)
        ctx.flags.set_from_result(result)

    elif m is Mnemonic.TEST_RR:
        ctx.flags.set_from_result(ctx.get(insn.reg) & ctx.get(insn.rm))

    elif m is Mnemonic.ADD_RI:
        result = ctx.get(insn.reg) + insn.imm
        ctx.set(insn.reg, result)
        ctx.flags.set_from_result(result)

    elif m is Mnemonic.SUB_RI:
        result = ctx.get(insn.reg) - insn.imm
        ctx.set(insn.reg, result)
        ctx.flags.set_from_result(result)

    elif m is Mnemonic.CMP_RI:
        ctx.flags.set_from_result(ctx.get(insn.reg) - insn.imm)

    elif m is Mnemonic.INC:
        result = ctx.get(insn.reg) + 1
        ctx.set(insn.reg, result)
        ctx.flags.set_from_result(result)

    elif m is Mnemonic.DEC:
        result = ctx.get(insn.reg) - 1
        ctx.set(insn.reg, result)
        ctx.flags.set_from_result(result)

    elif m is Mnemonic.PUSH:
        _push(env, ctx.get(insn.reg))

    elif m is Mnemonic.POP:
        ctx.set(insn.reg, _pop(env))

    elif m is Mnemonic.JMP_REL:
        ctx.rip = (ctx.rip + insn.rel) & _MASK64

    elif m is Mnemonic.JCC_REL:
        if _cond_met(insn.cond, ctx.flags):
            ctx.rip = (ctx.rip + insn.rel) & _MASK64

    elif m is Mnemonic.CALL_REL:
        _push(env, ctx.rip)
        ctx.rip = (ctx.rip + insn.rel) & _MASK64

    elif m is Mnemonic.CALL_REG:
        _push(env, ctx.rip)
        ctx.rip = ctx.get(insn.reg)

    elif m is Mnemonic.JMP_REG:
        ctx.rip = ctx.get(insn.reg)

    elif m is Mnemonic.RET:
        ctx.rip = _pop(env)

    elif m in (Mnemonic.SYSCALL, Mnemonic.SYSENTER):
        env.on_syscall()

    elif m is Mnemonic.HOSTCALL:
        env.on_hostcall(insn.hostcall)

    elif m in (Mnemonic.CPUID, Mnemonic.MFENCE):
        # Serializing: this core discards any stale decoded lines.
        env.icache.flush_all()

    elif m is Mnemonic.INT3:
        raise Breakpoint(fetch_addr)

    elif m is Mnemonic.UD2:
        raise InvalidOpcode(fetch_addr, "ud2")

    elif m is Mnemonic.HLT:
        raise Halt(f"hlt in user mode at {fetch_addr:#x}")

    else:  # pragma: no cover - table is exhaustive
        raise InvalidOpcode(fetch_addr, f"unimplemented {m}")

    return insn


def _store(env, addr: int, data: bytes) -> None:
    env.mem_write(addr, data)
    # x86 local coherence: the storing core sees its own modification.
    env.icache.invalidate_range(addr, len(data))


def _push(env, value: int) -> None:
    ctx = env.context
    rsp = (ctx.get(Reg.RSP) - 8) & _MASK64
    ctx.set(Reg.RSP, rsp)
    env.mem_write(rsp, struct.pack("<Q", value & _MASK64))


def _pop(env) -> int:
    ctx = env.context
    rsp = ctx.get(Reg.RSP)
    value = struct.unpack("<Q", env.mem_read(rsp, 8))[0]
    ctx.set(Reg.RSP, (rsp + 8) & _MASK64)
    return value
