"""Architectural register state for one hardware thread."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.arch.registers import Reg, SYSCALL_ARG_REGS
from repro.memory.pku import Pkru

_MASK64 = (1 << 64) - 1


@dataclass(slots=True)
class Flags:
    """The two status flags the SimX86 subset observes."""

    zf: bool = False
    sf: bool = False

    def set_from_result(self, value: int) -> None:
        value &= _MASK64
        self.zf = value == 0
        self.sf = bool(value >> 63)

    def copy(self) -> "Flags":
        return Flags(self.zf, self.sf)


class CpuContext:
    """Registers + flags + PKRU for one simulated thread.

    This is the state a SIGSYS ``ucontext`` exposes and that ``ptrace``'s
    GETREGS/SETREGS reads and writes, so interposers can manipulate it the
    same way their native counterparts do.
    """

    __slots__ = ("_regs", "rip", "flags", "pkru")

    def __init__(self) -> None:
        self._regs: List[int] = [0] * 16
        self.rip: int = 0
        self.flags = Flags()
        self.pkru = Pkru()

    # -- register access -----------------------------------------------------

    def get(self, reg: Reg) -> int:
        return self._regs[reg]

    def set(self, reg: Reg, value: int) -> None:
        self._regs[reg] = value & _MASK64

    def __getitem__(self, reg: Reg) -> int:
        return self.get(reg)

    def __setitem__(self, reg: Reg, value: int) -> None:
        self.set(reg, value)

    # -- syscall ABI helpers ----------------------------------------------------

    @property
    def syscall_number(self) -> int:
        return self._regs[0]  # Reg.RAX — direct index, hot on every syscall

    def syscall_args(self, count: int = 6) -> List[int]:
        """Arguments per the x86-64 syscall ABI (rdi, rsi, rdx, r10, r8, r9)."""
        regs = self._regs
        return [regs[reg] for reg in SYSCALL_ARG_REGS[:count]]

    def set_syscall_result(self, value: int) -> None:
        """Store a (possibly negative-errno) result into RAX."""
        self._regs[0] = value & _MASK64

    # -- snapshots (signal frames / ptrace GETREGS) --------------------------------

    def save(self) -> Dict:
        """Snapshot for a signal frame or ptrace GETREGS."""
        return {
            "regs": list(self._regs),
            "rip": self.rip,
            "flags": self.flags.copy(),
            "pkru": self.pkru.copy(),
        }

    def restore(self, snapshot: Dict) -> None:
        """Restore a snapshot (``rt_sigreturn`` / ptrace SETREGS)."""
        self._regs = list(snapshot["regs"])
        self.rip = snapshot["rip"]
        self.flags = snapshot["flags"].copy()
        self.pkru = snapshot["pkru"].copy()

    def copy(self) -> "CpuContext":
        clone = CpuContext()
        clone.restore(self.save())
        return clone

    def __repr__(self) -> str:
        named = ", ".join(
            f"{Reg(i).name.lower()}={v:#x}" for i, v in enumerate(self._regs) if v
        )
        return f"CpuContext(rip={self.rip:#x}, {named})"
