"""Trace compiler: superblocks → ``exec``'d Python functions.

:func:`compile_superblock` turns a hot :class:`repro.cpu.engine.Superblock`
into one flat Python function that performs the same architectural steps
as interpreted replay, minus the per-instruction overhead:

- register and flag updates are inlined (``r[3] = (r[3] + r[5]) & M``
  instead of a closure call through ``ctx.get``/``ctx.set``);
- RIP is *deferred*: every step's post-advance RIP is a compile-time
  constant, so ``ctx.rip`` is materialized only where it is observable —
  before any call that can fault or observe state (memory slow paths,
  syscalls, hostcalls, the faulting trio) and at every exit;
- memory accesses try an inline-cached single-page fast path first,
  seeded from :meth:`repro.memory.address_space.AddressSpace.page_entry`
  (generation-checked ``(gen, page, prot_int, pkey)`` entries with PKU as
  integer bit math), falling back to the environment's own
  ``mem_read``/``mem_write`` — which raise the exact fault the
  interpreter would — on any miss;
- conditional branches compile into the guard structure directly: the
  recorded direction falls through into the next segment's code, the
  other direction materializes RIP and returns the retire count, so a
  guard failure *is* just an early return (the caller un-charges the
  tail and the interpreter resumes).

Fault accounting contract with :func:`repro.cpu.engine.run_superblock`:
before every step that can raise, the generated code sets
``env.unit_retired = base + k + 1`` (*k* the 0-based step index), so the
caller's un-charge and the scheduler's retire attribution match the
per-block replay path bit-for-bit.

Compilation is *best-effort*: any construct outside the supported subset
(an unsupported condition code, a missing ``env.mem_space``) returns
``False`` and the superblock simply stays interpreted.
"""

from __future__ import annotations

import struct
from typing import List

from repro.arch.isa import Cond, Mnemonic
from repro.errors import Breakpoint, Halt, InvalidOpcode

_MASK64 = (1 << 64) - 1
_M_HEX = "0xffffffffffffffff"
_SIGN_HEX = "0x8000000000000000"
_PACK_Q = struct.Struct("<Q").pack
_UNPACK_Q = struct.Struct("<Q").unpack

#: Condition → Python expression over the bound ``f`` (flags) local.
#: Mirrors :func:`repro.cpu.dispatch.cond_met`; conditions it raises
#: InvalidOpcode for are simply not compiled (the interpreter raises).
_COND_EXPR = {
    Cond.E: "f.zf",
    Cond.NE: "not f.zf",
    Cond.L: "f.sf",
    Cond.GE: "not f.sf",
    Cond.LE: "f.zf or f.sf",
    Cond.G: "not (f.zf or f.sf)",
    Cond.S: "f.sf",
    Cond.NS: "not f.sf",
}


class _Unsupported(Exception):
    """Raised by the generator to decline compilation."""


class _Emitter:
    def __init__(self):
        self.lines: List[str] = []

    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def source(self) -> str:
        """Assemble the function, binding only the locals the body uses
        (a register-only trace skips the flags/PKU/page-cache prologue)."""
        body = "\n".join(self.lines)
        header = ["def _trace(env, ctx, base):"]
        if "r[" in body:
            header.append("    r = ctx._regs")
        if "f.zf" in body or "f.sf" in body:
            header.append("    f = ctx.flags")
        if "pk.value" in body:
            header.append("    pk = ctx.pkru")
        if "pe(" in body:
            header.append("    pe = env.mem_space.page_entry")
        return "\n".join(header) + "\n" + body + "\n"


def _flags_result(out: _Emitter, expr: str) -> None:
    """``_v = (expr) & M`` plus the ZF/SF update of ``set_from_result``."""
    out.emit(f"_v = ({expr}) & {_M_HEX}")
    out.emit("f.zf = _v == 0")
    out.emit(f"f.sf = _v >= {_SIGN_HEX}")


def _read(out: _Emitter, addr_expr: str, dest: str, size: int,
          k: int, next_rip: int) -> None:
    """Inline-cached read of *size* bytes into *dest* (a local or reg)."""
    out.emit(f"a = {addr_expr}")
    out.emit("e = pe(a >> 12)")
    if size == 1:
        out.emit("if e is not None and e[2] & 1 and "
                 "not (pk.value >> (e[3] << 1)) & 1:")
        out.emit(f"    {dest} = e[1][a & 4095]")
        out.emit("else:")
        out.emit(f"    ctx.rip = {next_rip:#x}")
        out.emit(f"    env.unit_retired = base + {k + 1}")
        out.emit(f"    {dest} = env.mem_read(a, 1)[0]")
        return
    out.emit("if e is not None and e[2] & 1 and "
             "not (pk.value >> (e[3] << 1)) & 1 and a & 4095 <= 4088:")
    out.emit("    o = a & 4095")
    out.emit(f"    {dest} = _unpack(e[1][o:o + 8])[0]")
    out.emit("else:")
    out.emit(f"    ctx.rip = {next_rip:#x}")
    out.emit(f"    env.unit_retired = base + {k + 1}")
    out.emit(f"    {dest} = _unpack(env.mem_read(a, 8))[0]")


def _write(out: _Emitter, addr_expr: str, value_expr: str, size: int,
           k: int, next_rip: int) -> None:
    """Inline-cached write (``env.mem_write`` semantics, no icache side)."""
    out.emit(f"a = {addr_expr}")
    out.emit("e = pe(a >> 12)")
    if size == 1:
        out.emit("if e is not None and e[2] & 2 and "
                 "not (pk.value >> (e[3] << 1)) & 3:")
        out.emit(f"    e[1][a & 4095] = {value_expr} & 255")
        out.emit("else:")
        out.emit(f"    ctx.rip = {next_rip:#x}")
        out.emit(f"    env.unit_retired = base + {k + 1}")
        out.emit(f"    env.mem_write(a, bytes(({value_expr} & 255,)))")
        return
    out.emit("if e is not None and e[2] & 2 and "
             "not (pk.value >> (e[3] << 1)) & 3 and a & 4095 <= 4088:")
    out.emit("    o = a & 4095")
    out.emit(f"    e[1][o:o + 8] = _pack({value_expr})")
    out.emit("else:")
    out.emit(f"    ctx.rip = {next_rip:#x}")
    out.emit(f"    env.unit_retired = base + {k + 1}")
    out.emit(f"    env.mem_write(a, _pack({value_expr}))")


def _push(out: _Emitter, value_expr: str, k: int, next_rip: int) -> None:
    """``_push`` semantics: RSP updated first, then the (fallible) write."""
    out.emit(f"_v = {value_expr}")
    out.emit(f"a = (r[4] - 8) & {_M_HEX}")
    out.emit("r[4] = a")
    out.emit("e = pe(a >> 12)")
    out.emit("if e is not None and e[2] & 2 and "
             "not (pk.value >> (e[3] << 1)) & 3 and a & 4095 <= 4088:")
    out.emit("    o = a & 4095")
    out.emit("    e[1][o:o + 8] = _pack(_v)")
    out.emit("else:")
    out.emit(f"    ctx.rip = {next_rip:#x}")
    out.emit(f"    env.unit_retired = base + {k + 1}")
    out.emit("    env.mem_write(a, _pack(_v))")


def _pop(out: _Emitter, k: int, next_rip: int) -> None:
    """``_pop`` semantics into ``_v``: read at RSP, then RSP += 8."""
    _read(out, "r[4]", "_v", 8, k, next_rip)
    out.emit(f"r[4] = (a + 8) & {_M_HEX}")


def compile_superblock(sb, env):
    """Compile *sb* to a trace function, or ``False`` if declined."""
    if getattr(env, "mem_space", None) is None:
        return False
    try:
        source = _generate(sb)
    except _Unsupported:
        return False
    namespace = {"_pack": _PACK_Q, "_unpack": _UNPACK_Q,
                 "_Breakpoint": Breakpoint, "_InvalidOpcode": InvalidOpcode,
                 "_Halt": Halt, "_sb": sb}
    exec(compile(source, f"<trace:{sb.entry:#x}>", "exec"), namespace)
    trace = namespace["_trace"]
    trace.__source__ = source  # introspection/debugging
    return trace


def _generate(sb) -> str:
    out = _Emitter()
    n = sb.n_steps
    k = 0
    segments = sb.blocks
    for seg_index, block in enumerate(segments):
        last_block = seg_index + 1 == len(segments)
        next_entry = None if last_block else segments[seg_index + 1].entry
        steps = block.steps
        for step_index, (next_rip, _fn, insn) in enumerate(steps):
            terminal = step_index + 1 == len(steps)
            _emit_step(out, insn, next_rip, k, n,
                       terminal=terminal, last_block=last_block,
                       next_entry=next_entry)
            k += 1
    return out.source()


def _emit_step(out: _Emitter, insn, next_rip: int, k: int, n: int, *,
               terminal: bool, last_block: bool, next_entry) -> None:
    m = insn.mnemonic
    K = k + 1
    reg = int(insn.reg) if insn.reg is not None else None
    rm = int(insn.rm) if insn.rm is not None else None

    if m is Mnemonic.NOP or m is Mnemonic.ENDBR64:
        # Multi-byte nop/endbr64 only — the single-byte nop's run-slide is
        # never recorded into a block (repro.cpu.blocks).
        pass
    elif m is Mnemonic.MOV_RI:
        out.emit(f"r[{reg}] = {insn.imm & _MASK64:#x}")
    elif m is Mnemonic.MOV_RR:
        out.emit(f"r[{reg}] = r[{rm}]")
    elif m is Mnemonic.LEA_RIP:
        out.emit(f"r[{reg}] = {(next_rip + insn.rel) & _MASK64:#x}")
    elif m is Mnemonic.ADD_RR:
        _flags_result(out, f"r[{reg}] + r[{rm}]")
        out.emit(f"r[{reg}] = _v")
    elif m is Mnemonic.SUB_RR:
        _flags_result(out, f"r[{reg}] - r[{rm}]")
        out.emit(f"r[{reg}] = _v")
    elif m is Mnemonic.XOR_RR:
        _flags_result(out, f"r[{reg}] ^ r[{rm}]")
        out.emit(f"r[{reg}] = _v")
    elif m is Mnemonic.ADD_RI:
        _flags_result(out, f"r[{reg}] + {insn.imm & _MASK64:#x}")
        out.emit(f"r[{reg}] = _v")
    elif m is Mnemonic.SUB_RI:
        _flags_result(out, f"r[{reg}] - {insn.imm & _MASK64:#x}")
        out.emit(f"r[{reg}] = _v")
    elif m is Mnemonic.INC:
        _flags_result(out, f"r[{reg}] + 1")
        out.emit(f"r[{reg}] = _v")
    elif m is Mnemonic.DEC:
        _flags_result(out, f"r[{reg}] - 1")
        out.emit(f"r[{reg}] = _v")
    elif m is Mnemonic.CMP_RR:
        _flags_result(out, f"r[{reg}] - r[{rm}]")
    elif m is Mnemonic.CMP_RI:
        _flags_result(out, f"r[{reg}] - {insn.imm & _MASK64:#x}")
    elif m is Mnemonic.TEST_RR:
        _flags_result(out, f"r[{reg}] & r[{rm}]")
    elif m is Mnemonic.MOV_LOAD:
        _read(out, f"r[{rm}]", f"r[{reg}]", 8, k, next_rip)
    elif m is Mnemonic.MOV_LOAD8:
        _read(out, f"r[{rm}]", f"r[{reg}]", 1, k, next_rip)
    elif m is Mnemonic.MOV_STORE:
        _write(out, f"r[{rm}]", f"r[{reg}]", 8, k, next_rip)
        _after_store(out, K, n, next_rip, terminal and last_block, 8)
    elif m is Mnemonic.MOV_STORE8:
        _write(out, f"r[{rm}]", f"r[{reg}]", 1, k, next_rip)
        _after_store(out, K, n, next_rip, terminal and last_block, 1)
    elif m is Mnemonic.PUSH:
        _push(out, f"r[{reg}]", k, next_rip)
    elif m is Mnemonic.POP:
        _pop(out, k, next_rip)
        out.emit(f"r[{reg}] = _v")
    elif m is Mnemonic.JMP_REL:
        target = (next_rip + insn.rel) & _MASK64
        if last_block and terminal:
            out.emit(f"ctx.rip = {target:#x}")
            out.emit(f"return {n}")
        # Internal direct edge: the next segment *is* the target.
    elif m is Mnemonic.CALL_REL:
        target = (next_rip + insn.rel) & _MASK64
        _push(out, f"{next_rip:#x}", k, next_rip)
        if last_block and terminal:
            out.emit(f"ctx.rip = {target:#x}")
            out.emit(f"return {n}")
    elif m is Mnemonic.JCC_REL:
        cond = _COND_EXPR.get(insn.cond)
        if cond is None:
            raise _Unsupported(f"condition {insn.cond!r}")
        taken = (next_rip + insn.rel) & _MASK64
        if last_block and terminal:
            out.emit(f"if {cond}:")
            out.emit(f"    ctx.rip = {taken:#x}")
            out.emit(f"    return {n}")
            out.emit(f"ctx.rip = {next_rip:#x}")
            out.emit(f"return {n}")
        elif next_entry == taken and taken == next_rip:
            pass  # both directions land on the next segment
        elif next_entry == taken:
            out.emit(f"if not ({cond}):")
            out.emit("    env.icache.guard_fails += 1")
            out.emit(f"    ctx.rip = {next_rip:#x}")
            out.emit(f"    return {K}")
        elif next_entry == next_rip:
            out.emit(f"if {cond}:")
            out.emit("    env.icache.guard_fails += 1")
            out.emit(f"    ctx.rip = {taken:#x}")
            out.emit(f"    return {K}")
        else:
            raise _Unsupported("conditional edge matches neither direction")
    elif m is Mnemonic.RET:
        _pop(out, k, next_rip)
        out.emit("ctx.rip = _v")
        out.emit(f"return {n}")
    elif m is Mnemonic.JMP_REG:
        out.emit(f"ctx.rip = r[{reg}]")
        out.emit(f"return {n}")
    elif m is Mnemonic.CALL_REG:
        _push(out, f"{next_rip:#x}", k, next_rip)
        out.emit(f"ctx.rip = r[{reg}]")
        out.emit(f"return {n}")
    elif m is Mnemonic.SYSCALL or m is Mnemonic.SYSENTER:
        out.emit(f"ctx.rip = {next_rip:#x}")
        out.emit(f"env.unit_retired = base + {K}")
        out.emit("env.on_syscall()")
        out.emit(f"return {n}")
    elif m is Mnemonic.HOSTCALL:
        out.emit(f"ctx.rip = {next_rip:#x}")
        out.emit(f"env.unit_retired = base + {K}")
        out.emit(f"env.on_hostcall({insn.hostcall})")
        out.emit(f"return {n}")
    elif m is Mnemonic.CPUID or m is Mnemonic.MFENCE:
        out.emit(f"ctx.rip = {next_rip:#x}")
        out.emit("env.icache.flush_all()")
        out.emit(f"return {n}")
    elif m is Mnemonic.INT3:
        out.emit(f"ctx.rip = {next_rip:#x}")
        out.emit(f"env.unit_retired = base + {K}")
        out.emit(f"raise _Breakpoint({(next_rip - insn.length) & _MASK64:#x})")
    elif m is Mnemonic.UD2:
        out.emit(f"ctx.rip = {next_rip:#x}")
        out.emit(f"env.unit_retired = base + {K}")
        out.emit(f"raise _InvalidOpcode("
                 f"{(next_rip - insn.length) & _MASK64:#x}, 'ud2')")
    elif m is Mnemonic.HLT:
        addr = (next_rip - insn.length) & _MASK64
        out.emit(f"ctx.rip = {next_rip:#x}")
        out.emit(f"env.unit_retired = base + {K}")
        out.emit(f"raise _Halt('hlt in user mode at {addr:#x}')")
    else:
        raise _Unsupported(f"mnemonic {m!r}")

    # A fall-through cut (no terminator) ending the superblock: exit with
    # the architecturally-correct RIP.  Internal fall-throughs continue
    # straight into the next segment (its entry == this step's next_rip).
    if terminal and last_block and m not in _EXITING:
        out.emit(f"ctx.rip = {next_rip:#x}")
        out.emit(f"return {n}")


def _after_store(out: _Emitter, K: int, n: int, next_rip: int,
                 exiting: bool, size: int) -> None:
    """The ``_store`` tail: local icache coherence, then bail if the
    store doomed this superblock (hit its own span)."""
    out.emit(f"env.icache.invalidate_range(a, {size})")
    if not exiting and K < n:
        out.emit("if not _sb.valid:")
        out.emit(f"    ctx.rip = {next_rip:#x}")
        out.emit(f"    return {K}")


#: Mnemonics whose emitted code always returns (no fall-through epilogue).
_EXITING = frozenset({
    Mnemonic.JMP_REL, Mnemonic.CALL_REL, Mnemonic.JCC_REL, Mnemonic.RET,
    Mnemonic.JMP_REG, Mnemonic.CALL_REG, Mnemonic.SYSCALL,
    Mnemonic.SYSENTER, Mnemonic.HOSTCALL, Mnemonic.CPUID, Mnemonic.MFENCE,
    Mnemonic.INT3, Mnemonic.UD2, Mnemonic.HLT,
})
