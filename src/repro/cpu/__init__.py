"""CPU substrate: interpreter, instruction cache, and the cycle-cost model.

- :mod:`repro.cpu.state` — architectural register state per hardware thread.
- :mod:`repro.cpu.icache` — per-core instruction cache with *explicit*
  invalidation only: cross-modifying code that skips the flush/serialize
  protocol executes stale or torn instructions, which is how pitfall P5
  manifests here exactly as on real silicon.
- :mod:`repro.cpu.cycles` — the event-based cost model behind every
  performance number in Tables 5 and 6 (see DESIGN.md §4 for calibration).
- :mod:`repro.cpu.core` — single-step instruction semantics.
"""

from repro.cpu.state import CpuContext, Flags
from repro.cpu.icache import ICache
from repro.cpu.cycles import CycleModel, Event
from repro.cpu.core import HostcallRegistry, step

__all__ = [
    "CpuContext",
    "Flags",
    "ICache",
    "CycleModel",
    "Event",
    "HostcallRegistry",
    "step",
]
