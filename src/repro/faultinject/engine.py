"""The fault-injection engine: executes a :class:`FaultSchedule` against a
running :class:`repro.kernel.Kernel`.

The engine attaches as ``kernel.fault_injector`` and receives callbacks
from the kernel's hook points (syscall entry/exit, unit and quantum
boundaries, signal delivery, icache shootdowns, page-permission changes,
preemption windows).  All triggering state is *occurrence counting* —
"the 7th app-requested syscall", "the 3rd preemption window", "retired
instruction 12 000" — never wall-clock or host randomness, so a given
(seed, config, workload, mechanism) tuple replays bit-identically, with
the block cache on or off.

Two counting subtleties keep schedules mechanism-invariant:

- Only *main-phase* activity counts (``process.premain_log_len > 0``):
  loader and interposer-constructor syscalls differ per mechanism and
  would otherwise misalign occurrence indices between a mechanism run and
  the null-interposer oracle.
- Timer syscalls are exempt (:data:`~repro.faultinject.schedule.COUNT_EXEMPT`):
  K23 disables the vDSO, so counting ``clock_gettime`` would shift every
  later index on K23 only.

Instruction-count triggers respect the block cache by **dooming replay at
the trigger point**: :meth:`FaultInjector.clip_budget` caps each unit's
budget at the distance to the next trigger, so a recorded block is cut
short (replayed partially, with the overshoot un-charged) and the unit
boundary lands exactly on the scheduled count — the same retire position
the single-step interpreter reaches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cpu.cycles import Event
from repro.errors import MapError, SegmentationFault
from repro.observability.events import FaultInjected
from repro.faultinject.schedule import (COUNT_EXEMPT, Fault, FaultConfig,
                                        FaultSchedule)
from repro.kernel.syscalls import (Nr, SIGNAL_NAMES,
                                   SYSCALL_DISPATCH_FILTER_ALLOW,
                                   SYSCALL_DISPATCH_FILTER_BLOCK)
from repro.memory.pages import Prot, round_up_pages


class FaultInjector:
    """Drives one schedule against one kernel (attach-on-construct).

    Attributes:
        log: human-readable record of every injection actually performed,
            in order.  Because all triggers are occurrence-based, this log
            is itself a determinism artifact: two runs of the same cell
            must produce identical logs.
    """

    def __init__(self, kernel, schedule: FaultSchedule,
                 main_phase_only: bool = True):
        self.kernel = kernel
        self.schedule = schedule
        self.config: FaultConfig = schedule.config
        self.main_phase_only = main_phase_only
        self.log: List[str] = []
        # Occurrence counters (all main-phase).
        self.app_calls = 0        # app-requested syscalls executed
        self.entries = 0          # raw kernel entries of SUD-armed threads
        self.windows = 0          # preemption windows opened
        self.quanta = 0           # scheduler turns completed
        self.flushes = 0          # icache shootdowns
        self.prot_changes = 0     # page-permission changes
        self.signals_seen = 0     # deliveries observed (any signal)
        self._errno_draws = schedule.errno_draws
        self._exit_faults = self._index("syscall-exit")
        self._entry_faults = self._index("syscall-entry")
        self._quantum_faults = self._index("quantum")
        self._window_faults = self._index("window")
        self._flush_faults = self._index("icache-flush")
        self._prot_faults = self._index("prot-change")
        self._insn_faults = sorted(schedule.by_trigger("insn"),
                                   key=lambda f: f.at)
        self._insn_idx = 0
        self._selector_restore: Optional[Tuple[object, int, int]] = None
        kernel.fault_injector = self

    def _note(self, text: str, thread=None, process=None) -> None:
        """Record one performed injection: append to the determinism log
        and publish it on the kernel's instrumentation bus."""
        self.log.append(text)
        bus = self.kernel.bus
        if bus.enabled:
            pid = tid = 0
            if thread is not None:
                pid, tid = thread.process.pid, thread.tid
            elif process is not None:
                pid = process.pid
            bus.emit(FaultInjected(ts=self.kernel.cycles.cycles, pid=pid,
                                   tid=tid, description=text))

    def detach(self) -> None:
        if self.kernel.fault_injector is self:
            self.kernel.fault_injector = None

    def _index(self, trigger: str) -> Dict[int, List[Fault]]:
        index: Dict[int, List[Fault]] = {}
        for fault in self.schedule.by_trigger(trigger):
            index.setdefault(fault.at, []).append(fault)
        return index

    def _main_phase(self, process) -> bool:
        return not self.main_phase_only or process.premain_log_len > 0

    def _insn_count(self) -> int:
        return self.kernel.cycles.counts[Event.INSTRUCTION]

    # ------------------------------------------------------------ syscalls

    def on_syscall_entry(self, thread, nr: int, site: int) -> None:
        """Raw kernel entry, before SUD reads the selector byte."""
        self._restore_selector()
        if not self._main_phase(thread.process):
            return
        sud = thread.sud
        if not (sud.enabled and sud.selector_addr):
            return
        at = self.entries
        self.entries += 1
        for fault in self._entry_faults.get(at, ()):
            self._flip_selector(thread, fault, at, nr)

    def _flip_selector(self, thread, fault: Fault, at: int, nr: int) -> None:
        """The check-to-entry race: the selector byte changes after the
        interposer last looked at it but before the kernel reads it."""
        space = thread.process.address_space
        addr = thread.sud.selector_addr
        try:
            current = space.read_kernel(addr, 1)[0]
        except SegmentationFault:
            return
        if fault.action == "selector-flip":
            wanted = SYSCALL_DISPATCH_FILTER_ALLOW
            if current != SYSCALL_DISPATCH_FILTER_BLOCK:
                return
        elif fault.action == "selector-block":
            wanted = SYSCALL_DISPATCH_FILTER_BLOCK
            if current != SYSCALL_DISPATCH_FILTER_ALLOW:
                return
        else:
            return
        space.write_kernel(addr, bytes([wanted]))
        self._selector_restore = (thread, addr, current)
        self._note(f"{fault.action}@entry{at}: {Nr.name_of(nr)} "
                   f"selector {current}->{wanted}", thread=thread)

    def _restore_selector(self) -> None:
        if self._selector_restore is None:
            return
        thread, addr, value = self._selector_restore
        self._selector_restore = None
        try:
            thread.process.address_space.write_kernel(addr, bytes([value]))
        except SegmentationFault:
            pass

    def transient_errno(self, thread, nr: int, origin: str) -> Optional[int]:
        """Per-occurrence transient-failure decision (the kernel consults
        this from ``do_syscall`` before running the implementation)."""
        if nr in COUNT_EXEMPT or not self._main_phase(thread.process):
            return None
        at = self.app_calls
        self.app_calls += 1
        if at >= len(self._errno_draws):
            return None
        draw, errno = self._errno_draws[at]
        if nr not in self.config.injectable:
            return None
        if draw >= self.config.rate_for(nr):
            return None
        from repro.kernel.syscalls import Errno

        self._note(f"errno@call{at}: {Nr.name_of(nr)} -> "
                   f"-{Errno(errno).name} [{origin}]", thread=thread)
        return errno

    def on_syscall_exit(self, thread, nr: int, origin: str) -> None:
        """Return-to-user after an app-requested call completed."""
        self._restore_selector()
        if nr in COUNT_EXEMPT or not self._main_phase(thread.process):
            return
        at = self.app_calls - 1
        for fault in self._exit_faults.pop(at, ()):
            if fault.action == "signal":
                self._note(
                    f"signal@exit{at}: {SIGNAL_NAMES.get(fault.arg, fault.arg)}"
                    f" after {Nr.name_of(nr)} [{origin}]", thread=thread)
                self.kernel.deliver_signal(thread, fault.arg)

    # --------------------------------------------------- instruction counts

    def clip_budget(self, budget: int) -> int:
        """Cap a unit budget so the unit boundary lands exactly on the next
        scheduled instruction-count trigger (dooms block replay there)."""
        if self._insn_idx >= len(self._insn_faults):
            return budget
        remaining = self._insn_faults[self._insn_idx].at - self._insn_count()
        if remaining <= 0:
            return budget
        return min(budget, remaining)

    def on_unit_boundary(self, thread) -> None:
        """Fires every due instruction-count trigger (both modes reach the
        same counts at unit boundaries, so firing positions are identical
        with the block cache on or off)."""
        if self._insn_idx >= len(self._insn_faults):
            return
        count = self._insn_count()
        while (self._insn_idx < len(self._insn_faults)
               and self._insn_faults[self._insn_idx].at <= count):
            fault = self._insn_faults[self._insn_idx]
            self._insn_idx += 1
            if fault.action == "signal":
                self._note(
                    f"signal@insn{fault.at}: "
                    f"{SIGNAL_NAMES.get(fault.arg, fault.arg)} "
                    f"(count={count})", thread=thread)
                self.kernel.deliver_signal(thread, fault.arg)

    def on_quantum_boundary(self, thread) -> None:
        at = self.quanta
        self.quanta += 1
        for fault in self._quantum_faults.pop(at, ()):
            if fault.action == "signal":
                self._note(
                    f"signal@quantum{at}: "
                    f"{SIGNAL_NAMES.get(fault.arg, fault.arg)}",
                    thread=thread)
                self.kernel.deliver_signal(thread, fault.arg)

    # ------------------------------------------------------ windows / memory

    def on_preemption_window(self, current) -> None:
        """An interposer-critical window opened (e.g. mid two-byte patch):
        the scheduled remote-thread events land here."""
        at = self.windows
        self.windows += 1
        for fault in self._window_faults.pop(at, ()):
            self._apply_window(current, fault, at)

    def _apply_window(self, thread, fault: Fault, at: int) -> None:
        process = thread.process
        space = process.address_space
        try:
            if fault.action == "munmap":
                space.munmap(fault.addr, fault.length)
                self.kernel.icache_shootdown(process, fault.addr,
                                             round_up_pages(fault.length))
                self._note(f"munmap@window{at}: {fault.addr:#x}"
                           f"+{fault.length:#x}", thread=thread)
            elif fault.action == "mprotect":
                space.mprotect(fault.addr, fault.length,
                               Prot(fault.arg & 0x7))
                self.kernel.notify_prot_change(thread, fault.addr,
                                               fault.length, fault.arg & 0x7)
                self._note(f"mprotect@window{at}: {fault.addr:#x}"
                           f"+{fault.length:#x} prot={fault.arg}",
                           thread=thread)
            elif fault.action == "patch":
                # Remote-core store, deliberately with NO shootdown: the
                # victim core keeps executing stale decodes (P5).
                space.write_kernel(fault.addr, fault.data)
                self._note(f"patch@window{at}: {fault.addr:#x} "
                           f"<- {fault.data.hex()}", thread=thread)
            elif fault.action == "signal":
                self._note(
                    f"signal@window{at}: "
                    f"{SIGNAL_NAMES.get(fault.arg, fault.arg)}",
                    thread=thread)
                self.kernel.deliver_signal(thread, fault.arg)
        except (MapError, SegmentationFault) as exc:
            self._note(f"window{at}: {fault.action} failed ({exc})",
                       thread=thread)

    # ------------------------------------------------------- passive counters

    def on_signal(self, thread, signal: int) -> None:
        self.signals_seen += 1

    def on_icache_flush(self, process, start: int, length: int) -> None:
        at = self.flushes
        self.flushes += 1
        for fault in self._flush_faults.pop(at, ()):
            if fault.action == "signal":
                self._note(
                    f"signal@flush{at}: "
                    f"{SIGNAL_NAMES.get(fault.arg, fault.arg)}",
                    process=process)
                self.kernel.deliver_signal(process.main_thread, fault.arg)

    def on_prot_change(self, thread, start: int, length: int,
                       prot: int) -> None:
        at = self.prot_changes
        self.prot_changes += 1
        for fault in self._prot_faults.pop(at, ()):
            if fault.action == "signal":
                self._note(
                    f"signal@prot{at}: "
                    f"{SIGNAL_NAMES.get(fault.arg, fault.arg)}",
                    thread=thread)
                self.kernel.deliver_signal(thread, fault.arg)
