"""Seeded, deterministic fault schedules.

A :class:`FaultSchedule` is the *complete* pre-drawn plan of everything the
injection engine will do to a run: which app-requested syscall occurrences
fail transiently (and with which errno), which syscall exits receive an
async signal, which retired-instruction counts trigger a signal, which SUD
selector flips land between the interposer's check and kernel entry, and
which preemption windows host remote-thread munmap/mprotect/code-patch
events.  Building the schedule consumes a :class:`random.Random` seeded
with one integer and nothing else — the same seed always yields a
byte-identical :meth:`FaultSchedule.encode`, which is what makes every
divergence the conformance harness finds replayable as a regression test.

Trigger kinds (``Fault.trigger``):

``"syscall"``
    the *at*-th main-phase app-requested syscall occurrence (the transient
    errno channel — handled separately via pre-drawn per-occurrence
    uniforms, see :attr:`FaultSchedule.errno_draws`);
``"syscall-entry"``
    the *at*-th raw kernel entry of a SUD-armed thread (selector flips);
``"syscall-exit"``
    return-to-user after the *at*-th app-requested occurrence completes
    (async signal landing sites);
``"insn"``
    the retired-instruction counter reaching *at* — honoured exactly in
    both interpreter modes because the engine clips unit budgets so block
    replay is doomed to end at the trigger point;
``"quantum"``
    the *at*-th end-of-scheduler-turn boundary;
``"window"``
    the *at*-th interposer-critical preemption window (remote-thread
    events);
``"icache-flush"`` / ``"prot-change"``
    the *at*-th icache shootdown / page-permission change.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.kernel.syscalls import Errno, Nr, SIGCHLD

#: Syscalls eligible for transient-failure injection: calls whose callers
#: must already tolerate EINTR/EAGAIN/ENOMEM on real kernels.  Deliberately
#: excludes process/memory management (fork, mmap, munmap, execve...) whose
#: spurious failure changes program *structure*, and the timer calls, whose
#: occurrence counts differ across mechanisms (the vDSO asymmetry: K23
#: disables the vDSO, so clock_gettime becomes a real syscall there).
INJECTABLE_DEFAULT: FrozenSet[int] = frozenset({
    Nr.read, Nr.write, Nr.open, Nr.openat, Nr.close, Nr.lseek, Nr.stat,
    Nr.fstat, Nr.newfstatat, Nr.access, Nr.getdents64, Nr.dup, Nr.fcntl,
    Nr.ioctl, Nr.getcwd, Nr.nanosleep, Nr.futex, Nr.getrandom, Nr.uname,
    Nr.sendto, Nr.recvfrom,
})

#: Timer syscalls are neither counted nor injected (see above).
COUNT_EXEMPT: FrozenSet[int] = frozenset({Nr.clock_gettime,
                                          Nr.gettimeofday})


@dataclass(frozen=True)
class Fault:
    """One scheduled injection: fire *action* when *trigger* reaches *at*.

    Attributes:
        trigger: trigger kind (module docstring).
        at: occurrence index or instruction count the trigger fires at.
        action: ``"signal"`` (arg = signal number), ``"errno"`` (arg =
            positive errno), ``"selector-flip"`` (BLOCK→ALLOW escape),
            ``"selector-block"`` (ALLOW→BLOCK, adversarial),
            ``"munmap"`` / ``"mprotect"`` (addr/length[, arg = prot bits]),
            or ``"patch"`` (write *data* at *addr*, no shootdown — P5).
        arg, addr, length, data: action operands.
    """

    trigger: str
    at: int
    action: str
    arg: int = 0
    addr: int = 0
    length: int = 0
    data: bytes = b""

    def encode(self) -> str:
        return (f"{self.trigger}@{self.at}:{self.action}"
                f"(arg={self.arg},addr={self.addr:#x},len={self.length},"
                f"data={self.data.hex()})")

    def to_json(self) -> Dict:
        """JSON-able rendering (bytes as hex) for the replay record log."""
        return {"trigger": self.trigger, "at": self.at,
                "action": self.action, "arg": self.arg, "addr": self.addr,
                "length": self.length, "data": self.data.hex()}

    @classmethod
    def from_json(cls, record: Dict) -> "Fault":
        return cls(trigger=record["trigger"], at=record["at"],
                   action=record["action"], arg=record["arg"],
                   addr=record["addr"], length=record["length"],
                   data=bytes.fromhex(record["data"]))


@dataclass
class FaultConfig:
    """The knobs :func:`build_schedule` turns into a concrete schedule."""

    #: App-requested syscall occurrences covered by the errno channel.
    horizon: int = 400
    #: Default per-syscall transient-failure probability.
    errno_rate: float = 0.0
    #: Per-syscall-number overrides of :attr:`errno_rate`.
    errno_rates: Dict[int, float] = field(default_factory=dict)
    #: The transient failures injected (uniform choice per occurrence).
    errnos: Tuple[int, ...] = (Errno.EINTR, Errno.EAGAIN, Errno.ENOMEM)
    injectable: FrozenSet[int] = INJECTABLE_DEFAULT
    #: Async signals delivered at randomly chosen syscall-exit boundaries.
    signal_count: int = 0
    signals: Tuple[int, ...] = (SIGCHLD,)
    #: Async signals at randomly chosen retired-instruction counts.
    insn_signal_count: int = 0
    insn_range: Tuple[int, int] = (2_000, 50_000)
    #: Async signals at randomly chosen scheduler-quantum boundaries.
    quantum_signal_count: int = 0
    quantum_range: Tuple[int, int] = (5, 200)
    #: SUD selector BLOCK→ALLOW flips at randomly chosen kernel entries.
    selector_flips: int = 0
    selector_flip_range: Tuple[int, int] = (1, 30)
    #: Explicit remote-thread faults (trigger ``"window"`` etc.), appended
    #: verbatim — these carry addresses, so callers construct them per
    #: scenario rather than having the generator guess at layout.
    extra_faults: Tuple[Fault, ...] = ()

    def rate_for(self, nr: int) -> float:
        return self.errno_rates.get(int(nr), self.errno_rate)

    def to_json(self) -> Dict:
        """JSON-able rendering for the replay record log."""
        return {
            "horizon": self.horizon,
            "errno_rate": self.errno_rate,
            "errno_rates": {str(int(nr)): rate for nr, rate
                            in sorted(self.errno_rates.items())},
            "errnos": [int(e) for e in self.errnos],
            "injectable": sorted(int(nr) for nr in self.injectable),
            "signal_count": self.signal_count,
            "signals": [int(s) for s in self.signals],
            "insn_signal_count": self.insn_signal_count,
            "insn_range": list(self.insn_range),
            "quantum_signal_count": self.quantum_signal_count,
            "quantum_range": list(self.quantum_range),
            "selector_flips": self.selector_flips,
            "selector_flip_range": list(self.selector_flip_range),
            "extra_faults": [f.to_json() for f in self.extra_faults],
        }

    @classmethod
    def from_json(cls, record: Dict) -> "FaultConfig":
        return cls(
            horizon=record["horizon"],
            errno_rate=record["errno_rate"],
            errno_rates={int(nr): rate for nr, rate
                         in record["errno_rates"].items()},
            errnos=tuple(record["errnos"]),
            injectable=frozenset(record["injectable"]),
            signal_count=record["signal_count"],
            signals=tuple(record["signals"]),
            insn_signal_count=record["insn_signal_count"],
            insn_range=tuple(record["insn_range"]),
            quantum_signal_count=record["quantum_signal_count"],
            quantum_range=tuple(record["quantum_range"]),
            selector_flips=record["selector_flips"],
            selector_flip_range=tuple(record["selector_flip_range"]),
            extra_faults=tuple(Fault.from_json(f)
                               for f in record["extra_faults"]),
        )


class FaultSchedule:
    """A fully pre-drawn schedule; see the module docstring.

    Attributes:
        seed: the integer that produced everything below.
        config: the generating config.
        errno_draws: per-occurrence ``(uniform, errno)`` pairs for the
            transient-failure channel — occurrence *i* of an injectable
            syscall ``nr`` fails with ``errno`` iff
            ``uniform < config.rate_for(nr)``.  Pre-drawing the uniform per
            occurrence (rather than sampling online) keeps the stream
            independent of which mechanism is running.
        faults: every discrete scheduled fault.
    """

    def __init__(self, seed: int, config: FaultConfig,
                 errno_draws: Sequence[Tuple[float, int]],
                 faults: Sequence[Fault]):
        self.seed = seed
        self.config = config
        self.errno_draws: Tuple[Tuple[float, int], ...] = tuple(errno_draws)
        self.faults: Tuple[Fault, ...] = tuple(faults)

    def by_trigger(self, trigger: str) -> List[Fault]:
        return [f for f in self.faults if f.trigger == trigger]

    def encode(self) -> bytes:
        """Canonical byte encoding — the determinism contract: same seed
        and config ⇒ byte-identical encoding, across runs and machines."""
        lines = [f"seed={self.seed}",
                 f"horizon={self.config.horizon}",
                 f"errno_rate={self.config.errno_rate!r}",
                 "errno_rates=" + ",".join(
                     f"{nr}:{rate!r}" for nr, rate in
                     sorted(self.config.errno_rates.items())),
                 "injectable=" + ",".join(
                     str(int(nr)) for nr in sorted(self.config.injectable))]
        lines += [f"draw[{i}]={u!r}:{e}"
                  for i, (u, e) in enumerate(self.errno_draws)]
        lines += [fault.encode() for fault in self.faults]
        return "\n".join(lines).encode()

    def digest(self) -> str:
        return hashlib.sha256(self.encode()).hexdigest()

    def to_json(self) -> Dict:
        """Serialize the *complete* schedule — config, every pre-drawn
        errno uniform, every discrete fault — plus the canonical digest.
        This is the draw log the replay recorder embeds in its record
        bundle: replay does not re-draw anything, it reloads this."""
        return {
            "seed": self.seed,
            "config": self.config.to_json(),
            "errno_draws": [[u, e] for u, e in self.errno_draws],
            "faults": [f.to_json() for f in self.faults],
            "digest": self.digest(),
        }

    @classmethod
    def from_json(cls, record: Dict) -> "FaultSchedule":
        """Reload a serialized schedule, verifying the canonical digest
        (a corrupted or hand-edited draw log must fail loudly, not replay
        subtly different faults)."""
        schedule = cls(record["seed"], FaultConfig.from_json(record["config"]),
                       [(u, e) for u, e in record["errno_draws"]],
                       [Fault.from_json(f) for f in record["faults"]])
        want = record.get("digest")
        if want is not None and schedule.digest() != want:
            raise ValueError(
                f"fault-schedule digest mismatch: log says {want[:12]}..., "
                f"reloaded schedule is {schedule.digest()[:12]}...")
        return schedule


def build_schedule(seed: int,
                   config: Optional[FaultConfig] = None) -> FaultSchedule:
    """Expand *(seed, config)* into a concrete :class:`FaultSchedule`.

    The draw order below is part of the determinism contract — reordering
    it changes every schedule, so treat it as append-only.
    """
    config = config or FaultConfig()
    rng = random.Random(seed)
    errno_draws = [(rng.random(), int(rng.choice(config.errnos)))
                   for _ in range(config.horizon)]
    faults: List[Fault] = []
    if config.signal_count:
        count = min(config.signal_count, config.horizon)
        for at in sorted(rng.sample(range(config.horizon), count)):
            faults.append(Fault("syscall-exit", at, "signal",
                                arg=int(rng.choice(config.signals))))
    if config.insn_signal_count:
        lo, hi = config.insn_range
        for _ in range(config.insn_signal_count):
            faults.append(Fault("insn", rng.randrange(lo, hi), "signal",
                                arg=int(rng.choice(config.signals))))
    if config.quantum_signal_count:
        lo, hi = config.quantum_range
        for _ in range(config.quantum_signal_count):
            faults.append(Fault("quantum", rng.randrange(lo, hi), "signal",
                                arg=int(rng.choice(config.signals))))
    if config.selector_flips:
        lo, hi = config.selector_flip_range
        count = min(config.selector_flips, hi - lo)
        for at in sorted(rng.sample(range(lo, hi), count)):
            faults.append(Fault("syscall-entry", at, "selector-flip"))
    faults.extend(config.extra_faults)
    # Insn triggers must be sorted for the engine's budget clipping.
    faults.sort(key=lambda f: (f.trigger, f.at))
    return FaultSchedule(seed, config, errno_draws, faults)
