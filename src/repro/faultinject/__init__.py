"""Deterministic fault injection & differential conformance (K23 repro).

Three layers:

- :mod:`repro.faultinject.schedule` — seeded, pre-drawn fault schedules
  (same seed ⇒ byte-identical :meth:`FaultSchedule.encode`);
- :mod:`repro.faultinject.engine` — :class:`FaultInjector`, which attaches
  to a kernel's hook points and executes a schedule;
- :mod:`repro.faultinject.conformance` — the differential oracle: run every
  registered interposition mechanism and the ``native`` null-interposer
  under identical fault schedules and diff the observable state.
"""

from repro.faultinject.schedule import (Fault, FaultConfig, FaultSchedule,
                                        INJECTABLE_DEFAULT, build_schedule)
from repro.faultinject.engine import FaultInjector

__all__ = [
    "Fault",
    "FaultConfig",
    "FaultSchedule",
    "FaultInjector",
    "INJECTABLE_DEFAULT",
    "build_schedule",
]
