"""Differential conformance cells: one (mechanism, workload, seed) run.

The oracle is the ``native`` registry entry — the *null interposer*, i.e.
unmodified execution.  "Making 'syscall' a Privilege not a Right"-style
validation: an interposition mechanism is conformant iff, under the same
seeded fault schedule, the application cannot tell it was interposed.  A
cell runs one mechanism on one workload under one schedule and snapshots
every application-observable channel:

- exit status + core-dump flag,
- stdout/stderr bytes,
- the main-phase app-requested syscall sequence with *normalized* results
  (fd numbers → ``fd``, addresses → ``addr`` — interposers legitimately
  shift descriptor tables and mmap cursors; everything else must match
  exactly),
- filesystem side effects (/tmp, /home/user),
- heap memory digest,
- simulated-address signal dispositions.

Timer syscalls are excluded from the compared sequence: K23 disables the
vDSO (§5.2), so the *route* of ``clock_gettime`` legitimately differs —
the paper's P2b asymmetry, documented rather than flagged.

Normalized comparison failing ⇒ a real, app-visible divergence; this
module reports it and the PR that introduced the harness fixes it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.faultinject.engine import FaultInjector
from repro.faultinject.schedule import (FaultConfig, FaultSchedule,
                                        build_schedule)
from repro.kernel.syscalls import Errno, Nr
from repro.workloads.coreutils import install_coreutils
from repro.workloads.stress import STRESS_PATH, build_stress

#: Conformance cells run this many stress iterations (enough syscall
#: occurrences for every schedule channel to land; small enough for CI).
STRESS_ITERATIONS = 40

#: Fixed kernel seed for every cell: layout must not vary across
#: mechanisms, or address-bearing observations would diverge spuriously.
#: Fault variety comes from the *schedule* seed.
KERNEL_SEED = 777

#: Syscalls whose successful result is a descriptor / an address — values
#: interposers legitimately shift (their own opens and maps move the
#: cursors before the app runs).
_FD_RETURNERS = frozenset({Nr.open, Nr.openat, Nr.socket, Nr.dup,
                           Nr.epoll_create, Nr.accept})
_ADDR_RETURNERS = frozenset({Nr.mmap, Nr.brk})
_TIMER_NRS = frozenset({Nr.clock_gettime, Nr.gettimeofday})

#: Paths whose contents count as application filesystem side effects.
_FS_ROOTS = ("/tmp", "/home/user")


def _install_stress(kernel) -> str:
    build_stress(STRESS_ITERATIONS).register(kernel)
    return STRESS_PATH


def _coreutil(path: str) -> Callable:
    def install(kernel) -> str:
        install_coreutils(kernel)
        return path
    return install


#: Conformance workloads: name → installer(kernel) -> program path.
WORKLOADS: Dict[str, Callable] = {
    "stress": _install_stress,
    "pwd": _coreutil("/usr/bin/pwd"),
    "touch": _coreutil("/usr/bin/touch"),
    "ls": _coreutil("/usr/bin/ls"),
    "cat": _coreutil("/usr/bin/cat"),
    "clear": _coreutil("/usr/bin/clear"),
}


def conformance_config() -> FaultConfig:
    """The default adversarial mix for conformance cells.

    Only *mechanism-invariant* channels: transient errnos (keyed on
    app-requested occurrence index), async SIGCHLD at syscall exits, and
    one SUD selector flip (a no-op for mechanisms that never arm SUD; for
    SUD-based ones it lets one call escape interposition, which must be
    app-invisible).  Instruction/quantum/window triggers are *engine*
    features exercised by dedicated tests — their firing points are
    mechanism-dependent by nature, so they don't belong in a differential
    oracle comparison.
    """
    return FaultConfig(
        horizon=40,
        errno_rate=0.15,
        errnos=(Errno.EINTR, Errno.EAGAIN, Errno.ENOMEM),
        signal_count=2,
        selector_flips=1,
        selector_flip_range=(1, 24),
    )


@dataclass
class Observation:
    """Everything the application could observe from one cell run."""

    mechanism: str
    workload: str
    seed: int
    exit_status: Optional[int]
    core_dumped: bool
    output_sha: str
    output_len: int
    syscalls: Tuple[str, ...]
    fs_state: Tuple[Tuple[str, str], ...]
    heap_sha: str
    sim_handlers: Tuple[int, ...]
    injections: Tuple[str, ...] = ()
    schedule_sha: str = ""
    #: Instrumentation-bus counter snapshot (CounterSink) for the run —
    #: diagnostic metadata, like ``injections``: mechanisms legitimately
    #: differ here (that's the whole point of the decomposition), and the
    #: block cache batches ``CycleCharge`` emissions per block, so even
    #: one mechanism's event tallies differ across interpreter modes.
    #: Excluded from ``==`` and ``diff`` alike — never verdict material.
    counters: Dict = field(default_factory=dict, compare=False)

    def diff(self, oracle: "Observation") -> List[str]:
        """App-visible divergences vs the oracle (empty = conformant).

        ``injections``, ``schedule_sha``, and ``counters`` are deliberately
        not compared: which injections *fired* and what each mechanism's
        cycle/event profile looks like legitimately differ per mechanism (a
        selector flip can only land on a SUD user); what must not differ
        is what the application then observed.
        """
        out: List[str] = []
        if self.exit_status != oracle.exit_status:
            out.append(f"exit status {self.exit_status} != "
                       f"oracle {oracle.exit_status}")
        if self.core_dumped != oracle.core_dumped:
            out.append(f"core_dumped {self.core_dumped} != "
                       f"oracle {oracle.core_dumped}")
        if (self.output_sha, self.output_len) != (oracle.output_sha,
                                                  oracle.output_len):
            out.append(f"stdout/stderr bytes differ "
                       f"({self.output_len}B vs {oracle.output_len}B)")
        if self.syscalls != oracle.syscalls:
            out.append(_first_seq_divergence(self.syscalls, oracle.syscalls))
        if self.fs_state != oracle.fs_state:
            out.append(f"filesystem side effects differ: "
                       f"{dict(self.fs_state)} vs {dict(oracle.fs_state)}")
        if self.heap_sha != oracle.heap_sha:
            out.append("heap memory digest differs")
        if self.sim_handlers != oracle.sim_handlers:
            out.append(f"signal dispositions differ: {self.sim_handlers} "
                       f"vs {oracle.sim_handlers}")
        return out


def _first_seq_divergence(mine: Tuple[str, ...],
                          oracle: Tuple[str, ...]) -> str:
    for i, (a, b) in enumerate(zip(mine, oracle)):
        if a != b:
            return (f"syscall sequence diverges at #{i}: "
                    f"{a!r} != oracle {b!r}")
    return (f"syscall sequence length {len(mine)} != "
            f"oracle {len(oracle)} (common prefix matches)")


def normalize_record(record) -> str:
    """The mechanism-invariant projection of one syscall record.

    Successful fd-returners collapse to ``name=fd`` and address-returners
    to ``name=addr`` (interposers legitimately shift descriptor tables
    and mmap cursors); everything else renders as ``name=result``.  Both
    the conformance oracle comparison and the shadow harness's trace
    diffing compare sequences of these strings.
    """
    name = Nr.name_of(record.nr)
    result = record.result
    if result is None:
        return f"{name}=?"
    if record.nr in _FD_RETURNERS and result >= 0:
        return f"{name}=fd"
    if record.nr in _ADDR_RETURNERS and result > 0xFFFF:
        return f"{name}=addr"
    return f"{name}={result}"


#: Timer syscalls excluded from compared sequences (vDSO asymmetry —
#: module docstring); public so the shadow harness shares the exclusion.
TIMER_NRS = _TIMER_NRS

_normalize_record = normalize_record


def _observe(kernel, process, mechanism: str, workload: str, seed: int,
             injector: FaultInjector,
             schedule: FaultSchedule, sink=None) -> Observation:
    main = kernel.syscall_log[process.premain_log_len:]
    syscalls = tuple(_normalize_record(r) for r in main
                     if r.pid == process.pid and r.app_requested
                     and r.nr not in _TIMER_NRS)
    fs_state = []
    for root in _FS_ROOTS:
        try:
            names = kernel.vfs.listdir(root)
        except Exception:
            continue
        for name in sorted(names):
            path = f"{root}/{name}"
            if kernel.vfs.is_dir(path):
                continue
            data = bytes(kernel.vfs.read(path))
            fs_state.append((path, hashlib.sha256(data).hexdigest()[:16]))
    heap = hashlib.sha256()
    space = process.address_space
    for region in sorted(space.regions, key=lambda r: r.start):
        if region.name != "[heap]":
            continue
        heap.update(bytes(space.read_kernel(region.start, region.size)))
    sim_handlers = tuple(sorted(
        sig for sig, action in process.dispositions._actions.items()
        if not callable(action)))
    return Observation(
        mechanism=mechanism,
        workload=workload,
        seed=seed,
        exit_status=process.exit_status,
        core_dumped=process.core_dumped,
        output_sha=hashlib.sha256(bytes(process.output)).hexdigest()[:16],
        output_len=len(process.output),
        syscalls=syscalls,
        fs_state=tuple(fs_state),
        heap_sha=heap.hexdigest()[:16],
        sim_handlers=sim_handlers,
        injections=tuple(injector.log),
        schedule_sha=schedule.digest()[:16],
        counters=sink.snapshot() if sink is not None else {},
    )


#: Per-workload offline-phase site logs (K23 variants), computed once and
#: re-imported into every cell kernel — the offline phase is faultless and
#: mechanism-independent, so recomputing it per cell would only cost time.
_OFFLINE_CACHE: Dict[str, Dict] = {}


def _offline_logs(workload: str) -> Dict:
    logs = _OFFLINE_CACHE.get(workload)
    if logs is None:
        from repro.core import OfflinePhase
        from repro.kernel import Kernel

        kernel = Kernel(seed=KERNEL_SEED + 1000, aslr=False)
        path = WORKLOADS[workload](kernel)
        offline = OfflinePhase(kernel)
        offline.run(path)
        logs = offline.export()
        _OFFLINE_CACHE[workload] = logs
    return logs


def run_cell(mechanism: str, workload: str, seed: int,
             config: Optional[FaultConfig] = None,
             block_cache: Optional[bool] = None,
             max_steps: int = 10_000_000,
             trace_sink=None) -> Observation:
    """Run one conformance cell and snapshot its observable state.

    ``trace_sink`` (any bus sink, typically a
    :class:`~repro.observability.export.TraceSink`) rides along on the
    cell's bus; the bus is observe-only, so the Observation is identical
    with or without it.
    """
    from repro.interposers.registry import REGISTRY
    from repro.kernel import Kernel

    if workload not in WORKLOADS:
        raise ValueError(f"unknown conformance workload {workload!r}; "
                         f"valid: {', '.join(WORKLOADS)}")
    kernel = Kernel(seed=KERNEL_SEED, aslr=False)
    # Counters ride along on every cell: the bus is observe-only, so an
    # attached sink cannot perturb the run (the lockstep property tests
    # pin this), and the snapshots feed the matrix artifact's metadata.
    from repro.observability.sinks import CounterSink

    sink = CounterSink()
    kernel.bus.attach(sink)
    if trace_sink is not None:
        kernel.bus.attach(trace_sink)
    if block_cache is not None:
        kernel.block_cache_enabled = block_cache
    # Measure the surviving fast path deterministically, as the evaluation
    # pipeline does — fault variety comes from the schedule, not the torn
    # window's own dice.
    kernel.torn_window_probability = 0.0
    path = WORKLOADS[workload](kernel)
    if REGISTRY.needs_offline(mechanism):
        from repro.core.offline import import_logs

        import_logs(kernel, _offline_logs(workload))
    REGISTRY.create(mechanism, kernel)
    schedule = build_schedule(seed, config or conformance_config())
    injector = FaultInjector(kernel, schedule)
    process = kernel.spawn_process(path)
    kernel.run_process(process, max_steps=max_steps)
    if not process.exited:
        raise RuntimeError(
            f"conformance cell did not finish: {mechanism}/{workload}"
            f"/seed={seed} ({max_steps} steps)")
    return _observe(kernel, process, mechanism, workload, seed, injector,
                    schedule, sink=sink)
