"""loadtest — open-loop million-request traffic runs with SLO reporting.

Usage::

    python -m repro loadtest [--workload W] [--mechanisms A,B,...] \\
        [--requests N] [--rate R] [--arrival poisson|lognormal|pareto] \\
        [--servers N] [--connections N] [--workers N] \\
        [--tenants name:weight,...] [--mix kind:weight,...] \\
        [--ramp 1,2,4,...] [--queue-limit N] [--slo-p99-ms N] \\
        [--serve-mode model|full] [--seed N] [--jobs N] \\
        [--spans] [--exemplars N] [--shed-exemplars N] \\
        [--out FILE] [--no-cache] [--history]

Generates a seeded open-loop arrival schedule (default: one million
requests), pushes it through a fleet of interposed ``--workload``
servers behind the simulated load balancer for every mechanism in
``--mechanisms``, and writes the merged SLO report to
``benchmarks/output/METRICS_slo.json`` (override with ``--out``).

``--rate 0`` (the default) auto-calibrates: the base rate becomes ~10 %
of the native fleet's measured capacity, so the default ramp
(1,2,4,8,16,32×) sweeps 10–320 % of capacity and the saturation knee
lands mid-staircase.  ``--serve-mode model`` (default) calibrates
per-kind service times on real interposed kernels and runs the
million-request schedule through the virtual-time queueing fabric;
``--serve-mode full`` drives every request through real server kernels
(ground truth, ~1000× slower — pair it with small ``--requests``).

Determinism contract: a fixed ``--seed`` yields a byte-identical
schedule and report whatever ``--jobs`` or engine tier ran it.

``--history`` appends one requests/sec row per mechanism to the
``benchmarks/history.py`` ledger (protocol ``loadtest-v1``) and exits
nonzero if the rolling-median regression gate fails.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Tuple

from repro.runapi import WORKLOADS
from repro.traffic.config import (ARRIVALS, DEFAULT_MIX, DEFAULT_RAMP,
                                  DEFAULT_TENANTS, SERVE_MODES,
                                  TrafficConfig)

#: The benchmarks/history.py protocol tag for loadtest throughput rows.
HISTORY_PROTOCOL = "loadtest-v1"


def _parse_weights(text: str, flag: str) -> Tuple[Tuple[str, int], ...]:
    pairs = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, weight = item.rpartition(":")
        if not sep:
            raise ValueError(f"{flag}: {item!r} is not name:weight")
        try:
            pairs.append((key, int(weight)))
        except ValueError:
            raise ValueError(f"{flag}: weight in {item!r} must be an int")
    if not pairs:
        raise ValueError(f"{flag}: no entries in {text!r}")
    return tuple(pairs)


def _parse_ramp(text: str) -> Tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise ValueError(f"--ramp: {text!r} must be comma-separated ints")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="loadtest", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    server_workloads = sorted(name for name, spec in WORKLOADS.items()
                              if spec.kind == "server")
    parser.add_argument("--workload", default="nginx",
                        choices=server_workloads,
                        help="server workload the fleet runs "
                        "(default nginx)")
    parser.add_argument("--mechanisms", default="native,K23-ultra",
                        help="comma-separated mechanism list "
                        "(default native,K23-ultra)")
    parser.add_argument("--requests", type=int, default=1_000_000,
                        help="scheduled arrivals (default 1000000)")
    parser.add_argument("--rate", type=int, default=0,
                        help="base arrivals/second; 0 = auto-calibrate "
                        "to ~10%% of native capacity (default)")
    parser.add_argument("--arrival", default="poisson", choices=ARRIVALS,
                        help="inter-arrival process (default poisson)")
    parser.add_argument("--servers", type=int, default=4,
                        help="fleet size behind the balancer (default 4)")
    parser.add_argument("--connections", type=int, default=2048,
                        help="simulated client connections (default 2048)")
    parser.add_argument("--workers", type=int, default=2,
                        help="serving workers per server (default 2)")
    parser.add_argument("--tenants",
                        default=",".join(f"{k}:{w}"
                                         for k, w in DEFAULT_TENANTS),
                        help="tenant:weight list (default %(default)s)")
    parser.add_argument("--mix",
                        default=",".join(f"{k}:{w}"
                                         for k, w in DEFAULT_MIX),
                        help="request-kind:weight list, kinds "
                        "small/medium/large, optionally tenant-scoped "
                        "as tenant:kind:weight (default %(default)s)")
    parser.add_argument("--ramp",
                        default=",".join(str(m) for m in DEFAULT_RAMP),
                        help="per-stage rate multipliers "
                        "(default %(default)s)")
    parser.add_argument("--queue-limit", type=int, default=4096,
                        help="per-server leveling-queue bound; beyond "
                        "it the balancer sheds (default 4096)")
    parser.add_argument("--slo-p99-ms", type=int, default=2,
                        help="p99 latency budget defining the knee "
                        "(default 2 ms)")
    parser.add_argument("--spans", action="store_true",
                        help="per-request span tracing: the report "
                        "grows a rank-based exemplar section "
                        "(inspect with python -m repro sloexplain)")
    parser.add_argument("--exemplars", type=int, default=4,
                        help="slowest span trees kept per (stage, "
                        "tenant, kind) group (default 4)")
    parser.add_argument("--shed-exemplars", type=int, default=16,
                        help="earliest shed span trees kept per group "
                        "(default 16)")
    parser.add_argument("--serve-mode", default="model",
                        choices=SERVE_MODES,
                        help="model = calibrated queueing fabric "
                        "(default); full = drive every request through "
                        "real kernels")
    parser.add_argument("--calibration-requests", type=int, default=400,
                        help="real requests per mechanism for service-"
                        "time calibration (default 400)")
    parser.add_argument("--seed", type=int, default=0,
                        help="schedule + kernel seed (default 0)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes; the fleet shards by "
                        "server, report stays byte-identical (default 1)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="report path (default benchmarks/output/"
                        "METRICS_slo.json)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the evaluation result cache")
    parser.add_argument("--history", action="store_true",
                        help="append requests/sec rows to the bench "
                        "history ledger and run the regression gate")
    return parser


def _history_gate(report, elapsed: float) -> int:
    """Append one throughput row per mechanism; return the gate's exit."""
    import importlib.util
    from pathlib import Path

    history_py = Path(__file__).resolve().parents[3] / "benchmarks" \
        / "history.py"
    spec = importlib.util.spec_from_file_location("bench_history",
                                                  history_py)
    history = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(history)

    doc = report.doc
    total = sum(s["totals"]["completed"]
                for s in doc["mechanisms"].values()) or 1
    cells = {}
    for name, section in sorted(doc["mechanisms"].items()):
        completed = section["totals"]["completed"]
        # Wall-clock share proportional to this mechanism's completions.
        share = elapsed * completed / total
        cells[name] = {
            "insns_per_sec": completed / share if share else 0.0,
            "sim_cycles": doc["schedule"]["span_ns"],
            "instructions": completed,
        }
    bench_report = {"protocol": HISTORY_PROTOCOL,
                    "workloads": {doc["workload"]: cells}}
    entries = history.append_report(bench_report)
    print(f"history: appended {len(entries)} loadtest rows "
          f"({HISTORY_PROTOCOL})")
    ok, lines = history.gate(history.load_history())
    for line in lines:
        print(line)
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    mechanisms = [name.strip() for name in args.mechanisms.split(",")
                  if name.strip()]
    if not mechanisms:
        print("loadtest: --mechanisms is empty", file=sys.stderr)
        return 2
    from repro.interposers.registry import REGISTRY, UnknownMechanismError
    try:
        mechanisms = [REGISTRY.canonical(name) for name in mechanisms]
    except UnknownMechanismError as exc:
        print(f"loadtest: {exc}", file=sys.stderr)
        return 2
    try:
        traffic = TrafficConfig(
            requests=args.requests,
            rate=args.rate,
            arrival=args.arrival,
            servers=args.servers,
            connections=args.connections,
            workers=args.workers,
            tenants=_parse_weights(args.tenants, "--tenants"),
            mix=_parse_weights(args.mix, "--mix"),
            ramp=_parse_ramp(args.ramp),
            queue_limit=args.queue_limit,
            calibration_requests=args.calibration_requests,
            serve_mode=args.serve_mode,
            slo_p99_ms=args.slo_p99_ms,
            spans=args.spans,
            exemplars=args.exemplars,
            shed_exemplars=args.shed_exemplars)
    except ValueError as exc:
        print(f"loadtest: {exc}", file=sys.stderr)
        return 2

    from repro.evaluation.cache import NullCache, ResultCache
    from repro.traffic.engine import run_loadtest
    from repro.traffic.slo import DEFAULT_OUTPUT, summarize

    cache = NullCache() if args.no_cache else ResultCache()
    started = time.monotonic()
    try:
        report = run_loadtest(mechanisms, args.workload, traffic,
                              seed=args.seed, jobs=args.jobs, cache=cache)
    except Exception as exc:  # registry errors, calibration failures
        print(f"loadtest: {exc}", file=sys.stderr)
        return 1
    elapsed = time.monotonic() - started

    print(summarize(report))
    if report.stats is not None:
        print(report.stats.summary())
    path = report.write(args.out or DEFAULT_OUTPUT)
    print(f"report: {path} ({elapsed:.1f}s)")
    if args.history:
        return _history_gate(report, elapsed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
