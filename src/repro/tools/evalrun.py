"""evalrun — drive the parallel, memoized evaluation pipeline.

Usage::

    python -m repro.tools.evalrun [table5|table6|matrix] [options]

    --jobs N        worker processes (default: os.cpu_count())
    --seed N        base cell seed (default: 20 for table5 cells, 30 for
                    table6 cells — passing one value pins both)
    --no-cache      recompute every cell, write nothing
    --cache-dir D   cache location (default ~/.cache/repro-eval or
                    $REPRO_EVAL_CACHE)
    --smoke         reduced matrix: 2 mechanisms, tiny iteration counts
    --rows K [K..]  restrict table6 to the given row keys
    --mechanisms M [M..]  restrict the mechanism axis
    --list          print the mechanism registry and exit
    --clear-cache   drop every cached cell and exit
    --verbose       per-cell hit/miss/fail lines on stderr
    --trace-out F   also record one representative stress run (the first
                    non-native mechanism on the axis) through the
                    instrumentation bus and write a Perfetto/Chrome
                    trace-event JSON
    --metrics-out F CounterSink snapshots artifact (default:
                    benchmarks/output/METRICS_table5.json when running
                    table5/matrix; --no-metrics disables)

``matrix`` (the default) runs every Table 5 + Table 6 cell.  Tables are
printed to stdout exactly as the serial harness renders them; pipeline
accounting (cache hits, misses, failures, pool fallback) goes to stderr so
redirected table output stays byte-identical to a serial run.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.evaluation import pipeline as pipe
from repro.evaluation.cache import ResultCache
from repro.evaluation.runner import MACRO_BY_KEY
from repro.evaluation.tables import render_table5, render_table6
from repro.interposers.registry import REGISTRY


def _interp_probe() -> str:
    """One-line interpreter health probe (``--verbose``): insns/sec plus
    icache / block-cache hit rates on a short native syscall-stress run."""
    import time

    from repro.kernel.kernel import Kernel
    from repro.workloads.stress import STRESS_PATH, install_stress

    kernel = Kernel(seed=42)
    install_stress(kernel, iterations=500)
    process = kernel.spawn_process(STRESS_PATH)
    started = time.perf_counter()
    retired = kernel.run_process(process, max_steps=2_000_000)
    elapsed = time.perf_counter() - started
    stats = kernel.interp_stats()
    fetches = stats["icache_hits"] + stats["icache_misses"]
    icache_rate = stats["icache_hits"] / fetches if fetches else 0.0
    units = stats["block_hits"] + stats["block_installs"]
    block_rate = stats["block_hits"] / units if units else 0.0
    if not kernel.block_cache_enabled:
        mode = "single-step"
    else:
        flags = kernel.engine.flags()
        mode = "+".join(n for n in ("chain", "superblock", "trace_jit")
                        if flags[n]) or "block-cache"
    return (f"interp[{mode}]: {retired / elapsed:,.0f} insns/sec "
            f"(icache hit {icache_rate:.1%}, block hit {block_rate:.1%}, "
            f"{retired} insns; chains {stats['chain_follows']}, "
            f"sb hits {stats['superblock_hits']}, "
            f"trace hits {stats['trace_hits']}, "
            f"guard fails {stats['guard_fails']})")


def _echo(run: pipe.PipelineRun, label: str, verbose: bool) -> None:
    print(f"{label}: {run.stats.summary()}", file=sys.stderr)
    if verbose:
        for result in run.results.values():
            state = "fail" if not result.ok else result.source
            print(f"  [{state:>8}] {result.spec.label} "
                  f"({result.duration:.2f}s)", file=sys.stderr)
    for failure in run.failures():
        print(f"FAILED {failure.spec.label}:\n{failure.error}",
              file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="evalrun", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("target", nargs="?", default="matrix",
                        choices=["table5", "table6", "matrix"])
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    parser.add_argument("--seed", type=int, default=None,
                        help="base cell seed (default: micro 20, macro 30)")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--rows", nargs="+", default=None,
                        metavar="KEY", help="table6 row keys")
    parser.add_argument("--mechanisms", nargs="+", default=None,
                        metavar="MECH")
    parser.add_argument("--list", action="store_true",
                        help="print the mechanism registry and exit")
    parser.add_argument("--clear-cache", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write a Perfetto trace of one representative "
                             "stress run")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="METRICS artifact path (default: "
                             "benchmarks/output/METRICS_table5.json)")
    parser.add_argument("--no-metrics", action="store_true",
                        help="skip the METRICS artifact")
    args = parser.parse_args(argv)

    if args.list:
        print(REGISTRY.describe())
        return 0

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.clear_cache:
        removed = (cache or ResultCache(args.cache_dir)).clear()
        print(f"cleared {removed} cached cells", file=sys.stderr)
        return 0

    mechanisms = args.mechanisms
    if mechanisms:
        for name in mechanisms:
            if name not in REGISTRY:
                parser.error(f"unknown mechanism {name!r}; "
                             f"valid: {', '.join(REGISTRY.names())}")
        if "native" not in mechanisms:
            mechanisms = ["native"] + list(mechanisms)
    elif args.smoke:
        mechanisms = list(pipe.SMOKE_MECHANISMS)
    else:
        mechanisms = list(REGISTRY.names())

    rows = args.rows
    if rows:
        for key in rows:
            if key not in MACRO_BY_KEY:
                parser.error(f"unknown table6 row {key!r}; "
                             f"rows: {', '.join(MACRO_BY_KEY)}")
    elif args.smoke:
        rows = list(pipe.SMOKE_MACRO_KEYS)

    jobs = max(1, args.jobs)
    status = 0

    if args.verbose:
        print(_interp_probe(), file=sys.stderr)

    micro_kwargs = {} if args.seed is None else {"seed": args.seed}
    if args.target in ("table5", "matrix"):
        if args.smoke:
            low, high = pipe.SMOKE_MICRO_ITERATIONS
            specs = pipe.micro_specs(mechanisms, iterations_low=low,
                                     iterations_high=high, **micro_kwargs)
        else:
            specs = pipe.micro_specs(mechanisms, **micro_kwargs)
        run = pipe.run_cells(specs, jobs=jobs, cache=cache)
        _echo(run, "table5", args.verbose)
        if run.failures():
            status = 1
        else:
            print(render_table5(
                pipe.table5_overheads(run, mechanisms[1:])))

    if args.target in ("table6", "matrix"):
        macro_kwargs = {} if args.seed is None else {"seed": args.seed}
        specs = pipe.macro_specs(rows, mechanisms, **macro_kwargs)
        run = pipe.run_cells(specs, jobs=jobs, cache=cache)
        _echo(run, "table6", args.verbose)
        if run.failures():
            status = 1
        else:
            print(render_table6(pipe.table6_rows(run, rows, mechanisms)))

    if (args.target in ("table5", "matrix") and status == 0
            and not args.no_metrics):
        from repro.evaluation.metrics import (METRICS_TABLE5_PATH,
                                              collect_mechanism_metrics,
                                              write_metrics)

        iterations = 48 if args.smoke else 120
        doc = collect_mechanism_metrics(mechanisms, iterations=iterations)
        out = write_metrics(doc, args.metrics_out or METRICS_TABLE5_PATH)
        print(f"metrics: {out}", file=sys.stderr)

    if args.trace_out is not None:
        representative = next((m for m in mechanisms if m != "native"),
                              mechanisms[0])
        out = _trace_stress(representative, args.trace_out)
        print(f"trace: {out} (mechanism: {representative})", file=sys.stderr)

    return status


def _trace_stress(mechanism: str, trace_out: str, iterations: int = 60,
                  seed: int = 99):
    """One stress run under *mechanism* with a TraceSink attached —
    assembled through the :mod:`repro.api` run surface."""
    from repro.api import RunConfig, run

    result = run(RunConfig(mechanism=mechanism, workload="stress",
                           seed=seed, trace_path=str(trace_out),
                           params=(("iterations", iterations),)))
    if not result.ok:
        raise RuntimeError(f"trace run failed under {mechanism}")
    return result.trace_path


if __name__ == "__main__":
    raise SystemExit(main())
