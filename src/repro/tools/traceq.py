"""traceq — filter and aggregate a JSONL event trace.

Usage::

    python -m repro traceq TRACE [--type SyscallEnter ...] [--nr write]
                           [--phase app ...] [--pid N] [--tid N]
                           [--since TS] [--until TS]
                           [--where KEY=VALUE ...]
                           [--count | --group-by FIELD] [--limit N]

Filters AND together; repeatable flags (``--type``, ``--phase``,
``--nr``) OR within themselves.  ``--nr`` takes a syscall name or
number.  ``--where KEY=VALUE`` (repeatable, ANDed) matches any record
field by exact value — values parse as bools (``true``/``false``) or
ints when they look like one, strings otherwise, and compare against
the record's field after the same coercion.  Output is the matching
records as JSON lines (``--limit`` caps them), a bare count with
``--count``, or a ``value  count`` table with ``--group-by FIELD``
(descending by count).  The ``TraceMeta`` header and ``ChargeSummary``
trailer are excluded from matching.

Examples::

    # Which uninterposed app syscalls did pid 100 make?
    python -m repro traceq t.jsonl --phase app --pid 100 --type SyscallEnter

    # Distribution of events by type in the first 1M cycles.
    python -m repro traceq t.jsonl --until 1000000 --group-by type
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Optional

from repro.tools.traceio import load_records, split_header


def _parse_nr(text: str) -> int:
    from repro.kernel.syscalls import Nr

    try:
        return int(text)
    except ValueError:
        try:
            return int(Nr[text])
        except KeyError:
            raise argparse.ArgumentTypeError(
                f"unknown syscall {text!r}") from None


def _parse_where(text: str):
    key, sep, value = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"--where takes KEY=VALUE, got {text!r}")
    return key, _coerce(value)


def _coerce(value):
    """Normalize a comparison operand: CLI strings become bools/ints
    when they look like one; record fields pass through unchanged."""
    if isinstance(value, str):
        if value == "true":
            return True
        if value == "false":
            return False
        try:
            return int(value)
        except ValueError:
            return value
    return value


def match(record: Dict, args: argparse.Namespace) -> bool:
    if args.type and record.get("type") not in args.type:
        return False
    if args.nr is not None and record.get("nr") not in args.nr:
        return False
    if args.phase and record.get("phase") not in args.phase:
        return False
    if args.pid is not None and record.get("pid") != args.pid:
        return False
    if args.tid is not None and record.get("tid") != args.tid:
        return False
    ts = record.get("ts")
    if args.since is not None and (ts is None or ts < args.since):
        return False
    if args.until is not None and (ts is None or ts > args.until):
        return False
    for key, wanted in getattr(args, "where", None) or ():
        if key not in record or _coerce(record[key]) != wanted:
            return False
    return True


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="traceq", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", help="JSONL trace path (- for stdin)")
    parser.add_argument("--type", action="append", metavar="EVENT",
                        help="event class name (repeatable)")
    parser.add_argument("--nr", action="append", type=_parse_nr,
                        metavar="SYSCALL",
                        help="syscall name or number (repeatable)")
    parser.add_argument("--phase", action="append", metavar="PHASE",
                        help="interposition phase (repeatable)")
    parser.add_argument("--pid", type=int)
    parser.add_argument("--tid", type=int)
    parser.add_argument("--since", type=int, metavar="TS",
                        help="minimum cycle timestamp")
    parser.add_argument("--until", type=int, metavar="TS",
                        help="maximum cycle timestamp")
    parser.add_argument("--where", action="append", type=_parse_where,
                        metavar="KEY=VALUE",
                        help="exact-match any record field "
                        "(repeatable, ANDed), e.g. --where "
                        "request=r-4812 --where shed=true")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--count", action="store_true",
                       help="print only the number of matches")
    group.add_argument("--group-by", metavar="FIELD",
                       help="histogram of FIELD over the matches")
    parser.add_argument("--limit", type=int, metavar="N",
                        help="print at most N records")
    args = parser.parse_args(argv)

    try:
        records = load_records(args.trace)
    except (OSError, ValueError) as exc:
        print(f"traceq: {exc}")
        return 2
    _header, body = split_header(records)
    matches = [r for r in body
               if r.get("type") != "ChargeSummary" and match(r, args)]

    if args.count:
        print(len(matches))
        return 0
    if args.group_by:
        groups: Dict[str, int] = {}
        for record in matches:
            key = json.dumps(record.get(args.group_by), sort_keys=True)
            groups[key] = groups.get(key, 0) + 1
        for key, n in sorted(groups.items(), key=lambda kv: (-kv[1], kv[0])):
            print(f"{key:<24} {n}")
        print(f"-- {len(matches)} match(es), {len(groups)} group(s)")
        return 0
    shown = matches if args.limit is None else matches[:args.limit]
    for record in shown:
        print(json.dumps(record, sort_keys=True))
    if args.limit is not None and len(matches) > args.limit:
        print(f"-- {len(matches) - args.limit} more match(es) suppressed "
              f"by --limit")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
