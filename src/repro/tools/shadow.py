"""shadow — dark-launch one interposer behind another and decide.

Usage::

    python -m repro shadow --primary lazypoline --shadow k23-ultra \\
        --workload nginx [--seed N] [--requests N] [--budget N] \\
        [--fault-seed N] [--fault-side none|both|primary|shadow] \\
        [--bundle-dir DIR] [--out REPORT.json] [--trace-out F]

The workload runs on the *primary* mechanism while every request is
mirrored to the *shadow* mechanism on a second kernel with the same
seed; shadow responses are compared and discarded, the normalized
app-observable traces are diffed, and the divergence count against
``--budget`` yields the verdict.  Exit status is 0 for PROMOTE, 1 for
ROLLBACK, 2 for usage errors.

``--fault-side both`` arms the same seeded fault schedule on both sides
(behavior-invariant for conformant mechanisms); ``primary``/``shadow``
arms one side only — the harness's negative control, guaranteed to
force divergence and, with ``--bundle-dir``, a full artifact bundle.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro.runapi import WORKLOADS
from repro.shadow import FAULT_SIDES, ShadowConfig, run_shadow


def _summary(report) -> List[str]:
    lines = [
        f"shadow: {report.primary} (primary) vs {report.shadow} (shadow) "
        f"on {report.workload}, seed {report.seed}",
        f"requests={report.requests} failures={report.failures} "
        f"divergences={report.divergence_count} budget={report.budget}",
        f"verdict: {report.verdict}",
    ]
    for divergence in report.divergences[:5]:
        lines.append(f"  [{divergence['kind']}] {divergence['detail']}")
    if report.divergence_count > 5:
        lines.append(f"  ... {report.divergence_count - 5} more")
    if report.bundle_path:
        lines.append(f"bundle: {report.bundle_path}")
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="shadow", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--primary", required=True,
                        help="mechanism serving the workload")
    parser.add_argument("--shadow", required=True,
                        help="mechanism mirrored to and compared")
    parser.add_argument("--workload", required=True,
                        choices=sorted(WORKLOADS))
    parser.add_argument("--seed", type=int, default=0,
                        help="kernel seed for both sides (default 0)")
    parser.add_argument("--requests", type=int, default=24,
                        help="mirrored round trips (default 24)")
    parser.add_argument("--budget", type=int, default=0,
                        help="inclusive divergence budget (default 0)")
    parser.add_argument("--fault-seed", type=int, default=None,
                        help="seed of the fault schedule to arm")
    parser.add_argument("--fault-side", choices=FAULT_SIDES,
                        default="none",
                        help="side(s) the schedule is armed on")
    parser.add_argument("--bundle-dir", default=None, metavar="DIR",
                        help="write the artifact bundle here on divergence")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the full report as JSON")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write the primary side's Perfetto trace")
    args = parser.parse_args(argv)

    try:
        config = ShadowConfig(
            primary=args.primary, shadow=args.shadow,
            workload=args.workload, seed=args.seed,
            requests=args.requests, budget=args.budget,
            fault_seed=args.fault_seed, fault_side=args.fault_side,
            bundle_dir=args.bundle_dir, trace_out=args.trace_out)
    except (KeyError, ValueError) as exc:
        print(f"shadow: {exc}")
        return 2

    report = run_shadow(config)
    for line in _summary(report):
        print(line)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True,
                      default=str)
            fh.write("\n")
        print(f"report: {args.out}")
    return 0 if report.promoted else 1


if __name__ == "__main__":
    raise SystemExit(main())
