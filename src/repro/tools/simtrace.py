"""simtrace — strace for the simulated machine.

Usage::

    python -m repro.tools.simtrace <program> [--interposer MECH] [--summary]
                                   [--seed N] [--trace-out FILE.json]
                                   [--jsonl-out FILE.jsonl]

``<program>`` is one of the bundled workloads (pwd, touch, ls, cat, clear)
or any absolute path previously registered by a setup module.
``--interposer`` is any Table 5 mechanism name (default: K23-ultra); K23
variants automatically run their offline phase first.  ``--trace-out``
additionally records the run through the instrumentation bus and writes a
Chrome trace-event JSON (load it in Perfetto / chrome://tracing): one
track per simulated thread plus a cycle-attribution flamegraph track.
``--jsonl-out`` writes the raw event stream as seq-numbered JSONL — the
input format of ``python -m repro tracediff`` / ``traceq``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import OfflinePhase
from repro.core.offline import import_logs
from repro.evaluation.runner import needs_offline
from repro.interposers.hooks import CountingHook, TracingHook, chain
from repro.interposers.registry import REGISTRY
from repro.kernel import Kernel
from repro.workloads.coreutils import install_coreutils

COREUTILS = {"pwd", "touch", "ls", "cat", "clear"}


def _resolve_program(name: str) -> str:
    if name.lstrip("/").rsplit("/", 1)[-1] in COREUTILS:
        return f"/usr/bin/{name.rsplit('/', 1)[-1]}"
    if name.startswith("/"):
        return name
    raise SystemExit(f"unknown program {name!r}; "
                     f"bundled: {', '.join(sorted(COREUTILS))}")


def trace(program: str, mechanism: str = "K23-ultra", seed: int = 1,
          summary: bool = False, out=None, trace_out: Optional[str] = None,
          jsonl_out: Optional[str] = None):
    out = out or sys.stdout
    path = _resolve_program(program)

    kernel = Kernel(seed=seed)
    trace_sink = None
    jsonl_sink = None
    jsonl_file = None
    if trace_out is not None:
        from repro.observability.export import TraceSink

        trace_sink = TraceSink(mechanism=mechanism,
                               workload=path.rsplit("/", 1)[-1])
        kernel.bus.attach(trace_sink)
    if jsonl_out is not None:
        from repro.observability.sinks import StreamingJSONLSink

        jsonl_file = open(jsonl_out, "w")
        jsonl_sink = StreamingJSONLSink(jsonl_file)
        kernel.bus.attach(jsonl_sink)
    tracer = TracingHook(bus=kernel.bus)
    counter = CountingHook(bus=kernel.bus)
    hook = chain(tracer, counter)

    install_coreutils(kernel)
    if needs_offline(mechanism):
        offline_kernel = Kernel(seed=seed + 1)
        install_coreutils(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        offline.run(path)
        import_logs(kernel, offline.export())
    interposer = REGISTRY.create(mechanism, kernel)
    interposer.hook = hook
    process = kernel.spawn_process(path)
    kernel.run_process(process)

    if not summary:
        for line in tracer.formatted():
            print(line, file=out)
    print(counter.summary(), file=out)
    missed = kernel.uninterposed_syscalls(process.pid)
    vdso = [e for e in kernel.vdso_calls if e[0] == process.pid]
    print(f"\ncoverage: {interposer.handled_count(process.pid)} interposed, "
          f"{len(missed)} missed, {len(vdso)} vDSO calls unseen "
          f"(mechanism: {mechanism})", file=out)
    print(f"exit status: {process.exit_status}", file=out)
    if trace_sink is not None:
        from repro.observability.export import write_chrome_trace

        written = write_chrome_trace(trace_sink, trace_out)
        print(f"trace: {written} "
              f"({len(trace_sink.trace_events)} events; open in Perfetto)",
              file=out)
    if jsonl_sink is not None:
        jsonl_sink.close()
        jsonl_file.close()
        print(f"jsonl trace: {jsonl_out}", file=out)
    return process, tracer, counter, missed


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simtrace", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("program", help="bundled coreutil name or path")
    parser.add_argument("--interposer", default="K23-ultra",
                        choices=list(REGISTRY.names()))
    parser.add_argument("--summary", action="store_true",
                        help="histogram only (strace -c)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write a Chrome trace-event/Perfetto JSON of "
                             "the run")
    parser.add_argument("--jsonl-out", default=None, metavar="FILE",
                        help="write the raw event stream as seq-numbered "
                             "JSONL (tracediff/traceq input)")
    args = parser.parse_args(argv)
    process, _tracer, _counter, _missed = trace(
        args.program, args.interposer, args.seed, args.summary,
        trace_out=args.trace_out, jsonl_out=args.jsonl_out)
    return 0 if process.exit_status == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
