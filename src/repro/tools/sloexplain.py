"""sloexplain — critical-path forensics for tail-latency exemplars.

Usage::

    python -m repro sloexplain [EXEMPLAR_ID] [--report FILE]
                               [--mechanism NAME] [--list | --worst]
                               [--perfetto OUT] [--json]

Reads the exemplar section of a span-traced load-test report
(``python -m repro loadtest --spans``) and renders one request's
critical-path breakdown: where its latency actually went, stage by
stage, with its position against the report's own percentile fields and
the calibrated per-kind syscall sub-span profile underneath the service
stage.  The zero-residual contract is *checked*, not assumed: a span
whose stage durations do not sum exactly to its recorded latency is a
data bug and exits 1.

- ``EXEMPLAR_ID`` (``r-<index>``) names a retained span; ``--worst``
  picks the slowest completed exemplar instead; ``--list`` enumerates
  everything retained.
- ``--mechanism`` narrows the search when several mechanisms were
  load-tested (required only when an ID appears in more than one).
- ``--perfetto OUT`` additionally exports the mechanism's retained
  span trees as a Chrome trace-event file for ``ui.perfetto.dev``.
- ``--json`` prints the selected span document instead of the
  rendering (for scripts; the CI smoke job uses it).

Exit status: 0 rendered; 1 zero-residual violation; 2 usage error or
exemplar not found.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

from repro.observability.spans import (iter_spans, residual, worst_span)
from repro.traffic.slo import DEFAULT_OUTPUT, SLOReport

#: Width of the stage-duration bar chart.
BAR_WIDTH = 40

#: The report's percentile fields, best first, for position labelling.
PERCENTILE_FIELDS = (("p999", "p99.9"), ("p99", "p99"), ("p95", "p95"),
                     ("p90", "p90"), ("p50", "p50"))


def _tenths(part: int, whole: int) -> int:
    """``part / whole`` in integer tenths of a percent (exact)."""
    return part * 1000 // whole if whole else 0


def _pct(part: int, whole: int) -> str:
    tenths = _tenths(part, whole)
    return f"{tenths // 10}.{tenths % 10}%"


def position_label(latency_ns: int, hist_doc: Dict) -> str:
    """Where *latency_ns* sits against a histogram doc's own percentile
    fields — the same fields the SLO report prints, so the two can
    never disagree."""
    for field, label in PERCENTILE_FIELDS:
        if latency_ns >= hist_doc.get(field, 0):
            return f">= {label} ({hist_doc.get(field, 0)} ns)"
    return f"< p50 ({hist_doc.get('p50', 0)} ns)"


def dominant_stage(span: Dict) -> Tuple[str, int]:
    """The stage carrying the most latency (ties: causal order wins)."""
    best_name, best_dur = span["stages"][0]
    for name, dur in span["stages"][1:]:
        if dur > best_dur:
            best_name, best_dur = name, dur
    return best_name, best_dur


def render_span(span: Dict, mechanism: str, section: Dict) -> List[str]:
    """The human rendering: header, stage table, verdict, percentile
    position, calibrated syscall profile."""
    latency = span["latency_ns"]
    kind_txt = "shed" if span["shed"] else "completed"
    if span["stalled"]:
        kind_txt = "stalled (abandoned by stall-shed detection)"
    lines = [
        f"exemplar {span['id']}  mechanism={mechanism}  {kind_txt}",
        f"  tenant={span['tenant']} kind={span['kind']} "
        f"ramp-stage={span['stage']} server={span['server']} "
        f"conn={span['conn']}",
        f"  arrival={span['arrival_ns']} ns  latency={latency} ns",
        "",
    ]
    for name, dur in span["stages"]:
        bar = "#" * (dur * BAR_WIDTH // latency if latency else 0)
        lines.append(f"  {name:<15} {dur:>12} ns  {_pct(dur, latency):>6}"
                     f"  {bar}")
    lines.append(f"  {'total':<15} {latency:>12} ns  100.0%")
    lines.append("")

    name, dur = dominant_stage(span)
    lines.append(f"  verdict: {_pct(dur, latency)} of {span['id']} is "
                 f"{name} (tenant {span['tenant']}, {span['kind']} "
                 f"request)")

    overall = section["latency_ns"]["overall"]
    per_tenant = section["latency_ns"]["per_tenant"].get(span["tenant"])
    per_kind = section["latency_ns"]["per_kind"].get(span["kind"])
    if not span["shed"]:
        lines.append(f"  position: {position_label(latency, overall)} "
                     f"overall")
        if per_tenant:
            lines.append(f"            "
                         f"{position_label(latency, per_tenant)} within "
                         f"tenant {span['tenant']}")
        if per_kind:
            lines.append(f"            "
                         f"{position_label(latency, per_kind)} within "
                         f"{span['kind']} requests")

    profile = (section.get("calibration", {}).get("kinds", {})
               .get(span["kind"], {}).get("syscalls"))
    if profile and profile.get("rows"):
        requests = max(1, profile["requests"])
        lines.append("")
        lines.append(f"  calibrated syscall sub-spans per {span['kind']} "
                     f"request ({mechanism}, {requests} calibration "
                     f"round trips):")
        lines.append(f"    {'phase:syscall':<28} {'calls/req':>9} "
                     f"{'cycles/req':>11}")
        for row in profile["rows"][:10]:
            rate = row["count"] * 10 // requests
            rate_txt = f"{rate // 10}.{rate % 10}"
            lines.append(
                f"    {row['phase'] + ':' + row['name']:<28} "
                f"{rate_txt:>9} {row['cycles'] // requests:>11}")
    return lines


def list_exemplars(report: SLOReport,
                   mechanism: Optional[str]) -> List[str]:
    lines = []
    names = [mechanism] if mechanism else sorted(report.mechanisms)
    for name in names:
        exemplars = report.exemplars(name)
        if not exemplars:
            lines.append(f"{name}: no exemplar section (run loadtest "
                         f"with --spans)")
            continue
        lines.append(f"{name} (shed_total={exemplars['shed_total']}):")
        for span in iter_spans(exemplars):
            flag = " shed" if span["shed"] else ""
            flag += " stalled" if span["stalled"] else ""
            lines.append(
                f"  {span['id']:<10} stage={span['stage']} "
                f"tenant={span['tenant']} kind={span['kind']} "
                f"latency={span['latency_ns']} ns{flag}")
    return lines


def _select(report: SLOReport, args) -> Optional[Tuple[str, Dict]]:
    """Resolve the target (mechanism, span) or None with a message."""
    if args.worst:
        names = [args.mechanism] if args.mechanism \
            else sorted(report.mechanisms)
        best: Optional[Tuple[str, Dict]] = None
        for name in names:
            exemplars = report.exemplars(name)
            if not exemplars:
                continue
            span = worst_span(exemplars)
            if span and (best is None
                         or span["latency_ns"] > best[1]["latency_ns"]):
                best = (name, span)
        return best
    found = report.find_exemplar(args.id, mechanism=args.mechanism)
    if found is None:
        return None
    return found["mechanism"], found["span"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sloexplain", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("id", nargs="?", metavar="EXEMPLAR_ID",
                        help="exemplar span ID (r-<index>)")
    parser.add_argument("--report", default=DEFAULT_OUTPUT, metavar="FILE",
                        help="METRICS_slo.json path (default %(default)s)")
    parser.add_argument("--mechanism", default=None,
                        help="narrow to one mechanism section")
    parser.add_argument("--list", action="store_true",
                        help="enumerate every retained exemplar")
    parser.add_argument("--worst", action="store_true",
                        help="explain the slowest completed exemplar")
    parser.add_argument("--perfetto", default=None, metavar="OUT",
                        help="also export the mechanism's exemplar span "
                        "trees as a Chrome/Perfetto trace file")
    parser.add_argument("--json", action="store_true",
                        help="print the span document, not the rendering")
    args = parser.parse_args(argv)
    try:
        return _run(args)
    except BrokenPipeError:
        # Output piped into head & co. — not an error.
        return 0


def _run(args) -> int:
    try:
        report = SLOReport.load(args.report)
    except (OSError, ValueError) as exc:
        print(f"sloexplain: {exc}", file=sys.stderr)
        return 2
    if args.mechanism and args.mechanism not in report.mechanisms:
        print(f"sloexplain: mechanism {args.mechanism!r} not in report "
              f"(has: {', '.join(sorted(report.mechanisms))})",
              file=sys.stderr)
        return 2

    if args.list:
        print("\n".join(list_exemplars(report, args.mechanism)))
        return 0
    if not args.id and not args.worst:
        print("sloexplain: give an EXEMPLAR_ID, --worst, or --list",
              file=sys.stderr)
        return 2

    selected = _select(report, args)
    if selected is None:
        wanted = args.id if args.id else "--worst"
        print(f"sloexplain: no exemplar {wanted} in {args.report} "
              f"(try --list)", file=sys.stderr)
        return 2
    mechanism, span = selected
    section = report.mechanisms[mechanism]

    if residual(span) != 0:
        print(f"sloexplain: ZERO-RESIDUAL VIOLATION on {span['id']}: "
              f"stages sum to {sum(d for _n, d in span['stages'])} ns "
              f"but latency is {span['latency_ns']} ns", file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps({"mechanism": mechanism, "span": span},
                         sort_keys=True, indent=2))
    else:
        print("\n".join(render_span(span, mechanism, section)))

    if args.perfetto:
        from repro.observability.export import (spans_to_chrome_trace,
                                                write_trace_doc)

        spans = list(iter_spans(report.exemplars(mechanism) or {}))
        doc = spans_to_chrome_trace(spans, mechanism=mechanism,
                                    workload=report.workload)
        path = write_trace_doc(doc, args.perfetto)
        print(f"perfetto: {len(spans)} exemplar span trees -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
