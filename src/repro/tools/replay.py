"""replay — record a run, or time-travel back into a recorded one.

Record a bundle::

    python -m repro replay --record --bundle B --mechanism K23-ultra \\
        --workload stress [--seed N] [--iterations N] [--interval N] \\
        [--errno-rate F] [--fault-signals N]

Replay to an event sequence number::

    python -m repro replay --bundle B --to-seq N [--step] [--json]

Replay restores the recorded machine from the nearest checkpoint at or
before ``--to-seq`` (recreating host objects by re-running premain on a
fresh same-config machine first) and re-executes forward, comparing the
replayed event suffix byte-for-byte against the recorded stream.  Exit
status: 0 when byte-identical, 1 on divergence or nondet-draw mismatch —
a reproducible determinism bug, with the first differing record printed.
``--to-seq`` takes the number ``tracediff``/analyzer verdicts report;
omit it to replay to the end of the recording.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro replay",
        description="record/replay with copy-on-write checkpoints")
    parser.add_argument("--bundle", required=True,
                        help="replay bundle directory (written by --record)")
    parser.add_argument("--record", action="store_true",
                        help="record a fresh run into --bundle instead of "
                             "replaying")
    parser.add_argument("--to-seq", type=int, default=None,
                        help="event sequence number to replay to "
                             "(default: end of recording)")
    parser.add_argument("--step", action="store_true",
                        help="print each replayed event record")
    parser.add_argument("--json", action="store_true",
                        help="print the result as one JSON object")
    parser.add_argument("--seed", type=int, default=0,
                        help="determinism seed (record mode)")
    parser.add_argument("--mechanism", default="K23-ultra",
                        help="interposition mechanism (record mode)")
    parser.add_argument("--workload", default="stress",
                        help="batch workload to record (record mode)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="stress-workload iterations (record mode)")
    parser.add_argument("--interval", type=int, default=None,
                        help="checkpoint interval in retired instructions "
                             "(record mode)")
    parser.add_argument("--errno-rate", type=float, default=0.0,
                        help="fault-injected transient-errno rate "
                             "(record mode)")
    parser.add_argument("--fault-signals", type=int, default=0,
                        help="fault-injected async signal count "
                             "(record mode)")
    parser.add_argument("--max-steps", type=int, default=None,
                        help="execution budget (record mode)")
    return parser


def _record(args) -> int:
    from repro.api import FaultConfig, RunConfig, build_schedule, run

    schedule = None
    if args.errno_rate > 0 or args.fault_signals > 0:
        schedule = build_schedule(args.seed, FaultConfig(
            errno_rate=args.errno_rate,
            signal_count=args.fault_signals))
    extra = {}
    if args.iterations is not None:
        extra["params"] = (("iterations", args.iterations),)
    if args.interval is not None:
        extra["checkpoint_interval"] = args.interval
    if args.max_steps is not None:
        extra["max_steps"] = args.max_steps
    result = run(RunConfig(mechanism=args.mechanism,
                           workload=args.workload, seed=args.seed,
                           schedule=schedule, record=args.bundle, **extra))
    from repro.replay.replayer import load_bundle

    meta = load_bundle(args.bundle).meta
    summary = {"bundle": args.bundle, "exit_status": result.exit_status,
               "final_seq": meta["final_seq"],
               "checkpoints": [cp["seq"] for cp in meta["checkpoints"]],
               "skipped_unsafe": meta.get("skipped_unsafe", 0)}
    if args.json:
        print(json.dumps(summary, sort_keys=True))
    else:
        print(f"recorded {args.workload}/{args.mechanism} seed "
              f"{args.seed} -> {args.bundle}: final seq "
              f"{summary['final_seq']}, "
              f"{len(summary['checkpoints'])} checkpoint(s) at "
              f"{summary['checkpoints']}, exit {result.exit_status}")
    return 0 if result.ok else 1


def _replay(args) -> int:
    from repro.replay.replayer import replay_bundle

    step = None
    if args.step:
        def step(record):
            print(json.dumps(record, sort_keys=True))
    result = replay_bundle(args.bundle, to_seq=args.to_seq, step=step)
    if args.json:
        print(json.dumps({
            "bundle": result.bundle, "to_seq": result.to_seq,
            "checkpoint_index": result.checkpoint_index,
            "checkpoint_seq": result.checkpoint_seq,
            "compared": result.compared, "ok": result.ok,
            "divergence": result.divergence,
            "nondet_mismatches": result.nondet_mismatches,
            "retired": result.retired}, sort_keys=True))
    else:
        print(result.summary())
        if result.divergence is not None:
            d = result.divergence
            print(f"first divergence at suffix index {d['index']}:")
            print(f"  recorded: {d['want']}")
            print(f"  replayed: {d['got']}")
        for mismatch in result.nondet_mismatches:
            print(f"nondet mismatch: recorded={mismatch['want']} "
                  f"replayed={mismatch['got']}")
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.record:
            return _record(args)
        return _replay(args)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
