"""Command-line tools built on the library.

- ``python -m repro.tools.simtrace`` — strace for the simulated machine:
  run a workload binary under any interposer and print its trace, the
  per-syscall histogram, and the coverage report.
- ``python -m repro.tools.pitfallcheck`` — grade any single interposer
  column against the pitfall PoCs (CI-style exit status).
- ``python -m repro.tools.evalrun`` — run the Table 5/6 evaluation matrix
  through the parallel, memoized pipeline (``--jobs``, ``--no-cache``,
  ``--smoke``, ``--list``).
"""
