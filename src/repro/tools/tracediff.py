"""tracediff — align two JSONL traces and report the first divergence.

Usage::

    python -m repro tracediff A.jsonl B.jsonl [--context N] [--strict-seq]

Records are aligned per ``(pid, tid)`` track in ``seq`` order: the k-th
record of a track in A is compared against the k-th record of the same
track in B.  Two same-seed runs produce identical traces (exit 0); any
difference — a header mismatch, a missing track, a length mismatch, or
a field-level record difference — is reported with the differing fields
and ``--context`` records of surrounding trace from both files
(exit 1).

The global ``seq`` value itself is interleave order, so a single extra
event early in one trace would shift every later record's seq without
the records themselves differing; ``seq`` is therefore excluded from
record comparison unless ``--strict-seq`` is given.
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Optional, Tuple

from repro.tools.traceio import by_track, load_records, split_header


def _render(record: Optional[Dict]) -> str:
    if record is None:
        return "<absent>"
    return json.dumps(record, sort_keys=True)


def _strip(record: Dict, strict_seq: bool) -> Dict:
    if strict_seq:
        return record
    return {k: v for k, v in record.items() if k != "seq"}


def _first_mismatch(a: List[Dict], b: List[Dict],
                    strict_seq: bool) -> Optional[int]:
    """Index of the first differing record in the aligned track pair
    (length differences count at the index where one side ends)."""
    for i in range(max(len(a), len(b))):
        ra = a[i] if i < len(a) else None
        rb = b[i] if i < len(b) else None
        if ra is None or rb is None:
            return i
        if _strip(ra, strict_seq) != _strip(rb, strict_seq):
            return i
    return None


def diff_traces(records_a: List[Dict], records_b: List[Dict],
                strict_seq: bool = False) -> List[Dict]:
    """Structured divergence list (empty = traces identical).

    Each entry: ``{"track", "index", "kind", "a", "b", "fields"}`` where
    *kind* is ``header`` / ``length`` / ``record`` and *fields* names the
    differing keys for record-level divergences.
    """
    divergences: List[Dict] = []
    header_a, body_a = split_header(records_a)
    header_b, body_b = split_header(records_b)
    stripped_a = _strip(header_a, strict_seq) if header_a else header_a
    stripped_b = _strip(header_b, strict_seq) if header_b else header_b
    if stripped_a != stripped_b:
        divergences.append({"track": ("global",), "index": 0,
                            "kind": "header", "a": header_a, "b": header_b,
                            "fields": sorted(
                                _differing_fields(header_a or {},
                                                  header_b or {},
                                                  include_seq=strict_seq))})
    tracks_a = by_track(body_a)
    tracks_b = by_track(body_b)
    for track in sorted(set(tracks_a) | set(tracks_b), key=str):
        a = tracks_a.get(track, [])
        b = tracks_b.get(track, [])
        index = _first_mismatch(a, b, strict_seq)
        if index is None:
            continue
        ra = a[index] if index < len(a) else None
        rb = b[index] if index < len(b) else None
        kind = "record" if ra is not None and rb is not None else "length"
        divergences.append({
            "track": track, "index": index, "kind": kind, "a": ra, "b": rb,
            "fields": sorted(_differing_fields(ra or {}, rb or {},
                                               include_seq=strict_seq)),
        })
    return divergences


def _differing_fields(a: Dict, b: Dict,
                      include_seq: bool = False) -> List[str]:
    keys = set(a) | set(b)
    return [k for k in keys if (include_seq or k != "seq")
            and a.get(k) != b.get(k)]


def _earliest(divergences: List[Dict]) -> Dict:
    """The divergence occurring first in emission order (min seq seen)."""

    def order(d: Dict) -> Tuple:
        records = [r for r in (d["a"], d["b"]) if r is not None]
        seq = min((r.get("seq", 0) for r in records), default=0)
        return (seq, str(d["track"]))

    return min(divergences, key=order)


def earliest_divergence(divergences: List[Dict]) -> Dict:
    """Public form of :func:`_earliest` — the shadow bundle writer and
    other consumers report the first divergence in emission order."""
    return _earliest(divergences)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tracediff", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace_a")
    parser.add_argument("trace_b")
    parser.add_argument("--context", type=int, default=3, metavar="N",
                        help="records of surrounding context (default 3)")
    parser.add_argument("--strict-seq", action="store_true",
                        help="include the global seq field in comparisons")
    args = parser.parse_args(argv)

    try:
        records_a = load_records(args.trace_a)
        records_b = load_records(args.trace_b)
    except (OSError, ValueError) as exc:
        print(f"tracediff: {exc}")
        return 2

    divergences = diff_traces(records_a, records_b,
                              strict_seq=args.strict_seq)
    if not divergences:
        tracks = len(by_track(split_header(records_a)[1]))
        print(f"traces identical: {len(records_a)} records, "
              f"{tracks} track(s)")
        return 0

    first = _earliest(divergences)
    track = first["track"]
    label = ("global" if track == ("global",)
             else f"pid={track[0]} tid={track[1]}")
    print(f"first divergence: track {label}, record #{first['index']} "
          f"({first['kind']})")
    if first["fields"]:
        print(f"  differing fields: {', '.join(first['fields'])}")
    print(f"  A: {_render(first['a'])}")
    print(f"  B: {_render(first['b'])}")
    if first["kind"] != "header" and args.context > 0:
        tracks_a = by_track(split_header(records_a)[1])
        tracks_b = by_track(split_header(records_b)[1])
        for name, side in (("A", tracks_a), ("B", tracks_b)):
            records = side.get(track, [])
            lo = max(0, first["index"] - args.context)
            hi = min(len(records), first["index"] + args.context + 1)
            print(f"  context {name} [{lo}:{hi}]:")
            for i in range(lo, hi):
                marker = ">>" if i == first["index"] else "  "
                print(f"  {marker} {_render(records[i])}")
    if len(divergences) > 1:
        print(f"\n{len(divergences) - 1} further divergent track(s):")
        for d in divergences:
            if d is first:
                continue
            print(f"  track {d['track']} record #{d['index']} ({d['kind']})")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
