"""pitfallcheck — grade an interposer against the pitfall PoCs.

Usage::

    python -m repro.tools.pitfallcheck [zpoline|lazypoline|K23|all]
                                       [--pitfall P1a ...] [--seed N]
                                       [--evidence] [--verdicts-out FILE]

Exit status 0 when every evaluated cell matches the paper's Table 3, 1
otherwise — a CI gate for the reproduction.  ``--verdicts-out`` writes
the analyzers' structured findings (evidence event windows included) as
JSON for artifact upload and post-mortem queries.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.pitfalls import (
    K23_KIT,
    LAZYPOLINE_KIT,
    PITFALL_IDS,
    ZPOLINE_KIT,
    evaluate_pitfall,
)
from repro.pitfalls.matrix import PAPER_TABLE3

KITS = {"zpoline": ZPOLINE_KIT, "lazypoline": LAZYPOLINE_KIT,
        "K23": K23_KIT}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pitfallcheck", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("interposer", nargs="?", default="all",
                        choices=[*KITS, "all"])
    parser.add_argument("--pitfall", action="append", choices=PITFALL_IDS,
                        help="restrict to specific pitfalls")
    parser.add_argument("--seed", type=int, default=11,
                        help="kernel seed for the PoC machines (default 11; "
                             "Table 3 verdicts must be seed-stable)")
    parser.add_argument("--evidence", action="store_true")
    parser.add_argument("--verdicts-out", metavar="FILE",
                        help="write structured analyzer verdicts as JSON")
    args = parser.parse_args(argv)

    kits = list(KITS.values()) if args.interposer == "all" \
        else [KITS[args.interposer]]
    pitfalls = args.pitfall or list(PITFALL_IDS)

    divergent = 0
    verdict_records = []
    for pitfall in pitfalls:
        for kit in kits:
            outcome = evaluate_pitfall(pitfall, kit, seed=args.seed)
            expected = PAPER_TABLE3[pitfall][kit.name]
            agrees = outcome.handled == expected
            divergent += 0 if agrees else 1
            verdict = "handled" if outcome.handled else "PITFALL"
            flag = "" if agrees else "  << diverges from paper"
            print(f"{pitfall:<4} {kit.name:<11} {verdict:<8}{flag}")
            if args.evidence:
                print(f"     {outcome.evidence}")
            record = {"pitfall": pitfall, "interposer": kit.name,
                      "handled": outcome.handled, "expected": expected,
                      "matches_paper": agrees, "evidence": outcome.evidence}
            if outcome.verdict is not None:
                record["verdict"] = outcome.verdict.to_dict()
            verdict_records.append(record)
    if args.verdicts_out:
        from repro.observability.analyzers import ANALYZER_SCHEMA_VERSION

        with open(args.verdicts_out, "w") as fh:
            json.dump({"schema_version": ANALYZER_SCHEMA_VERSION,
                       "cells": verdict_records}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nverdicts written to {args.verdicts_out}")
    if divergent:
        print(f"\n{divergent} cell(s) diverge from the paper's Table 3")
        return 1
    print("\nall evaluated cells match the paper's Table 3")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
