"""``python -m repro.tools.conformance`` — the differential conformance CLI.

Runs every registered interposition mechanism against the ``native``
null-interposer oracle on the stress/coreutils workloads under N seeded
fault schedules, prints the verdict matrix, writes the JSON artifact, and
exits non-zero on any divergence.  ``--both-modes`` repeats the matrix
with the block-translation cache disabled and additionally fails if any
cell's verdict differs between the two interpreter modes (schedule
determinism must hold across them).  ``--smoke`` shrinks the matrix to a
CI-sized corner (stress+cat, seeds 1-2); ``--jobs N`` fans the cells out
over a process pool (cell-for-cell identical to serial); ``--trace-out``
additionally records one representative cell through the instrumentation
bus and writes a Perfetto trace — the bus is observe-only, so verdicts
are byte-identical with tracing on or off.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.evaluation.conformance import (ARTIFACT_PATH, DEFAULT_SEEDS,
                                          DEFAULT_WORKLOADS, run_matrix)

SMOKE_WORKLOADS = ("stress", "cat")
SMOKE_SEEDS = (1, 2)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="conformance",
        description="Differential conformance of every registered "
                    "interposer vs the null-interposer oracle under "
                    "seeded fault schedules.")
    parser.add_argument("--seeds", type=int, default=len(DEFAULT_SEEDS),
                        help="number of fault-schedule seeds (default: "
                             f"{len(DEFAULT_SEEDS)}, i.e. seeds BASE.."
                             "BASE+N-1)")
    parser.add_argument("--seed", type=int, default=1, metavar="BASE",
                        help="first fault-schedule seed (default: 1)")
    parser.add_argument("--workloads", nargs="+",
                        default=list(DEFAULT_WORKLOADS),
                        help="workloads to run (default: "
                             f"{' '.join(DEFAULT_WORKLOADS)})")
    parser.add_argument("--mechanisms", nargs="+", default=None,
                        help="mechanisms to check (default: all registered)")
    parser.add_argument("--both-modes", action="store_true",
                        help="also run with the block cache disabled and "
                             "require identical verdicts")
    parser.add_argument("--out", default=str(ARTIFACT_PATH),
                        help=f"JSON artifact path (default: {ARTIFACT_PATH})")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized matrix: workloads "
                             f"{'+'.join(SMOKE_WORKLOADS)}, seeds "
                             f"{SMOKE_SEEDS[0]}-{SMOKE_SEEDS[-1]}")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the cell fan-out "
                             "(default: 1 — serial)")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write a Perfetto trace of one representative "
                             "cell (does not change any verdict)")
    parser.add_argument("--verbose", action="store_true",
                        help="print each cell verdict as it completes")
    args = parser.parse_args(argv)

    if args.smoke:
        workloads = list(SMOKE_WORKLOADS)
        seeds = list(SMOKE_SEEDS)
    else:
        workloads = args.workloads
        seeds = list(range(args.seed, args.seed + args.seeds))
    matrix = run_matrix(mechanisms=args.mechanisms,
                        workloads=workloads, seeds=seeds,
                        jobs=max(1, args.jobs),
                        verbose=args.verbose)
    print(matrix.render())
    artifact = matrix.write_artifact(args.out)
    print(f"\nartifact: {artifact}")
    status = 0 if matrix.ok else 1

    if args.trace_out is not None:
        from repro.faultinject.conformance import run_cell
        from repro.interposers.registry import REGISTRY
        from repro.observability.export import TraceSink, write_chrome_trace

        mech = next(m for m in (args.mechanisms or REGISTRY.names())
                    if m != "native")
        sink = TraceSink(mechanism=mech, workload=workloads[0])
        run_cell(mech, workloads[0], seeds[0], trace_sink=sink)
        written = write_chrome_trace(sink, args.trace_out)
        print(f"trace: {written} (cell: {mech}/{workloads[0]}"
              f"/seed={seeds[0]})")

    if args.both_modes:
        print("\nre-running with block cache disabled...")
        nocache = run_matrix(mechanisms=args.mechanisms,
                             workloads=workloads, seeds=seeds,
                             block_cache=False, jobs=max(1, args.jobs),
                             verbose=args.verbose)
        if not nocache.ok:
            print(nocache.render())
            status = 1
        mismatches = [key for key, ok in matrix.verdict_map().items()
                      if nocache.verdict_map()[key] != ok]
        if mismatches:
            print("verdicts differ across interpreter modes:")
            for mech, wl, seed in mismatches:
                print(f"  - {mech}/{wl}/seed={seed}")
            status = 1
        else:
            print("block-cache-off verdicts identical: OK")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
