"""Shared JSONL trace reading for ``tracediff`` and ``traceq``.

A trace is what :class:`repro.observability.sinks.StreamingJSONLSink`
writes: line 0 a ``TraceMeta`` header, then one JSON object per bus
event with ``seq``/``type`` fields, optionally a final ``ChargeSummary``.
v1 traces (no header, no seq) still load — the header comes back as
``None`` and records keep their file order — so the tools can diff old
artifacts against new ones and say *why* they differ.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional, Tuple


def load_records(path: str) -> List[Dict]:
    """Parse every line of *path* (``-`` = stdin) as one JSON object."""
    if path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(path) as fh:
            lines = fh.read().splitlines()
    records = []
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno + 1}: not JSON: {exc}") from None
    return records


def split_header(records: List[Dict]) -> Tuple[Optional[Dict], List[Dict]]:
    """Separate the ``TraceMeta`` header (None for v1 traces) from the body."""
    if records and records[0].get("type") == "TraceMeta":
        return records[0], records[1:]
    return None, records


def track_of(record: Dict) -> Tuple:
    """The (pid, tid) track a record belongs to; global records (header,
    charge summary) share the ``("global",)`` track."""
    if "pid" in record and "tid" in record:
        return (record["pid"], record["tid"])
    return ("global",)


def by_track(records: List[Dict]) -> Dict[Tuple, List[Dict]]:
    """Group body records into per-(pid, tid) tracks, preserving seq order
    (file order for v1 traces, which carry no seq)."""
    tracks: Dict[Tuple, List[Dict]] = {}
    for record in records:
        tracks.setdefault(track_of(record), []).append(record)
    for track in tracks.values():
        track.sort(key=lambda r: r.get("seq", 0))
    return tracks
