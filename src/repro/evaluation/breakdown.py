"""Where-the-cycles-went decomposition.

Any run can be decomposed into its cost sources — the analysis §6.2.1 does
narratively ("the performance degradation ... stems primarily from relying
on SUD as a fallback mechanism") becomes a table.  Used by the
microbenchmark analysis bench and available for any workload.

The decomposition is driven entirely by the instrumentation bus
(:mod:`repro.observability`): a :class:`~repro.observability.sinks.CounterSink`
listens for the whole run, so modelled charges (``CycleCharge``) and raw
charges (``RawCycles``, e.g. ``io-data-copy`` / ``sud-contention``) are
both attributed.  That makes the accounting *exact*: the sum of every
column equals the cycle-counter delta, with no residual — the invariant
``tests/evaluation/test_breakdown_invariant.py`` pins for every mechanism,
with and without fault injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.cpu.cycles import Event
from repro.kernel import Kernel


@dataclass(frozen=True)
class Decomposition:
    """Differential cycle attribution for one mechanism.

    Attributes:
        mechanism: registry name the run was interposed with.
        rows: modelled cycle-model events → ``(count, cycles)``.
        raw: raw-charge labels (``io-data-copy`` ...) → ``(charges, cycles)``.
        total: cycle-counter delta between the two runs — the ground truth
            the columns must sum to.
    """

    mechanism: str
    rows: Dict[Event, Tuple[int, int]] = field(default_factory=dict)
    raw: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    total: int = 0

    @property
    def columns_total(self) -> int:
        """Sum of every attributed column (modelled + raw)."""
        return (sum(cycles for _n, cycles in self.rows.values())
                + sum(cycles for _n, cycles in self.raw.values()))

    @property
    def residual(self) -> int:
        """Cycles the columns fail to account for — zero by invariant."""
        return self.total - self.columns_total


def _counts_for(name: str, iterations: int, seed: int,
                fault_config=None, fault_seed: int = 0,
                extra_sinks: Tuple = ()):
    """One stress run under *name* with a CounterSink attached for its whole
    lifetime; returns ``(sink, final cycle counter)``.  *extra_sinks*
    (e.g. a :class:`~repro.observability.analyzers.LatencyAnalyzer`)
    listen over the same run."""
    from repro.core import OfflinePhase
    from repro.core.offline import import_logs
    from repro.evaluation.runner import needs_offline
    from repro.interposers.registry import REGISTRY
    from repro.observability.sinks import CounterSink
    from repro.workloads.stress import STRESS_PATH, build_stress

    kernel = Kernel(seed=seed)
    kernel.torn_window_probability = 0.0
    sink = CounterSink()
    kernel.bus.attach(sink)
    for extra in extra_sinks:
        kernel.bus.attach(extra)
    build_stress(iterations).register(kernel)
    if needs_offline(name):
        offline_kernel = Kernel(seed=seed + 1)
        build_stress(16).register(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        offline.run(STRESS_PATH)
        import_logs(kernel, offline.export())
    REGISTRY.create(name, kernel)
    if fault_config is not None:
        from repro.faultinject.engine import FaultInjector
        from repro.faultinject.schedule import build_schedule

        FaultInjector(kernel, build_schedule(fault_seed, fault_config))
    process = kernel.spawn_process(STRESS_PATH)
    kernel.run_process(process, max_steps=50_000_000)
    if not process.exited or process.exit_status != 0:
        raise RuntimeError(f"decomposition run failed under {name}")
    return sink, kernel.cycles.cycles


def decompose(name: str, iterations: int = 800, seed: int = 85,
              fault_config=None, fault_seed: int = 0) -> Decomposition:
    """Differential decomposition, like Table 5's measurement: two runs
    with different iteration counts, subtracted — one-time startup costs
    (the K23 ptrace stage, zpoline's load-time rewrites) cancel and only
    the per-call regime remains.

    Pass a :class:`~repro.faultinject.schedule.FaultConfig` to decompose a
    fault-injected run; the accounting invariant holds there too (a SIGSYS
    landing inside an interposer critical window is deferred, not
    double-charged — see ``Kernel.deliver_signal``).
    """
    low_sink, low_total = _counts_for(name, iterations // 4, seed,
                                      fault_config, fault_seed)
    high_sink, high_total = _counts_for(name, iterations + iterations // 4,
                                        seed, fault_config, fault_seed)
    rows: Dict[Event, Tuple[int, int]] = {}
    for event in Event:
        count = (high_sink.charge_counts[event.value]
                 - low_sink.charge_counts[event.value])
        cycles = (high_sink.charge_cycles[event.value]
                  - low_sink.charge_cycles[event.value])
        if count or cycles:
            rows[event] = (count, cycles)
    raw: Dict[str, Tuple[int, int]] = {}
    for label in sorted(set(high_sink.raw_cycles) | set(low_sink.raw_cycles)):
        count = high_sink.raw_counts[label] - low_sink.raw_counts[label]
        cycles = high_sink.raw_cycles[label] - low_sink.raw_cycles[label]
        if count or cycles:
            raw[label] = (count, cycles)
    return Decomposition(mechanism=name, rows=rows, raw=raw,
                         total=high_total - low_total)


def run_decomposed(name: str, iterations: int = 800, seed: int = 85
                   ) -> Dict[Event, Tuple[int, int]]:
    """Steady-state per-event ``(count, cycles)`` for *iterations* of the
    stress loop under mechanism *name* (the modelled-event view of
    :func:`decompose`)."""
    return decompose(name, iterations=iterations, seed=seed).rows


def render_breakdown(name: str,
                     breakdown: Union[Decomposition,
                                      Dict[Event, Tuple[int, int]]]) -> str:
    """Render a decomposition table; accepts either the full
    :class:`Decomposition` (raw columns included) or the bare event rows."""
    if isinstance(breakdown, Decomposition):
        items = list(breakdown.rows.items()) + list(breakdown.raw.items())
        total = breakdown.total
    else:
        items = list(breakdown.items())
        total = sum(cycles for _event, (_count, cycles) in items)
    lines = [f"cycle decomposition: {name}",
             f"{'event':<24} {'count':>10} {'cycles':>12} {'share':>7}",
             "-" * 58]
    for event, (count, cycles) in sorted(items, key=lambda item: -item[1][1]):
        label = event.value if isinstance(event, Event) else event
        share = 100.0 * cycles / total if total else 0.0
        lines.append(f"{label:<24} {count:>10,} {cycles:>12,} "
                     f"{share:>6.1f}%")
    lines.append(f"{'total':<24} {'':>10} {total:>12,}")
    return "\n".join(lines)


def dominant_event(breakdown: Dict[Event, Tuple[int, int]],
                   exclude: Tuple[Event, ...] = (Event.INSTRUCTION,
                                                 Event.KERNEL_SYSCALL)
                   ) -> Optional[Event]:
    """The costliest event outside baseline execution — the mechanism's
    characteristic expense."""
    if isinstance(breakdown, Decomposition):
        breakdown = breakdown.rows
    candidates = [(cycles, event.value, event) for event, (_count, cycles)
                  in breakdown.items() if event not in exclude]
    if not candidates:
        return None
    return max(candidates)[2]
