"""Where-the-cycles-went decomposition.

The cycle model keeps per-event counters, so any run can be decomposed into
its cost sources — the analysis §6.2.1 does narratively ("the performance
degradation ... stems primarily from relying on SUD as a fallback
mechanism") becomes a table.  Used by the microbenchmark analysis bench and
available for any workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cpu.cycles import Event
from repro.kernel import Kernel


def _counts_for(name: str, iterations: int, seed: int) -> Dict[Event, int]:
    from repro.core import OfflinePhase
    from repro.core.offline import import_logs
    from repro.evaluation.runner import make_interposer, needs_offline
    from repro.workloads.stress import STRESS_PATH, build_stress

    kernel = Kernel(seed=seed)
    kernel.torn_window_probability = 0.0
    build_stress(iterations).register(kernel)
    if needs_offline(name):
        offline_kernel = Kernel(seed=seed + 1)
        build_stress(16).register(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        offline.run(STRESS_PATH)
        import_logs(kernel, offline.export())
    make_interposer(name, kernel)
    process = kernel.spawn_process(STRESS_PATH)
    kernel.run_process(process, max_steps=50_000_000)
    if not process.exited or process.exit_status != 0:
        raise RuntimeError(f"decomposition run failed under {name}")
    return kernel.cycles.snapshot()


def run_decomposed(name: str, iterations: int = 800, seed: int = 85
                   ) -> Dict[Event, Tuple[int, int]]:
    """Steady-state per-event ``(count, cycles)`` for *iterations* of the
    stress loop under mechanism *name*.

    Differential, like Table 5's measurement: two runs with different
    iteration counts, subtracted — so one-time startup costs (the K23
    ptrace stage, zpoline's load-time rewrites) cancel and only the
    per-call regime remains.
    """
    low = _counts_for(name, iterations // 4, seed)
    high = _counts_for(name, iterations + iterations // 4, seed)
    from repro.cpu.cycles import DEFAULT_COSTS

    breakdown: Dict[Event, Tuple[int, int]] = {}
    for event in Event:
        count = high[event] - low[event]
        if count:
            breakdown[event] = (count, count * DEFAULT_COSTS[event])
    return breakdown


def render_breakdown(name: str,
                     breakdown: Dict[Event, Tuple[int, int]]) -> str:
    total = sum(cycles for _count, cycles in breakdown.values())
    lines = [f"cycle decomposition: {name}",
             f"{'event':<24} {'count':>10} {'cycles':>12} {'share':>7}",
             "-" * 58]
    ordered = sorted(breakdown.items(), key=lambda item: -item[1][1])
    for event, (count, cycles) in ordered:
        share = 100.0 * cycles / total if total else 0.0
        lines.append(f"{event.value:<24} {count:>10,} {cycles:>12,} "
                     f"{share:>6.1f}%")
    lines.append(f"{'total':<24} {'':>10} {total:>12,}")
    return "\n".join(lines)


def dominant_event(breakdown: Dict[Event, Tuple[int, int]],
                   exclude: Tuple[Event, ...] = (Event.INSTRUCTION,
                                                 Event.KERNEL_SYSCALL)
                   ) -> Optional[Event]:
    """The costliest event outside baseline execution — the mechanism's
    characteristic expense."""
    candidates = [(cycles, event) for event, (_count, cycles)
                  in breakdown.items() if event not in exclude]
    if not candidates:
        return None
    return max(candidates)[1]
