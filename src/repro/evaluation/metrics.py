"""Per-mechanism instrumentation-bus metrics → ``METRICS_*.json``.

Each registered mechanism gets a short, deterministic stress run with a
:class:`~repro.observability.sinks.CounterSink` **and** a
:class:`~repro.observability.analyzers.LatencyAnalyzer` attached for the
whole kernel lifetime; the snapshots (event tallies, per-cycle-model-
event charge counts/cycles, raw-label cycles, per-syscall histograms,
and per-(phase, syscall) latency distributions with p50/p95/p99/max)
land next to the other evaluation artifacts in ``benchmarks/output/``.
These are the machine-readable companions to Table 5: the decomposition
tables are *derived* views, the metrics artifact is the raw counter dump
— and the ``latency`` section is what flat counters cannot show, the
*distribution* of each phase's forwarding cost.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Sequence

METRICS_TABLE5_PATH = Path("benchmarks/output/METRICS_table5.json")


def collect_mechanism_metrics(mechanisms: Optional[Sequence[str]] = None,
                              iterations: int = 120,
                              seed: int = 99) -> Dict:
    """Counter snapshots for every (or the given) registered mechanism."""
    from repro.cpu.cycles import CLOCK_HZ
    from repro.evaluation.breakdown import _counts_for
    from repro.interposers.registry import REGISTRY
    from repro.observability.analyzers import LatencyAnalyzer

    names = tuple(mechanisms) if mechanisms is not None else REGISTRY.names()
    per_mechanism = {}
    for name in names:
        latency = LatencyAnalyzer()
        sink, total = _counts_for(name, iterations, seed,
                                  extra_sinks=(latency,))
        snapshot = sink.snapshot()
        snapshot["cycle_counter"] = total
        snapshot["latency"] = latency.snapshot()
        per_mechanism[name] = snapshot
    return {
        "workload": "stress",
        "iterations": iterations,
        "seed": seed,
        "clock_hz": CLOCK_HZ,
        "mechanisms": per_mechanism,
    }


def write_metrics(doc: Dict, path=METRICS_TABLE5_PATH) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
