"""Sensitivity analysis: are the reproduced conclusions calibration-proof?

The cycle model's constants were calibrated against the paper's Table 5
(DESIGN.md §4).  A fair question is whether the *qualitative* conclusions —
who wins, where SUD collapses, which variant costs what — depend on those
exact values.  This module perturbs each calibrated constant across a
range and re-derives the microbenchmark analytically (the per-mechanism
event counts per call are fixed by each design, so the overhead is a
closed-form function of the costs), then checks the paper's ordering
invariants at every point.

Per-call event counts (validated against the simulator by
``tests/evaluation/test_sensitivity.py``):

====================  =============================================
mechanism             events per syscall-500 invocation
====================  =============================================
native                loop instructions + KERNEL
zpoline-default       + 4 insns + SLED + ZPOLINE_HANDLER
zpoline-ultra         + BITMAP_CHECK
SUD-no-interposition  + SLOWPATH
K23-default           + SLOWPATH + 4 insns + SLED + K23 + 2×SEL
lazypoline            + SLOWPATH + 4 insns + SLED + LAZY + 2×SEL
K23-ultra(+)          + HASHSET (+ STACK_SWITCH)
SUD                   + SLOWPATH×2 + KERNEL + DELIVERY + SIGRETURN
                      + 2×SEL
====================  =============================================
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.cpu.cycles import DEFAULT_COSTS, Event

#: Instructions per microbenchmark iteration outside the kernel (loop body,
#: libc shim, wrapper) — measured once from the simulator.
NATIVE_INSNS = 15

#: Extra instructions on the rewritten path (callq, sled batch, hostcall,
#: ret).
TRAMPOLINE_INSNS = 4


def analytic_micro(costs: Dict[Event, int]) -> Dict[str, float]:
    """Closed-form per-call cycles for every mechanism under *costs*."""
    c = costs
    native = NATIVE_INSNS * c[Event.INSTRUCTION] + c[Event.KERNEL_SYSCALL]
    trampoline = (TRAMPOLINE_INSNS * c[Event.INSTRUCTION]
                  + c[Event.TRAMPOLINE_SLED])
    sud_floor = c[Event.SUD_ARMED_SLOWPATH]
    selector = 2 * c[Event.SUD_SELECTOR_WRITE]
    per_call = {
        "native": native,
        "zpoline-default": native + trampoline + c[Event.ZPOLINE_HANDLER],
        "SUD-no-interposition": native + sud_floor,
        "K23-default": (native + sud_floor + trampoline
                        + c[Event.K23_HANDLER] + selector),
        "lazypoline": (native + sud_floor + trampoline
                       + c[Event.LAZYPOLINE_HANDLER] + selector),
        "SUD": (native + sud_floor * 2 + c[Event.KERNEL_SYSCALL]
                + c[Event.SIGNAL_DELIVERY] + c[Event.SIGRETURN] + selector),
    }
    per_call["zpoline-ultra"] = (per_call["zpoline-default"]
                                 + c[Event.BITMAP_CHECK])
    per_call["K23-ultra"] = per_call["K23-default"] + c[Event.HASHSET_CHECK]
    per_call["K23-ultra+"] = per_call["K23-ultra"] + c[Event.STACK_SWITCH]
    return per_call


#: The paper's qualitative claims, as ordering predicates over per-call
#: cycles.  Each must hold at every perturbation point.
def invariants_hold(per_call: Dict[str, float]) -> List[str]:
    """Returns the list of violated invariants (empty = all hold)."""
    violations = []

    def check(name: str, condition: bool) -> None:
        if not condition:
            violations.append(name)

    check("zpoline fastest interposer",
          per_call["zpoline-ultra"] < min(per_call["K23-default"],
                                          per_call["lazypoline"]))
    check("K23-default beats lazypoline",
          per_call["K23-default"] < per_call["lazypoline"])
    check("armed-SUD floor under K23",
          per_call["K23-default"] > per_call["SUD-no-interposition"])
    check("checks cost something",
          per_call["K23-ultra"] > per_call["K23-default"]
          and per_call["zpoline-ultra"] > per_call["zpoline-default"])
    check("SUD collapse (>5x everyone else)",
          per_call["SUD"] > 5 * per_call["K23-ultra+"])
    return violations


#: Constants perturbed and the multiplier range swept.
SWEPT_CONSTANTS: Tuple[Event, ...] = (
    Event.KERNEL_SYSCALL,
    Event.SUD_ARMED_SLOWPATH,
    Event.SIGNAL_DELIVERY,
    Event.SIGRETURN,
    Event.TRAMPOLINE_SLED,
    Event.ZPOLINE_HANDLER,
    Event.LAZYPOLINE_HANDLER,
    Event.K23_HANDLER,
    Event.BITMAP_CHECK,
    Event.HASHSET_CHECK,
)

MULTIPLIERS: Tuple[float, ...] = (0.5, 0.7, 1.0, 1.5, 2.0)


def sweep() -> List[Tuple[str, float, List[str]]]:
    """Perturb each constant over MULTIPLIERS; returns
    ``(event, multiplier, violations)`` triples."""
    results = []
    for event in SWEPT_CONSTANTS:
        for multiplier in MULTIPLIERS:
            costs = dict(DEFAULT_COSTS)
            costs[event] = max(1, int(costs[event] * multiplier))
            per_call = analytic_micro(costs)
            results.append((event.value, multiplier,
                            invariants_hold(per_call)))
    return results


def render_sweep(results) -> str:
    lines = ["Sensitivity: paper-ordering invariants under cost perturbation",
             f"({len(results)} points: "
             f"{len(SWEPT_CONSTANTS)} constants x {len(MULTIPLIERS)} "
             f"multipliers)", ""]
    broken = [r for r in results if r[2]]
    if not broken:
        lines.append("all invariants hold at every point.")
    else:
        for event, multiplier, violations in broken:
            lines.append(f"  {event} x{multiplier}: "
                         f"violated {', '.join(violations)}")
    return "\n".join(lines)
