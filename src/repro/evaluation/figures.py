"""Generators for the paper's figures.

The figures are structural/illustrative in the paper; here each is
regenerated from live simulator state:

- **Figure 1** — anatomy of misidentification: a program containing valid
  sites, partial-instruction bytes, and data resembling ``syscall``,
  annotated with what each discovery strategy (byte scan, linear sweep)
  reports.
- **Figure 2** — the offline-phase event flow, from libLogger's timeline.
- **Figure 3** — the generated log file for ``ls`` (the paper shows the
  literal file contents).
- **Figure 4** — the online-phase event flow, from K23's timeline plus the
  per-path interposition counts (rewritten fast path vs SUD fallback).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.arch import (
    SiteKind,
    classify_syscall_sites,
    find_syscall_sites_bytescan,
    find_syscall_sites_linear,
)
from repro.arch.registers import Reg
from repro.core import OfflinePhase
from repro.core.offline import import_logs
from repro.interposers.registry import REGISTRY
from repro.kernel import Kernel
from repro.kernel.syscalls import Nr
from repro.workloads.coreutils import install_coreutils
from repro.workloads.programs import ProgramBuilder, data_ref


# ------------------------------------------------------------------ Figure 1


def _figure1_program() -> ProgramBuilder:
    builder = ProgramBuilder("/bin/figure1")
    builder.start()
    asm = builder.asm
    asm.mov_ri(Reg.RAX, int(Nr.getpid))
    asm.mark("valid_site_1")
    asm.syscall_()
    # Partial instruction: syscall opcode bytes inside a mov immediate.
    asm.mark("partial_instruction")
    asm.mov_ri(Reg.RBX, 0x0000_9000_0000_050F, width=64)
    asm.jmp("after_data")
    # Embedded data (jump-table idiom) resembling a syscall.
    asm.label("embedded_data")
    asm.raw(b"\x0f\x05\x0f\x34")
    asm.label("after_data")
    asm.mov_ri(Reg.RAX, int(Nr.gettid))
    asm.mark("valid_site_2")
    asm.syscall_()
    builder.exit(0)
    return builder


def figure1() -> str:
    """Figure 1: what each discovery strategy believes about the program."""
    builder = _figure1_program()
    image = builder.build()
    code = image.blob[: image.code_size]
    asm = builder.asm
    true_sites = [asm.marks["valid_site_1"], asm.marks["valid_site_2"]]
    scan = find_syscall_sites_bytescan(code)
    sweep = find_syscall_sites_linear(code)
    graded = classify_syscall_sites(scan, true_sites, asm.data_spans)

    lines = [
        "Figure 1: valid syscall/sysenter instructions vs partial",
        "instructions and embedded data (byte-scan candidates, graded):",
        "",
        f"{'offset':>8}  {'bytes':<8} {'ground truth':<42} scan sweep",
        "-" * 76,
    ]
    sweep_set = set(sweep)
    for offset, kind in graded:
        raw = code[offset:offset + 2].hex(" ")
        mark = {"VALID": "valid syscall/sysenter instruction",
                "PARTIAL": "partial instruction (opcode inside another)",
                "DATA": "data resembling a syscall instruction"}[kind.name]
        lines.append(
            f"{offset:>8}  {raw:<8} {mark:<42} hit  "
            f"{'hit' if offset in sweep_set else 'miss'}")
    lines += [
        "",
        f"byte scan reported {len(scan)} sites "
        f"({sum(1 for _o, k in graded if k is SiteKind.VALID)} valid, "
        f"{sum(1 for _o, k in graded if k is SiteKind.PARTIAL)} partial, "
        f"{sum(1 for _o, k in graded if k is SiteKind.DATA)} data)",
        f"linear sweep reported {len(sweep)} sites",
        "rewriting either over-approximation corrupts code or data (P3a).",
    ]
    return "\n".join(lines)


# ------------------------------------------------------------------ Figure 2


def figure2(seed: int = 8) -> str:
    """Figure 2: offline-phase flow for one traced run (ls)."""
    kernel = Kernel(seed=seed)
    install_coreutils(kernel, names=["/usr/bin/ls"])
    offline = OfflinePhase(kernel)
    process, log = offline.run("/usr/bin/ls")
    lines = [
        "Figure 2: K23 offline phase — main steps",
        "",
        "(1) application issues a system call",
        "(2) kernel traps it (SUD) and redirects to libLogger's SIGSYS",
        "    handler; the selector disables re-dispatch",
        "(3) libLogger resolves the triggering instruction via",
        "    /proc/$PID/maps and records the unique (region, offset) pair",
        "(4) libLogger invokes the original call, re-enables dispatch,",
        "    and returns its result to the application",
        "",
        "event trace (first records):",
    ]
    for step, detail in offline.logger.timeline[:12]:
        lines.append(f"  {step:<6} {detail}")
    lines.append(f"  ... {len(log)} unique sites logged for ls")
    return "\n".join(lines)


# ------------------------------------------------------------------ Figure 3


def figure3(seed: int = 8) -> Tuple[str, str]:
    """Figure 3: the literal log file generated for ls.

    Returns ``(log_path, file_contents)``.
    """
    kernel = Kernel(seed=seed)
    install_coreutils(kernel, names=["/usr/bin/ls"])
    offline = OfflinePhase(kernel)
    offline.run("/usr/bin/ls")
    paths = offline.persist()
    return paths[0], kernel.vfs.read(paths[0]).decode()


# ------------------------------------------------------------------ Figure 4


def figure4(seed: int = 8) -> str:
    """Figure 4: online-phase flow — ptracer stage, handoff, selective
    rewrite, and the two interposition paths."""
    offline_kernel = Kernel(seed=seed)
    install_coreutils(offline_kernel, names=["/usr/bin/ls"])
    offline = OfflinePhase(offline_kernel)
    offline.run("/usr/bin/ls")

    kernel = Kernel(seed=seed + 1)
    install_coreutils(kernel, names=["/usr/bin/ls"])
    import_logs(kernel, offline.export())
    k23 = REGISTRY.create("K23-ultra", kernel)
    process = kernel.spawn_process("/usr/bin/ls")
    kernel.run_process(process)

    vias: Dict[str, int] = {}
    for _nr, via in k23.handled.get(process.pid, []):
        vias[via] = vias.get(via, 0) + 1
    lines = [
        "Figure 4: K23 online phase — main steps",
        "",
        "ptracer: interposes every syscall before/during library loading,",
        "         then detaches once libK23 signals readiness.",
        "libK23:  installs the trampoline, performs one selective rewrite",
        "         of offline-logged sites, arms the SUD fallback.",
        "",
        "event trace:",
    ]
    for step, detail in k23.timeline:
        lines.append(f"  {step:<32} {detail}")
    lines += [
        "",
        "interposition paths for this run:",
        f"  ptrace (startup)        : {vias.get('ptrace', 0):>5} syscalls",
        f"  rewritten fast path (5-7): {vias.get('rewrite', 0):>5} syscalls",
        f"  SUD fallback (5'-7')     : {vias.get('sud', 0):>5} syscalls",
        f"  uninterposed             : "
        f"{len(kernel.uninterposed_syscalls(process.pid)):>5} syscalls",
    ]
    return "\n".join(lines)
