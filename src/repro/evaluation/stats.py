"""Statistics per the paper's §6.2 methodology.

"Each experiment was executed 10 times; we discarded the maximum and
minimum values as outliers, then computed the geometric mean ... To capture
variability, we also report the standard deviation as a percentage of the
mean."

The simulated machine is deterministic, so true run-to-run variance does
not arise; we model measurement noise as seeded multiplicative jitter with
the magnitude the paper reports (std ≈ 0.04–1 % depending on workload).
Each "run" perturbs the deterministic measurement by an i.i.d. factor; the
outlier-drop/geomean pipeline then operates exactly as on hardware.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Sequence

#: Default relative noise (σ) for microbenchmarks (paper: ±0.03–0.08 %).
MICRO_SIGMA = 0.0005

#: Default relative noise for macrobenchmarks (paper: ±0.1–1.8 %).
MACRO_SIGMA = 0.005


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (requires positive values)."""
    if not values:
        raise ValueError("geomean of empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def drop_outliers(values: Sequence[float]) -> List[float]:
    """Remove one minimum and one maximum (the paper's outlier rule)."""
    if len(values) <= 2:
        return list(values)
    ordered = sorted(values)
    return ordered[1:-1]


def std_percent(values: Sequence[float]) -> float:
    """Standard deviation as a percentage of the arithmetic mean."""
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return 100.0 * math.sqrt(variance) / mean if mean else 0.0


@dataclass
class RepeatedMeasurement:
    """One deterministic measurement expanded into the paper's 10-run
    protocol with modelled noise.

    Attributes:
        value: the deterministic simulator measurement.
        runs: number of modelled repetitions.
        sigma: relative noise per run.
        seed: noise stream seed (distinct per experiment cell so the same
            deterministic value yields distinct-but-reproducible samples).
    """

    value: float
    runs: int = 10
    sigma: float = MICRO_SIGMA
    seed: int = 0
    samples: List[float] = field(init=False)

    def __post_init__(self) -> None:
        rng = random.Random(self.seed)
        self.samples = [self.value * (1.0 + rng.gauss(0.0, self.sigma))
                        for _ in range(self.runs)]

    @property
    def kept(self) -> List[float]:
        return drop_outliers(self.samples)

    @property
    def geomean(self) -> float:
        return geomean(self.kept)

    @property
    def std_pct(self) -> float:
        return std_percent(self.kept)


def ratio_measurement(numerator: float, denominator: float, seed: int,
                      runs: int = 10, sigma: float = MICRO_SIGMA
                      ) -> RepeatedMeasurement:
    """A repeated measurement of ``numerator/denominator`` (overhead or
    relative-throughput cell)."""
    return RepeatedMeasurement(value=numerator / denominator, runs=runs,
                               sigma=sigma, seed=seed)
