"""Evaluation harness: the paper's §6 methodology and every table/figure.

- :mod:`repro.evaluation.stats` — 10-run repetition with min/max outlier
  drop, geometric means, std-% reporting, and the seeded measurement-noise
  model (the simulator is deterministic; run-to-run variance is modelled).
- :mod:`repro.evaluation.runner` — micro/macro measurement drivers over the
  mechanism registry (:mod:`repro.interposers.registry`).
- :mod:`repro.evaluation.pipeline` — the parallel, memoized evaluation
  pipeline (``ScenarioSpec`` cells, multiprocessing pool, deterministic
  merge).
- :mod:`repro.evaluation.cache` — the content-addressed on-disk result
  cache the pipeline memoizes through.
- :mod:`repro.evaluation.tables` — Table 2/3/4/5/6 renderers.
- :mod:`repro.evaluation.figures` — Figure 1–4 generators.
- :mod:`repro.evaluation.experiments` — the CLI
  (``python -m repro.evaluation.experiments <table2|...|figure4|all>``,
  with ``--jobs``/``--no-cache``/``--smoke``).
"""

from repro.evaluation.stats import RepeatedMeasurement, geomean
from repro.evaluation.runner import (
    measure_micro_cycles,
    micro_overheads,
    MacroConfig,
    MACRO_CONFIGS,
    measure_macro,
    macro_results,
)


def __getattr__(name: str):
    # Back-compat: ``repro.evaluation.MECHANISMS`` resolves through the
    # runner's deprecation shim (DeprecationWarning; use
    # repro.interposers.registry.REGISTRY.names() instead).
    if name == "MECHANISMS":
        from repro.evaluation import runner

        return runner.MECHANISMS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
from repro.evaluation.cache import ResultCache
from repro.evaluation.pipeline import (
    CellResult,
    PipelineRun,
    PipelineStats,
    ScenarioSpec,
    full_matrix_specs,
    macro_specs,
    micro_specs,
    run_cells,
    table5_overheads,
    table6_rows,
)

__all__ = [
    "RepeatedMeasurement",
    "geomean",
    "MECHANISMS",
    "measure_micro_cycles",
    "micro_overheads",
    "MacroConfig",
    "MACRO_CONFIGS",
    "measure_macro",
    "macro_results",
    "ResultCache",
    "CellResult",
    "PipelineRun",
    "PipelineStats",
    "ScenarioSpec",
    "full_matrix_specs",
    "macro_specs",
    "micro_specs",
    "run_cells",
    "table5_overheads",
    "table6_rows",
]
