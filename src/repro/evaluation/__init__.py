"""Evaluation harness: the paper's §6 methodology and every table/figure.

- :mod:`repro.evaluation.stats` — 10-run repetition with min/max outlier
  drop, geometric means, std-% reporting, and the seeded measurement-noise
  model (the simulator is deterministic; run-to-run variance is modelled).
- :mod:`repro.evaluation.runner` — mechanism registry (the 8 evaluated
  configurations) and the micro/macro measurement drivers.
- :mod:`repro.evaluation.tables` — Table 2/3/4/5/6 renderers.
- :mod:`repro.evaluation.figures` — Figure 1–4 generators.
- :mod:`repro.evaluation.experiments` — the CLI
  (``python -m repro.evaluation.experiments <table2|...|figure4|all>``).
"""

from repro.evaluation.stats import RepeatedMeasurement, geomean
from repro.evaluation.runner import (
    MECHANISMS,
    measure_micro_cycles,
    micro_overheads,
    MacroConfig,
    MACRO_CONFIGS,
    measure_macro,
    macro_results,
)

__all__ = [
    "RepeatedMeasurement",
    "geomean",
    "MECHANISMS",
    "measure_micro_cycles",
    "micro_overheads",
    "MacroConfig",
    "MACRO_CONFIGS",
    "measure_macro",
    "macro_results",
]
