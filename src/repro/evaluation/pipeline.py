"""Parallel, memoized evaluation pipeline for the §6.2 matrix.

The Table 4/5/6 evaluation is a mechanism × workload matrix in which every
cell builds its own :class:`~repro.kernel.Kernel` from a fixed seed — cells
share nothing, so the matrix is embarrassingly parallel and, because the
simulator is deterministic, soundly memoizable.  This module turns the
previously serial, recompute-everything harness into a pipeline:

1. **enumerate** — every cell becomes a picklable :class:`ScenarioSpec`
   (strings and ints only; workers re-resolve configs and the mechanism
   registry on their side);
2. **execute** — cells are dealt round-robin into ``jobs`` *deterministic
   shards* (cell *i* → shard ``i % jobs``, a pure function of the
   enumeration order) and each shard runs serially inside one
   ``multiprocessing`` worker: one submission round-trip per shard
   instead of per cell, with captured tracebacks and a per-shard wall
   budget.  Pool-less environments (restricted sandboxes) and mid-run
   pool breakage degrade to in-process serial execution; a hard worker
   crash fails only the crashing shard's cells, and every other shard is
   salvaged or re-run serially;
3. **memoize** — each cell is looked up in / written to the
   content-addressed :class:`~repro.evaluation.cache.ResultCache`, keyed on
   the mechanism, the workload, the cycle-model constants the mechanism
   depends on, and AST-level source digests of the modules the cell
   executes (see :mod:`repro.evaluation.cache`);
4. **merge** — results are folded back into the exact dict shapes the
   existing table renderers consume, in registry/config order, so pipeline
   output is byte-identical to a serial run regardless of completion order.

The benchmarks, the experiments CLI, and ``python -m repro.tools.evalrun``
all run on this substrate.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.evaluation.cache import MISS, NullCache, ResultCache, cell_key

_NULL_CACHE = NullCache()

#: Wall-clock budget per cell before it is marked failed (seconds).
DEFAULT_CELL_TIMEOUT = 600.0

#: The reduced matrix used by ``--smoke`` runs and tier-1 tests: two
#: mechanisms, tiny iteration counts, one client-limited macro row.
SMOKE_MECHANISMS: Tuple[str, ...] = ("native", "zpoline-default")
SMOKE_MICRO_ITERATIONS: Tuple[int, int] = (60, 240)
SMOKE_MACRO_KEYS: Tuple[str, ...] = ("redis-1t",)


# ------------------------------------------------------------------ the cells


@dataclass(frozen=True)
class ScenarioSpec:
    """One cell of the evaluation matrix — picklable by construction.

    Attributes:
        kind: ``"micro"`` (Table 5), ``"macro"`` (Table 6),
            ``"shadow"`` (a dark-launch cell — the primary mechanism is
            ``mechanism``, the candidate rides in ``params``), or
            ``"loadtest"`` (one traffic-engine shard — the canonical
            TrafficConfig JSON and shard coordinates ride in
            ``params``).
        mechanism: registry name (``"K23-ultra"``, ...).
        workload: ``"syscall-stress"`` for micro cells, a
            :data:`~repro.evaluation.runner.MACRO_BY_KEY` row key for
            macro cells, a :data:`repro.runapi.WORKLOADS` key for
            shadow cells.
        seed: base RNG seed the cell's kernels derive from.
        params: extra parameters as a sorted tuple of pairs (micro
            iteration counts; shadow mechanism/budget/requests),
            keeping the spec hashable.
    """

    kind: str
    mechanism: str
    workload: str
    seed: int
    params: Tuple[Tuple[str, object], ...] = ()

    @property
    def label(self) -> str:
        return f"{self.kind}:{self.workload}:{self.mechanism}"

    def cache_key(self) -> str:
        return cell_key(self.kind, self.mechanism, self.workload,
                        self.seed, self.params)


@dataclass
class CellResult:
    """Outcome of one cell: a JSON-safe value or a captured traceback."""

    spec: ScenarioSpec
    value: Optional[dict] = None
    error: Optional[str] = None
    source: str = "serial"  # "cache" | "parallel" | "serial"
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class PipelineStats:
    """Per-run accounting — the hit/miss report the CLI prints."""

    hits: int = 0
    misses: int = 0
    failures: int = 0
    parallel_cells: int = 0
    serial_cells: int = 0
    mode: str = "serial"
    jobs: int = 1
    duration: float = 0.0
    fallback_reason: Optional[str] = None

    @property
    def cells(self) -> int:
        return self.hits + self.misses

    def summary(self) -> str:
        text = (f"{self.cells} cells: {self.hits} cache hits, "
                f"{self.misses} misses ({self.mode}"
                + (f", {self.jobs} jobs" if self.mode == "parallel" else "")
                + f"), {self.failures} failed, {self.duration:.1f}s")
        if self.fallback_reason:
            text += f" [pool fallback: {self.fallback_reason}]"
        return text


@dataclass
class PipelineRun:
    """Everything one :func:`run_cells` invocation produced."""

    results: Dict[ScenarioSpec, CellResult]
    stats: PipelineStats

    def value(self, spec: ScenarioSpec) -> dict:
        result = self.results[spec]
        if not result.ok:
            raise CellFailure(result)
        return result.value

    def failures(self) -> List[CellResult]:
        return [r for r in self.results.values() if not r.ok]


class CellFailure(RuntimeError):
    """A consumed cell had failed; carries the worker traceback."""

    def __init__(self, result: CellResult):
        super().__init__(
            f"evaluation cell {result.spec.label} failed:\n{result.error}")
        self.result = result


# ------------------------------------------------------------- enumeration


def micro_specs(mechanisms: Optional[Sequence[str]] = None, seed: int = 20,
                iterations_low: int = 300, iterations_high: int = 1500
                ) -> List[ScenarioSpec]:
    """Table 5 cells (native first — the normalization column)."""
    from repro.interposers.registry import REGISTRY

    names = tuple(mechanisms) if mechanisms is not None else REGISTRY.names()
    params = (("iterations_high", iterations_high),
              ("iterations_low", iterations_low))
    return [ScenarioSpec("micro", name, "syscall-stress", seed, params)
            for name in names]


def macro_specs(keys: Optional[Sequence[str]] = None,
                mechanisms: Optional[Sequence[str]] = None,
                seed: int = 30) -> List[ScenarioSpec]:
    """Table 6 cells, row-major in config order."""
    from repro.evaluation.runner import MACRO_CONFIGS
    from repro.interposers.registry import REGISTRY

    names = tuple(mechanisms) if mechanisms is not None else REGISTRY.names()
    specs = []
    for config in MACRO_CONFIGS:
        if keys is not None and config.key not in keys:
            continue
        for name in names:
            specs.append(ScenarioSpec("macro", name, config.key, seed))
    return specs


def shadow_specs(primary: str, shadows: Sequence[str], workload: str,
                 seed: int = 40, budget: int = 0,
                 requests: int = 24) -> List[ScenarioSpec]:
    """Dark-launch cells: one per candidate *shadow* mechanism.

    Each cell runs :func:`repro.shadow.run_shadow` with *primary*
    serving and the candidate mirroring; the cell value is the
    :meth:`~repro.shadow.ShadowReport.to_dict` document (verdict,
    divergence count, latency deltas), memoized like any other cell.
    """
    base = (("budget", budget), ("requests", requests))
    return [ScenarioSpec("shadow", primary, workload, seed,
                         tuple(sorted(base + (("shadow", name),))))
            for name in shadows]


def full_matrix_specs(mechanisms: Optional[Sequence[str]] = None,
                      macro_keys: Optional[Sequence[str]] = None,
                      smoke: bool = False) -> List[ScenarioSpec]:
    """The whole Table 5 + Table 6 matrix (reduced when *smoke*)."""
    if smoke:
        mechanisms = mechanisms or SMOKE_MECHANISMS
        macro_keys = macro_keys or SMOKE_MACRO_KEYS
        low, high = SMOKE_MICRO_ITERATIONS
        return (micro_specs(mechanisms, iterations_low=low,
                            iterations_high=high)
                + macro_specs(macro_keys, mechanisms))
    return micro_specs(mechanisms) + macro_specs(macro_keys, mechanisms)


# --------------------------------------------------------------- execution


def execute_cell(spec: ScenarioSpec) -> dict:
    """Run one cell in this process; returns its JSON-safe measurement."""
    from repro.evaluation.runner import (
        MACRO_BY_KEY,
        measure_macro,
        measure_micro_cycles,
    )

    if spec.kind == "micro":
        params = dict(spec.params)
        value = measure_micro_cycles(
            spec.mechanism,
            iterations_low=params["iterations_low"],
            iterations_high=params["iterations_high"],
            seed=spec.seed)
        return {"cycles_per_call": value}
    if spec.kind == "macro":
        config = MACRO_BY_KEY.get(spec.workload)
        if config is None:
            raise ValueError(
                f"unknown macro workload {spec.workload!r}; "
                f"rows: {', '.join(MACRO_BY_KEY)}")
        return measure_macro(config, spec.mechanism, seed=spec.seed)
    if spec.kind == "shadow":
        from repro.shadow import ShadowConfig, run_shadow

        params = dict(spec.params)
        report = run_shadow(ShadowConfig(
            primary=spec.mechanism,
            shadow=str(params["shadow"]),
            workload=spec.workload,
            seed=spec.seed,
            budget=int(params.get("budget", 0)),
            requests=int(params.get("requests", 24))))
        return report.to_dict()
    if spec.kind == "loadtest":
        import json

        from repro.traffic.engine import run_shard

        params = dict(spec.params)
        return run_shard(spec.mechanism, spec.workload,
                         json.loads(str(params["traffic"])), spec.seed,
                         int(params["shard"]), int(params["shards"]))
    raise ValueError(f"unknown cell kind {spec.kind!r}")


def _pool_worker(spec: ScenarioSpec) -> Tuple[ScenarioSpec, Optional[dict],
                                              Optional[str], float]:
    """Run one cell: never raises, returns a traceback string instead so
    one bad cell cannot poison the pool protocol."""
    started = time.monotonic()
    try:
        value = execute_cell(spec)
        return spec, value, None, time.monotonic() - started
    except BaseException:  # noqa: BLE001 — captured verbatim for the report
        return spec, None, traceback.format_exc(), time.monotonic() - started


def _shard_worker(shard: List[ScenarioSpec]
                  ) -> List[Tuple[ScenarioSpec, Optional[dict],
                                  Optional[str], float]]:
    """Top-level pool entry point: one worker executes one shard serially."""
    return [_pool_worker(spec) for spec in shard]


def shard_specs(specs: Sequence[ScenarioSpec],
                jobs: int) -> List[List[ScenarioSpec]]:
    """Deal *specs* round-robin into at most *jobs* shards.

    The assignment is a pure function of enumeration order and *jobs* —
    no timing, no hashing — so repeated runs dispatch identical shards,
    and interleaving (rather than chunking) keeps expensive neighbouring
    cells (e.g. one macro row across all mechanisms) off the same worker.
    Merge order is canonical regardless (see :func:`run_cells`), so the
    shard count can never perturb an artifact byte.
    """
    if jobs <= 1:
        return [list(specs)] if specs else []
    shards = [list(specs[index::jobs]) for index in range(jobs)]
    return [shard for shard in shards if shard]


def _run_serial(specs: Sequence[ScenarioSpec],
                results: Dict[ScenarioSpec, CellResult],
                stats: PipelineStats, cache: ResultCache) -> None:
    for spec in specs:
        started = time.monotonic()
        try:
            value = execute_cell(spec)
        except Exception:
            results[spec] = CellResult(spec, error=traceback.format_exc(),
                                       source="serial",
                                       duration=time.monotonic() - started)
            stats.failures += 1
        else:
            results[spec] = CellResult(spec, value=value, source="serial",
                                       duration=time.monotonic() - started)
            _cache_store(cache, spec, value)
        stats.serial_cells += 1


def _cache_store(cache: ResultCache, spec: ScenarioSpec, value: dict) -> None:
    try:
        cache.put(spec.cache_key(), value, meta={"label": spec.label})
    except Exception:
        pass  # an uncacheable cell is still a measured cell


def _run_parallel(specs: Sequence[ScenarioSpec],
                  results: Dict[ScenarioSpec, CellResult],
                  stats: PipelineStats, cache: ResultCache,
                  jobs: int, timeout: float) -> None:
    """Sharded pool execution; raises :class:`_PoolUnavailable` only
    before any shard has been dispatched (the caller then reruns
    everything serially)."""
    import concurrent.futures as futures_mod
    import multiprocessing

    try:
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - ancient stdlib layouts
        BrokenProcessPool = futures_mod.BrokenExecutor  # type: ignore

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        context = multiprocessing.get_context()
    shards = shard_specs(list(specs), jobs)
    try:
        executor = futures_mod.ProcessPoolExecutor(
            max_workers=len(shards), mp_context=context)
        pending = [(shard, executor.submit(_shard_worker, shard))
                   for shard in shards]
    except Exception as exc:
        raise _PoolUnavailable(f"{type(exc).__name__}: {exc}") from exc

    retry_serially: List[ScenarioSpec] = []
    try:
        for shard, future in pending:
            # The per-cell budget aggregates per shard: a worker executes
            # its shard serially, so individual cells are not separately
            # interruptible.
            budget = timeout * len(shard)
            try:
                outcomes = future.result(timeout=budget)
            except futures_mod.TimeoutError:
                future.cancel()
                for spec in shard:
                    results[spec] = CellResult(
                        spec, error=f"shard timed out after {budget:.0f}s "
                        f"({len(shard)} cells)",
                        source="parallel", duration=timeout)
                    stats.failures += 1
                    stats.parallel_cells += 1
            except BrokenProcessPool:
                # A worker died abruptly (signal / OOM) somewhere in this
                # shard; its in-worker results are gone.  Blame the whole
                # shard, salvage every other shard's finished results, and
                # re-run the rest serially.
                crash = "pool worker crashed:\n" + traceback.format_exc()
                for spec in shard:
                    results[spec] = CellResult(spec, error=crash,
                                               source="parallel")
                    stats.failures += 1
                    stats.parallel_cells += 1
                for other, future_ in pending:
                    if other is shard or other[0] in results:
                        continue
                    try:
                        outcomes = future_.result(timeout=0)
                    except Exception:
                        retry_serially.extend(other)
                    else:
                        for spec, value, error, duration in outcomes:
                            _record_pool_result(results, stats, cache, spec,
                                                value, error, duration)
                break
            else:
                for spec, value, error, duration in outcomes:
                    _record_pool_result(results, stats, cache, spec, value,
                                        error, duration)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)

    if retry_serially:
        _run_serial(retry_serially, results, stats, cache)


def _record_pool_result(results, stats, cache, spec, value, error,
                        duration) -> None:
    if error is None:
        results[spec] = CellResult(spec, value=value, source="parallel",
                                   duration=duration)
        _cache_store(cache, spec, value)
    else:
        results[spec] = CellResult(spec, error=error, source="parallel",
                                   duration=duration)
        stats.failures += 1
    stats.parallel_cells += 1


class _PoolUnavailable(RuntimeError):
    pass


def run_cells(specs: Iterable[ScenarioSpec], jobs: int = 1,
              cache: Optional[ResultCache] = None,
              timeout: float = DEFAULT_CELL_TIMEOUT) -> PipelineRun:
    """Execute *specs* (deduplicated, order-preserving) and return every
    cell's result plus hit/miss accounting.

    ``jobs > 1`` requests the multiprocessing pool; pool-less environments
    degrade to serial execution automatically.  Passing ``cache=None``
    disables memoization entirely.
    """
    ordered: List[ScenarioSpec] = []
    seen = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            ordered.append(spec)

    store = cache if cache is not None else _NULL_CACHE
    stats = PipelineStats(jobs=max(1, jobs))
    started = time.monotonic()
    results: Dict[ScenarioSpec, CellResult] = {}

    pending: List[ScenarioSpec] = []
    for spec in ordered:
        hit = MISS
        try:
            hit = store.get(spec.cache_key())
        except Exception:
            hit = MISS  # unknown mechanism etc. — let execution report it
        if hit is not MISS:
            results[spec] = CellResult(spec, value=hit, source="cache")
            stats.hits += 1
        else:
            pending.append(spec)
    stats.misses = len(pending)

    if pending:
        if jobs > 1:
            try:
                _run_parallel(pending, results, stats, store, jobs, timeout)
                stats.mode = "parallel"
            except _PoolUnavailable as exc:
                stats.fallback_reason = str(exc)
                stats.mode = "serial"
                _run_serial(pending, results, stats, store)
        else:
            _run_serial(pending, results, stats, store)

    stats.duration = time.monotonic() - started
    # Deterministic ordering of the result mapping, whatever finished first.
    ordered_results = {spec: results[spec] for spec in ordered}
    return PipelineRun(results=ordered_results, stats=stats)


# ------------------------------------------------------------------- merging


def table5_overheads(run: PipelineRun,
                     mechanisms: Optional[Sequence[str]] = None
                     ) -> Dict[str, float]:
    """Fold micro cells into the dict :func:`render_table5` consumes —
    float-for-float identical to :func:`micro_overheads`."""
    from repro.interposers.registry import REGISTRY

    micro = {spec.mechanism: spec for spec in run.results
             if spec.kind == "micro"}
    if "native" not in micro:
        raise ValueError("table 5 merge needs the native micro cell")
    native = run.value(micro["native"])["cycles_per_call"]
    names = tuple(mechanisms) if mechanisms is not None else \
        tuple(name for name in REGISTRY.names()
              if name != "native" and name in micro)
    return {name: run.value(micro[name])["cycles_per_call"] / native
            for name in names}


def table6_rows(run: PipelineRun, keys: Optional[Sequence[str]] = None,
                mechanisms: Optional[Sequence[str]] = None) -> List[Dict]:
    """Fold macro cells into the row dicts :func:`render_table6` consumes,
    reproducing :func:`macro_results`'s arithmetic exactly."""
    from repro.evaluation.runner import MACRO_BY_KEY, MACRO_CONFIGS
    from repro.interposers.registry import REGISTRY

    by_cell = {(spec.workload, spec.mechanism): spec
               for spec in run.results if spec.kind == "macro"}
    row_keys = [config.key for config in MACRO_CONFIGS
                if (keys is None or config.key in keys)
                and any(cell_key_ == config.key
                        for cell_key_, _name in by_cell)]
    names = tuple(mechanisms) if mechanisms is not None else REGISTRY.names()
    rows = []
    for key in row_keys:
        config = MACRO_BY_KEY[key]
        native = run.value(by_cell[(key, "native")])
        relative: Dict[str, float] = {}
        for name in names:
            if name == "native":
                continue
            result = run.value(by_cell[(key, name)])
            if config.kind == "runtime":
                relative[name] = 100.0 * native["cycles"] / result["cycles"]
            else:
                relative[name] = (100.0 * result["throughput"]
                                  / native["throughput"])
        rows.append({
            "label": config.label,
            "native": native.get("throughput"),
            "relative": relative,
            "paper_relative": config.paper_relative,
        })
    return rows
