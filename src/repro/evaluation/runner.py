"""Measurement drivers for the §6.2 evaluation.

The eight evaluated mechanisms (Table 4/5/6)::

    native, zpoline-default, zpoline-ultra, lazypoline,
    K23-default, K23-ultra, K23-ultra+, SUD-no-interposition, SUD

Microbenchmark (Table 5): the syscall-500 stress loop, measured
*differentially* — two runs with different iteration counts isolate the
steady-state per-call cost from startup (library loading, the K23 ptrace
stage, rewriting).

Macrobenchmarks (Table 6): server workloads driven by wrk/redis-benchmark
stand-ins.  Cycles per request are measured server-side after warmup;
throughput follows the saturation model

    capacity   = workers × efficiency × CLOCK_HZ / cycles_per_request
    throughput = min(capacity, client_limit)

where ``efficiency`` (multi-worker scaling) and ``client_limit``
(same-machine client saturation, §6.2.2) are workload-model constants
calibrated once against the paper's *native* rows; every interposed number
then emerges from the simulated cycles.  sqlite is runtime-oriented: the
relative metric is the native/interposed cycle ratio of the transaction
phase (again differential, startup excluded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core import OfflinePhase
from repro.core.offline import import_logs
from repro.cpu.cycles import CLOCK_HZ
from repro.interposers import REGISTRY
from repro.kernel import Kernel
from repro.workloads.clients import redis_benchmark, wrk
from repro.workloads.lighttpd import LIGHTTPD_PORT, install_lighttpd
from repro.workloads.nginx import NGINX_PORT, install_nginx
from repro.workloads.redis import REDIS_PORT, install_redis
from repro.workloads.sqlite import build_speedtest1, install_sqlite
from repro.workloads.stress import build_stress, STRESS_PATH

#: Evaluation order, matching Table 5 — derived from the registry.
#: Internal only; the public way to enumerate mechanisms is
#: ``repro.interposers.registry.REGISTRY.names()``.  ``MECHANISMS`` and
#: ``make_interposer`` remain importable from this module through the
#: deprecation shim (module ``__getattr__``) below.
_MECHANISMS = REGISTRY.names()


def _make_interposer(name: str, kernel: Kernel):
    """Instantiate (and install) one evaluated mechanism by registry name."""
    return REGISTRY.create(name, kernel)


def needs_offline(name: str) -> bool:
    return REGISTRY.needs_offline(name)


#: Deprecated module attributes → (replacement hint, value factory).
_DEPRECATED = {
    "MECHANISMS": ("repro.api.REGISTRY.names()",
                   lambda: _MECHANISMS),
    "make_interposer": ("repro.api.REGISTRY.create(name, kernel)",
                        lambda: _make_interposer),
}

#: Attributes already warned about — each shim warns once per process, so
#: a hot loop over a legacy import doesn't flood stderr.
_WARNED: set = set()


def __getattr__(name: str):
    """Deprecation shim (PEP 562): importing ``MECHANISMS`` or
    ``make_interposer`` from this module still works but warns (once per
    process per attribute) — :mod:`repro.api` is the supported surface."""
    entry = _DEPRECATED.get(name)
    if entry is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    hint, factory = entry
    if name not in _WARNED:
        _WARNED.add(name)
        import warnings

        warnings.warn(f"importing {name!r} from repro.evaluation.runner is "
                      f"deprecated; use {hint}", DeprecationWarning,
                      stacklevel=2)
    return factory()


# ============================================================ microbenchmark


def _micro_total_cycles(name: str, iterations: int, seed: int) -> int:
    kernel = Kernel(seed=seed)
    kernel.torn_window_probability = 0.0  # measure the surviving fast path
    build_stress(iterations).register(kernel)
    if needs_offline(name):
        offline_kernel = Kernel(seed=seed + 1000)
        build_stress(16).register(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        offline.run(STRESS_PATH)
        import_logs(kernel, offline.export())
    _make_interposer(name, kernel)
    process = kernel.spawn_process(STRESS_PATH)
    before = kernel.cycles.cycles
    kernel.run_process(process, max_steps=50_000_000)
    if not process.exited or process.exit_status != 0:
        raise RuntimeError(
            f"micro run failed under {name}: exit={process.exit_status}")
    return kernel.cycles.cycles - before


def measure_micro_cycles(name: str, iterations_low: int = 300,
                         iterations_high: int = 1500,
                         seed: int = 20) -> float:
    """Steady-state cycles per syscall-500 invocation (differential)."""
    low = _micro_total_cycles(name, iterations_low, seed)
    high = _micro_total_cycles(name, iterations_high, seed)
    return (high - low) / (iterations_high - iterations_low)


def micro_overheads(mechanisms=_MECHANISMS[1:], seed: int = 20
                    ) -> Dict[str, float]:
    """Overhead factors relative to native (the Table 5 values)."""
    native = measure_micro_cycles("native", seed=seed)
    return {name: measure_micro_cycles(name, seed=seed) / native
            for name in mechanisms}


# ============================================================ macrobenchmarks


@dataclass(frozen=True)
class MacroConfig:
    """One Table 6 row.

    Attributes:
        key: short identifier.
        label: row label as printed in the table.
        kind: ``"throughput"`` (req/s) or ``"runtime"`` (sqlite).
        installer: registers the workload; returns the binary path.
        port / client_factory / connections / requests: load-generation.
        workers: parallel server contexts for the capacity model.
        efficiency: multi-worker scaling factor (calibrated, see module
            docstring).
        client_limit: same-machine client saturation in req/s, or None for
            purely server-limited rows.
        paper_native: the paper's native measurement (for EXPERIMENTS.md).
        paper_relative: the paper's relative percentages per mechanism.
    """

    key: str
    label: str
    kind: str
    installer: Callable[[Kernel], str]
    port: int = 0
    client_factory: Optional[Callable] = None
    connections: int = 1
    requests: int = 240
    workers: int = 1
    efficiency: float = 1.0
    client_limit: Optional[float] = None
    paper_native: Optional[float] = None
    paper_relative: Optional[Dict[str, float]] = None


def _http_config(key, label, installer_fn, port, workers, file_kb,
                 efficiency, paper_native, paper_relative) -> MacroConfig:
    return MacroConfig(
        key=key, label=label, kind="throughput",
        installer=lambda kernel: installer_fn(kernel, workers, file_kb),
        port=port, client_factory=wrk, connections=workers,
        requests=80 * max(1, min(workers, 4)), workers=workers,
        efficiency=efficiency, paper_native=paper_native,
        paper_relative=paper_relative)


MACRO_CONFIGS: List[MacroConfig] = [
    _http_config(
        "nginx-1w-0k", "nginx (1 worker, 0 KB)", install_nginx, NGINX_PORT,
        1, 0, 1.0, 184762,
        {"zpoline-default": 99.05, "zpoline-ultra": 98.40,
         "lazypoline": 97.85, "K23-default": 97.94, "K23-ultra": 97.29,
         "K23-ultra+": 96.70, "SUD": 51.29}),
    _http_config(
        "nginx-1w-4k", "nginx (1 worker, 4 KB)", install_nginx, NGINX_PORT,
        1, 4, 1.0, 139709,
        {"zpoline-default": 96.73, "zpoline-ultra": 96.14,
         "lazypoline": 96.04, "K23-default": 96.24, "K23-ultra": 95.89,
         "K23-ultra+": 95.76, "SUD": 45.95}),
    _http_config(
        "nginx-10w-0k", "nginx (10 workers, 0 KB)", install_nginx,
        NGINX_PORT, 10, 0, 1.0, 1214421,
        {"zpoline-default": 99.62, "zpoline-ultra": 99.34,
         "lazypoline": 98.79, "K23-default": 99.52, "K23-ultra": 98.39,
         "K23-ultra+": 97.83, "SUD": 53.93}),
    _http_config(
        "nginx-10w-4k", "nginx (10 workers, 4 KB)", install_nginx,
        NGINX_PORT, 10, 4, 1.0, 830426,
        {"zpoline-default": 98.83, "zpoline-ultra": 98.76,
         "lazypoline": 98.14, "K23-default": 98.59, "K23-ultra": 98.12,
         "K23-ultra+": 98.23, "SUD": 53.97}),
    _http_config(
        "lighttpd-1w-0k", "lighttpd (1 worker, 0 KB)", install_lighttpd,
        LIGHTTPD_PORT, 1, 0, 1.0, 189729,
        {"zpoline-default": 98.76, "zpoline-ultra": 99.48,
         "lazypoline": 98.23, "K23-default": 99.15, "K23-ultra": 97.89,
         "K23-ultra+": 97.50, "SUD": 61.25}),
    _http_config(
        "lighttpd-1w-4k", "lighttpd (1 worker, 4 KB)", install_lighttpd,
        LIGHTTPD_PORT, 1, 4, 1.0, 147927,
        {"zpoline-default": 99.28, "zpoline-ultra": 98.37,
         "lazypoline": 97.93, "K23-default": 98.56, "K23-ultra": 98.01,
         "K23-ultra+": 97.62, "SUD": 61.62}),
    _http_config(
        "lighttpd-10w-0k", "lighttpd (10 workers, 0 KB)", install_lighttpd,
        LIGHTTPD_PORT, 10, 0, 1.0, 1444141,
        {"zpoline-default": 98.77, "zpoline-ultra": 98.60,
         "lazypoline": 98.18, "K23-default": 98.16, "K23-ultra": 98.36,
         "K23-ultra+": 97.69, "SUD": 59.83}),
    _http_config(
        "lighttpd-10w-4k", "lighttpd (10 workers, 4 KB)", install_lighttpd,
        LIGHTTPD_PORT, 10, 4, 1.0, 976989,
        {"zpoline-default": 99.17, "zpoline-ultra": 98.98,
         "lazypoline": 98.67, "K23-default": 99.01, "K23-ultra": 98.65,
         "K23-ultra+": 98.62, "SUD": 65.06}),
    MacroConfig(
        key="redis-1t", label="redis (1 I/O thread)", kind="throughput",
        installer=lambda kernel: install_redis(kernel, 1),
        port=REDIS_PORT, client_factory=redis_benchmark, connections=1,
        requests=200, workers=1, efficiency=1.0, client_limit=174613.0,
        paper_native=174613,
        paper_relative={"zpoline-default": 100.00, "zpoline-ultra": 99.93,
                        "lazypoline": 99.98, "K23-default": 100.21,
                        "K23-ultra": 100.17, "K23-ultra+": 99.90,
                        "SUD": 96.15}),
    MacroConfig(
        key="redis-6t", label="redis (6 I/O threads)", kind="throughput",
        installer=lambda kernel: install_redis(kernel, 6),
        port=REDIS_PORT, client_factory=redis_benchmark, connections=6,
        requests=300, workers=6, efficiency=0.35, client_limit=398804.0,
        paper_native=398804,
        paper_relative={"zpoline-default": 99.94, "zpoline-ultra": 99.80,
                        "lazypoline": 99.80, "K23-default": 99.97,
                        "K23-ultra": 99.97, "K23-ultra+": 99.95,
                        "SUD": 35.75}),
    MacroConfig(
        key="sqlite", label="sqlite (speedtest1, size 800)", kind="runtime",
        installer=install_sqlite, paper_native=None,
        paper_relative={"zpoline-default": 98.12, "zpoline-ultra": 97.80,
                        "lazypoline": 97.31, "K23-default": 97.56,
                        "K23-ultra": 97.13, "K23-ultra+": 97.20,
                        "SUD": 55.90}),
]

MACRO_BY_KEY = {config.key: config for config in MACRO_CONFIGS}


def _offline_for(config: MacroConfig, seed: int) -> Dict[str, str]:
    """Run the K23 offline phase for one workload configuration."""
    kernel = Kernel(seed=seed)
    path = config.installer(kernel)
    offline = OfflinePhase(kernel)
    if config.kind == "runtime":
        offline.run(path, max_steps=20_000_000)
    else:
        def driver(kern, proc):
            kern.run(max_steps=600_000)
            generator = config.client_factory(kern, config.port,
                                              config.connections)
            generator.drive(4 * config.connections)
            generator.close()

        offline.run(path, driver=driver, max_steps=20_000_000)
    return offline.export()


def _measure_throughput_cpr(config: MacroConfig, name: str,
                            seed: int) -> float:
    kernel = Kernel(seed=seed)
    kernel.torn_window_probability = 0.0  # measure the surviving fast path
    path = config.installer(kernel)
    if needs_offline(name):
        import_logs(kernel, _offline_for(config, seed + 500))
    _make_interposer(name, kernel)
    kernel.spawn_process(path)
    kernel.run(max_steps=2_000_000)  # master forks; workers reach accept
    generator = config.client_factory(kernel, config.port,
                                      config.connections)
    generator.warmup(2)
    result = generator.drive(config.requests)
    if result.failures:
        raise RuntimeError(
            f"{config.key} under {name}: {result.failures} failed requests")
    return result.cycles_per_request


def _measure_runtime_cycles(name: str, transactions: int, seed: int) -> int:
    kernel = Kernel(seed=seed)
    kernel.torn_window_probability = 0.0  # measure the surviving fast path
    install_sqlite(kernel)
    build_speedtest1_with(transactions).register(kernel)
    if needs_offline(name):
        offline_kernel = Kernel(seed=seed + 500)
        install_sqlite(offline_kernel)
        offline = OfflinePhase(offline_kernel)
        offline.run("/usr/bin/speedtest1", max_steps=20_000_000)
        import_logs(kernel, offline.export())
    _make_interposer(name, kernel)
    process = kernel.spawn_process("/usr/bin/speedtest1")
    before = kernel.cycles.cycles
    kernel.run_process(process, max_steps=20_000_000)
    if not process.exited or process.exit_status != 0:
        raise RuntimeError(f"sqlite under {name}: exit={process.exit_status}")
    return kernel.cycles.cycles - before


def build_speedtest1_with(transactions: int):
    """speedtest1 with a custom transaction count (differential timing)."""
    import repro.workloads.sqlite as sqlite_mod

    saved = sqlite_mod.TRANSACTIONS
    sqlite_mod.TRANSACTIONS = transactions
    try:
        return sqlite_mod.build_speedtest1()
    finally:
        sqlite_mod.TRANSACTIONS = saved


def measure_macro(config: MacroConfig, name: str, seed: int = 30) -> Dict:
    """Measure one Table 6 cell; returns throughput/runtime figures."""
    if config.kind == "runtime":
        low = _measure_runtime_cycles(name, 20, seed)
        high = _measure_runtime_cycles(name, 120, seed)
        return {"cycles": high - low}
    cpr = _measure_throughput_cpr(config, name, seed)
    capacity = config.workers * config.efficiency * CLOCK_HZ / cpr
    throughput = min(capacity, config.client_limit) \
        if config.client_limit else capacity
    return {"cycles_per_request": cpr, "capacity": capacity,
            "throughput": throughput}


def macro_results(config: MacroConfig, mechanisms=_MECHANISMS,
                  seed: int = 30) -> Dict[str, Dict]:
    """All mechanisms for one row, plus relative percentages vs native."""
    results = {name: measure_macro(config, name, seed=seed)
               for name in mechanisms}
    native = results["native"]
    for name, result in results.items():
        if config.kind == "runtime":
            result["relative_pct"] = 100.0 * native["cycles"] / result["cycles"]
        else:
            result["relative_pct"] = (100.0 * result["throughput"]
                                      / native["throughput"])
    return results
