"""Experiment CLI: regenerate any table or figure from the paper.

Usage::

    python -m repro.evaluation.experiments table2
    python -m repro.evaluation.experiments table3
    python -m repro.evaluation.experiments table4
    python -m repro.evaluation.experiments table5 [--jobs N] [--no-cache]
    python -m repro.evaluation.experiments table6 [row-key ...] [--jobs N]
    python -m repro.evaluation.experiments figure1|figure2|figure3|figure4
    python -m repro.evaluation.experiments all [--jobs N] [--smoke]

The measurement matrices (table5/table6) run on the parallel, memoized
pipeline (:mod:`repro.evaluation.pipeline`): ``--jobs N`` fans cells out
over N worker processes, results are memoized content-addressed under
``~/.cache/repro-eval`` (``--no-cache`` disables, ``$REPRO_EVAL_CACHE``
relocates), and ``--smoke`` shrinks the matrix to two mechanisms with tiny
iteration counts.  Output is byte-identical to a serial, uncached run;
cache hit/miss accounting goes to stderr.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

from repro.core import OfflinePhase
from repro.evaluation import figures
from repro.evaluation import pipeline as pipe
from repro.evaluation.cache import ResultCache
from repro.evaluation.runner import (
    MACRO_BY_KEY,
    MACRO_CONFIGS,
    macro_results,
    micro_overheads,
)
from repro.interposers.registry import REGISTRY

MECHANISMS = REGISTRY.names()
from repro.evaluation.tables import (
    render_table2,
    render_table4,
    render_table5,
    render_table6,
)
from repro.kernel import Kernel
from repro.workloads.clients import redis_benchmark, wrk
from repro.workloads.coreutils import install_coreutils
from repro.workloads.lighttpd import LIGHTTPD_PORT, install_lighttpd
from repro.workloads.nginx import NGINX_PORT, install_nginx
from repro.workloads.redis import REDIS_PORT, install_redis
from repro.workloads.sqlite import install_sqlite


def run_table2(seed: int = 12) -> str:
    """Offline-phase unique-site counts for all nine programs."""
    counts: Dict[str, int] = {}
    # Coreutils: plain runs.
    kernel = Kernel(seed=seed)
    paths = install_coreutils(kernel)
    offline = OfflinePhase(kernel)
    for path in paths:
        _proc, log = offline.run(path)
        counts[path] = len(log)
    # sqlite.
    kernel = Kernel(seed=seed)
    sqlite_path = install_sqlite(kernel)
    offline = OfflinePhase(kernel)
    _proc, log = offline.run(sqlite_path, max_steps=20_000_000)
    counts[sqlite_path] = len(log)
    # Servers, driven with representative workloads.
    server_specs = [
        (lambda k: install_nginx(k, 1, 0), NGINX_PORT, wrk),
        (lambda k: install_lighttpd(k, 1, 0), LIGHTTPD_PORT, wrk),
        (lambda k: install_redis(k, 1), REDIS_PORT, redis_benchmark),
    ]
    for installer, port, client_factory in server_specs:
        kernel = Kernel(seed=seed)
        path = installer(kernel)
        offline = OfflinePhase(kernel)

        def driver(kern, proc, _port=port, _factory=client_factory):
            kern.run(max_steps=600_000)
            generator = _factory(kern, _port, 1)
            generator.drive(12)
            generator.close()

        _proc, log = offline.run(path, driver=driver, max_steps=20_000_000)
        counts[path] = len(log)
    # Order as in the paper (coreutils by count, then apps).
    ordered = dict(sorted(counts.items(), key=lambda kv: kv[1]))
    return render_table2(ordered)


def run_table3(show_evidence: bool = True) -> str:
    from repro.pitfalls import pitfall_matrix, render_table3

    return render_table3(pitfall_matrix(), show_evidence=show_evidence)


def run_table4() -> str:
    return render_table4()


def run_table5(jobs: int = 1, cache: Optional[ResultCache] = None,
               smoke: bool = False, echo_stats: bool = False) -> str:
    """Table 5 through the pipeline — byte-identical to the serial path."""
    if smoke:
        low, high = pipe.SMOKE_MICRO_ITERATIONS
        mechanisms = pipe.SMOKE_MECHANISMS
        specs = pipe.micro_specs(mechanisms, iterations_low=low,
                                 iterations_high=high)
    else:
        mechanisms = MECHANISMS
        specs = pipe.micro_specs(mechanisms)
    run = pipe.run_cells(specs, jobs=jobs, cache=cache)
    if echo_stats:
        print(f"table5 pipeline: {run.stats.summary()}", file=sys.stderr)
    return render_table5(pipe.table5_overheads(run, mechanisms[1:]))


def run_table6(keys: "List[str] | None" = None, jobs: int = 1,
               cache: Optional[ResultCache] = None, smoke: bool = False,
               echo_stats: bool = False) -> str:
    """Table 6 through the pipeline — byte-identical to the serial path."""
    mechanisms = pipe.SMOKE_MECHANISMS if smoke else MECHANISMS
    if keys is None and smoke:
        keys = list(pipe.SMOKE_MACRO_KEYS)
    specs = pipe.macro_specs(keys, mechanisms)
    run = pipe.run_cells(specs, jobs=jobs, cache=cache)
    if echo_stats:
        print(f"table6 pipeline: {run.stats.summary()}", file=sys.stderr)
    return render_table6(pipe.table6_rows(run, keys, mechanisms))


def run_table6_serial(keys: "List[str] | None" = None) -> str:
    """The original in-process serial path (kept as the equivalence
    oracle for the pipeline tests)."""
    rows = []
    for config in MACRO_CONFIGS:
        if keys and config.key not in keys:
            continue
        results = macro_results(config)
        rows.append({
            "label": config.label,
            "native": results["native"].get("throughput"),
            "relative": {name: results[name]["relative_pct"]
                         for name in MECHANISMS if name != "native"},
            "paper_relative": config.paper_relative,
        })
    return render_table6(rows)


def run_figure1() -> str:
    return figures.figure1()


def run_figure2() -> str:
    return figures.figure2()


def run_figure3() -> str:
    path, contents = figures.figure3()
    return (f"Figure 3: log file generated for ls ({path}):\n\n"
            + contents)


def run_figure4() -> str:
    return figures.figure4()


def run_report(jobs: int = 1, cache: Optional[ResultCache] = None) -> str:
    """Regenerate everything into one markdown report (also written to
    benchmarks/output/report.md when that directory exists)."""
    import pathlib
    import sys

    from repro.evaluation.report import generate_report

    text = generate_report(out=sys.stdout, jobs=jobs, cache=cache)
    out_dir = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "output"
    if out_dir.parent.exists():
        out_dir.mkdir(exist_ok=True)
        (out_dir / "report.md").write_text(text)
    return ""


_EXPERIMENTS = {
    "report": run_report,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "figure1": run_figure1,
    "figure2": run_figure2,
    "figure3": run_figure3,
    "figure4": run_figure4,
}


def parse_pipeline_args(args: List[str]) -> Dict[str, object]:
    """Strip ``--jobs N``/``--no-cache``/``--smoke``/``--cache-dir D`` out
    of *args* (mutated in place); returns the pipeline option dict."""
    options: Dict[str, object] = {"jobs": 1, "cache": ResultCache(),
                                  "smoke": False}
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "--jobs" and index + 1 < len(args):
            options["jobs"] = max(1, int(args[index + 1]))
            del args[index:index + 2]
        elif arg.startswith("--jobs="):
            options["jobs"] = max(1, int(arg.split("=", 1)[1]))
            del args[index]
        elif arg == "--no-cache":
            options["cache"] = None
            del args[index]
        elif arg == "--smoke":
            options["smoke"] = True
            del args[index]
        elif arg == "--cache-dir" and index + 1 < len(args):
            options["cache"] = ResultCache(args[index + 1])
            del args[index:index + 2]
        elif arg.startswith("--cache-dir="):
            options["cache"] = ResultCache(arg.split("=", 1)[1])
            del args[index]
        else:
            index += 1
    return options


def main(argv: "List[str] | None" = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    options = parse_pipeline_args(args)
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    jobs = options["jobs"]
    cache = options["cache"]
    smoke = options["smoke"]
    pipelined = {
        "table5": lambda: run_table5(jobs=jobs, cache=cache, smoke=smoke,
                                     echo_stats=True),
        "table6": lambda: run_table6(jobs=jobs, cache=cache, smoke=smoke,
                                     echo_stats=True),
        "report": lambda: run_report(jobs=jobs, cache=cache),
    }
    target = args[0]
    if target == "all":
        for name, runner in _EXPERIMENTS.items():
            print(f"\n=== {name} " + "=" * (66 - len(name)))
            print(pipelined.get(name, runner)())
        return 0
    runner = _EXPERIMENTS.get(target)
    if runner is None:
        print(f"unknown experiment {target!r}; "
              f"choose from {', '.join(_EXPERIMENTS)} or 'all'")
        return 2
    if target == "table6" and len(args) > 1:
        for key in args[1:]:
            if key not in MACRO_BY_KEY:
                print(f"unknown table6 row {key!r}; "
                      f"rows: {', '.join(MACRO_BY_KEY)}")
                return 2
        print(run_table6(args[1:], jobs=jobs, cache=cache,
                         echo_stats=True))
        return 0
    print(pipelined.get(target, runner)())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
