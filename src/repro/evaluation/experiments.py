"""Experiment CLI: regenerate any table or figure from the paper.

Usage::

    python -m repro.evaluation.experiments table2
    python -m repro.evaluation.experiments table3
    python -m repro.evaluation.experiments table4
    python -m repro.evaluation.experiments table5
    python -m repro.evaluation.experiments table6 [row-key]
    python -m repro.evaluation.experiments figure1|figure2|figure3|figure4
    python -m repro.evaluation.experiments all
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.core import OfflinePhase
from repro.evaluation import figures
from repro.evaluation.runner import (
    MACRO_BY_KEY,
    MACRO_CONFIGS,
    MECHANISMS,
    macro_results,
    micro_overheads,
)
from repro.evaluation.tables import (
    render_table2,
    render_table4,
    render_table5,
    render_table6,
)
from repro.kernel import Kernel
from repro.workloads.clients import redis_benchmark, wrk
from repro.workloads.coreutils import install_coreutils
from repro.workloads.lighttpd import LIGHTTPD_PORT, install_lighttpd
from repro.workloads.nginx import NGINX_PORT, install_nginx
from repro.workloads.redis import REDIS_PORT, install_redis
from repro.workloads.sqlite import install_sqlite


def run_table2(seed: int = 12) -> str:
    """Offline-phase unique-site counts for all nine programs."""
    counts: Dict[str, int] = {}
    # Coreutils: plain runs.
    kernel = Kernel(seed=seed)
    paths = install_coreutils(kernel)
    offline = OfflinePhase(kernel)
    for path in paths:
        _proc, log = offline.run(path)
        counts[path] = len(log)
    # sqlite.
    kernel = Kernel(seed=seed)
    sqlite_path = install_sqlite(kernel)
    offline = OfflinePhase(kernel)
    _proc, log = offline.run(sqlite_path, max_steps=20_000_000)
    counts[sqlite_path] = len(log)
    # Servers, driven with representative workloads.
    server_specs = [
        (lambda k: install_nginx(k, 1, 0), NGINX_PORT, wrk),
        (lambda k: install_lighttpd(k, 1, 0), LIGHTTPD_PORT, wrk),
        (lambda k: install_redis(k, 1), REDIS_PORT, redis_benchmark),
    ]
    for installer, port, client_factory in server_specs:
        kernel = Kernel(seed=seed)
        path = installer(kernel)
        offline = OfflinePhase(kernel)

        def driver(kern, proc, _port=port, _factory=client_factory):
            kern.run(max_steps=600_000)
            generator = _factory(kern, _port, 1)
            generator.drive(12)
            generator.close()

        _proc, log = offline.run(path, driver=driver, max_steps=20_000_000)
        counts[path] = len(log)
    # Order as in the paper (coreutils by count, then apps).
    ordered = dict(sorted(counts.items(), key=lambda kv: kv[1]))
    return render_table2(ordered)


def run_table3(show_evidence: bool = True) -> str:
    from repro.pitfalls import pitfall_matrix, render_table3

    return render_table3(pitfall_matrix(), show_evidence=show_evidence)


def run_table4() -> str:
    return render_table4()


def run_table5() -> str:
    return render_table5(micro_overheads())


def run_table6(keys: "List[str] | None" = None) -> str:
    rows = []
    for config in MACRO_CONFIGS:
        if keys and config.key not in keys:
            continue
        results = macro_results(config)
        rows.append({
            "label": config.label,
            "native": results["native"].get("throughput"),
            "relative": {name: results[name]["relative_pct"]
                         for name in MECHANISMS if name != "native"},
            "paper_relative": config.paper_relative,
        })
    return render_table6(rows)


def run_figure1() -> str:
    return figures.figure1()


def run_figure2() -> str:
    return figures.figure2()


def run_figure3() -> str:
    path, contents = figures.figure3()
    return (f"Figure 3: log file generated for ls ({path}):\n\n"
            + contents)


def run_figure4() -> str:
    return figures.figure4()


def run_report() -> str:
    """Regenerate everything into one markdown report (also written to
    benchmarks/output/report.md when that directory exists)."""
    import pathlib
    import sys

    from repro.evaluation.report import generate_report

    text = generate_report(out=sys.stdout)
    out_dir = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "output"
    if out_dir.parent.exists():
        out_dir.mkdir(exist_ok=True)
        (out_dir / "report.md").write_text(text)
    return ""


_EXPERIMENTS = {
    "report": run_report,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "figure1": run_figure1,
    "figure2": run_figure2,
    "figure3": run_figure3,
    "figure4": run_figure4,
}


def main(argv: "List[str] | None" = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    target = args[0]
    if target == "all":
        for name, runner in _EXPERIMENTS.items():
            print(f"\n=== {name} " + "=" * (66 - len(name)))
            print(runner())
        return 0
    runner = _EXPERIMENTS.get(target)
    if runner is None:
        print(f"unknown experiment {target!r}; "
              f"choose from {', '.join(_EXPERIMENTS)} or 'all'")
        return 2
    if target == "table6" and len(args) > 1:
        for key in args[1:]:
            if key not in MACRO_BY_KEY:
                print(f"unknown table6 row {key!r}; "
                      f"rows: {', '.join(MACRO_BY_KEY)}")
                return 2
        print(run_table6(args[1:]))
        return 0
    print(runner())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
