"""Content-addressed on-disk cache for evaluation cells.

The simulator is deterministic (rr-style: same seed, same inputs, same
cycle counts), so a (mechanism, workload, config) cell is a pure function
of its inputs and can be memoized soundly.  The cache key captures exactly
those inputs:

- the mechanism name and the workload/cell identity (kind, key, seed,
  iteration parameters);
- the *values* of the cycle-model constants the mechanism's measured path
  depends on (the registry's per-mechanism ``cost_events`` plus the
  baseline events, ``CLOCK_HZ``, and — for SUD-armed mechanisms — the
  signal-contention factor).  Editing ``HASHSET_CHECK`` therefore
  invalidates the K23-ultra cells and nothing else;
- AST-level source digests of the modules the cell executes (measurement
  driver, interposer framework, the mechanism's own module, the kernel,
  and the cell's workload modules).  Digests are computed over the parsed
  AST, so comment-only and formatting-only edits do **not** invalidate.

Entries are one JSON file per key under the cache root (default
``~/.cache/repro-eval``, override with ``$REPRO_EVAL_CACHE``); writes are
atomic (temp file + rename) so concurrent runs never observe torn entries.
"""

from __future__ import annotations

import ast
import hashlib
import importlib
import inspect
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

#: Bump when the key layout or cell value format changes.
SCHEMA_VERSION = 1

#: Sentinel distinguishing "no entry" from a cached falsy value.
MISS = object()

#: Modules every cell executes, whatever the mechanism or workload.  The
#: interpreter stack (dispatch semantics, block cache, icache, memory) is
#: included so a change to execution machinery invalidates every cell —
#: stale cached cells must never mask an interpreter behaviour change.
COMMON_DEPENDENCIES: Tuple[str, ...] = (
    "repro.evaluation.runner",
    "repro.interposers.base",
    "repro.kernel.kernel",
    "repro.cpu.core",
    "repro.cpu.dispatch",
    "repro.cpu.blocks",
    "repro.cpu.icache",
    "repro.cpu.engine",
    "repro.cpu.tracejit",
    "repro.memory.address_space",
)

#: Workload-key prefix → modules that cell's measurement exercises.
_MACRO_WORKLOAD_MODULES: Dict[str, Tuple[str, ...]] = {
    "nginx": ("repro.workloads.nginx", "repro.workloads.http",
              "repro.workloads.clients"),
    "lighttpd": ("repro.workloads.lighttpd", "repro.workloads.http",
                 "repro.workloads.clients"),
    "redis": ("repro.workloads.redis", "repro.workloads.clients"),
    "sqlite": ("repro.workloads.sqlite",),
}

_MICRO_WORKLOAD_MODULES: Tuple[str, ...] = ("repro.workloads.stress",)

#: Modules every shadow (dark-launch) cell executes on top of the
#: workload's own: the run surface, the mirroring seam, and the
#: normalization/diff machinery the verdict is computed with.
_SHADOW_MODULES: Tuple[str, ...] = (
    "repro.runapi",
    "repro.shadow.divergence",
    "repro.shadow.harness",
    "repro.workloads.clients",
    "repro.faultinject.conformance",
    "repro.tools.tracediff",
)

#: Modules every loadtest (traffic-engine) shard executes on top of the
#: served workload's own: schedule generation, the queueing fabric, the
#: fleet driver (calibration + full-serve), and the run surface.
_LOADTEST_MODULES: Tuple[str, ...] = (
    "repro.runapi",
    "repro.traffic.config",
    "repro.traffic.schedule",
    "repro.traffic.loadbalancer",
    "repro.traffic.fleet",
    "repro.traffic.engine",
    "repro.observability.analyzers.latency",
    "repro.observability.spans",
)


def default_cache_root() -> Path:
    env = os.environ.get("REPRO_EVAL_CACHE")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro-eval").expanduser()


# ------------------------------------------------------------- source digests


def source_digest(source: str) -> str:
    """SHA-256 of the parsed AST of *source* — stable across comment-only
    and whitespace-only edits, changed by any semantic edit."""
    tree = ast.parse(source)
    return hashlib.sha256(ast.dump(tree).encode("utf-8")).hexdigest()


def module_source_digest(module_name: str) -> str:
    """AST digest of an importable module's source (cached per process)."""
    cached = _MODULE_DIGESTS.get(module_name)
    if cached is None:
        module = importlib.import_module(module_name)
        cached = source_digest(inspect.getsource(module))
        _MODULE_DIGESTS[module_name] = cached
    return cached


_MODULE_DIGESTS: Dict[str, str] = {}


def workload_modules(kind: str, workload: str) -> Tuple[str, ...]:
    """The workload modules one cell depends on."""
    if kind == "micro":
        return _MICRO_WORKLOAD_MODULES
    prefix = workload.split("-", 1)[0]
    base = _MACRO_WORKLOAD_MODULES.get(prefix, ())
    if kind == "shadow":
        if workload == "stress":
            base = _MICRO_WORKLOAD_MODULES
        return _SHADOW_MODULES + base
    if kind == "loadtest":
        return _LOADTEST_MODULES + base
    return base


# ------------------------------------------------------------------ cell keys


def cell_key(kind: str, mechanism: str, workload: str, seed: int,
             params: Iterable[Tuple[str, object]] = ()) -> str:
    """The content-addressed key for one evaluation cell.

    Raises :class:`repro.interposers.registry.UnknownMechanismError` for a
    mechanism the registry has never seen (such a cell cannot be cached —
    or executed).
    """
    from repro.cpu.cycles import CLOCK_HZ, DEFAULT_COSTS, Event
    from repro.cpu.cycles import SUD_CONTENTION_FACTOR
    from repro.cpu.engine import EngineConfig
    from repro.interposers.registry import REGISTRY

    spec = REGISTRY.get(mechanism)
    costs = {name: DEFAULT_COSTS[Event[name]]
             for name in spec.relevant_events}
    constants: Dict[str, object] = {"clock_hz": CLOCK_HZ, "costs": costs}
    # Engine-tier selection cannot change any measured number (the tiers
    # are cycle-exact by construction), but a tier bug would — so cells
    # measured under different REPRO_NO_* hatches must never share an
    # entry: a hatched re-run has to re-execute, not read back the cached
    # full-tier value it was meant to cross-check.
    constants["engine"] = dict(
        EngineConfig.from_env().flags(),
        block_cache=os.environ.get("REPRO_NO_BLOCK_CACHE", "") != "1")
    if spec.arms_sud:
        constants["sud_contention_factor"] = SUD_CONTENTION_FACTOR
    modules = (COMMON_DEPENDENCIES + (spec.factory.partition(":")[0],)
               + workload_modules(kind, workload))
    sorted_params = sorted((key, value) for key, value in params)
    # Shadow cells run a second mechanism: fold its cost constants and
    # its module digest into the key so editing the shadow-side
    # mechanism invalidates the cell exactly like editing the primary.
    shadow_name = next((value for key, value in sorted_params
                        if key == "shadow"), None)
    if shadow_name is not None:
        shadow_spec = REGISTRY.get(str(shadow_name))
        constants["shadow_costs"] = {
            name: DEFAULT_COSTS[Event[name]]
            for name in shadow_spec.relevant_events}
        if shadow_spec.arms_sud:
            constants["sud_contention_factor"] = SUD_CONTENTION_FACTOR
        modules = modules + (shadow_spec.factory.partition(":")[0],)
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "mechanism": mechanism,
        "mechanism_kwargs": list(spec.kwargs),
        "workload": workload,
        "seed": seed,
        "params": sorted_params,
        "constants": constants,
        "sources": {name: module_source_digest(name)
                    for name in sorted(set(modules))},
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ------------------------------------------------------------------- the cache


class ResultCache:
    """One JSON file per cell key under *root*; values are JSON-safe cell
    measurements (ints/floats survive the round trip exactly)."""

    def __init__(self, root: "Path | str | None" = None):
        self.root = Path(root) if root is not None else default_cache_root()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str):
        """The cached value for *key*, or :data:`MISS`."""
        try:
            raw = self._path(key).read_text()
        except (OSError, ValueError):
            return MISS
        try:
            entry = json.loads(raw)
        except ValueError:
            return MISS
        if entry.get("schema") != SCHEMA_VERSION:
            return MISS
        return entry.get("value", MISS)

    def put(self, key: str, value, meta: Optional[Dict] = None) -> None:
        """Atomically persist *value* under *key* (best-effort: an
        unwritable cache degrades to a no-op, never an error)."""
        entry = {"schema": SCHEMA_VERSION, "value": value,
                 "meta": meta or {}}
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(entry, handle, sort_keys=True)
                os.replace(tmp, self._path(key))
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:
            return 0

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        try:
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        except OSError:
            pass
        return removed


class NullCache(ResultCache):
    """The ``--no-cache`` cache: never hits, never writes."""

    def __init__(self):
        super().__init__(root=Path(os.devnull))

    def get(self, key: str):
        return MISS

    def put(self, key: str, value, meta: Optional[Dict] = None) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def clear(self) -> int:
        return 0
