"""The conformance matrix: mechanisms × workloads × fault-schedule seeds.

For each (workload, seed) the ``native`` null-interposer runs first and
becomes the oracle; every other registered mechanism then runs under the
*same* schedule and is diffed against it
(:meth:`repro.faultinject.conformance.Observation.diff`).  The result is a
per-mechanism verdict matrix — the repro's counterpart of the paper's
"does the mechanism preserve application semantics under adversarial
timing?" claim — rendered as text and emitted as a JSON artifact next to
the other evaluation outputs (``benchmarks/output/CONFORMANCE_matrix.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faultinject.conformance import (Observation, WORKLOADS,
                                           conformance_config, run_cell)
from repro.faultinject.schedule import FaultConfig

ORACLE = "native"

#: Default matrix axes: every registered mechanism, the stress workload
#: plus the coreutils sweep, a handful of schedule seeds.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("stress", "pwd", "touch", "ls", "cat")
DEFAULT_SEEDS: Tuple[int, ...] = (1, 2, 3, 4, 5)

ARTIFACT_PATH = Path("benchmarks/output/CONFORMANCE_matrix.json")


@dataclass
class CellVerdict:
    """One mechanism's verdict against the oracle for one (workload, seed)."""

    mechanism: str
    workload: str
    seed: int
    ok: bool
    divergences: List[str] = field(default_factory=list)
    injections: Tuple[str, ...] = ()
    schedule_sha: str = ""
    #: CounterSink snapshot of the cell run — diagnostic, never compared.
    counters: Dict = field(default_factory=dict)


@dataclass
class ConformanceMatrix:
    mechanisms: Tuple[str, ...]
    workloads: Tuple[str, ...]
    seeds: Tuple[int, ...]
    verdicts: List[CellVerdict] = field(default_factory=list)

    @property
    def divergent(self) -> List[CellVerdict]:
        return [v for v in self.verdicts if not v.ok]

    @property
    def ok(self) -> bool:
        return not self.divergent

    def verdict_map(self) -> Dict[Tuple[str, str, int], bool]:
        """(mechanism, workload, seed) → ok, for cross-mode comparison."""
        return {(v.mechanism, v.workload, v.seed): v.ok
                for v in self.verdicts}

    # ------------------------------------------------------------- rendering

    def render(self) -> str:
        lines = ["Conformance matrix (oracle: %s; %d seeds: %s)"
                 % (ORACLE, len(self.seeds),
                    ", ".join(str(s) for s in self.seeds)), ""]
        width = max(len(m) for m in self.mechanisms) + 2
        header = "mechanism".ljust(width) + "  ".join(
            w.ljust(7) for w in self.workloads)
        lines += [header, "-" * len(header)]
        for mech in self.mechanisms:
            if mech == ORACLE:
                continue
            cells = []
            for wl in self.workloads:
                bad = sum(1 for v in self.verdicts
                          if v.mechanism == mech and v.workload == wl
                          and not v.ok)
                cells.append(("OK" if not bad else f"DIV:{bad}").ljust(7))
            lines.append(mech.ljust(width) + "  ".join(cells))
        for v in self.divergent:
            lines.append("")
            lines.append(f"DIVERGED {v.mechanism}/{v.workload}/seed={v.seed}:")
            lines.extend(f"  - {d}" for d in v.divergences)
        lines.append("")
        lines.append("verdict: %s (%d/%d cells conformant)"
                     % ("OK" if self.ok else "DIVERGED",
                        len(self.verdicts) - len(self.divergent),
                        len(self.verdicts)))
        return "\n".join(lines)

    def to_json(self) -> Dict:
        return {
            "oracle": ORACLE,
            "mechanisms": list(self.mechanisms),
            "workloads": list(self.workloads),
            "seeds": list(self.seeds),
            "ok": self.ok,
            "cells": [
                {
                    "mechanism": v.mechanism,
                    "workload": v.workload,
                    "seed": v.seed,
                    "ok": v.ok,
                    "divergences": v.divergences,
                    "injections": list(v.injections),
                    "schedule_sha": v.schedule_sha,
                    "counters": v.counters,
                }
                for v in self.verdicts
            ],
        }

    def write_artifact(self, path: Optional[Path] = None) -> Path:
        path = Path(path) if path is not None else ARTIFACT_PATH
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path


def run_matrix(mechanisms: Optional[Sequence[str]] = None,
               workloads: Sequence[str] = DEFAULT_WORKLOADS,
               seeds: Sequence[int] = DEFAULT_SEEDS,
               config: Optional[FaultConfig] = None,
               block_cache: Optional[bool] = None,
               jobs: int = 1,
               verbose: bool = False) -> ConformanceMatrix:
    """Run the full differential matrix and collect verdicts.

    The oracle cell for each (workload, seed) is run once and shared by
    every mechanism's diff.  With ``jobs > 1`` the cells fan out over a
    process pool; each cell is a pure function of its arguments (fixed
    kernel seed, pre-drawn schedule), so the parallel matrix is
    cell-for-cell identical to the serial one — only wall-clock changes.
    """
    from repro.interposers.registry import REGISTRY

    names = (tuple(mechanisms) if mechanisms is not None
             else tuple(REGISTRY.names()))
    for wl in workloads:
        if wl not in WORKLOADS:
            raise ValueError(f"unknown workload {wl!r}")
    config = config or conformance_config()
    matrix = ConformanceMatrix(names, tuple(workloads), tuple(seeds))
    cells = [(mech, workload, seed)
             for workload in workloads for seed in seeds
             for mech in (ORACLE,) + tuple(m for m in names
                                           if m != ORACLE)]
    observations: Dict[Tuple[str, str, int], Observation] = {}
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                key: pool.submit(run_cell, *key, config=config,
                                 block_cache=block_cache)
                for key in cells}
            for key, future in futures.items():
                observations[key] = future.result()
    else:
        for key in cells:
            observations[key] = run_cell(*key, config=config,
                                         block_cache=block_cache)
    for workload in workloads:
        for seed in seeds:
            oracle = observations[(ORACLE, workload, seed)]
            for mech in names:
                if mech == ORACLE:
                    continue
                obs = observations[(mech, workload, seed)]
                divergences = obs.diff(oracle)
                matrix.verdicts.append(CellVerdict(
                    mechanism=mech, workload=workload, seed=seed,
                    ok=not divergences, divergences=divergences,
                    injections=obs.injections,
                    schedule_sha=obs.schedule_sha,
                    counters=obs.counters))
                if verbose:
                    status = "OK" if not divergences else "DIVERGED"
                    print(f"  {mech:>24s} / {workload:<7s} seed={seed}: "
                          f"{status}")
    return matrix
