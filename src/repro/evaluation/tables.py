"""Renderers for the paper's tables.

Each function takes measured data and returns the table as text, with the
paper's reference numbers alongside for direct comparison (the material
EXPERIMENTS.md records).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.evaluation.stats import (
    MACRO_SIGMA,
    MICRO_SIGMA,
    RepeatedMeasurement,
)

#: Paper Table 5 reference values.
PAPER_TABLE5: Dict[str, float] = {
    "zpoline-default": 1.1267,
    "zpoline-ultra": 1.1576,
    "lazypoline": 1.3801,
    "K23-default": 1.2788,
    "K23-ultra": 1.3919,
    "K23-ultra+": 1.3948,
    "SUD-no-interposition": 1.2269,
    "SUD": 15.3022,
}

#: Paper Table 2 reference values (program basename → unique sites).
PAPER_TABLE2: Dict[str, int] = {
    "pwd": 7,
    "touch": 9,
    "ls": 10,
    "cat": 11,
    "clear": 13,
    "speedtest1": 20,  # sqlite
    "nginx": 43,
    "lighttpd": 44,
    "redis-server": 92,
}


def render_table2(site_counts: Dict[str, int]) -> str:
    """Table 2: unique syscall sites logged during the offline phase."""
    lines = ["Application        | #Instructions | paper",
             "-------------------+---------------+------"]
    for path, count in site_counts.items():
        base = path.rsplit("/", 1)[-1]
        paper = PAPER_TABLE2.get(base, "-")
        lines.append(f"{base:<19}| {count:>13} | {paper}")
    return "\n".join(lines)


def render_table4() -> str:
    """Table 4: variant catalogue."""
    from repro.core.config import variant_table

    return variant_table()


def render_table5(overheads: Dict[str, float], runs: int = 10,
                  seed: int = 77) -> str:
    """Table 5: microbenchmark overheads with the 10-run protocol."""
    lines = ["Interposer             | Overhead              | paper",
             "-----------------------+-----------------------+--------"]
    for index, (name, value) in enumerate(overheads.items()):
        cell = RepeatedMeasurement(value, runs=runs, sigma=MICRO_SIGMA,
                                   seed=seed + index)
        paper = PAPER_TABLE5.get(name)
        paper_text = f"{paper:.4f}x" if paper else "-"
        lines.append(
            f"{name:<23}| {cell.geomean:7.4f}x (+/-{cell.std_pct:.3f}%) "
            f"| {paper_text}")
    return "\n".join(lines)


def render_table6(rows: List[Dict], runs: int = 10, seed: int = 99) -> str:
    """Table 6: macrobenchmark relative throughput/runtime.

    ``rows``: list of dicts with keys ``label``, ``native`` (req/s or
    None), ``relative`` (mechanism → percent), ``paper_native``,
    ``paper_relative``.
    """
    mechanisms = [name for name in rows[0]["relative"] if name != "native"]
    header = f"{'Application (workload)':<30} {'Native':>12}"
    for name in mechanisms:
        header += f" {name:>21}"
    lines = [header, "-" * len(header)]
    geo: Dict[str, List[float]] = {name: [] for name in mechanisms}
    for row_index, row in enumerate(rows):
        native = row["native"]
        native_text = f"{native:,.0f}" if native else "N/A"
        line = f"{row['label']:<30} {native_text:>12}"
        for col_index, name in enumerate(mechanisms):
            cell = RepeatedMeasurement(
                row["relative"][name], runs=runs, sigma=MACRO_SIGMA,
                seed=seed + 31 * row_index + col_index)
            paper = (row.get("paper_relative") or {}).get(name)
            paper_text = f"/{paper:.2f}" if paper is not None else ""
            line += f" {cell.geomean:7.2f}%{paper_text:>9}"
            geo[name].append(cell.geomean)
        lines.append(line)
    from repro.evaluation.stats import geomean as _geomean

    footer = f"{'geomean':<30} {'N/A':>12}"
    for name in mechanisms:
        footer += f" {_geomean(geo[name]):7.2f}%{'':>9}"
    lines.append("-" * len(header))
    lines.append(footer)
    lines.append("")
    lines.append("(cells: measured% / paper%)")
    return "\n".join(lines)
