"""One builder for simulator runs: ``RunConfig`` → :func:`run` → ``RunResult``.

Every harness in the repo — the evaluation pipeline, the conformance
cells, the shadow dark-launch harness, ad-hoc notebooks — stands up the
same machine: a seeded :class:`~repro.kernel.Kernel`, a workload
installed on it, an interposition mechanism from the registry, optional
offline-phase logs (K23), optional seeded fault injection, and a set of
observe-only bus sinks.  Historically each caller re-assembled that
recipe from ``evaluation.runner`` internals; this module makes it one
frozen config object and two functions:

    from repro.api import RunConfig, run

    result = run(RunConfig(mechanism="K23-ultra", workload="nginx",
                           seed=7))
    result.exit_status, result.counters, result.verdicts

:func:`prepare` is the two-phase variant: it returns a
:class:`PreparedRun` with the kernel built and the mechanism installed
but nothing executed, so lockstep harnesses (the shadow mirror) can
drive two prepared runs request-by-request themselves.

Workloads come in two kinds.  **batch** workloads (``stress`` and the
coreutils) spawn one process and run it to exit; **server** workloads
(``nginx``, ``lighttpd``, ``redis``) boot the server to its accept
loop and drive it with the in-repo wrk/redis-benchmark stand-ins.
Mechanism names are resolved case-insensitively against the registry
(``"k23-ultra"`` → ``"K23-ultra"``), so CLI surfaces need no separate
canonicalization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.faultinject.engine import FaultInjector
from repro.faultinject.schedule import FaultSchedule
from repro.interposers.registry import REGISTRY
from repro.observability.analyzers import Analyzer, AnalyzerSuite, PitfallVerdict
from repro.observability.sinks import CounterSink, Sink
from repro.traffic.config import TrafficConfig
from repro.workloads.clients import (HTTP_REQUEST, REDIS_GET,
                                     KeepAliveSource)

#: Steps the kernel runs after spawning a server so the master forks and
#: every worker reaches its accept loop (mirrors the evaluation runner).
SERVER_BOOT_STEPS = 2_000_000


# ------------------------------------------------------------- the workloads


@dataclass(frozen=True)
class WorkloadSpec:
    """One runnable workload: how to install it and how to drive it.

    Attributes:
        name: registry key (``"stress"``, ``"nginx"``, ...).
        kind: ``"batch"`` (spawn one process, run to exit) or
            ``"server"`` (boot to accept, drive with a load generator).
        installer: ``installer(kernel, params) -> program path``.
        port / payload / connections: load-generation defaults for
            server workloads.
    """

    name: str
    kind: str
    installer: Callable[..., str]
    port: int = 0
    payload: bytes = b""
    connections: int = 1


def _install_stress(kernel, params: Dict[str, int]) -> str:
    from repro.workloads.stress import STRESS_PATH, build_stress

    build_stress(params.get("iterations", 60)).register(kernel)
    return STRESS_PATH


def _coreutil(path: str) -> Callable[..., str]:
    def install(kernel, params: Dict[str, int]) -> str:
        from repro.workloads.coreutils import install_coreutils

        install_coreutils(kernel)
        return path
    return install


def _install_nginx(kernel, params: Dict[str, int]) -> str:
    from repro.workloads.nginx import install_nginx

    return install_nginx(kernel, workers=params.get("workers", 1),
                         file_size_kb=params.get("file_kb", 0),
                         multiconn=bool(params.get("multiconn", 0)))


def _install_lighttpd(kernel, params: Dict[str, int]) -> str:
    from repro.workloads.lighttpd import install_lighttpd

    return install_lighttpd(kernel, workers=params.get("workers", 1),
                            file_size_kb=params.get("file_kb", 0),
                            multiconn=bool(params.get("multiconn", 0)))


def _install_redis(kernel, params: Dict[str, int]) -> str:
    from repro.workloads.redis import install_redis

    # "workers" is the fleet-wide knob (the traffic engine speaks one
    # vocabulary across workloads); redis calls the same thing io_threads.
    io_threads = params.get("io_threads", params.get("workers", 1))
    return install_redis(kernel, io_threads=io_threads,
                         multiconn=bool(params.get("multiconn", 0)))


def _server_ports():
    from repro.workloads.lighttpd import LIGHTTPD_PORT
    from repro.workloads.nginx import NGINX_PORT
    from repro.workloads.redis import REDIS_PORT

    return NGINX_PORT, LIGHTTPD_PORT, REDIS_PORT

_NGINX_PORT, _LIGHTTPD_PORT, _REDIS_PORT = _server_ports()

#: Every workload :func:`run` understands, batch and server alike.
WORKLOADS: Dict[str, WorkloadSpec] = {
    "stress": WorkloadSpec("stress", "batch", _install_stress),
    "pwd": WorkloadSpec("pwd", "batch", _coreutil("/usr/bin/pwd")),
    "touch": WorkloadSpec("touch", "batch", _coreutil("/usr/bin/touch")),
    "ls": WorkloadSpec("ls", "batch", _coreutil("/usr/bin/ls")),
    "cat": WorkloadSpec("cat", "batch", _coreutil("/usr/bin/cat")),
    "clear": WorkloadSpec("clear", "batch", _coreutil("/usr/bin/clear")),
    "nginx": WorkloadSpec("nginx", "server", _install_nginx,
                          port=_NGINX_PORT, payload=HTTP_REQUEST),
    "lighttpd": WorkloadSpec("lighttpd", "server", _install_lighttpd,
                             port=_LIGHTTPD_PORT, payload=HTTP_REQUEST),
    "redis": WorkloadSpec("redis", "server", _install_redis,
                          port=_REDIS_PORT, payload=REDIS_GET),
}


# ---------------------------------------------------------------- the config


@dataclass(frozen=True)
class RunConfig:
    """Complete, validated description of one simulator run.

    Attributes:
        mechanism: registry name, resolved case-insensitively at
            construction (``"k23-ultra"`` canonicalizes to
            ``"K23-ultra"``; unknown names raise
            :class:`~repro.interposers.registry.UnknownMechanismError`).
        workload: a :data:`WORKLOADS` key.
        seed: kernel seed (layout + scheduling determinism).
        schedule: optional pre-built seeded
            :class:`~repro.faultinject.schedule.FaultSchedule`; when set,
            a :class:`~repro.faultinject.engine.FaultInjector` is armed
            before execution.
        sinks: extra observe-only bus sinks to attach (a
            :class:`CounterSink` is always attached and feeds
            ``RunResult.counters``).
        analyzers: streaming analyzers; they are wrapped in one
            :class:`AnalyzerSuite` whose finished verdicts become
            ``RunResult.verdicts``.
        trace_path: when set, a Perfetto/Chrome trace of the run is
            written here (``RunResult.trace_path`` echoes it back).
        requests / connections / warmup_rounds: load-generation knobs
            for server workloads (ignored for batch ones).
        params: workload installer parameters as a sorted tuple of
            pairs, e.g. ``(("iterations", 300),)`` for stress or
            ``(("workers", 10),)`` for nginx — tuple-of-pairs keeps the
            config hashable.
        aslr: address-space layout randomization (off by default: the
            differential harnesses need layout-stable kernels).
        block_cache: force the interpreter mode (None = kernel default).
        max_steps: execution budget for batch runs.
        record: when set, a :class:`repro.replay.Recorder` writes a
            replay bundle (event stream + CoW machine checkpoints) into
            this directory.  Batch workloads only — server workloads
            hold live connections to host-side load generators, which a
            checkpoint cannot round-trip.
        replay_from: when set, :func:`run` replays a previously recorded
            bundle instead of executing fresh (mechanism/workload/seed
            must match the bundle's meta); a non-byte-identical replay
            raises :class:`repro.replay.ReplayDivergenceError`.
        checkpoint_interval: retired instructions between checkpoints
            while recording.
        traffic: when set (a :class:`repro.traffic.TrafficConfig` or an
            equivalent dict), :func:`run` dispatches to the open-loop
            traffic engine instead of the closed-loop driver: the
            schedule in *traffic* is pushed through a fleet of this
            workload's servers under this mechanism, and the resulting
            :class:`~repro.traffic.slo.SLOReport` rides back on
            ``RunResult.slo``.  Server workloads only; exclusive with
            ``record``/``replay_from`` (the engine builds its own fleet
            of kernels, so per-run ``sinks``/``analyzers`` do not attach
            to them — fleet observability flows through the engine's own
            bus events and the report).
    """

    mechanism: str
    workload: str
    seed: int = 0
    schedule: Optional[FaultSchedule] = None
    sinks: Tuple[Sink, ...] = ()
    analyzers: Tuple[Analyzer, ...] = ()
    trace_path: Optional[str] = None
    requests: int = 32
    connections: Optional[int] = None
    warmup_rounds: int = 1
    params: Tuple[Tuple[str, int], ...] = ()
    aslr: bool = False
    block_cache: Optional[bool] = None
    max_steps: int = 10_000_000
    record: Optional[str] = None
    replay_from: Optional[str] = None
    checkpoint_interval: int = 1_000
    traffic: Optional[TrafficConfig] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "mechanism",
                           REGISTRY.canonical(self.mechanism))
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}; "
                             f"valid: {', '.join(WORKLOADS)}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) \
                or self.seed < 0:
            raise ValueError(f"seed must be a non-negative int, "
                             f"got {self.seed!r}")
        if self.schedule is not None \
                and not isinstance(self.schedule, FaultSchedule):
            raise ValueError("schedule must be a FaultSchedule "
                             "(build one with repro.api.build_schedule)")
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.connections is not None and self.connections < 1:
            raise ValueError("connections must be >= 1 when given")
        if self.record is not None and self.replay_from is not None:
            raise ValueError("record and replay_from are mutually "
                             "exclusive")
        if self.record is not None and self.spec.kind != "batch":
            raise ValueError(
                f"record= supports batch workloads only; {self.workload!r} "
                f"is a server workload (its connections are shared with "
                f"host-side load generators, which a checkpoint cannot "
                f"round-trip)")
        if self.checkpoint_interval < 1:
            raise ValueError(f"checkpoint_interval must be >= 1, "
                             f"got {self.checkpoint_interval}")
        if self.traffic is not None:
            if isinstance(self.traffic, dict):
                object.__setattr__(self, "traffic",
                                   TrafficConfig.from_dict(self.traffic))
            elif not isinstance(self.traffic, TrafficConfig):
                raise ValueError(
                    "traffic must be a TrafficConfig (or an equivalent "
                    "dict; build one with repro.api.TrafficConfig)")
            if self.spec.kind != "server":
                raise ValueError(
                    f"traffic= needs a server workload; {self.workload!r} "
                    f"is a batch workload with no serving loop to load")
            if self.record is not None or self.replay_from is not None:
                raise ValueError("traffic is mutually exclusive with "
                                 "record/replay_from")
        object.__setattr__(self, "sinks", tuple(self.sinks))
        object.__setattr__(self, "analyzers", tuple(self.analyzers))
        object.__setattr__(self, "params",
                           tuple(sorted(tuple(p) for p in self.params)))

    @property
    def spec(self) -> WorkloadSpec:
        return WORKLOADS[self.workload]


@dataclass(frozen=True)
class RunResult:
    """What one run produced — the JSON-able outcome surface.

    ``exit_status`` is the batch process's exit status (None for server
    workloads, which never exit); ``requests``/``failures`` are the
    load-generation tallies (0 for batch runs); ``counters`` is the
    always-attached :class:`CounterSink` snapshot; ``verdicts`` are the
    finished analyzer findings; ``trace_path`` names the written
    Perfetto trace, if one was requested; ``slo`` is the merged
    :class:`~repro.traffic.slo.SLOReport` for ``traffic=`` runs (None
    otherwise — for traffic runs ``requests``/``failures`` echo the
    report's completed/shed totals).
    """

    mechanism: str
    workload: str
    seed: int
    exit_status: Optional[int]
    cycles: int = 0
    requests: int = 0
    failures: int = 0
    counters: Dict = field(default_factory=dict, compare=False)
    verdicts: Tuple[PitfallVerdict, ...] = ()
    trace_path: Optional[str] = None
    slo: Optional[object] = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        """Batch: clean exit.  Server: every driven request answered."""
        if self.exit_status is not None:
            return self.exit_status == 0
        return self.failures == 0


# ----------------------------------------------------------- offline phase


#: (workload, params, offline seed) → exported K23 offline logs.  The
#: offline phase is faultless and mechanism-independent, so shadow pairs
#: and repeated runs re-import rather than recompute.
_OFFLINE_CACHE: Dict[Tuple, Dict] = {}


def _offline_logs(config: RunConfig) -> Dict:
    offline_seed = config.seed + 1000
    key = (config.workload, config.params, offline_seed, config.aslr)
    logs = _OFFLINE_CACHE.get(key)
    if logs is None:
        from repro.core import OfflinePhase
        from repro.kernel import Kernel

        spec = config.spec
        kernel = Kernel(seed=offline_seed, aslr=config.aslr)
        path = spec.installer(kernel, dict(config.params))
        offline = OfflinePhase(kernel)
        if spec.kind == "server":
            def driver(kern, proc):
                kern.run(max_steps=SERVER_BOOT_STEPS)
                source = KeepAliveSource(kern, spec.port,
                                         spec.connections, spec.payload)
                source.drive(4 * spec.connections)
                source.close()

            offline.run(path, driver=driver, max_steps=20_000_000)
        else:
            offline.run(path, max_steps=20_000_000)
        logs = offline.export()
        _OFFLINE_CACHE[key] = logs
    return logs


# ------------------------------------------------------------- preparation


@dataclass
class PreparedRun:
    """A built-but-unexecuted run: kernel up, mechanism installed.

    :meth:`execute` finishes the standard way; lockstep harnesses
    instead call :meth:`boot` + :meth:`load_generator` (server) or
    :meth:`spawn` (batch) and drive the kernel themselves, then
    :meth:`finish` to collect the :class:`RunResult`.
    """

    config: RunConfig
    kernel: object
    path: str
    counters: CounterSink
    suite: Optional[AnalyzerSuite] = None
    trace_sink: Optional[object] = None
    injector: Optional[FaultInjector] = None
    process: Optional[object] = None
    recorder: Optional[object] = None

    @property
    def spec(self) -> WorkloadSpec:
        return self.config.spec

    def spawn(self):
        """Spawn the workload process (batch and server boot both start
        here); execution has not begun yet."""
        self.process = self.kernel.spawn_process(self.path)
        return self.process

    def boot(self) -> None:
        """Server workloads: run until the workers sit in accept."""
        if self.process is None:
            self.spawn()
        self.kernel.run(max_steps=SERVER_BOOT_STEPS)

    def traffic_source(self) -> KeepAliveSource:
        """The closed-loop :class:`~repro.workloads.clients.TrafficSource`
        for this server (lockstep harnesses drive it themselves)."""
        spec = self.spec
        connections = self.config.connections or spec.connections
        return KeepAliveSource(self.kernel, spec.port, connections,
                               spec.payload)

    def load_generator(self) -> KeepAliveSource:
        """Legacy alias for :meth:`traffic_source`."""
        return self.traffic_source()

    def execute(self) -> RunResult:
        """Run to completion the standard way and collect the result."""
        before = self.kernel.cycles.cycles
        if self.spec.kind == "server":
            self.boot()
            source = self.traffic_source()
            source.warmup(self.config.warmup_rounds)
            drive = source.drive(self.config.requests)
            source.close()
            return self.finish(cycles=drive.cycles,
                               requests=drive.requests,
                               failures=drive.failures)
        self.spawn()
        self.kernel.run_process(self.process,
                                max_steps=self.config.max_steps)
        return self.finish(cycles=self.kernel.cycles.cycles - before)

    def finish(self, cycles: int = 0, requests: int = 0,
               failures: int = 0) -> RunResult:
        """Collect counters/verdicts/trace into the final RunResult."""
        exit_status = None
        if self.process is not None and self.spec.kind == "batch":
            exit_status = self.process.exit_status
        if self.recorder is not None:
            # Off the measured path: the bundle (events, log, pickled
            # checkpoints) is flushed after execution completed.
            self.recorder.close(exit_status=exit_status)
        verdicts: Tuple[PitfallVerdict, ...] = ()
        if self.suite is not None:
            verdicts = tuple(self.suite.finish())
        trace_path = None
        if self.trace_sink is not None:
            from repro.observability.export import write_chrome_trace

            trace_path = str(write_chrome_trace(self.trace_sink,
                                                self.config.trace_path))
        return RunResult(
            mechanism=self.config.mechanism,
            workload=self.config.workload,
            seed=self.config.seed,
            exit_status=exit_status,
            cycles=cycles,
            requests=requests,
            failures=failures,
            counters=self.counters.snapshot(),
            verdicts=verdicts,
            trace_path=trace_path,
        )


def prepare(config: RunConfig) -> PreparedRun:
    """Build the machine for *config* without executing anything.

    Deterministic by construction: fixed seed, torn-window dice off,
    fault variety only from the explicit schedule.
    """
    from repro.kernel import Kernel

    kernel = Kernel(seed=config.seed, aslr=config.aslr)
    kernel.torn_window_probability = 0.0
    if config.block_cache is not None:
        kernel.block_cache_enabled = config.block_cache
    counters = CounterSink()
    kernel.bus.attach(counters)
    suite = None
    if config.analyzers:
        suite = AnalyzerSuite(config.analyzers)
        kernel.bus.attach(suite)
    for sink in config.sinks:
        kernel.bus.attach(sink)
    trace_sink = None
    if config.trace_path is not None:
        from repro.observability.export import TraceSink

        trace_sink = TraceSink(mechanism=config.mechanism,
                               workload=config.workload)
        kernel.bus.attach(trace_sink)
    path = config.spec.installer(kernel, dict(config.params))
    if REGISTRY.needs_offline(config.mechanism):
        from repro.core.offline import import_logs

        import_logs(kernel, _offline_logs(config))
    REGISTRY.create(config.mechanism, kernel)
    injector = None
    if config.schedule is not None:
        injector = FaultInjector(kernel, config.schedule)
    recorder = None
    if config.record is not None:
        from repro.replay.recorder import Recorder

        recorder = Recorder(config.record, kernel, config=config,
                            interval=config.checkpoint_interval)
        kernel.bus.attach(recorder)
        kernel.recorder = recorder
    return PreparedRun(config=config, kernel=kernel, path=path,
                       counters=counters, suite=suite,
                       trace_sink=trace_sink, injector=injector,
                       recorder=recorder)


def run(config: RunConfig) -> RunResult:
    """Build and execute one run: ``run(config) == prepare(config).execute()``.

    With ``replay_from=`` set, the run is a **replay** of the recorded
    bundle (restored from its last checkpoint and verified byte-identical)
    rather than a fresh execution.  With ``traffic=`` set, the run is an
    **open-loop load test**: the traffic engine pushes the configured
    schedule through a fleet of this workload's servers and the merged
    :class:`~repro.traffic.slo.SLOReport` comes back on ``result.slo``."""
    if config.traffic is not None:
        from repro.traffic.engine import run_loadtest

        report = run_loadtest([config.mechanism], config.workload,
                              config.traffic, config.seed)
        totals = report.mechanisms[config.mechanism]["totals"]
        return RunResult(
            mechanism=config.mechanism,
            workload=config.workload,
            seed=config.seed,
            exit_status=None,
            requests=totals["completed"],
            failures=totals["shed"],
            slo=report,
        )
    if config.replay_from is not None:
        from repro.replay.replayer import run_replay

        return run_replay(config)
    return prepare(config).execute()
