"""Simulated redis (branch 8.0), 100 % GET workload.

I/O-thread model: the main thread binds the listener and spawns N-1 extra
I/O threads; each thread runs an accept/keep-alive loop answering GET
requests (``recvfrom`` + in-memory lookup + ``sendto``).  redis is the most
syscall-dense of the macro workloads per unit of compute — two syscalls
around a cheap hash lookup — which is why pure-SUD interposition collapses
on it (Table 6).

Table 2 measures 92 unique sites for redis: the server's own wrapper layer
(connection abstraction, jemalloc, ae event loop, bio threads) contributes
many inlined sites beyond plain libc — modelled by ``INLINE_PAD``.
"""

from __future__ import annotations

import struct

from repro.arch.registers import Reg
from repro.workloads.http import pad_inline_sites
from repro.workloads.programs import ProgramBuilder, data_ref

REDIS_PATH = "/usr/bin/redis-server"
REDIS_CONF = "/etc/redis/repro.conf"
REDIS_PORT = 6379

#: In-memory GET cost (hash lookup + reply formatting).
REDIS_BURN_CYCLES = 9_280

#: Table 2 target: 92 unique sites.
REDIS_TABLE2_SITES = 92
INLINE_PAD = 83


#: Config offset of the multi-connection flag (see workloads.http): the
#: classic config is 8 bytes, so the zero confbuf tail reads as "off".
MULTICONN_FLAG_OFFSET = 56


def write_redis_config(kernel, io_threads: int,
                       multiconn: bool = False) -> None:
    payload = struct.pack("<Q", io_threads)
    if multiconn:
        payload = (payload.ljust(MULTICONN_FLAG_OFFSET, b"\x00")
                   + struct.pack("<Q", 1))
    kernel.vfs.create(REDIS_CONF, payload)


def build_redis() -> ProgramBuilder:
    builder = ProgramBuilder(REDIS_PATH, stub_profile=60)
    builder.string("conf", REDIS_CONF)
    builder.buffer("confbuf", 64)
    builder.buffer("reqbuf", 256)
    builder.buffer("reply", 256)
    builder.buffer("events", 16)
    asm = builder.asm
    builder.start()

    pad_inline_sites(builder, INLINE_PAD, "redis")

    builder.libc("openat", (1 << 64) - 100, data_ref("conf"), 0)
    asm.mov_rr(Reg.RBX, Reg.RAX)
    builder.libc("read", Reg.RBX, data_ref("confbuf"), 64)
    builder.libc("close", Reg.RBX)

    builder.libc("socket", 2, 1, 0)
    asm.mov_rr(Reg.R14, Reg.RAX)
    builder.libc("bind", Reg.R14, REDIS_PORT, 0)
    builder.libc("listen", Reg.R14, 511)

    # Spawn io_threads-1 extra threads; the main thread serves too.
    asm.lea_rip_label(Reg.R15, "confbuf")
    asm.load(Reg.R15, Reg.R15)
    asm.dec(Reg.R15)
    builder.label(".spawn_loop")
    asm.test_rr(Reg.R15, Reg.R15)
    asm.je(".serve")
    asm.lea_rip_label(Reg.RDI, ".serve")
    builder.libc("pthread_create", Reg.RDI)
    asm.dec(Reg.R15)
    asm.jmp(".spawn_loop")

    # ------------------------------------------------------------- io thread
    builder.label(".serve")
    # Serving-model dispatch (see workloads.http): the multiconn flag
    # selects the per-thread epoll event loop over the classic
    # one-connection-at-a-time ae loop.
    asm.lea_rip_label(Reg.R11, "confbuf")
    asm.add_ri(Reg.R11, MULTICONN_FLAG_OFFSET)
    asm.load(Reg.RAX, Reg.R11)
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.jne(".mc_serve")

    builder.label(".accept_loop")
    builder.libc("accept", Reg.R14, 0, 0, 0)
    asm.mov_rr(Reg.R13, Reg.RAX)
    builder.label(".req_loop")
    builder.libc("recvfrom", Reg.R13, data_ref("reqbuf"), 256, 0, 0, 0)
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.je(".conn_closed")
    builder.libc("burn", REDIS_BURN_CYCLES)  # dict lookup + reply build
    builder.libc("sendto", Reg.R13, data_ref("reply"), 32, 0, 0, 0)
    asm.jmp(".req_loop")
    builder.label(".conn_closed")
    builder.libc("close", Reg.R13)
    asm.jmp(".accept_loop")

    # ------------------------------------------- multiconn io thread
    # Each thread owns an epoll set over the shared listener plus the
    # connections it accepted; the per-request mix (recvfrom, burn,
    # sendto) is identical to the classic path.
    builder.label(".mc_serve")
    builder.libc("epoll_create", 1)
    asm.mov_rr(Reg.R12, Reg.RAX)
    builder.libc("epoll_ctl", Reg.R12, 1, Reg.R14, 0)
    builder.label(".mc_loop")
    builder.libc("epoll_wait", Reg.R12, data_ref("events"), 1,
                 (1 << 64) - 1)
    asm.lea_rip_label(Reg.R11, "events")
    asm.load(Reg.R13, Reg.R11)  # R13 = the ready fd
    asm.cmp_rr(Reg.R13, Reg.R14)
    asm.jne(".mc_request")
    # Thundering herd on the shared listener: losers take EAGAIN.
    builder.libc("accept", Reg.R14, 0, 0, 0x800)
    asm.cmp_ri(Reg.RAX, 0)
    asm.jl(".mc_loop")
    asm.mov_rr(Reg.R13, Reg.RAX)
    builder.libc("epoll_ctl", Reg.R12, 1, Reg.R13, 0)
    asm.jmp(".mc_loop")
    builder.label(".mc_request")
    builder.libc("recvfrom", Reg.R13, data_ref("reqbuf"), 256, 0, 0, 0)
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.je(".mc_closed")
    builder.libc("burn", REDIS_BURN_CYCLES)
    builder.libc("sendto", Reg.R13, data_ref("reply"), 32, 0, 0, 0)
    asm.jmp(".mc_loop")
    builder.label(".mc_closed")
    builder.libc("epoll_ctl", Reg.R12, 2, Reg.R13, 0)
    builder.libc("close", Reg.R13)
    asm.jmp(".mc_loop")
    return builder


def install_redis(kernel, io_threads: int = 1,
                  multiconn: bool = False) -> str:
    write_redis_config(kernel, io_threads, multiconn=multiconn)
    build_redis().register(kernel)
    return REDIS_PATH
