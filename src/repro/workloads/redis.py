"""Simulated redis (branch 8.0), 100 % GET workload.

I/O-thread model: the main thread binds the listener and spawns N-1 extra
I/O threads; each thread runs an accept/keep-alive loop answering GET
requests (``recvfrom`` + in-memory lookup + ``sendto``).  redis is the most
syscall-dense of the macro workloads per unit of compute — two syscalls
around a cheap hash lookup — which is why pure-SUD interposition collapses
on it (Table 6).

Table 2 measures 92 unique sites for redis: the server's own wrapper layer
(connection abstraction, jemalloc, ae event loop, bio threads) contributes
many inlined sites beyond plain libc — modelled by ``INLINE_PAD``.
"""

from __future__ import annotations

import struct

from repro.arch.registers import Reg
from repro.workloads.http import pad_inline_sites
from repro.workloads.programs import ProgramBuilder, data_ref

REDIS_PATH = "/usr/bin/redis-server"
REDIS_CONF = "/etc/redis/repro.conf"
REDIS_PORT = 6379

#: In-memory GET cost (hash lookup + reply formatting).
REDIS_BURN_CYCLES = 9_280

#: Table 2 target: 92 unique sites.
REDIS_TABLE2_SITES = 92
INLINE_PAD = 83


def write_redis_config(kernel, io_threads: int) -> None:
    kernel.vfs.create(REDIS_CONF, struct.pack("<Q", io_threads))


def build_redis() -> ProgramBuilder:
    builder = ProgramBuilder(REDIS_PATH, stub_profile=60)
    builder.string("conf", REDIS_CONF)
    builder.buffer("confbuf", 64)
    builder.buffer("reqbuf", 256)
    builder.buffer("reply", 256)
    asm = builder.asm
    builder.start()

    pad_inline_sites(builder, INLINE_PAD, "redis")

    builder.libc("openat", (1 << 64) - 100, data_ref("conf"), 0)
    asm.mov_rr(Reg.RBX, Reg.RAX)
    builder.libc("read", Reg.RBX, data_ref("confbuf"), 64)
    builder.libc("close", Reg.RBX)

    builder.libc("socket", 2, 1, 0)
    asm.mov_rr(Reg.R14, Reg.RAX)
    builder.libc("bind", Reg.R14, REDIS_PORT, 0)
    builder.libc("listen", Reg.R14, 511)

    # Spawn io_threads-1 extra threads; the main thread serves too.
    asm.lea_rip_label(Reg.R15, "confbuf")
    asm.load(Reg.R15, Reg.R15)
    asm.dec(Reg.R15)
    builder.label(".spawn_loop")
    asm.test_rr(Reg.R15, Reg.R15)
    asm.je(".serve")
    asm.lea_rip_label(Reg.RDI, ".serve")
    builder.libc("pthread_create", Reg.RDI)
    asm.dec(Reg.R15)
    asm.jmp(".spawn_loop")

    # ------------------------------------------------------------- io thread
    builder.label(".serve")
    builder.label(".accept_loop")
    builder.libc("accept", Reg.R14, 0, 0)
    asm.mov_rr(Reg.R13, Reg.RAX)
    builder.label(".req_loop")
    builder.libc("recvfrom", Reg.R13, data_ref("reqbuf"), 256, 0, 0, 0)
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.je(".conn_closed")
    builder.libc("burn", REDIS_BURN_CYCLES)  # dict lookup + reply build
    builder.libc("sendto", Reg.R13, data_ref("reply"), 32, 0, 0, 0)
    asm.jmp(".req_loop")
    builder.label(".conn_closed")
    builder.libc("close", Reg.R13)
    asm.jmp(".accept_loop")
    return builder


def install_redis(kernel, io_threads: int = 1) -> str:
    write_redis_config(kernel, io_threads)
    build_redis().register(kernel)
    return REDIS_PATH
