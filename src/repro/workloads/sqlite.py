"""Simulated sqlite speedtest1 (tag version-3.50.4, ``-size 800``).

A fresh 4 KiB-page database in WAL mode with ``synchronous=NORMAL`` and no
auto-checkpointing (§6.2.2): per transaction the engine appends WAL frames
(``write``), reads b-tree pages (``lseek`` + ``read``), and — at NORMAL —
syncs the WAL only at checkpoint-ish boundaries (``fdatasync`` every
``SYNC_EVERY`` transactions).  Between syscalls the engine burns parse/
plan/execute compute.  Not throughput-oriented: the benchmark reports
relative *runtime* (§6.2.2, Table 6's sqlite row).
"""

from __future__ import annotations

from repro.arch.registers import Reg
from repro.workloads.http import pad_inline_sites
from repro.workloads.programs import ProgramBuilder, RESULT, data_ref

SQLITE_PATH = "/usr/bin/speedtest1"
DB_PATH = "/var/db/speedtest.db"
WAL_PATH = "/var/db/speedtest.db-wal"

#: Transactions per run (scaled-down stand-in for ``-size 800``).
TRANSACTIONS = 120
SYNC_EVERY = 8

#: Parse/plan/execute compute per transaction.
SQLITE_BURN_CYCLES = 30_300

#: Table 2 target: 20 unique sites for sqlite.
SQLITE_TABLE2_SITES = 20
INLINE_PAD = 11


def build_speedtest1() -> ProgramBuilder:
    builder = ProgramBuilder(SQLITE_PATH, stub_profile=34)
    builder.string("db", DB_PATH)
    builder.string("wal", WAL_PATH)
    builder.buffer("page", 4096)
    builder.buffer("frame", 4096)
    asm = builder.asm
    builder.start()

    pad_inline_sites(builder, INLINE_PAD, "sqlite")

    builder.libc("openat", (1 << 64) - 100, data_ref("db"), 0o102)
    asm.mov_rr(Reg.R14, Reg.RAX)  # db fd
    builder.libc("openat", (1 << 64) - 100, data_ref("wal"), 0o102)
    asm.mov_rr(Reg.R13, Reg.RAX)  # wal fd
    builder.libc("fstat", Reg.R14, 0)
    builder.libc("newfstatat", (1 << 64) - 100, data_ref("db"), 0, 0)

    asm.mov_ri(Reg.R12, SYNC_EVERY)  # countdown to the next WAL sync
    builder.loop(TRANSACTIONS, counter=Reg.R15)
    # Read three b-tree pages (interior, leaf, overflow).
    builder.libc("lseek", Reg.R14, 0, 0)
    builder.libc("read", Reg.R14, data_ref("page"), 4096)
    builder.libc("lseek", Reg.R14, 4096, 0)
    builder.libc("read", Reg.R14, data_ref("page"), 4096)
    builder.libc("lseek", Reg.R14, 0, 0)
    builder.libc("read", Reg.R14, data_ref("page"), 4096)
    # Execute (parse/plan/btree work).
    builder.libc("burn", SQLITE_BURN_CYCLES)
    # Append one WAL frame.
    builder.libc("write", Reg.R13, data_ref("frame"), 4096)
    # synchronous=NORMAL: sync every SYNC_EVERY transactions.
    asm.dec(Reg.R12)
    asm.jne(".txn_no_sync")
    builder.libc("fdatasync", Reg.R13)
    asm.mov_ri(Reg.R12, SYNC_EVERY)
    builder.label(".txn_no_sync")
    builder.end_loop()
    builder.libc("fdatasync", Reg.R13)  # final WAL flush
    builder.libc("close", Reg.R13)
    builder.libc("close", Reg.R14)
    builder.exit(0)
    return builder


def install_sqlite(kernel) -> str:
    kernel.vfs.mkdir("/var/db", exist_ok=True)
    kernel.vfs.create(DB_PATH, b"\x00" * 8192)
    kernel.vfs.create(WAL_PATH, b"")
    build_speedtest1().register(kernel)
    return SQLITE_PATH
