"""Shared machinery for the HTTP-server workloads (nginx / lighttpd).

Both servers follow the classic pre-fork worker model the paper benchmarks:
a master process binds the listening socket, forks N workers that inherit
it, and parks in ``wait4``; each worker accepts keep-alive connections and
answers GET requests.

The two servers differ in their per-request syscall mix, mirroring their
real architectures:

- **nginx mode** (``cache_revalidate_every=1``): full file I/O on every
  request — ``recvfrom``, ``lseek``, ``read`` (plus an EOF-confirming
  ``read`` and a body ``sendto`` for non-empty files), ``sendto``.
  4 syscalls/request at 0 KB, 6 at 4 KB.
- **lighttpd mode** (``cache_revalidate_every=N``): serves from its file
  cache — ``recvfrom`` + ``sendto`` (+ body ``sendto``) per request, with
  the ``lseek``/``read`` revalidation only every N-th request.

Worker count, per-request application compute (``burn``), and the served
file are read from a config file at startup (three fields: 8-byte LE worker
count, 8-byte LE burn cycles, NUL-terminated path), so one binary serves
every Table 6 configuration and keeps a single offline log.
"""

from __future__ import annotations

import struct
from typing import List

from repro.arch.registers import Reg
from repro.kernel.syscalls import Nr
from repro.workloads.programs import ProgramBuilder, RESULT, data_ref

WWW_EMPTY = "/var/www/empty.html"
WWW_4K = "/var/www/page4k.html"


def pad_inline_sites(builder: ProgramBuilder, count: int,
                     prefix: str) -> None:
    """Emit *count* one-shot inlined syscall sites (the static-binary /
    hand-written-assembly sites that inflate real applications' unique-site
    counts in Table 2).  Each executes exactly once at startup."""
    for index in range(count):
        builder.direct_syscall(Nr.getpid, mark=f"{prefix}.inline{index}")


#: Config offset of the multi-connection flag.  The classic config stops
#: at the NUL-terminated path, leaving the zero-initialized buffer tail
#: to read as "off" — so classic binaries' per-request instruction stream
#: is untouched by the flag's existence.
MULTICONN_FLAG_OFFSET = 240


def write_server_config(kernel, path: str, workers: int, burn_cycles: int,
                        file_path: str, multiconn: bool = False) -> None:
    """Write the runtime config consumed by :func:`build_http_server`."""
    payload = (struct.pack("<QQ", workers, burn_cycles)
               + file_path.encode() + b"\x00")
    if multiconn:
        if len(payload) > MULTICONN_FLAG_OFFSET:
            raise ValueError("served-file path too long for multiconn config")
        payload = (payload.ljust(MULTICONN_FLAG_OFFSET, b"\x00")
                   + struct.pack("<Q", 1))
    kernel.vfs.create(path, payload)


def install_www(kernel) -> None:
    kernel.vfs.create(WWW_EMPTY, b"")
    kernel.vfs.create(WWW_4K, b"x" * 4096)


def build_http_server(path: str, conf_path: str, port: int,
                      inline_pad: int, cache_revalidate_every: int = 1,
                      stub_profile: int = 40) -> ProgramBuilder:
    """Author one pre-fork HTTP server binary (see module docstring)."""
    builder = ProgramBuilder(path, stub_profile=stub_profile)
    builder.string("conf", conf_path)
    builder.buffer("confbuf", 256)
    builder.buffer("reqbuf", 512)
    builder.buffer("filebuf", 4608)
    builder.buffer("events", 64)
    builder.buffer("revcnt", 8)
    asm = builder.asm
    builder.start()

    # One-shot inlined sites (startup bookkeeping; Table 2 padding).
    pad_inline_sites(builder, inline_pad, path.rsplit("/", 1)[-1])

    # Read the runtime configuration.
    builder.libc("openat", (1 << 64) - 100, data_ref("conf"), 0)
    asm.mov_rr(Reg.RBX, Reg.RAX)
    builder.libc("read", Reg.RBX, data_ref("confbuf"), 256)
    builder.libc("close", Reg.RBX)

    # Bind and listen; the listener fd lives in R14 across fork.
    builder.libc("socket", 2, 1, 0)
    asm.mov_rr(Reg.R14, Reg.RAX)
    builder.libc("bind", Reg.R14, port, 0)
    builder.libc("listen", Reg.R14, 128)

    # Fork the workers (count from config word 0).
    asm.lea_rip_label(Reg.R15, "confbuf")
    asm.load(Reg.R15, Reg.R15)  # R15 = worker count
    builder.label(".fork_loop")
    asm.test_rr(Reg.R15, Reg.R15)
    asm.je(".master")
    builder.libc("fork")
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.je(".worker")
    asm.dec(Reg.R15)
    asm.jmp(".fork_loop")

    # Master: reap forever (parks in wait4).
    builder.label(".master")
    builder.libc("wait4", 0, 0, 0, 0)
    builder.exit(0)

    # ---------------------------------------------------------------- worker
    builder.label(".worker")
    # RBP = per-request application compute (config word 1).
    asm.lea_rip_label(Reg.R11, "confbuf")
    asm.add_ri(Reg.R11, 8)
    asm.load(Reg.RBP, Reg.R11)
    builder.libc("epoll_create", 1)
    asm.mov_rr(Reg.R12, Reg.RAX)
    builder.libc("epoll_ctl", Reg.R12, 1, Reg.R14, 0)

    # Serving-model dispatch: the multiconn flag selects the epoll
    # event loop (one worker multiplexing many connections) over the
    # classic one-connection-at-a-time accept loop.
    asm.lea_rip_label(Reg.R11, "confbuf")
    asm.add_ri(Reg.R11, MULTICONN_FLAG_OFFSET)
    asm.load(Reg.RAX, Reg.R11)
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.jne(".mc_worker")

    builder.label(".accept_loop")
    builder.libc("epoll_wait", Reg.R12, data_ref("events"), 8,
                 (1 << 64) - 1)
    builder.libc("accept", Reg.R14, 0, 0, 0)
    asm.mov_rr(Reg.R13, Reg.RAX)

    # Per-connection file setup: stat + open + fstat once, prime the cache.
    asm.lea_rip_label(Reg.R11, "confbuf")
    asm.add_ri(Reg.R11, 16)
    builder.libc("newfstatat", (1 << 64) - 100, Reg.R11, 0, 0)
    asm.lea_rip_label(Reg.R11, "confbuf")
    asm.add_ri(Reg.R11, 16)
    builder.libc("openat", (1 << 64) - 100, Reg.R11, 0)
    asm.mov_rr(Reg.RBX, Reg.RAX)
    builder.libc("fstat", Reg.RBX, 0)
    builder.libc("read", Reg.RBX, data_ref("filebuf"), 4096)
    asm.mov_rr(Reg.R15, Reg.RAX)  # R15 = cached body size
    # Reset the revalidation countdown.
    asm.lea_rip_label(Reg.R11, "revcnt")
    asm.mov_ri(Reg.RAX, cache_revalidate_every)
    asm.store(Reg.R11, Reg.RAX)

    builder.label(".req_loop")
    builder.libc("recvfrom", Reg.R13, data_ref("reqbuf"), 512, 0, 0, 0)
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.je(".conn_closed")

    # File I/O: every request (nginx) or every N-th request (lighttpd).
    asm.lea_rip_label(Reg.R11, "revcnt")
    asm.load(Reg.RAX, Reg.R11)
    asm.dec(Reg.RAX)
    asm.store(Reg.R11, Reg.RAX)
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.jne(".serve")
    asm.mov_ri(Reg.RAX, cache_revalidate_every)
    asm.store(Reg.R11, Reg.RAX)
    builder.libc("lseek", Reg.RBX, 0, 0)
    builder.libc("read", Reg.RBX, data_ref("filebuf"), 4096)
    asm.mov_rr(Reg.R15, Reg.RAX)
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.je(".serve")
    builder.libc("read", Reg.RBX, data_ref("filebuf"), 4096)  # EOF confirm

    builder.label(".serve")
    builder.libc("burn", Reg.RBP)  # parse + route + headers + log
    builder.libc("sendto", Reg.R13, data_ref("reqbuf"), 128, 0, 0, 0)
    asm.test_rr(Reg.R15, Reg.R15)
    asm.je(".req_loop")
    builder.libc("sendto", Reg.R13, data_ref("filebuf"), Reg.R15, 0, 0, 0)
    asm.jmp(".req_loop")

    builder.label(".conn_closed")
    builder.libc("close", Reg.RBX)
    builder.libc("close", Reg.R13)
    asm.jmp(".accept_loop")

    # ------------------------------------------------ multiconn worker
    # Event-loop serving for the traffic engine's fleet: one worker
    # multiplexes every connection through its epoll set.  The file is
    # opened once per worker (the warmed-cache steady state the paper's
    # long runs reach) and the per-request mix — recvfrom, revalidate
    # countdown, burn, sendto(s) — is identical to the classic path.
    builder.label(".mc_worker")
    asm.lea_rip_label(Reg.R11, "confbuf")
    asm.add_ri(Reg.R11, 16)
    builder.libc("openat", (1 << 64) - 100, Reg.R11, 0)
    asm.mov_rr(Reg.RBX, Reg.RAX)
    builder.libc("fstat", Reg.RBX, 0)
    builder.libc("read", Reg.RBX, data_ref("filebuf"), 4096)
    asm.mov_rr(Reg.R15, Reg.RAX)  # R15 = cached body size
    asm.lea_rip_label(Reg.R11, "revcnt")
    asm.mov_ri(Reg.RAX, cache_revalidate_every)
    asm.store(Reg.R11, Reg.RAX)

    # maxevents=1 keeps the ready fd addressable without an index
    # register — every callee-saved register is already spoken for.
    builder.label(".mc_loop")
    builder.libc("epoll_wait", Reg.R12, data_ref("events"), 1,
                 (1 << 64) - 1)
    asm.lea_rip_label(Reg.R11, "events")
    asm.load(Reg.R13, Reg.R11)  # R13 = the ready fd
    asm.cmp_rr(Reg.R13, Reg.R14)
    asm.jne(".mc_request")
    # Listener ready: non-blocking accept — under the shared
    # level-triggered listener every worker wakes (thundering herd) and
    # the losers must take EAGAIN back to epoll_wait, not park.
    builder.libc("accept", Reg.R14, 0, 0, 0x800)
    asm.cmp_ri(Reg.RAX, 0)
    asm.jl(".mc_loop")
    asm.mov_rr(Reg.R13, Reg.RAX)
    builder.libc("epoll_ctl", Reg.R12, 1, Reg.R13, 0)
    asm.jmp(".mc_loop")

    builder.label(".mc_request")
    builder.libc("recvfrom", Reg.R13, data_ref("reqbuf"), 512, 0, 0, 0)
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.je(".mc_closed")
    asm.lea_rip_label(Reg.R11, "revcnt")
    asm.load(Reg.RAX, Reg.R11)
    asm.dec(Reg.RAX)
    asm.store(Reg.R11, Reg.RAX)
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.jne(".mc_serve")
    asm.mov_ri(Reg.RAX, cache_revalidate_every)
    asm.store(Reg.R11, Reg.RAX)
    builder.libc("lseek", Reg.RBX, 0, 0)
    builder.libc("read", Reg.RBX, data_ref("filebuf"), 4096)
    asm.mov_rr(Reg.R15, Reg.RAX)
    asm.test_rr(Reg.RAX, Reg.RAX)
    asm.je(".mc_serve")
    builder.libc("read", Reg.RBX, data_ref("filebuf"), 4096)  # EOF confirm

    builder.label(".mc_serve")
    builder.libc("burn", Reg.RBP)
    builder.libc("sendto", Reg.R13, data_ref("reqbuf"), 128, 0, 0, 0)
    asm.test_rr(Reg.R15, Reg.R15)
    asm.je(".mc_loop")
    builder.libc("sendto", Reg.R13, data_ref("filebuf"), Reg.R15, 0, 0, 0)
    asm.jmp(".mc_loop")

    builder.label(".mc_closed")
    builder.libc("epoll_ctl", Reg.R12, 2, Reg.R13, 0)
    builder.libc("close", Reg.R13)
    asm.jmp(".mc_loop")
    return builder
