"""Simulated nginx (branch stable-1.26 in the paper's evaluation).

Pre-fork worker model with full per-request file I/O (nginx's
open_file_cache is off in the benchmark config): 4 syscalls per request at
0 KB, 6 at 4 KB.  ``INLINE_PAD`` tops the unique-site count up to Table 2's
measurement for nginx (43): real nginx carries many inlined syscall sites
of its own (vendored allocators, logging, its wrapper layer) beyond the
plain libc wrappers it touches.

``BURN_CYCLES`` is the modelled application compute per request, calibrated
per configuration so the *native* throughput matches the paper's Table 6
natives (multi-worker entries carry extra per-request work representing
cross-core contention — accept and page-cache bouncing — which is why real
10-worker throughput is ~6.6× rather than 10× the 1-worker figure).
"""

from __future__ import annotations

from repro.workloads.http import (
    WWW_4K,
    WWW_EMPTY,
    build_http_server,
    install_www,
    write_server_config,
)

NGINX_PATH = "/usr/sbin/nginx"
NGINX_CONF = "/etc/nginx/repro.conf"
NGINX_PORT = 80

#: Per-(workers, file_kb) application compute per request.  Calibrated so
#: native throughput reproduces Table 6 (see EXPERIMENTS.md).
BURN_CYCLES = {
    (1, 0): 15_950,
    (1, 4): 16_820,
    (10, 0): 25_000,
    (10, 4): 32_450,
}

#: Table 2 target: 43 unique sites for nginx.
NGINX_TABLE2_SITES = 43
INLINE_PAD = 26


def install_nginx(kernel, workers: int = 1, file_size_kb: int = 0,
                  multiconn: bool = False) -> str:
    """Register the nginx binary + config for one Table 6 configuration.

    ``multiconn=True`` switches the workers to epoll event-loop serving
    (many connections each) for the open-loop traffic engine; the classic
    Table 6 accept loop is untouched.
    """
    install_www(kernel)
    target = WWW_EMPTY if file_size_kb == 0 else WWW_4K
    burn = BURN_CYCLES.get((workers, file_size_kb), BURN_CYCLES[(1, 0)])
    write_server_config(kernel, NGINX_CONF, workers, burn, target,
                        multiconn=multiconn)
    build_http_server(NGINX_PATH, NGINX_CONF, NGINX_PORT,
                      inline_pad=INLINE_PAD,
                      cache_revalidate_every=1,
                      stub_profile=48).register(kernel)
    return NGINX_PATH
