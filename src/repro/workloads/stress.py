"""The §6.2.1 microbenchmark: syscall number 500, invoked in a tight loop.

Number 500 does not exist, so the kernel rejects it immediately — minimal
in-kernel time, maximal emphasis on interposition overhead.  The loop runs
through libc's generic ``syscall(3)`` shim (one stable site, so every
mechanism reaches steady state after the first iteration).
"""

from __future__ import annotations

from repro.kernel.syscalls import FAKE_SYSCALL_STRESS
from repro.workloads.programs import ProgramBuilder

STRESS_PATH = "/usr/bin/syscall-stress"

#: Iterations per measured run.  The paper runs 100 M on hardware; the
#: simulator's per-iteration cost is deterministic, so a few thousand
#: iterations measure the same per-call cycle cost.
DEFAULT_ITERATIONS = 2_000


def build_stress(iterations: int = DEFAULT_ITERATIONS) -> ProgramBuilder:
    builder = ProgramBuilder(STRESS_PATH, stub_profile=10)
    builder.start()
    builder.loop(iterations)
    builder.libc("syscall", FAKE_SYSCALL_STRESS)
    builder.end_loop()
    builder.exit(0)
    return builder


def install_stress(kernel, iterations: int = DEFAULT_ITERATIONS) -> str:
    build_stress(iterations).register(kernel)
    return STRESS_PATH
