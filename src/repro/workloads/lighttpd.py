"""Simulated lighttpd (tag lighttpd-1.4.76 in the paper's evaluation).

Same pre-fork structure as nginx but serving from its file cache: most
requests are just ``recvfrom`` + ``sendto`` (+ a body ``sendto`` for
non-empty files), with ``lseek``/``read`` revalidation every
:data:`CACHE_REVALIDATE_EVERY` requests — the leaner syscall mix behind
lighttpd's visibly better SUD row in Table 6 (61 % vs nginx's 51 %).

Table 2 measures 44 unique sites for lighttpd (its fdevent machinery adds
one wrapper over nginx's surface); ``BURN_CYCLES`` calibrates native
throughput per configuration as for nginx.
"""

from __future__ import annotations

from repro.workloads.http import (
    WWW_4K,
    WWW_EMPTY,
    build_http_server,
    install_www,
    write_server_config,
)

LIGHTTPD_PATH = "/usr/sbin/lighttpd"
LIGHTTPD_CONF = "/etc/lighttpd/repro.conf"
LIGHTTPD_PORT = 8080

#: Serve from cache; revalidate the file every N-th request.
CACHE_REVALIDATE_EVERY = 4

#: Per-(workers, file_kb) application compute per request (see nginx.py).
BURN_CYCLES = {
    (1, 0): 15_970,
    (1, 4): 17_790,
    (10, 0): 21_270,
    (10, 4): 28_910,
}

#: Table 2 target: 44 unique sites for lighttpd.
LIGHTTPD_TABLE2_SITES = 44
INLINE_PAD = 27


def install_lighttpd(kernel, workers: int = 1, file_size_kb: int = 0,
                     multiconn: bool = False) -> str:
    """Register the lighttpd binary + config for one configuration.

    ``multiconn=True`` selects epoll event-loop serving (see nginx.py).
    """
    install_www(kernel)
    target = WWW_EMPTY if file_size_kb == 0 else WWW_4K
    burn = BURN_CYCLES.get((workers, file_size_kb), BURN_CYCLES[(1, 0)])
    write_server_config(kernel, LIGHTTPD_CONF, workers, burn, target,
                        multiconn=multiconn)
    build_http_server(LIGHTTPD_PATH, LIGHTTPD_CONF, LIGHTTPD_PORT,
                      inline_pad=INLINE_PAD,
                      cache_revalidate_every=CACHE_REVALIDATE_EVERY,
                      stub_profile=44).register(kernel)
    return LIGHTTPD_PATH
