"""High-level program authoring: the layer every workload is written in.

:class:`ProgramBuilder` wraps a :class:`repro.loader.image.SimImage` and
provides the idioms real compiled programs exhibit:

- libc calls through GOT slots (``lea __got_write(%rip) → load → callq *%rax``),
  so every external call resolves at load time like a PLT-less GOT call;
- counted loops (``mov imm → label → ... → dec/jne``);
- NUL-terminated data strings and scratch buffers in the data section;
- direct (inlined) syscalls for programs that bypass libc — the static-binary
  idiom that gives applications their *own* syscall sites (visible as
  app-binary entries in K23's offline logs, Figure 3).

Argument values may be plain integers, :func:`data_ref` labels (materialized
via ``lea``), :data:`RESULT` (the previous call's return value), or registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.arch.assembler import Asm
from repro.arch.registers import Reg, SYSCALL_ARG_REGS
from repro.errors import AssemblerError
from repro.kernel.syscalls import Nr
from repro.loader.image import SimImage


class _Result:
    """Sentinel: use the previous call's return value (RAX) as an argument."""

    def __repr__(self) -> str:  # pragma: no cover
        return "RESULT"


RESULT = _Result()


@dataclass(frozen=True)
class DataRef:
    """A reference to a data-section label, materialized with ``lea``."""

    label: str


def data_ref(label: str) -> DataRef:
    return DataRef(label)


Arg = Union[int, DataRef, Reg, _Result]


class ProgramBuilder:
    """Author one executable or library image."""

    def __init__(self, path: str, needed: Sequence[str] = (),
                 stub_profile: int = 0, entry: str = "_start"):
        self.image = SimImage(name=path, needed=list(needed),
                              entry=entry, stub_profile=stub_profile)
        self.asm: Asm = self.image.asm
        self._strings: List[Tuple[str, str]] = []
        self._buffers: List[Tuple[str, int]] = []
        self._words: List[Tuple[str, Sequence[int]]] = []
        self._loop_stack: List[Tuple[str, Reg]] = []
        self._label_counter = 0
        self._imports: List[str] = []
        self._finalized = False

    # -- structure ----------------------------------------------------------

    def start(self) -> "ProgramBuilder":
        """Open the entry point."""
        self.asm.label(self.image.entry)
        self.asm.endbr64()
        return self

    def label(self, name: str) -> "ProgramBuilder":
        self.asm.label(name)
        return self

    def _fresh(self, hint: str) -> str:
        self._label_counter += 1
        return f".{hint}{self._label_counter}"

    # -- data ------------------------------------------------------------------

    def string(self, label: str, text: str) -> "ProgramBuilder":
        """Declare a NUL-terminated data string."""
        if all(lbl != label for lbl, _ in self._strings):
            self._strings.append((label, text))
        return self

    def buffer(self, label: str, size: int) -> "ProgramBuilder":
        """Declare a zeroed scratch buffer."""
        if all(lbl != label for lbl, _ in self._buffers):
            self._buffers.append((label, size))
        return self

    def words(self, label: str, values: Sequence[int]) -> "ProgramBuilder":
        """Declare 64-bit data words (e.g. env/argv pointer arrays)."""
        self._words.append((label, list(values)))
        return self

    # -- argument marshalling -------------------------------------------------------

    def _marshal(self, args: Sequence[Arg]) -> None:
        if len(args) > len(SYSCALL_ARG_REGS):
            raise AssemblerError("too many call arguments")
        # RESULT consumers first (RAX gets clobbered by the GOT load).
        for reg, arg in zip(SYSCALL_ARG_REGS, args):
            if isinstance(arg, _Result):
                self.asm.mov_rr(reg, Reg.RAX)
        for reg, arg in zip(SYSCALL_ARG_REGS, args):
            if isinstance(arg, _Result):
                continue
            if isinstance(arg, DataRef):
                self.asm.lea_rip_label(reg, arg.label)
            elif isinstance(arg, Reg):
                if arg is not reg:
                    self.asm.mov_rr(reg, arg)
            else:
                self.asm.mov_ri(reg, int(arg))

    # -- calls ------------------------------------------------------------------------

    def libc(self, name: str, *args: Arg) -> "ProgramBuilder":
        """Call a libc function through its GOT slot."""
        self._marshal(args)
        if name not in self._imports:
            self._imports.append(name)
        self.asm.lea_rip_label(Reg.RAX, f"__got_{name}")
        self.asm.load(Reg.RAX, Reg.RAX)
        self.asm.call_reg(Reg.RAX)
        return self

    def call_import(self, name: str, *args: Arg) -> "ProgramBuilder":
        """Alias of :meth:`libc` for non-libc imported symbols."""
        return self.libc(name, *args)

    def direct_syscall(self, number: Union[int, Nr], *args: Arg,
                       mark: Optional[str] = None) -> "ProgramBuilder":
        """Issue a syscall with an *inlined* instruction (static-binary
        idiom): the site lives in this image, not in libc."""
        self._marshal(args)
        self.asm.mov_ri(Reg.RAX, int(number))
        if mark:
            self.asm.mark(mark)
        self.asm.syscall_()
        return self

    def exit(self, status: int = 0) -> "ProgramBuilder":
        return self.libc("exit", status)

    # -- loops ---------------------------------------------------------------------------

    def loop(self, count: int, counter: Reg = Reg.R15) -> "ProgramBuilder":
        """Open a counted loop (pair with :meth:`end_loop`)."""
        top = self._fresh("loop")
        self.asm.mov_ri(counter, count)
        self.asm.label(top)
        self._loop_stack.append((top, counter))
        return self

    def end_loop(self) -> "ProgramBuilder":
        top, counter = self._loop_stack.pop()
        self.asm.dec(counter)
        self.asm.jne(top)
        return self

    # -- finalization ---------------------------------------------------------------------

    def build(self) -> SimImage:
        """Emit the data section and finalize the image."""
        if not self._finalized:
            if self._loop_stack:
                raise AssemblerError("unclosed loop")
            self.image.imports = list(self._imports)
            self.image.begin_data()
            for label, text in self._strings:
                self.asm.label(label)
                self.asm.ascii(text)
            for label, size in self._buffers:
                self.asm.label(label)
                self.asm.raw(b"\x00" * size)
            for label, values in self._words:
                self.asm.label(label)
                self.asm.dq(*values)
            self.image.finalize()
            self._finalized = True
        return self.image

    def register(self, kernel) -> SimImage:
        """Build and register with *kernel*'s loader; returns the image."""
        image = self.build()
        kernel.loader.register_image(image)
        return image
