"""Simulated applications and load generators.

- :mod:`repro.workloads.programs` — :class:`ProgramBuilder`, the high-level
  authoring layer over :class:`repro.arch.assembler.Asm` (libc calls through
  GOT slots, loops, data strings).
- :mod:`repro.workloads.coreutils` — ``pwd``, ``touch``, ``ls``, ``cat``,
  ``clear``; syscall-site diversity matching the paper's Table 2.
- :mod:`repro.workloads.nginx` / :mod:`repro.workloads.lighttpd` — static
  HTTP servers (accept/epoll/recv/stat/open/read/write/close loops).
- :mod:`repro.workloads.redis` — GET-workload key/value server.
- :mod:`repro.workloads.sqlite` — a WAL-journaled speedtest1-style workload.
- :mod:`repro.workloads.clients` — wrk- and redis-benchmark-style drivers.
- :mod:`repro.workloads.stress` — the syscall-500 microbenchmark (§6.2.1).
"""

from repro.workloads.programs import ProgramBuilder, RESULT, data_ref

__all__ = ["ProgramBuilder", "RESULT", "data_ref"]
