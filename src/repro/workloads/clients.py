"""Load generators: the wrk / redis-benchmark stand-ins.

Both drive the simulated servers from host level over keep-alive
connections, mirroring the paper's same-machine setup where client cost is
off the measured (server-side) path.  The drivers also expose per-client
rate limits so the min(client, server) throughput model of the evaluation
can reproduce client-limited rows (redis with 1 I/O thread, §6.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

HTTP_REQUEST = (b"GET / HTTP/1.1\r\nHost: localhost\r\n"
                b"Connection: keep-alive\r\n\r\n")
REDIS_GET = b"*2\r\n$3\r\nGET\r\n$6\r\nkey:42\r\n"


@dataclass
class DriveResult:
    """Outcome of one measured drive.

    Attributes:
        requests: completed request/response round trips.
        cycles: simulated server-side cycles consumed during the drive.
        failures: requests that never produced a response.
    """

    requests: int
    cycles: int
    failures: int

    @property
    def cycles_per_request(self) -> float:
        return self.cycles / self.requests if self.requests else float("inf")


class LoadGenerator:
    """Keep-alive request driver over N connections."""

    def __init__(self, kernel, port: int, connections: int,
                 payload: bytes, steps_per_round: int = 400_000):
        self.kernel = kernel
        self.port = port
        self.payload = payload
        self.steps_per_round = steps_per_round
        self.connections = [kernel.net.connect(port)
                            for _ in range(connections)]
        self.failures = 0

    def warmup(self, rounds: int = 2) -> None:
        """Un-measured rounds: lets discovery-rewriters reach steady state
        and servers finish accepting, as the paper's 30-second runs do."""
        for _ in range(rounds):
            self._round()

    def drive(self, requests: int) -> DriveResult:
        """Measured drive of *requests* total round trips."""
        start_cycles = self.kernel.cycles.cycles
        completed = 0
        stalled_rounds = 0
        while completed < requests:
            batch = min(len(self.connections), requests - completed)
            done = self._round(limit=batch)
            completed += done
            stalled_rounds = 0 if done else stalled_rounds + 1
            if stalled_rounds >= 5:
                # Server dead or wedged (e.g. killed by a torn rewrite).
                break
        return DriveResult(requests=completed,
                           cycles=self.kernel.cycles.cycles - start_cycles,
                           failures=self.failures)

    def _round(self, limit: Optional[int] = None) -> int:
        """One batch: a request on each connection, then drain responses."""
        active = self.connections if limit is None \
            else self.connections[:limit]
        for connection in active:
            connection.client_send(self.payload)
        self.kernel.run(max_steps=self.steps_per_round)
        done = 0
        for connection in active:
            if connection.client_recv_all():
                done += 1
            else:
                self.failures += 1
        return done

    def close(self) -> None:
        for connection in self.connections:
            connection.client_close()
        self.kernel.run(max_steps=self.steps_per_round)


def wrk(kernel, port: int, connections: int) -> LoadGenerator:
    """The wrk stand-in (static HTTP GET, keep-alive)."""
    return LoadGenerator(kernel, port, connections, HTTP_REQUEST)


def redis_benchmark(kernel, port: int, clients: int) -> LoadGenerator:
    """The redis-benchmark stand-in (100 % GET)."""
    return LoadGenerator(kernel, port, clients, REDIS_GET)
