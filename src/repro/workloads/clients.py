"""Load generators: the wrk / redis-benchmark stand-ins.

Both drive the simulated servers from host level over keep-alive
connections, mirroring the paper's same-machine setup where client cost is
off the measured (server-side) path.  The drivers also expose per-client
rate limits so the min(client, server) throughput model of the evaluation
can reproduce client-limited rows (redis with 1 I/O thread, §6.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

HTTP_REQUEST = (b"GET / HTTP/1.1\r\nHost: localhost\r\n"
                b"Connection: keep-alive\r\n\r\n")
REDIS_GET = b"*2\r\n$3\r\nGET\r\n$6\r\nkey:42\r\n"


@dataclass
class DriveResult:
    """Outcome of one measured drive.

    Attributes:
        requests: completed request/response round trips.
        cycles: simulated server-side cycles consumed during the drive.
        failures: requests that never produced a response.
    """

    requests: int
    cycles: int
    failures: int

    @property
    def cycles_per_request(self) -> float:
        return self.cycles / self.requests if self.requests else float("inf")


class LoadGenerator:
    """Keep-alive request driver over N connections."""

    def __init__(self, kernel, port: int, connections: int,
                 payload: bytes, steps_per_round: int = 400_000):
        self.kernel = kernel
        self.port = port
        self.payload = payload
        self.steps_per_round = steps_per_round
        self.connections = [kernel.net.connect(port)
                            for _ in range(connections)]
        self.failures = 0

    def warmup(self, rounds: int = 2) -> None:
        """Un-measured rounds: lets discovery-rewriters reach steady state
        and servers finish accepting, as the paper's 30-second runs do."""
        for _ in range(rounds):
            self._round()

    def drive(self, requests: int) -> DriveResult:
        """Measured drive of *requests* total round trips."""
        start_cycles = self.kernel.cycles.cycles
        completed = 0
        stalled_rounds = 0
        while completed < requests:
            batch = min(len(self.connections), requests - completed)
            done = self._round(limit=batch)
            completed += done
            stalled_rounds = 0 if done else stalled_rounds + 1
            if stalled_rounds >= 5:
                # Server dead or wedged (e.g. killed by a torn rewrite).
                break
        return DriveResult(requests=completed,
                           cycles=self.kernel.cycles.cycles - start_cycles,
                           failures=self.failures)

    def exchange(self, limit: Optional[int] = None
                 ) -> List[Optional[bytes]]:
        """One request/response batch with the response bytes surfaced.

        Sends the payload on each active connection, runs the server,
        and returns the per-connection response bytes (None = the
        request never produced a response).  This is the mirroring seam:
        a :class:`MirroredLoadGenerator` issues the same exchange on two
        kernels and compares these byte strings, which plain ``drive``
        collapses to done/failed counts.
        """
        active = self.connections if limit is None \
            else self.connections[:limit]
        for connection in active:
            connection.client_send(self.payload)
        self.kernel.run(max_steps=self.steps_per_round)
        return [connection.client_recv_all() or None
                for connection in active]

    def _round(self, limit: Optional[int] = None) -> int:
        """One batch: a request on each connection, then drain responses."""
        responses = self.exchange(limit)
        done = sum(1 for response in responses if response is not None)
        self.failures += len(responses) - done
        return done

    def close(self) -> None:
        for connection in self.connections:
            connection.client_close()
        self.kernel.run(max_steps=self.steps_per_round)


@dataclass
class MirrorMismatch:
    """One mirrored request whose shadow response differed.

    ``request`` is the global request index (across rounds and
    connections); byte payloads are summarized as lengths plus a short
    hex prefix — enough to render a report line without retaining every
    response body.
    """

    request: int
    connection: int
    primary_len: int
    shadow_len: int
    primary_prefix: str
    shadow_prefix: str

    def describe(self) -> str:
        return (f"request #{self.request} conn {self.connection}: "
                f"primary {self.primary_len}B [{self.primary_prefix}] != "
                f"shadow {self.shadow_len}B [{self.shadow_prefix}]")


def _prefix(data: Optional[bytes], length: int = 8) -> str:
    return "" if data is None else data[:length].hex()


class MirroredLoadGenerator:
    """Drive two kernels in lockstep: every request is mirrored.

    The *primary* generator's responses are the real ones; the *shadow*
    generator receives an identical copy of every request, its responses
    are compared byte-for-byte against the primary's and then discarded
    — the Shadow Request pattern.  Both generators must be configured
    with the same payload and connection count.

    ``on_mismatch`` (when given) is called with each
    :class:`MirrorMismatch` as it is detected, letting the shadow
    harness emit divergence events while the drive is still running.
    """

    def __init__(self, primary: LoadGenerator, shadow: LoadGenerator,
                 on_mismatch: Optional[Callable[[MirrorMismatch], None]]
                 = None):
        if len(primary.connections) != len(shadow.connections):
            raise ValueError("mirrored generators need identical "
                             "connection counts")
        if primary.payload != shadow.payload:
            raise ValueError("mirrored generators need identical payloads")
        self.primary = primary
        self.shadow = shadow
        self.on_mismatch = on_mismatch
        self.mismatches: List[MirrorMismatch] = []
        self._request_index = 0

    def warmup(self, rounds: int = 2) -> None:
        """Un-measured, un-compared rounds on both sides."""
        for _ in range(rounds):
            self.primary.exchange()
            self.shadow.exchange()

    def _mirror_round(self, limit: Optional[int] = None) -> int:
        primary_responses = self.primary.exchange(limit)
        shadow_responses = self.shadow.exchange(limit)
        done = 0
        for conn, (mine, theirs) in enumerate(zip(primary_responses,
                                                  shadow_responses)):
            if mine is not None:
                done += 1
            else:
                self.primary.failures += 1
            if mine != theirs:
                mismatch = MirrorMismatch(
                    request=self._request_index + conn, connection=conn,
                    primary_len=len(mine or b""),
                    shadow_len=len(theirs or b""),
                    primary_prefix=_prefix(mine),
                    shadow_prefix=_prefix(theirs))
                self.mismatches.append(mismatch)
                if self.on_mismatch is not None:
                    self.on_mismatch(mismatch)
        self._request_index += len(primary_responses)
        return done

    def drive(self, requests: int) -> Tuple[DriveResult, List[MirrorMismatch]]:
        """Mirror *requests* round trips; returns the primary's
        DriveResult plus every response mismatch detected."""
        start = len(self.mismatches)
        start_cycles = self.primary.kernel.cycles.cycles
        completed = 0
        stalled_rounds = 0
        while completed < requests:
            batch = min(len(self.primary.connections), requests - completed)
            done = self._mirror_round(limit=batch)
            completed += done
            stalled_rounds = 0 if done else stalled_rounds + 1
            if stalled_rounds >= 5:
                break
        result = DriveResult(
            requests=completed,
            cycles=self.primary.kernel.cycles.cycles - start_cycles,
            failures=self.primary.failures)
        return result, self.mismatches[start:]

    def close(self) -> None:
        self.primary.close()
        self.shadow.close()


def wrk(kernel, port: int, connections: int) -> LoadGenerator:
    """The wrk stand-in (static HTTP GET, keep-alive)."""
    return LoadGenerator(kernel, port, connections, HTTP_REQUEST)


def redis_benchmark(kernel, port: int, clients: int) -> LoadGenerator:
    """The redis-benchmark stand-in (100 % GET)."""
    return LoadGenerator(kernel, port, clients, REDIS_GET)
