"""Traffic sources: the wrk / redis-benchmark stand-ins behind one protocol.

Everything that pushes requests at a simulated server — the closed-loop
keep-alive driver the Table 6 macrobenchmarks use, the shadow harness's
lockstep mirror, and the open-loop admission driver of the traffic engine
(:mod:`repro.traffic.fleet`) — implements one protocol,
:class:`TrafficSource`:

- ``warmup(rounds)`` — un-measured rounds to steady state;
- ``drive(requests) -> DriveResult`` — the measured drive;
- ``exchange(limit) -> [response bytes | None, ...]`` — one batch with
  the raw response bytes surfaced (the mirroring seam);
- ``close()`` — shut the connections down cleanly.

All sources drive the simulated servers from host level over keep-alive
connections, mirroring the paper's same-machine setup where client cost is
off the measured (server-side) path.

The historical names ``LoadGenerator`` / ``MirroredLoadGenerator`` remain
as deprecation shims that warn once per process on direct construction
(the ``runner.MECHANISMS`` pattern): construct
:class:`KeepAliveSource` / :class:`MirroredSource` — or use the
:func:`wrk` / :func:`redis_benchmark` factories — instead.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional

HTTP_REQUEST = (b"GET / HTTP/1.1\r\nHost: localhost\r\n"
                b"Connection: keep-alive\r\n\r\n")
REDIS_GET = b"*2\r\n$3\r\nGET\r\n$6\r\nkey:42\r\n"

#: Deprecated constructor names that already warned this process.
_WARNED: set = set()


def _warn_once(name: str, hint: str) -> None:
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(f"{name} is deprecated; {hint}",
                  DeprecationWarning, stacklevel=3)


@dataclass
class DriveResult:
    """Outcome of one measured drive.

    Attributes:
        requests: completed request/response round trips.
        cycles: simulated server-side cycles consumed during the drive.
        failures: requests that never produced a response.
    """

    requests: int
    cycles: int
    failures: int

    @property
    def cycles_per_request(self) -> float:
        return self.cycles / self.requests if self.requests else float("inf")


class TrafficSource(ABC):
    """The request-driver protocol every harness consumes.

    A source owns a set of host-level connections into one (or, for
    mirrored sources, a pair of) simulated kernels and exposes the
    four-call surface above.  ``exchange`` is the composition seam:
    anything that needs per-request visibility (the shadow mirror's
    byte comparison, the traffic engine's per-request latency capture)
    layers over it rather than over ``drive``.

    ``bind_trace`` is the trace-context seam: harnesses hand a source a
    recorder (a :class:`~repro.observability.spans.SpanFlightRecorder`
    or anything with ``record(dict)``) and the source feeds it one
    lightweight record per exchange batch entry.  Unbound (the default)
    costs one ``is None`` predicate per batch — the null-sink rule.
    """

    #: Bound trace recorder; None = tracing off (the default).
    trace = None

    def bind_trace(self, trace) -> None:
        """Attach a per-exchange trace recorder (None detaches)."""
        self.trace = trace

    @abstractmethod
    def warmup(self, rounds: int = 2) -> None:
        """Un-measured rounds: lets discovery-rewriters reach steady
        state and servers finish accepting, as the paper's 30-second
        runs do."""

    @abstractmethod
    def drive(self, requests: int) -> DriveResult:
        """Measured drive of *requests* total round trips."""

    @abstractmethod
    def exchange(self, limit: Optional[int] = None
                 ) -> List[Optional[bytes]]:
        """One request/response batch with the response bytes surfaced
        (None = the request never produced a response)."""

    @abstractmethod
    def close(self) -> None:
        """Close every connection and let the server observe the EOFs."""


class KeepAliveSource(TrafficSource):
    """Closed-loop keep-alive driver over N connections (wrk's model).

    Each round sends one request per connection, runs the server, and
    drains the responses — the Table 6 measurement loop.
    """

    def __init__(self, kernel, port: int, connections: int,
                 payload: bytes, steps_per_round: int = 400_000):
        self.kernel = kernel
        self.port = port
        self.payload = payload
        self.steps_per_round = steps_per_round
        self.connections = [kernel.net.connect(port)
                            for _ in range(connections)]
        self.failures = 0
        self._exchange_index = 0

    def warmup(self, rounds: int = 2) -> None:
        for _ in range(rounds):
            self._round()

    def drive(self, requests: int) -> DriveResult:
        start_cycles = self.kernel.cycles.cycles
        completed = 0
        stalled_rounds = 0
        while completed < requests:
            batch = min(len(self.connections), requests - completed)
            done = self._round(limit=batch)
            completed += done
            stalled_rounds = 0 if done else stalled_rounds + 1
            if stalled_rounds >= 5:
                # Server dead or wedged (e.g. killed by a torn rewrite).
                break
        return DriveResult(requests=completed,
                           cycles=self.kernel.cycles.cycles - start_cycles,
                           failures=self.failures)

    def exchange(self, limit: Optional[int] = None
                 ) -> List[Optional[bytes]]:
        """One request/response batch with the response bytes surfaced.

        Sends the payload on each active connection, runs the server,
        and returns the per-connection response bytes (None = the
        request never produced a response).  This is the mirroring seam:
        a :class:`MirroredSource` issues the same exchange on two
        kernels and compares these byte strings, which plain ``drive``
        collapses to done/failed counts.
        """
        active = self.connections if limit is None \
            else self.connections[:limit]
        start_cycles = self.kernel.cycles.cycles
        for connection in active:
            connection.client_send(self.payload)
        self.kernel.run(max_steps=self.steps_per_round)
        responses = [connection.client_recv_all() or None
                     for connection in active]
        if self.trace is not None:
            end_cycles = self.kernel.cycles.cycles
            for conn, response in enumerate(responses):
                self.trace.record({
                    "id": f"x-{self._exchange_index + conn}",
                    "conn": conn,
                    "start_cycles": start_cycles,
                    "end_cycles": end_cycles,
                    "ok": response is not None,
                    "bytes": len(response or b""),
                })
        self._exchange_index += len(responses)
        return responses

    def _round(self, limit: Optional[int] = None) -> int:
        """One batch: a request on each connection, then drain responses."""
        responses = self.exchange(limit)
        done = sum(1 for response in responses if response is not None)
        self.failures += len(responses) - done
        return done

    def close(self) -> None:
        for connection in self.connections:
            connection.client_close()
        self.kernel.run(max_steps=self.steps_per_round)


@dataclass
class MirrorMismatch:
    """One mirrored request whose shadow response differed.

    ``request`` is the global request index (across rounds and
    connections); byte payloads are summarized as lengths plus a short
    hex prefix — enough to render a report line without retaining every
    response body.
    """

    request: int
    connection: int
    primary_len: int
    shadow_len: int
    primary_prefix: str
    shadow_prefix: str

    def describe(self) -> str:
        return (f"request #{self.request} conn {self.connection}: "
                f"primary {self.primary_len}B [{self.primary_prefix}] != "
                f"shadow {self.shadow_len}B [{self.shadow_prefix}]")


def _prefix(data: Optional[bytes], length: int = 8) -> str:
    return "" if data is None else data[:length].hex()


class MirroredSource(TrafficSource):
    """Drive two kernels in lockstep: every request is mirrored.

    The *primary* source's responses are the real ones; the *shadow*
    source receives an identical copy of every request, its responses
    are compared byte-for-byte against the primary's and then discarded
    — the Shadow Request pattern.  Both sources must be configured
    with the same payload and connection count.

    ``on_mismatch`` (when given) is called with each
    :class:`MirrorMismatch` as it is detected, letting the shadow
    harness emit divergence events while the drive is still running.
    Accumulated mismatches stay readable on ``self.mismatches``.
    """

    def __init__(self, primary: KeepAliveSource, shadow: KeepAliveSource,
                 on_mismatch: Optional[Callable[[MirrorMismatch], None]]
                 = None):
        if len(primary.connections) != len(shadow.connections):
            raise ValueError("mirrored sources need identical "
                             "connection counts")
        if primary.payload != shadow.payload:
            raise ValueError("mirrored sources need identical payloads")
        self.primary = primary
        self.shadow = shadow
        self.on_mismatch = on_mismatch
        self.mismatches: List[MirrorMismatch] = []
        self._request_index = 0

    def bind_trace(self, trace) -> None:
        """Trace the *primary* side (the real responses); the shadow's
        exchanges are replicas and would double every record."""
        self.trace = trace
        self.primary.bind_trace(trace)

    def warmup(self, rounds: int = 2) -> None:
        """Un-measured, un-compared rounds on both sides."""
        for _ in range(rounds):
            self.primary.exchange()
            self.shadow.exchange()

    def exchange(self, limit: Optional[int] = None
                 ) -> List[Optional[bytes]]:
        """Mirror one batch; returns the *primary* responses (the real
        ones) after comparing the shadow's copy byte-for-byte."""
        primary_responses = self.primary.exchange(limit)
        shadow_responses = self.shadow.exchange(limit)
        for conn, (mine, theirs) in enumerate(zip(primary_responses,
                                                  shadow_responses)):
            if mine != theirs:
                mismatch = MirrorMismatch(
                    request=self._request_index + conn, connection=conn,
                    primary_len=len(mine or b""),
                    shadow_len=len(theirs or b""),
                    primary_prefix=_prefix(mine),
                    shadow_prefix=_prefix(theirs))
                self.mismatches.append(mismatch)
                if self.on_mismatch is not None:
                    self.on_mismatch(mismatch)
        self._request_index += len(primary_responses)
        return primary_responses

    def _mirror_round(self, limit: Optional[int] = None) -> int:
        responses = self.exchange(limit)
        done = sum(1 for response in responses if response is not None)
        self.primary.failures += len(responses) - done
        return done

    def drive(self, requests: int) -> DriveResult:
        """Mirror *requests* round trips; mismatches accumulate on
        ``self.mismatches`` as they are detected."""
        start_cycles = self.primary.kernel.cycles.cycles
        completed = 0
        stalled_rounds = 0
        while completed < requests:
            batch = min(len(self.primary.connections), requests - completed)
            done = self._mirror_round(limit=batch)
            completed += done
            stalled_rounds = 0 if done else stalled_rounds + 1
            if stalled_rounds >= 5:
                break
        return DriveResult(
            requests=completed,
            cycles=self.primary.kernel.cycles.cycles - start_cycles,
            failures=self.primary.failures)

    def close(self) -> None:
        self.primary.close()
        self.shadow.close()


# --------------------------------------------------------- deprecation shims


class LoadGenerator(KeepAliveSource):
    """Deprecated name for :class:`KeepAliveSource` (warns once)."""

    def __init__(self, *args, **kwargs):
        _warn_once("LoadGenerator",
                   "construct KeepAliveSource (a TrafficSource) or use "
                   "the wrk()/redis_benchmark() factories")
        super().__init__(*args, **kwargs)


class MirroredLoadGenerator(MirroredSource):
    """Deprecated name for :class:`MirroredSource` (warns once).

    Preserves the historical ``drive`` return shape —
    ``(DriveResult, new mismatches)`` — for callers that unpack it.
    """

    def __init__(self, *args, **kwargs):
        _warn_once("MirroredLoadGenerator",
                   "construct MirroredSource (a TrafficSource); its "
                   "drive() returns a DriveResult and mismatches "
                   "accumulate on .mismatches")
        super().__init__(*args, **kwargs)

    def drive(self, requests: int):
        start = len(self.mismatches)
        result = super().drive(requests)
        return result, self.mismatches[start:]


def wrk(kernel, port: int, connections: int) -> KeepAliveSource:
    """The wrk stand-in (static HTTP GET, keep-alive)."""
    return KeepAliveSource(kernel, port, connections, HTTP_REQUEST)


def redis_benchmark(kernel, port: int, clients: int) -> KeepAliveSource:
    """The redis-benchmark stand-in (100 % GET)."""
    return KeepAliveSource(kernel, port, clients, REDIS_GET)
