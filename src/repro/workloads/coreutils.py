"""Simulated coreutils: ``pwd``, ``touch``, ``ls``, ``cat``, ``clear``.

Each utility is reconstructed so that its *main-phase* execution touches the
same number of unique syscall sites the paper's offline phase measured
(Table 2): pwd 7, touch 9, ls 10, cat 11, clear 13.  Sites are unique libc
wrappers (each wrapper owns one ``syscall`` instruction), so the counts are
a direct function of which C-library entry points the utility exercises —
just like the real measurements.

The common prologue mirrors glibc's post-init behaviour (locale machinery:
``openat``/``fstat``/``mmap``/``close``); the per-utility bodies add their
characteristic calls.
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.registers import Reg
from repro.workloads.programs import ProgramBuilder, RESULT, data_ref

#: Paper Table 2 expectations, used by tests and the Table 2 benchmark.
TABLE2_COREUTILS: Dict[str, int] = {
    "/usr/bin/pwd": 7,
    "/usr/bin/touch": 9,
    "/usr/bin/ls": 10,
    "/usr/bin/cat": 11,
    "/usr/bin/clear": 13,
}

LOCALE_PATH = "/usr/lib/locale/locale-archive"


def _locale_prologue(builder: ProgramBuilder, with_fstat: bool = True) -> None:
    """glibc-style locale load: openat + fstat + mmap + close (4 wrappers)."""
    builder.string("locale", LOCALE_PATH)
    builder.libc("openat", (1 << 64) - 100, data_ref("locale"), 0)
    builder.asm.mov_rr(Reg.RBX, Reg.RAX)
    if with_fstat:
        builder.libc("fstat", Reg.RBX, 0)
    builder.libc("mmap", 0, 4096, 1, 0x22, (1 << 64) - 1, 0)
    builder.libc("close", Reg.RBX)


def build_pwd() -> ProgramBuilder:
    """pwd: locale(4) + getcwd + write + exit = 7 unique sites."""
    builder = ProgramBuilder("/usr/bin/pwd", stub_profile=30)
    builder.buffer("buf", 128)
    builder.start()
    _locale_prologue(builder)
    builder.libc("getcwd", data_ref("buf"), 128)
    builder.libc("write", 1, data_ref("buf"), RESULT)
    builder.exit(0)
    return builder


def build_touch() -> ProgramBuilder:
    """touch: locale(4) + newfstatat + dup + fcntl + brk + exit = 9."""
    builder = ProgramBuilder("/usr/bin/touch", stub_profile=30)
    builder.string("target", "/tmp/touched")
    builder.start()
    _locale_prologue(builder)
    builder.libc("brk", 0)
    builder.libc("newfstatat", (1 << 64) - 100, data_ref("target"), 0, 0)
    builder.libc("openat", (1 << 64) - 100, data_ref("target"), 0o100)
    builder.asm.mov_rr(Reg.RBX, Reg.RAX)
    builder.libc("dup", Reg.RBX)
    builder.libc("fcntl", Reg.RBX, 0, 0)
    builder.libc("close", Reg.RBX)
    builder.exit(0)
    return builder


def build_ls() -> ProgramBuilder:
    """ls: locale(4) + ioctl + newfstatat + getdents64 + brk + write + exit
    = 10 unique sites.  Its long startup (>100 pre-main syscalls, §6.1)
    comes from the loader-stub profile."""
    builder = ProgramBuilder("/usr/bin/ls", stub_profile=92)
    builder.string("dir", "/home/user")
    builder.buffer("dents", 512)
    builder.buffer("out", 256)
    builder.start()
    _locale_prologue(builder)
    builder.libc("brk", 0)
    builder.libc("ioctl", 1, 0x5413, 0)  # TIOCGWINSZ probe
    builder.libc("newfstatat", (1 << 64) - 100, data_ref("dir"), 0, 0)
    builder.libc("openat", (1 << 64) - 100, data_ref("dir"), 0o200000)
    builder.asm.mov_rr(Reg.RBX, Reg.RAX)
    builder.libc("getdents64", Reg.RBX, data_ref("dents"), 512)
    builder.libc("write", 1, data_ref("dents"), RESULT)
    builder.libc("close", Reg.RBX)
    builder.exit(0)
    return builder


def build_cat() -> ProgramBuilder:
    """cat: locale(4) + newfstatat + ioctl + lseek + read + write + brk +
    exit = 11 unique sites."""
    builder = ProgramBuilder("/usr/bin/cat", stub_profile=40)
    builder.string("target", "/etc/motd")
    builder.buffer("buf", 512)
    builder.start()
    _locale_prologue(builder)
    builder.libc("brk", 0)
    builder.libc("ioctl", 1, 0x5401, 0)  # TCGETS probe on stdout
    builder.libc("newfstatat", (1 << 64) - 100, data_ref("target"), 0, 0)
    builder.libc("openat", (1 << 64) - 100, data_ref("target"), 0)
    builder.asm.mov_rr(Reg.RBX, Reg.RAX)
    builder.libc("lseek", Reg.RBX, 0, 1)
    builder.label(".cat_loop")
    builder.libc("read", Reg.RBX, data_ref("buf"), 512)
    # Exit on EOF *or* error (jle, signed): a read result of -EBADF/-EINTR
    # must not be fed to write as a count — under fault injection a failed
    # openat would otherwise spin this loop forever.
    builder.asm.test_rr(Reg.RAX, Reg.RAX)
    builder.asm.jle(".cat_done")
    builder.libc("write", 1, data_ref("buf"), RESULT)
    builder.asm.jmp(".cat_loop")
    builder.label(".cat_done")
    builder.libc("close", Reg.RBX)
    builder.exit(0)
    return builder


def build_clear() -> ProgramBuilder:
    """clear: locale(4) + terminfo probing (access, newfstatat, read,
    lseek) + ioctl + uname + write + brk + exit = 13 unique sites."""
    builder = ProgramBuilder("/usr/bin/clear", stub_profile=34)
    builder.string("terminfo", "/usr/share/terminfo/x/xterm")
    builder.buffer("buf", 256)
    builder.start()
    _locale_prologue(builder)
    builder.libc("brk", 0)
    builder.libc("uname", 0)
    builder.libc("access", data_ref("terminfo"), 0)
    builder.libc("newfstatat", (1 << 64) - 100, data_ref("terminfo"), 0, 0)
    builder.libc("openat", (1 << 64) - 100, data_ref("terminfo"), 0)
    builder.asm.mov_rr(Reg.RBX, Reg.RAX)
    builder.libc("read", Reg.RBX, data_ref("buf"), 256)
    builder.libc("lseek", Reg.RBX, 0, 0)
    builder.libc("ioctl", 1, 0x5401, 0)
    builder.libc("write", 1, data_ref("buf"), 7)
    builder.libc("close", Reg.RBX)
    builder.exit(0)
    return builder


_BUILDERS = {
    "/usr/bin/pwd": build_pwd,
    "/usr/bin/touch": build_touch,
    "/usr/bin/ls": build_ls,
    "/usr/bin/cat": build_cat,
    "/usr/bin/clear": build_clear,
}


def install_coreutils(kernel, names: "List[str] | None" = None) -> List[str]:
    """Register the coreutils (and their supporting files); returns paths."""
    kernel.vfs.create(LOCALE_PATH, b"\x00" * 64)
    kernel.vfs.create("/etc/motd", b"welcome to repro\n")
    kernel.vfs.create("/usr/share/terminfo/x/xterm", b"\x1b[H\x1b[2J\x00")
    kernel.vfs.mkdir("/home/user", exist_ok=True)
    kernel.vfs.create("/home/user/a.txt", b"")
    kernel.vfs.create("/home/user/b.txt", b"")
    paths = []
    for path, factory in _BUILDERS.items():
        if names is not None and path not in names:
            continue
        factory().register(kernel)
        paths.append(path)
    return paths
