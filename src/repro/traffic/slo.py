"""SLOReport: the load test's artifact, written as METRICS_slo.json.

A thin frozen wrapper over the merged report document.  The document is
fully JSON-safe (integers, strings, sorted keys) and the writer pins
serialization (``sort_keys=True, indent=2`` + trailing newline), so a
fixed ``(traffic, seed)`` produces a byte-identical file whatever
``--jobs`` or engine tier produced it — the determinism contract the
``tests/traffic`` property tests assert with plain byte comparison.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

SLO_SCHEMA_VERSION = "slo-report-v1"

DEFAULT_OUTPUT = os.path.join("benchmarks", "output", "METRICS_slo.json")


@dataclass(frozen=True)
class SLOReport:
    """Merged load-test results for one workload across mechanisms.

    ``doc`` layout (all integers are exact — ns, counts, rps)::

        schema          "slo-report-v1"
        workload        e.g. "nginx"
        seed            base schedule seed
        traffic         canonical TrafficConfig echo (rate resolved)
        schedule        {requests, span_ns, digest, stages[...]}
        mechanisms      {name: {totals, latency_ns{overall, per_tenant,
                        per_kind}, stages[...], queue_depth{server:
                        [[t_ns, depth, in_flight], ...]}, knee,
                        calibration}}

    ``stats`` (cache hits/misses etc.) is deliberately *excluded* from
    serialization: it varies run to run and would break byte-identity.
    """

    doc: Dict
    stats: Optional[Dict] = field(default=None, compare=False)

    @property
    def schema(self) -> str:
        return self.doc["schema"]

    @property
    def workload(self) -> str:
        return self.doc["workload"]

    @property
    def mechanisms(self) -> Dict:
        return self.doc["mechanisms"]

    def knee(self, mechanism: str) -> Dict:
        return self.doc["mechanisms"][mechanism]["knee"]

    def exemplars(self, mechanism: str) -> Optional[Dict]:
        """The mechanism's merged exemplar reservoir doc, or None when
        the run had span tracing off."""
        return self.doc["mechanisms"][mechanism].get("exemplars")

    def find_exemplar(self, span_id: str,
                      mechanism: Optional[str] = None) -> Optional[Dict]:
        """Locate a retained span by exemplar ID (``r-<index>``); returns
        ``(mechanism, span)`` packed as a dict, or None.  Searches one
        mechanism when named, else all in sorted order."""
        from repro.observability.spans import find_span

        names = [mechanism] if mechanism else sorted(self.mechanisms)
        for name in names:
            exemplars = self.exemplars(name)
            if not exemplars:
                continue
            span = find_span(exemplars, span_id)
            if span is not None:
                return {"mechanism": name, "span": span}
        return None

    def total_completed(self) -> int:
        return sum(section["totals"]["completed"]
                   for section in self.doc["mechanisms"].values())

    def to_dict(self) -> Dict:
        return self.doc

    def to_json(self) -> str:
        """Pinned serialization — the byte-identity surface."""
        return json.dumps(self.doc, sort_keys=True, indent=2) + "\n"

    def write(self, path: str = DEFAULT_OUTPUT) -> str:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
        return path

    @classmethod
    def load(cls, path: str = DEFAULT_OUTPUT) -> "SLOReport":
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if doc.get("schema") != SLO_SCHEMA_VERSION:
            raise ValueError(f"unsupported SLO report schema: "
                             f"{doc.get('schema')!r}")
        return cls(doc=doc)


def summarize(report: SLOReport) -> str:
    """Human-readable digest for CLI output: one block per mechanism
    with totals, overall p50/p99/p99.9, and the saturation knee."""
    lines = [f"workload={report.workload} "
             f"requests={report.doc['schedule']['requests']} "
             f"digest={report.doc['schedule']['digest'][:12]}"]
    for name in sorted(report.mechanisms):
        section = report.mechanisms[name]
        totals = section["totals"]
        overall = section["latency_ns"]["overall"]
        knee = section["knee"]
        if knee["stage"] is None:
            knee_txt = "no knee within ramp"
        else:
            knee_txt = (f"knee@stage{knee['stage']} "
                        f"rate={knee['rate']}/s ({knee['reason']})")
        lines.append(
            f"  {name}: completed={totals['completed']} "
            f"shed={totals['shed']} p50={overall['p50']}ns "
            f"p99={overall['p99']}ns p99.9={overall['p999']}ns "
            f"pmax={overall['pmax']}ns | {knee_txt}")
        exemplars = section.get("exemplars")
        if exemplars:
            kept = sum(len(spans) for spans
                       in exemplars["per_group"].values())
            kept_shed = sum(len(spans) for spans
                            in exemplars["shed"].values())
            lines.append(
                f"    exemplars: {kept} tail spans, {kept_shed} shed "
                f"spans retained (sloexplain <id> to inspect)")
    return "\n".join(lines)
