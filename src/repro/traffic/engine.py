"""Shard, run, merge: the traffic engine's orchestration layer.

A load test over M mechanisms and S fleet servers is ``M × shards``
pipeline cells (kind ``"loadtest"``), sharded **by server**: server
``s`` belongs to shard ``s % nshards``.  Each cell regenerates the full
arrival schedule (cheap, seeded, identical everywhere) and runs only
its servers — in model mode through the calibrated queueing fabric, in
full mode on real kernels via the admission seam.  The merge is
shard-count-blind by construction:

- per-(stage, tenant, kind) tallies are commutative integer sums;
- latency histograms merge exactly (``count``/``sum`` + sparse bucket
  tables — the LatencyAnalyzer fix this PR rides on);
- queue-depth series are keyed by server id, and servers never split
  across shards;
- percentiles/knees are computed once, *after* the merge.

Hence the headline guarantee: ``--jobs 1/2/4`` produce byte-identical
``METRICS_slo.json``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.observability.analyzers.latency import LogHistogram
from repro.traffic.config import TrafficConfig
from repro.traffic.fleet import (calibrate_service_table, resolve_rate,
                                 run_server_full, service_ns_table)
from repro.traffic.loadbalancer import simulate_server
from repro.traffic.schedule import NS, ArrivalSchedule, generate_schedule
from repro.traffic.slo import SLO_SCHEMA_VERSION, SLOReport


def shard_servers(servers: int, shard: int, nshards: int) -> List[int]:
    return [s for s in range(servers) if s % nshards == shard]


def run_shard(mechanism: str, workload: str, traffic_doc: Dict, seed: int,
              shard: int, nshards: int) -> Dict:
    """Execute one loadtest cell: this shard's servers, one mechanism.

    *traffic_doc* is the canonical (rate-resolved) config dict; the
    cell is a pure function of its arguments, so the pipeline cache
    memoizes it soundly.
    """
    traffic = TrafficConfig.from_dict(traffic_doc)
    schedule = generate_schedule(traffic, seed)
    servers = shard_servers(traffic.servers, shard, nshards)
    calibration = calibrate_service_table(mechanism, workload, traffic, seed)

    def trace_for(server: int):
        if not traffic.spans:
            return None
        from repro.observability.spans import TraceContext

        return TraceContext(server=server,
                            tenant_names=schedule.tenant_names,
                            kind_names=schedule.kind_names,
                            per_group=traffic.exemplars,
                            shed_keep=traffic.shed_exemplars)

    traces = {server: trace_for(server) for server in servers}
    if traffic.serve_mode == "model":
        table = service_ns_table(calibration, schedule)
        docs = [simulate_server(server, schedule, table, traffic.workers,
                                traffic.queue_limit, trace=traces[server])
                for server in servers]
    else:
        docs = [run_server_full(mechanism, workload, traffic, seed, server,
                                schedule, trace=traces[server])
                for server in servers]
    if traffic.spans:
        for server, doc in zip(servers, docs):
            doc["exemplars"] = traces[server].reservoir.to_doc()
    return {
        "mechanism": mechanism,
        "shard": shard,
        "shards": nshards,
        "schedule_digest": schedule.digest(),
        "calibration": calibration,
        "servers": docs,
    }


# ------------------------------------------------------------------ merging


def _parse_key(key: str) -> Tuple[int, int, int]:
    stage, tenant, kind = key.split(":")
    return int(stage), int(tenant), int(kind)


def merge_mechanism(shard_docs: Sequence[Dict], traffic: TrafficConfig,
                    schedule: ArrivalSchedule) -> Dict:
    """Fold one mechanism's shard docs into its report section.

    Order-independent: docs are re-sorted by server id and every
    reduction is a commutative integer sum or an exact histogram merge.
    """
    digests = {doc["schedule_digest"] for doc in shard_docs}
    if len(digests) != 1:
        raise ValueError(f"shards disagree on the arrival schedule: "
                         f"{sorted(digests)}")
    server_docs = sorted((s for doc in shard_docs for s in doc["servers"]),
                         key=lambda s: s["server"])

    offered: Dict[Tuple[int, int, int], int] = {}
    completed: Dict[Tuple[int, int, int], int] = {}
    shed: Dict[Tuple[int, int, int], int] = {}
    latency: Dict[Tuple[int, int, int], LogHistogram] = {}
    stage_max_depth = [0] * len(traffic.ramp)
    queue_depth: Dict[str, List] = {}
    for doc in server_docs:
        for name, table in (("offered", offered), ("completed", completed),
                            ("shed", shed)):
            for key, n in doc[name].items():
                parsed = _parse_key(key)
                table[parsed] = table.get(parsed, 0) + n
        for key, hist_doc in doc["latency"].items():
            parsed = _parse_key(key)
            hist = latency.get(parsed)
            if hist is None:
                latency[parsed] = LogHistogram.from_dict(hist_doc)
            else:
                hist.merge(LogHistogram.from_dict(hist_doc))
        for stage, depth in enumerate(doc["stage_max_depth"]):
            stage_max_depth[stage] = max(stage_max_depth[stage], depth)
        queue_depth[str(doc["server"])] = doc["depth_series"]

    overall = LogHistogram()
    per_tenant: Dict[int, LogHistogram] = {}
    per_kind: Dict[int, LogHistogram] = {}
    per_stage: Dict[int, LogHistogram] = {}
    for (stage, tenant, kind), hist in latency.items():
        overall.merge(hist)
        for axis, index in ((per_tenant, tenant), (per_kind, kind),
                            (per_stage, stage)):
            bucket = axis.get(index)
            if bucket is None:
                axis[index] = _copy_hist(hist)
            else:
                bucket.merge(hist)

    stages = _stage_rows(traffic, schedule, offered, completed, shed,
                         per_stage, stage_max_depth)
    knee = _find_knee(traffic, stages)
    exemplars = None
    if any("exemplars" in doc for doc in server_docs):
        from repro.observability.spans import merge_exemplar_docs

        exemplars = merge_exemplar_docs(
            [doc["exemplars"] for doc in server_docs
             if "exemplars" in doc],
            traffic.exemplars, traffic.shed_exemplars)
    section = {
        "totals": {
            "offered": sum(offered.values()),
            "completed": sum(completed.values()),
            "shed": sum(shed.values()),
        },
        "latency_ns": {
            "overall": overall.to_dict(),
            "per_tenant": {schedule.tenant_names[t]: hist.to_dict()
                           for t, hist in sorted(per_tenant.items())},
            "per_kind": {schedule.kind_names[k]: hist.to_dict()
                         for k, hist in sorted(per_kind.items())},
        },
        "stages": stages,
        "queue_depth": dict(sorted(queue_depth.items(),
                                   key=lambda kv: int(kv[0]))),
        "knee": knee,
        "calibration": shard_docs[0]["calibration"],
    }
    if exemplars is not None:
        section["exemplars"] = exemplars
    return section


def _copy_hist(hist: LogHistogram) -> LogHistogram:
    clone = LogHistogram()
    clone.merge(hist)
    return clone


def _stage_rows(traffic: TrafficConfig, schedule: ArrivalSchedule,
                offered, completed, shed, per_stage,
                stage_max_depth) -> List[Dict]:
    rows = []
    bounds = schedule.stage_bounds()
    for stage, multiplier in enumerate(traffic.ramp):
        first, end = bounds[stage]
        start_ns = schedule.t_ns[first - 1] if first > 0 else 0
        span = max(1, (schedule.t_ns[end - 1] if end > first else start_ns)
                   - start_ns)
        stage_completed = sum(n for (s, _t, _k), n in completed.items()
                              if s == stage)
        hist = per_stage.get(stage, LogHistogram())
        rows.append({
            "stage": stage,
            "rate": traffic.rate * multiplier,
            "offered": sum(n for (s, _t, _k), n in offered.items()
                           if s == stage),
            "completed": stage_completed,
            "shed": sum(n for (s, _t, _k), n in shed.items() if s == stage),
            "throughput_rps": stage_completed * NS // span,
            "p50_ns": hist.percentile(50),
            "p99_ns": hist.percentile(99),
            "p999_ns": hist.percentile(99.9),
            "pmax_ns": hist.max,
            "max_depth": stage_max_depth[stage],
        })
    return rows


def _find_knee(traffic: TrafficConfig, stages: List[Dict]) -> Dict:
    """First ramp stage that violates the SLO: p99 above the budget or
    any load shed.  ``None`` fields mean the ramp never saturated."""
    budget_ns = traffic.slo_p99_ms * 1_000_000
    for row in stages:
        if row["shed"] > 0 or row["p99_ns"] > budget_ns:
            reason = "shed" if row["shed"] > 0 else "p99-slo"
            return {"stage": row["stage"], "rate": row["rate"],
                    "reason": reason, "p99_ns": row["p99_ns"],
                    "budget_ns": budget_ns}
    return {"stage": None, "rate": None, "reason": None,
            "p99_ns": stages[-1]["p99_ns"] if stages else 0,
            "budget_ns": budget_ns}


# ---------------------------------------------------------------- the driver


def loadtest_specs(mechanisms: Sequence[str], workload: str,
                   traffic_doc: Dict, seed: int, nshards: int):
    """Enumerate the pipeline cells for one load test (mechanism-major,
    then shard — enumeration order is part of the deterministic shard
    dealing contract)."""
    from repro.evaluation.pipeline import ScenarioSpec

    blob = json.dumps(traffic_doc, sort_keys=True)
    return [
        ScenarioSpec("loadtest", mechanism, workload, seed,
                     (("shard", shard), ("shards", nshards),
                      ("traffic", blob)))
        for mechanism in mechanisms
        for shard in range(nshards)
    ]


def run_loadtest(mechanisms: Sequence[str], workload: str,
                 traffic: TrafficConfig, seed: int, jobs: int = 1,
                 cache=None, timeout: Optional[float] = None) -> SLOReport:
    """Run one load test end to end and return the merged SLO report.

    ``jobs`` doubles as the shard count (capped by the fleet size) and
    the pipeline's worker count; the report is byte-identical whatever
    value is passed.
    """
    from repro.evaluation.pipeline import DEFAULT_CELL_TIMEOUT, run_cells
    from repro.traffic.schedule import schedule_summary

    traffic = resolve_rate(traffic, workload, seed)
    canonical = traffic.canonical()
    nshards = max(1, min(jobs, traffic.servers))
    specs = loadtest_specs(mechanisms, workload, canonical, seed, nshards)
    run = run_cells(specs, jobs=jobs, cache=cache,
                    timeout=timeout or DEFAULT_CELL_TIMEOUT)
    schedule = generate_schedule(traffic, seed)

    sections = {}
    for mechanism in mechanisms:
        docs = [run.value(spec) for spec in specs
                if spec.mechanism == mechanism]
        sections[mechanism] = merge_mechanism(docs, traffic, schedule)
    doc = {
        "schema": SLO_SCHEMA_VERSION,
        "workload": workload,
        "seed": seed,
        "traffic": canonical,
        "schedule": schedule_summary(schedule),
        "mechanisms": sections,
    }
    return SLOReport(doc=doc, stats=run.stats)
