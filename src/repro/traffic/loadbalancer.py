"""The simulated load balancer: queue-leveled, connection-sharded.

Model-mode heart of the traffic engine.  Arrivals (from the seeded
schedule) flow through a per-server *leveling queue* into a pool of
worker channels — the textbook queue-based-load-leveling shape — with
two production constraints the closed-loop harness never exercises:

- **connection serialization** — one outstanding request per
  connection (HTTP/1.1 keep-alive without pipelining): a request whose
  connection is busy waits client-side, and that wait *is* measured
  latency;
- **bounded queue** — past ``queue_limit`` the balancer sheds
  (503-style); shed counts per (stage, tenant, kind) feed the knee.

Everything is integer virtual nanoseconds driven by a two-source event
merge (arrivals column + completion heap, ``(time, seq)``-ordered), so
a server's simulation is a pure function of its arrival subsequence and
the calibrated service table — the property that makes ``--jobs``
sharding by server exact rather than approximate.

Service times come from the calibration pass
(:func:`repro.traffic.fleet.calibrate_service_table`): per-request-kind
cycles measured on a *real* interposed kernel, converted once to
nanoseconds.  The fabric never invents cost — it only schedules it.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.observability.analyzers.latency import LogHistogram

#: Queue-depth samples per server across the schedule span.
DEPTH_SAMPLES = 200


class ServerSim:
    """Discrete-event simulation of one fleet server.

    Feed arrivals in schedule order via :meth:`offer`, then
    :meth:`drain`; read the JSON-safe result from :meth:`result`.
    ``emit(kind, payload)`` (optional) mirrors queue-depth samples onto
    an event bus when the engine runs inside a kernel-attached context.
    """

    def __init__(self, server: int, workers: int, queue_limit: int,
                 service_ns: Dict[Tuple[int, int], int], stages: int,
                 sample_every_ns: int,
                 emit: Optional[Callable[[str, Dict], None]] = None,
                 trace=None):
        self.server = server
        self.workers = workers
        self.queue_limit = queue_limit
        self.service_ns = service_ns
        self.stages = stages
        self.sample_every_ns = max(1, sample_every_ns)
        self.emit = emit
        #: Optional :class:`repro.observability.spans.TraceContext`;
        #: None keeps the hot path at one predicate per request.
        self.trace = trace
        # index -> [conn_wait_ns, queue_enter_ns (-1 = never queued),
        #           queue_wait_ns]; only populated when tracing.
        self._span_meta: Dict[int, List[int]] = {}

        self.free_workers = workers
        self.waiting: deque = deque()
        self.engaged: set = set()
        self.conn_pending: Dict[int, deque] = {}
        self.in_service: List[Tuple[int, int, Tuple]] = []  # heap
        self._seq = 0

        # (stage, tenant, kind) -> tallies / latency histograms (ns).
        self.offered: Dict[Tuple[int, int, int], int] = {}
        self.completed: Dict[Tuple[int, int, int], int] = {}
        self.shed: Dict[Tuple[int, int, int], int] = {}
        self.latency: Dict[Tuple[int, int, int], LogHistogram] = {}
        self.stage_max_depth = [0] * stages
        self.depth_series: List[Tuple[int, int, int]] = []
        self._next_sample_ns = 0
        self._now = 0

    # ------------------------------------------------------------ events

    def offer(self, t_ns: int, stage: int, tenant: int, kind: int,
              conn: int, index: int = -1) -> None:
        """One arrival.  Must be called in non-decreasing ``t_ns``.
        *index* is the global schedule index — the span/exemplar
        identity; -1 (direct fabric use without a schedule) disables
        span capture for the request."""
        self._advance(t_ns)
        key = (stage, tenant, kind)
        self.offered[key] = self.offered.get(key, 0) + 1
        request = (t_ns, stage, tenant, kind, conn, index)
        if self.trace is not None and index >= 0:
            self._span_meta[index] = [0, -1, 0]
        if conn in self.engaged:
            self.conn_pending.setdefault(conn, deque()).append(request)
            return
        self._admit(request, t_ns)

    def drain(self) -> None:
        """Run every queued/in-service request to completion."""
        while self.in_service:
            self._complete_next()

    # ---------------------------------------------------------- internals

    def _advance(self, t_ns: int) -> None:
        """Retire completions due before *t_ns* (completion-first at
        ties: a worker freed at t serves an arrival at t)."""
        while self.in_service and self.in_service[0][0] <= t_ns:
            self._complete_next()
        self._sample(t_ns)
        self._now = max(self._now, t_ns)

    def _admit(self, request: Tuple, now: int) -> bool:
        """Place *request*; returns False when it was shed (callers own
        any connection release so shed chains stay iterative)."""
        conn = request[4]
        meta = None
        if self.trace is not None and request[5] >= 0:
            meta = self._span_meta[request[5]]
            # The time between arrival and admission is spent waiting
            # for this connection's previous request (keep-alive
            # serialization); 0 when the connection was free.
            meta[0] = now - request[0]
        if self.free_workers > 0:
            self.engaged.add(conn)
            self._start(request, now)
            return True
        if len(self.waiting) >= self.queue_limit:
            key = (request[1], request[2], request[3])
            self.shed[key] = self.shed.get(key, 0) + 1
            if meta is not None:
                self._span_meta.pop(request[5], None)
                self.trace.record(
                    index=request[5], conn=conn, stage=request[1],
                    tenant=request[2], kind=request[3],
                    arrival_ns=request[0], latency_ns=now - request[0],
                    conn_wait_ns=meta[0], shed=True)
            return False
        self.engaged.add(conn)
        self.waiting.append(request)
        if meta is not None:
            meta[1] = now
        depth = len(self.waiting)
        if depth > self.stage_max_depth[request[1]]:
            self.stage_max_depth[request[1]] = depth
        return True

    def _start(self, request: Tuple, now: int) -> None:
        _t, stage, tenant, kind, _conn, index = request
        if self.trace is not None and index >= 0:
            meta = self._span_meta[index]
            if meta[1] >= 0:
                meta[2] = now - meta[1]
        self.free_workers -= 1
        service = self.service_ns[(tenant, kind)]
        self._seq += 1
        heapq.heappush(self.in_service,
                       (now + service, self._seq, request))

    def _complete_next(self) -> None:
        done_t, _seq, request = heapq.heappop(self.in_service)
        t_ns, stage, tenant, kind, conn, index = request
        self._sample(done_t)
        self._now = max(self._now, done_t)
        self.free_workers += 1
        key = (stage, tenant, kind)
        self.completed[key] = self.completed.get(key, 0) + 1
        hist = self.latency.get(key)
        if hist is None:
            hist = self.latency[key] = LogHistogram()
        hist.record(done_t - t_ns)
        if self.trace is not None and index >= 0:
            meta = self._span_meta.pop(index)
            self.trace.record(
                index=index, conn=conn, stage=stage, tenant=tenant,
                kind=kind, arrival_ns=t_ns, latency_ns=done_t - t_ns,
                conn_wait_ns=meta[0], queue_ns=meta[2])
        # Fixed post-completion order: next waiting request first, then
        # the finished connection's next pipelined request.
        if self.waiting and self.free_workers > 0:
            self._start(self.waiting.popleft(), done_t)
        self._release_conn(conn, done_t)

    def _release_conn(self, conn: int, now: int) -> None:
        self.engaged.discard(conn)
        pending = self.conn_pending.get(conn)
        while pending:
            request = pending.popleft()
            if not pending:
                del self.conn_pending[conn]
                pending = None
            if self._admit(request, now):
                return

    def _sample(self, t_ns: int) -> None:
        while self._next_sample_ns <= t_ns:
            sample = (self._next_sample_ns, len(self.waiting),
                      self.workers - self.free_workers)
            self.depth_series.append(sample)
            if self.emit is not None:
                self.emit("queue_depth", {
                    "server": self.server, "t_ns": sample[0],
                    "depth": sample[1], "in_flight": sample[2]})
            self._next_sample_ns += self.sample_every_ns

    # ------------------------------------------------------------- output

    def result(self) -> Dict:
        """JSON-safe shard result for this server; merged by the engine
        with plain integer sums + histogram merges."""
        return server_result_doc(self.server, self.offered, self.completed,
                                 self.shed, self.latency,
                                 self.stage_max_depth, self.depth_series)


def server_result_doc(server: int, offered, completed, shed, latency,
                      stage_max_depth, depth_series) -> Dict:
    """The per-server shard-result shape — shared by the model fabric
    and the full-serve fleet driver so the merge never cares which mode
    produced a doc.  Tally keys are ``"stage:tenant:kind"`` strings."""
    def keyed(table: Dict[Tuple[int, int, int], int]) -> Dict[str, int]:
        return {f"{s}:{t}:{k}": n for (s, t, k), n in sorted(table.items())}

    return {
        "server": server,
        "offered": keyed(offered),
        "completed": keyed(completed),
        "shed": keyed(shed),
        "latency": {f"{s}:{t}:{k}": hist.to_dict()
                    for (s, t, k), hist in sorted(latency.items())},
        "stage_max_depth": list(stage_max_depth),
        "depth_series": [list(sample) for sample in depth_series],
    }


def simulate_server(server: int, schedule, service_ns, workers: int,
                    queue_limit: int,
                    emit: Optional[Callable[[str, Dict], None]] = None,
                    trace=None) -> Dict:
    """Run one server's arrivals through the fabric and return its
    shard result.  *schedule* is an ArrivalSchedule; only requests whose
    connection shards to *server* are offered.  *trace* (a
    :class:`repro.observability.spans.TraceContext`) enables per-request
    span capture."""
    span = max(1, schedule.span_ns())
    sim = ServerSim(server=server, workers=workers, queue_limit=queue_limit,
                    service_ns=service_ns, stages=len(schedule.config.ramp),
                    sample_every_ns=span // DEPTH_SAMPLES or 1, emit=emit,
                    trace=trace)
    for index, t_ns, tenant, kind, conn in schedule.iter_requests(server):
        sim.offer(t_ns, schedule.stage_of(index), tenant, kind, conn,
                  index=index)
    sim.drain()
    return sim.result()
