"""Seeded open-loop arrival schedules — byte-identical by construction.

One ``random.Random(seed)`` stream drives every draw, in one fixed
order per request (gap, tenant, kind, connection), so the schedule is a
pure function of ``(config, seed)``: no wall clock, no float
accumulation across shards (each arrival time is the running integer
nanosecond sum), no dict iteration.  Shards *re-generate* the same full
schedule and filter it — cheaper and strictly safer than splitting the
RNG — which is what makes ``--jobs 1/2/4`` byte-identical.

Columns live in ``array('q')`` (8 bytes/field): a million-request
schedule is four 8 MB arrays, not a million Python objects.

The rate ramp is request-count-staged: stage ``i = r * len(ramp) // n``
for request ``r`` of ``n``, so every stage holds the same number of
requests and per-stage percentiles are equally grounded.
"""

from __future__ import annotations

import hashlib
import math
import random
from array import array
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.traffic.config import TrafficConfig

NS = 10**9

#: Pareto shape for the heavy-tail arrival option: alpha just above 1
#: keeps the mean finite while the variance diverges — the bursty
#: regime that stresses queue leveling.
PARETO_ALPHA = 1.5


def _weighted_picker(weights: Tuple[Tuple[str, int], ...]):
    """O(1)-ish cumulative-weight picker over a small weight table."""
    keys = [key for key, _ in weights]
    cumulative = []
    running = 0
    for _, weight in weights:
        running += weight
        cumulative.append(running)
    total = running

    def pick(rng: random.Random) -> int:
        point = rng.randrange(total)
        for index, bound in enumerate(cumulative):
            if point < bound:
                return index
        return len(keys) - 1  # unreachable

    return keys, pick


@dataclass(frozen=True)
class ArrivalSchedule:
    """The generated schedule: parallel integer columns + name tables.

    ``t_ns[i]`` is request *i*'s absolute arrival time (virtual
    nanoseconds from test start); ``tenant[i]`` / ``kind[i]`` index
    ``tenant_names`` / ``kind_names``; ``conn[i]`` is the connection the
    request arrives on, and ``conn % servers`` its server — the sharding
    axis.  ``stage_of`` and the digest are derived, not stored.
    """

    config: TrafficConfig
    seed: int
    t_ns: array
    tenant: array
    kind: array
    conn: array
    tenant_names: Tuple[str, ...]
    kind_names: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.t_ns)

    def stage_of(self, index: int) -> int:
        # Inverse of stage_bounds: stage s covers [s*n//stages,
        # (s+1)*n//stages), so s is the largest value with
        # s*n//stages <= index.
        stages, n = len(self.config.ramp), len(self.t_ns)
        return ((index + 1) * stages - 1) // n

    def server_of(self, index: int) -> int:
        return self.conn[index] % self.config.servers

    def digest(self) -> str:
        """SHA-256 over the raw column bytes: the byte-identity witness
        quoted in METRICS_slo.json and asserted by the property tests."""
        h = hashlib.sha256()
        for column in (self.t_ns, self.tenant, self.kind, self.conn):
            h.update(column.tobytes())
        return h.hexdigest()

    def span_ns(self) -> int:
        return self.t_ns[-1] if len(self.t_ns) else 0

    def stage_bounds(self) -> Tuple[Tuple[int, int], ...]:
        """Per-stage ``(first_index, end_index)`` half-open ranges."""
        n, stages = len(self.t_ns), len(self.config.ramp)
        return tuple((s * n // stages, (s + 1) * n // stages)
                     for s in range(stages))

    def iter_requests(self, server: int = -1
                      ) -> Iterator[Tuple[int, int, int, int, int]]:
        """Yield ``(index, t_ns, tenant, kind, conn)``, optionally only
        for requests whose connection shards to *server*."""
        servers = self.config.servers
        for index in range(len(self.t_ns)):
            if server >= 0 and self.conn[index] % servers != server:
                continue
            yield (index, self.t_ns[index], self.tenant[index],
                   self.kind[index], self.conn[index])


def _gap_drawer(arrival: str):
    """Return draw(rng, rate) -> gap_ns for the configured process.

    Each drawer converts a float draw to integer nanoseconds
    immediately (round-half-even via int(x + 0.5) is avoided — plain
    truncation of a positive float is platform-stable), so no float
    state survives between requests.
    """
    if arrival == "poisson":
        def draw(rng: random.Random, rate: int) -> int:
            return int(rng.expovariate(rate / NS))
    elif arrival == "lognormal":
        # sigma=1 burstiness; mu set so the mean is exactly 1/rate:
        # mean of lognormal(mu, sigma) = exp(mu + sigma^2/2).
        sigma = 1.0

        def draw(rng: random.Random, rate: int) -> int:
            mu = math.log(NS / rate) - sigma * sigma / 2.0
            return int(rng.lognormvariate(mu, sigma))
    else:  # pareto
        def draw(rng: random.Random, rate: int) -> int:
            # Scale xm so the mean alpha*xm/(alpha-1) is 1/rate.
            xm = (PARETO_ALPHA - 1.0) / PARETO_ALPHA * (NS / rate)
            return int(xm * rng.paretovariate(PARETO_ALPHA))
    return draw


def generate_schedule(config: TrafficConfig, seed: int) -> ArrivalSchedule:
    """Generate the full arrival schedule for ``(config, seed)``.

    ``config.rate`` must be resolved (non-zero).  Draw order per request
    is fixed — gap, tenant, kind, connection — and every consumer draw
    happens even when a value is forced (single tenant still burns a
    draw via the picker), so adding consumers later can't silently
    reshuffle the stream for old configs.
    """
    if config.rate <= 0:
        raise ValueError("generate_schedule needs a resolved rate")
    rng = random.Random(seed)
    draw_gap = _gap_drawer(config.arrival)
    tenant_names, pick_tenant = _weighted_picker(config.tenants)
    kind_tables = {}
    for name, _ in config.tenants:
        kind_tables[name] = _weighted_picker(config.mix_for(name))
    kind_names = tuple(sorted({kind for keys, _ in kind_tables.values()
                               for kind in keys}))
    kind_index = {kind: i for i, kind in enumerate(kind_names)}

    n = config.requests
    stages = len(config.ramp)
    t_col, tenant_col = array("q"), array("q")
    kind_col, conn_col = array("q"), array("q")
    now = 0
    for index in range(n):
        stage_rate = config.rate * config.ramp[index * stages // n]
        now += draw_gap(rng, stage_rate)
        tenant = pick_tenant(rng)
        keys, pick_kind = kind_tables[tenant_names[tenant]]
        kind = kind_index[keys[pick_kind(rng)]]
        conn = rng.randrange(config.connections)
        t_col.append(now)
        tenant_col.append(tenant)
        kind_col.append(kind)
        conn_col.append(conn)
    return ArrivalSchedule(config=config, seed=seed, t_ns=t_col,
                           tenant=tenant_col, kind=kind_col, conn=conn_col,
                           tenant_names=tuple(tenant_names),
                           kind_names=kind_names)


def schedule_summary(schedule: ArrivalSchedule) -> Dict:
    """Small JSON echo for reports: count, span, digest, stage bounds."""
    return {
        "requests": len(schedule),
        "span_ns": schedule.span_ns(),
        "digest": schedule.digest(),
        "stages": [
            {"stage": s, "rate": schedule.config.rate * m,
             "first": bounds[0], "end": bounds[1]}
            for s, (m, bounds) in enumerate(
                zip(schedule.config.ramp, schedule.stage_bounds()))
        ],
    }
